from setuptools import find_packages, setup

setup(
    name="mobile-server-repro",
    version="0.2.0",
    description="Reproduction of 'The Mobile Server Problem' (SPAA 2017)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "mobile-server=repro.cli:main",
        ],
    },
)
