"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro.core import CostModel, MSPInstance, RequestSequence

# Keep property-based tests fast and deterministic in CI.
settings.register_profile("repro", max_examples=50, deadline=None, derandomize=True)
settings.load_profile("repro")

# Lint fixtures under data/ include deliberately-bad code and REG001
# mini-trees whose files are *named* test_*.py by design — never collect.
collect_ignore_glob = ["data/*"]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def line_instance(rng: np.random.Generator) -> MSPInstance:
    """A small 1-D random-walk instance."""
    pts = np.cumsum(rng.normal(scale=0.4, size=(60, 1)), axis=0)
    return MSPInstance(RequestSequence.single_requests(pts), start=np.zeros(1), D=2.0, m=1.0)


@pytest.fixture
def plane_instance(rng: np.random.Generator) -> MSPInstance:
    """A small 2-D random-walk instance with 3 requests per step."""
    demand = np.cumsum(rng.normal(scale=0.3, size=(40, 2)), axis=0)
    pts = demand[:, None, :] + rng.normal(scale=0.3, size=(40, 3, 2))
    return MSPInstance(RequestSequence.from_packed(pts), start=np.zeros(2), D=3.0, m=1.0)


@pytest.fixture
def answer_first_instance(line_instance: MSPInstance) -> MSPInstance:
    return line_instance.with_cost_model(CostModel.ANSWER_FIRST)
