"""Tests for the content-addressed results store (repro.core.store)."""

import os

import numpy as np
import pytest

from repro.core.store import (
    ResultsStore,
    digest_key,
    load_payload,
    pack_payload,
    save_payload,
    unpack_payload,
)
from repro.experiments.runner import ExperimentResult


class TestPayloadPacking:
    def test_scalars_and_structures_roundtrip(self):
        payload = {
            "a": 1,
            "b": 0.1 + 0.2,  # not exactly representable in decimal
            "c": "text",
            "d": None,
            "e": True,
            "nested": {"list": [1, 2.5, "x", [None, False]]},
        }
        skeleton, arrays = pack_payload(payload)
        assert arrays == []
        assert unpack_payload(skeleton, arrays) == payload

    def test_arrays_bit_exact(self):
        rng = np.random.default_rng(0)
        payload = {"x": rng.standard_normal(17), "meta": {"y": rng.integers(0, 9, size=4)}}
        skeleton, arrays = pack_payload(payload)
        out = unpack_payload(skeleton, arrays)
        assert out["x"].dtype == np.float64
        np.testing.assert_array_equal(out["x"], payload["x"])
        np.testing.assert_array_equal(out["meta"]["y"], payload["meta"]["y"])

    def test_numpy_scalars_converted_losslessly(self):
        value = np.float64(1.0) / np.float64(3.0)
        skeleton, _ = pack_payload({"v": value})
        assert skeleton["v"] == float(value)
        assert isinstance(skeleton["v"], float)

    def test_tuples_become_lists(self):
        skeleton, _ = pack_payload({"t": (1, 2)})
        assert skeleton["t"] == [1, 2]

    def test_rejects_non_string_keys(self):
        with pytest.raises(TypeError, match="keys must be str"):
            pack_payload({1: "x"})

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError, match="unsupported payload"):
            pack_payload({"x": object()})

    def test_file_roundtrip_exact(self, tmp_path):
        rng = np.random.default_rng(3)
        payload = {"arr": rng.standard_normal((5, 2)), "f": float(np.pi), "s": ["a", "b"]}
        path = save_payload(tmp_path / "cell", payload)
        assert path.suffix == ".npz"
        loaded = load_payload(path)
        np.testing.assert_array_equal(loaded["arr"], payload["arr"])
        assert loaded["f"] == payload["f"]
        assert loaded["s"] == payload["s"]


class TestDigestKey:
    def test_deterministic(self):
        assert digest_key("m:f", {"a": 1}) == digest_key("m:f", {"a": 1})

    def test_key_order_irrelevant(self):
        assert digest_key("m:f", {"a": 1, "b": 2}) == digest_key("m:f", {"b": 2, "a": 1})

    def test_params_change_digest(self):
        assert digest_key("m:f", {"a": 1}) != digest_key("m:f", {"a": 2})

    def test_fn_changes_digest(self):
        assert digest_key("m:f", {"a": 1}) != digest_key("m:g", {"a": 1})

    def test_dependency_digest_propagates(self):
        dep_a = digest_key("m:dep", {"x": 1})
        dep_b = digest_key("m:dep", {"x": 2})
        assert digest_key("m:f", {}, {"d": dep_a}) != digest_key("m:f", {}, {"d": dep_b})


class TestResultsStore:
    def test_save_contains_load(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        digest = digest_key("m:f", {"a": 1})
        assert digest not in store
        store.save(digest, {"v": 42})
        assert digest in store
        assert store.load(digest) == {"v": 42}
        assert len(store) == 1

    def test_delete(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        digest = digest_key("m:f", {})
        store.save(digest, {"v": 1})
        assert store.delete(digest)
        assert digest not in store
        assert not store.delete(digest)

    def test_missing_root_is_empty(self, tmp_path):
        store = ResultsStore(tmp_path / "nope")
        assert len(store) == 0
        assert "0" * 64 not in store


class TestExperimentResultPersistence:
    def _result(self):
        return ExperimentResult(
            experiment_id="EX",
            title="a title",
            headers=["name", "n", "ratio"],
            rows=[["alpha", 3, 0.1 + 0.2], ["beta", 7, float(np.float64(1) / 3)]],
            notes=["criterion: something", "value: 1.23"],
            passed=False,
        )

    def test_payload_roundtrip_exact(self):
        res = self._result()
        back = ExperimentResult.from_payload(res.as_payload())
        assert back.rows == [list(r) for r in res.rows]
        assert back.render() == res.render()
        assert back.csv() == res.csv()
        assert back.passed is False

    def test_save_load_roundtrip_exact(self, tmp_path):
        res = self._result()
        path = res.save(tmp_path / "result")
        back = ExperimentResult.load(path)
        assert back.render() == res.render()
        assert back.rows[0][2] == res.rows[0][2]  # float preserved to the last bit


class TestStoreGC:
    def _filled_store(self, tmp_path, n=4):
        store = ResultsStore(tmp_path / "store")
        digests = []
        for i in range(n):
            digest = digest_key("pkg.mod:fn", {"i": i})
            store.save(digest, {"x": np.arange(100) + i})
            # Distinct, strictly increasing mtimes so LRU order is exact.
            entry = store.path_for(digest)
            os.utime(entry, (1_000_000 + i, 1_000_000 + i))
            digests.append(digest)
        return store, digests

    def test_size_bytes_counts_entries(self, tmp_path):
        store, _ = self._filled_store(tmp_path)
        assert store.size_bytes() > 0
        assert ResultsStore(tmp_path / "nope").size_bytes() == 0

    def test_gc_noop_when_under_budget(self, tmp_path):
        store, digests = self._filled_store(tmp_path)
        stats = store.gc(store.size_bytes())
        assert stats.evicted == 0 and stats.freed_bytes == 0
        assert all(d in store for d in digests)

    def _budget_for(self, store, digests):
        """A byte budget that fits exactly the given entries."""
        return sum(store.path_for(d).stat().st_size for d in digests)

    def test_gc_evicts_oldest_first(self, tmp_path):
        store, digests = self._filled_store(tmp_path)
        stats = store.gc(self._budget_for(store, digests[2:]))
        assert stats.evicted == 2
        assert digests[0] not in store and digests[1] not in store
        assert digests[2] in store and digests[3] in store
        assert stats.remaining_entries == 2
        assert stats.remaining_bytes == store.size_bytes()

    def test_load_refreshes_recency(self, tmp_path):
        store, digests = self._filled_store(tmp_path)
        budget = self._budget_for(store, [digests[0], digests[3]])
        store.load(digests[0])  # a cache hit makes the oldest entry newest
        stats = store.gc(budget)
        assert stats.evicted == 2
        assert digests[0] in store
        assert digests[1] not in store and digests[2] not in store

    def test_gc_to_zero_clears_store(self, tmp_path):
        store, _ = self._filled_store(tmp_path)
        stats = store.gc(0)
        assert stats.evicted == 4 and len(store) == 0
        assert stats.remaining_bytes == 0

    def test_gc_rejects_negative_budget(self, tmp_path):
        store, _ = self._filled_store(tmp_path)
        with pytest.raises(ValueError, match="non-negative"):
            store.gc(-1)

    def test_gc_never_evicts_pinned_entries(self, tmp_path):
        # Live serve-session checkpoints pin themselves: even a zero
        # budget must not evict them, and they still count in the total.
        store, digests = self._filled_store(tmp_path)
        store.pin(digests[0])
        store.pin(digests[2])
        assert store.pinned() == {digests[0], digests[2]}
        stats = store.gc(0)
        assert stats.evicted == 2
        assert digests[0] in store and digests[2] in store
        assert digests[1] not in store and digests[3] not in store
        assert stats.remaining_bytes == store.size_bytes() > 0

    def test_unpin_makes_entry_evictable_again(self, tmp_path):
        store, digests = self._filled_store(tmp_path)
        store.pin(digests[0])
        store.gc(0)
        assert digests[0] in store
        store.unpin(digests[0])
        assert store.pinned() == frozenset()
        store.gc(0)
        assert digests[0] not in store and len(store) == 0

    def test_unpin_unknown_digest_is_noop(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        store.unpin("never-pinned")
        assert store.pinned() == frozenset()
