"""End-to-end integration tests: the paper's claims at miniature scale.

Each test is a tiny version of one experiment — the full-scale versions
live in benchmarks/ — asserting the *direction* of every headline result.
"""

import numpy as np

from repro.adversaries import build_thm1, build_thm2, build_thm3, build_thm8
from repro.algorithms import (
    AnswerFirstMoveToCenter,
    MoveToCenter,
    MovingClientMtC,
    make_algorithm,
)
from repro.analysis import collapse_to_centers, measure_ratio, verify_potential_argument
from repro.core import CostModel, simulate
from repro.offline import solve_line
from repro.workloads import DriftWorkload, PatrolAgentWorkload, standard_suite


class TestTheorem1Shape:
    def test_ratio_quadruples_as_T_16x(self):
        """sqrt growth: T x16 => ratio roughly x4."""
        means = []
        for T in (256, 4096):
            vals = []
            for s in range(6):
                adv = build_thm1(T, rng=np.random.default_rng(s))
                tr = simulate(adv.instance, MoveToCenter(), delta=0.0)
                vals.append(adv.ratio_of(tr.total_cost))
            means.append(np.mean(vals))
        growth = means[1] / means[0]
        assert 2.5 <= growth <= 6.5  # predicted 4

    def test_augmentation_kills_the_bound(self):
        """The same construction is harmless once delta > 0."""
        vals = []
        for s in range(6):
            adv = build_thm1(4096, rng=np.random.default_rng(s))
            tr = simulate(adv.instance, MoveToCenter(), delta=0.5)
            vals.append(adv.ratio_of(tr.total_cost))
        assert np.mean(vals) < 5.0


class TestTheorem2Shape:
    def test_ratio_doubles_as_delta_halves(self):
        means = []
        for delta in (0.5, 0.25):
            vals = []
            for s in range(6):
                adv = build_thm2(delta, cycles=3, rng=np.random.default_rng(s))
                tr = simulate(adv.instance, MoveToCenter(), delta=delta)
                vals.append(adv.ratio_of(tr.total_cost))
            means.append(np.mean(vals))
        assert 1.5 <= means[1] / means[0] <= 2.6


class TestTheorem3Shape:
    def test_answer_first_vs_move_first_separation(self):
        r = 16
        af_vals, mf_vals = [], []
        for s in range(5):
            adv_af = build_thm3(cycles=30, r=r, rng=np.random.default_rng(s))
            af_vals.append(adv_af.ratio_of(
                simulate(adv_af.instance, AnswerFirstMoveToCenter(), delta=0.5).total_cost))
            adv_mf = build_thm3(cycles=30, r=r, cost_model=CostModel.MOVE_FIRST,
                                rng=np.random.default_rng(s))
            mf_vals.append(adv_mf.ratio_of(
                simulate(adv_mf.instance, MoveToCenter(), delta=0.5).total_cost))
        assert np.mean(af_vals) > 5.0 * np.mean(mf_vals)


class TestTheorem4Shape:
    def test_mtc_certified_constant_on_line(self):
        wl = DriftWorkload(120, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.2,
                           requests_per_step=4)
        ratios = []
        for s in range(3):
            inst = wl.generate(np.random.default_rng(s))
            ratios.append(measure_ratio(inst, MoveToCenter(), delta=0.5).ratio_upper)
        assert max(ratios) < 4.0

    def test_mtc_beats_unaugmented_self_on_adversarial(self):
        adv = build_thm2(0.25, cycles=3, rng=np.random.default_rng(0))
        aug = simulate(adv.instance, MoveToCenter(), delta=0.25).total_cost
        no_aug = simulate(adv.instance, MoveToCenter(cap_fraction=1 / 1.25),
                          delta=0.25).total_cost
        assert aug <= no_aug


class TestTheorem7Shape:
    def test_inflation_bounded(self):
        r, D = 8, 2.0
        wl = DriftWorkload(100, dim=1, D=D, m=1.0, speed=0.7, spread=0.2,
                           requests_per_step=r)
        inst = wl.generate(np.random.default_rng(2))
        mf = simulate(inst, MoveToCenter(), delta=0.5).total_cost
        af = simulate(inst.with_cost_model(CostModel.ANSWER_FIRST),
                      MoveToCenter(), delta=0.5).total_cost
        assert af / mf <= 2.0 * max(1.0, r / D) + 0.25


class TestTheorem8And10Shape:
    def test_fast_agent_diverges_slow_agent_flat(self):
        div = []
        for T in (256, 4096):
            adv = build_thm8(T, epsilon=1.0, sign=1.0)
            tr = simulate(adv.instance, MovingClientMtC(), delta=0.0)
            div.append(adv.ratio_of(tr.total_cost))
        assert div[1] > 2.0 * div[0]

        flat = []
        for T in (100, 400):
            wl = PatrolAgentWorkload(T=T, dim=1, D=4.0, m_server=1.0, m_agent=1.0)
            mc = wl.generate(np.random.default_rng(3))
            inst = mc.as_msp()
            tr = simulate(inst, MovingClientMtC(), delta=0.0)
            dp = solve_line(inst)
            flat.append(tr.total_cost / max(dp.lower_bound, 1e-12))
        assert flat[1] <= flat[0] * 1.6 + 0.3


class TestPotentialIntegration:
    def test_telescoped_bound_holds(self):
        wl = DriftWorkload(100, dim=1, D=2.0, m=1.0, speed=0.7, spread=0.3,
                           requests_per_step=4)
        inst = collapse_to_centers(wl.generate(np.random.default_rng(1)))
        delta = 0.5
        tr = simulate(inst, MoveToCenter(), delta=delta)
        dp = solve_line(inst)
        rep = verify_potential_argument(inst, tr, dp.positions, delta)
        # Telescoping: C_Alg <= amortised_ratio * C_Opt + phi_0 (= 0 here).
        assert rep.amortised_ratio * rep.total_opt >= rep.total_alg - 1e-6


class TestWholeRegistryOnSuite:
    def test_every_algorithm_completes_standard_suite(self):
        suite = standard_suite(T=60, dim=1, D=4.0, m=1.0)
        from repro.algorithms import compatible_algorithms

        for wl_name, wl in suite.items():
            inst = wl.generate(np.random.default_rng(0))
            for name in compatible_algorithms(dim=1, moving_client=False):
                tr = simulate(inst, make_algorithm(name), delta=0.5)
                assert np.isfinite(tr.total_cost)
                tr.validate_against_cap(inst.online_cap(0.5))
