"""Tests for the classical Page Migration substrate."""

import numpy as np
import pytest

from repro.pagemigration import (
    CoinFlipGraph,
    CountMoveTo,
    GreedyFollow,
    MigrationNetwork,
    MoveToMinGraph,
    StaticPage,
    complete_uniform,
    grid_graph,
    offline_page_migration,
    path_graph,
    random_geometric,
    random_tree,
    simulate_page_migration,
)


class TestNetworks:
    def test_complete_uniform_distances(self):
        net = complete_uniform(5, weight=2.0)
        assert net.n == 5
        assert net.distance(0, 1) == 2.0
        assert net.distance(2, 2) == 0.0

    def test_path_graph_distances(self):
        net = path_graph(4)
        assert net.distance(0, 3) == 3.0

    def test_grid_graph(self):
        net = grid_graph(3, 3)
        assert net.n == 9
        # Opposite corners: Manhattan distance 4.
        corners = [i for i, v in enumerate(net.nodes) if v in ((0, 0), (2, 2))]
        assert net.distance(corners[0], corners[1]) == 4.0

    def test_random_tree_connected_metric(self):
        net = random_tree(10, np.random.default_rng(0))
        assert net.n == 10
        # Triangle inequality on a few triples.
        for (i, j, k) in ((0, 1, 2), (3, 4, 5), (6, 7, 8)):
            assert net.distance(i, k) <= net.distance(i, j) + net.distance(j, k) + 1e-9

    def test_random_geometric_connected(self):
        net = random_geometric(15, np.random.default_rng(1))
        assert net.n == 15

    def test_two_node_tree(self):
        net = random_tree(2, np.random.default_rng(0))
        assert net.n == 2

    def test_weber_node_minimizes(self):
        net = path_graph(5)
        # Requests at nodes 0,0,4: weber point is node 0 (majority).
        idx = net.weber_node(np.array([0, 0, 4]))
        assert idx in (0, 1)  # 0: cost 4; 1: cost 2+3=5 -> actually 0
        assert idx == 0

    def test_empty_weber_rejected(self):
        with pytest.raises(ValueError):
            path_graph(3).weber_node(np.array([], dtype=int))


class TestSimulation:
    def test_static_never_moves(self):
        net = complete_uniform(4)
        res = simulate_page_migration(net, np.array([1, 2, 3]), StaticPage(), start=0, D=2.0)
        assert res.movement == 0.0
        assert res.service == pytest.approx(3.0)
        np.testing.assert_array_equal(res.pages, [0, 0, 0, 0])

    def test_greedy_always_moves(self):
        net = complete_uniform(4)
        res = simulate_page_migration(net, np.array([1, 2]), GreedyFollow(), start=0, D=2.0)
        assert res.service == 0.0
        assert res.movement == pytest.approx(2.0 * 2.0)

    def test_invalid_request_rejected(self):
        net = complete_uniform(3)
        with pytest.raises(ValueError):
            simulate_page_migration(net, np.array([5]), StaticPage())

    def test_move_to_min_phases(self):
        net = path_graph(5)
        # D=2 -> phases of 2 requests; all requests at node 4.
        res = simulate_page_migration(net, np.array([4, 4, 4, 4]), MoveToMinGraph(),
                                      start=0, D=2.0)
        assert res.pages[-1] == 4

    def test_coinflip_deterministic_with_seed(self):
        net = complete_uniform(6)
        reqs = np.random.default_rng(0).integers(0, 6, size=30)
        r1 = simulate_page_migration(net, reqs, CoinFlipGraph(np.random.default_rng(3)), D=2.0)
        r2 = simulate_page_migration(net, reqs, CoinFlipGraph(np.random.default_rng(3)), D=2.0)
        np.testing.assert_array_equal(r1.pages, r2.pages)

    def test_count_move_to_migrates_to_hot_node(self):
        net = complete_uniform(3)
        reqs = np.array([1] * 10)
        res = simulate_page_migration(net, reqs, CountMoveTo(), start=0, D=3.0)
        assert res.pages[-1] == 1


class TestOfflineDP:
    def test_zero_cost_when_requests_at_start(self):
        net = complete_uniform(4)
        res = offline_page_migration(net, np.array([0, 0, 0]), start=0, D=2.0)
        assert res.total == 0.0

    def test_dp_beats_all_online(self):
        net = random_tree(8, np.random.default_rng(2))
        reqs = np.random.default_rng(3).integers(0, 8, size=40)
        opt = offline_page_migration(net, reqs, start=0, D=2.0)
        for alg in (StaticPage(), GreedyFollow(), MoveToMinGraph(), CountMoveTo()):
            res = simulate_page_migration(net, reqs, alg, start=0, D=2.0)
            assert opt.total <= res.total + 1e-9

    def test_dp_trajectory_cost_consistent(self):
        net = path_graph(6)
        reqs = np.random.default_rng(1).integers(0, 6, size=25)
        opt = offline_page_migration(net, reqs, start=0, D=2.0)
        assert opt.total == pytest.approx(opt.movement + opt.service)

    def test_move_to_min_within_classical_bound(self):
        """Westbrook: Move-To-Min is 7-competitive."""
        rng = np.random.default_rng(5)
        for trial in range(3):
            net = complete_uniform(10)
            reqs = rng.integers(0, 10, size=60)
            opt = offline_page_migration(net, reqs, start=0, D=4.0)
            res = simulate_page_migration(net, reqs, MoveToMinGraph(), start=0, D=4.0)
            if opt.total > 0:
                assert res.total / opt.total <= 7.0 + 1e-9

    def test_disconnected_graph_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_node(2)
        with pytest.raises(ValueError, match="connected"):
            MigrationNetwork.from_graph(g)

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ValueError):
            MigrationNetwork.from_graph(nx.Graph())
