"""Tests for the Trace container."""

import numpy as np
import pytest

from repro.core import Trace


def _filled_trace():
    tr = Trace.allocate(3, 2, algorithm="test")
    tr.positions[:] = np.arange(8, dtype=float).reshape(4, 2)
    tr.movement_costs[:] = [1.0, 2.0, 3.0]
    tr.service_costs[:] = [0.5, 0.5, 0.5]
    tr.distances_moved[:] = [0.5, 1.0, 1.5]
    tr.request_counts[:] = [1, 2, 3]
    return tr


class TestTrace:
    def test_allocate_shapes(self):
        tr = Trace.allocate(5, 3)
        assert tr.positions.shape == (6, 3)
        assert tr.movement_costs.shape == (5,)
        assert tr.length == 5 and tr.dim == 3

    def test_totals(self):
        tr = _filled_trace()
        assert tr.total_cost == pytest.approx(7.5)
        assert tr.total_movement_cost == pytest.approx(6.0)
        assert tr.total_service_cost == pytest.approx(1.5)
        assert tr.total_distance_moved == pytest.approx(3.0)

    def test_step_costs(self):
        tr = _filled_trace()
        np.testing.assert_allclose(tr.step_costs, [1.5, 2.5, 3.5])

    def test_cumulative(self):
        tr = _filled_trace()
        np.testing.assert_allclose(tr.cumulative_costs(), [1.5, 4.0, 7.5])

    def test_prefix_cost(self):
        tr = _filled_trace()
        assert tr.prefix_cost(0) == 0.0
        assert tr.prefix_cost(2) == pytest.approx(4.0)

    def test_max_step_distance(self):
        assert _filled_trace().max_step_distance() == pytest.approx(1.5)

    def test_validate_cap_ok(self):
        _filled_trace().validate_against_cap(1.5)

    def test_validate_cap_violation(self):
        with pytest.raises(ValueError, match="movement cap"):
            _filled_trace().validate_against_cap(1.0)

    def test_empty_trace(self):
        tr = Trace.allocate(0, 2)
        assert tr.total_cost == 0.0
        assert tr.max_step_distance() == 0.0
        tr.validate_against_cap(1.0)  # no-op

    def test_summary_keys(self):
        s = _filled_trace().summary()
        assert s["total"] == pytest.approx(7.5)
        assert s["steps"] == 3.0
