"""Batched engine: bit-for-bit equivalence with the scalar simulator.

The contract of :func:`repro.core.engine.simulate_batch` is that every lane
reproduces the scalar :func:`repro.core.simulator.simulate` trace *exactly*
(same float64 bits in positions and cost arrays) for every registry
algorithm under both cost models.  These tests enforce that contract, plus
the engine's validation and slicing behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    VECTORIZED,
    OnlineAlgorithm,
    ScalarBatchAdapter,
    algorithm_info,
    as_vectorized,
    available_algorithms,
    make_algorithm,
    make_vectorized,
)
from repro.core import (
    BatchTrace,
    CostModel,
    MovementCapViolation,
    MSPInstance,
    RequestSequence,
    Trace,
    simulate,
    simulate_batch,
)

# Capability metadata decides which (algorithm, model, dim) combinations
# make sense — moving-client algorithms need trajectory instances, some
# algorithms are dimension- or cost-model-restricted.
SKIP = {name for name in available_algorithms()
        if algorithm_info(name).requires_moving_client}


def _instances(dim: int, T: int, n: int, uniform: bool, seed: int = 7) -> list[MSPInstance]:
    """``n`` same-length random-walk instances, optionally ragged."""
    out = []
    for s in range(n):
        rng = np.random.default_rng(seed * 1000 + s)
        demand = np.cumsum(rng.normal(scale=0.35, size=(T, dim)), axis=0)
        if uniform:
            pts = demand[:, None, :] + rng.normal(scale=0.25, size=(T, 3, dim))
            seq = RequestSequence.from_packed(pts)
        else:
            counts = rng.integers(0, 4, size=T)
            batches = [
                demand[t] + rng.normal(scale=0.25, size=(int(c), dim))
                for t, c in enumerate(counts)
            ]
            seq = RequestSequence(batches, dim=dim)
        out.append(MSPInstance(seq, start=np.zeros(dim), D=2.5, m=1.0))
    return out


def _assert_traces_equal(batch_trace: BatchTrace, scalars: list[Trace]) -> None:
    for i, ref in enumerate(scalars):
        lane = batch_trace.trace(i)
        np.testing.assert_array_equal(lane.positions, ref.positions, err_msg=f"lane {i} positions")
        np.testing.assert_array_equal(lane.movement_costs, ref.movement_costs, err_msg=f"lane {i} movement")
        np.testing.assert_array_equal(lane.service_costs, ref.service_costs, err_msg=f"lane {i} service")
        np.testing.assert_array_equal(lane.distances_moved, ref.distances_moved, err_msg=f"lane {i} distance")
        np.testing.assert_array_equal(lane.request_counts, ref.request_counts, err_msg=f"lane {i} counts")


@pytest.mark.parametrize("name", [a for a in available_algorithms() if a not in SKIP])
@pytest.mark.parametrize("model", [CostModel.MOVE_FIRST, CostModel.ANSWER_FIRST])
@pytest.mark.parametrize("dim,uniform", [(1, False), (2, True)])
def test_batch_matches_scalar_bit_for_bit(name, model, dim, uniform):
    info = algorithm_info(name)
    if not info.supports_dim(dim):
        pytest.skip(f"{name} does not support dim={dim}")
    if not info.supports_cost_model(model):
        pytest.skip(f"{name} does not play the {model.value} model")
    instances = [inst.with_cost_model(model) for inst in _instances(dim, T=40, n=4, uniform=uniform)]
    scalars = [simulate(inst, make_algorithm(name), delta=0.5) for inst in instances]
    batch = simulate_batch(instances, name, delta=0.5)
    _assert_traces_equal(batch, scalars)


def test_batch_mixed_cost_models_per_lane():
    """Lanes may mix move-first and answer-first accounting."""
    base = _instances(2, T=30, n=4, uniform=True)
    instances = [
        inst.with_cost_model(CostModel.ANSWER_FIRST if i % 2 else CostModel.MOVE_FIRST)
        for i, inst in enumerate(base)
    ]
    scalars = [simulate(inst, make_algorithm("mtc"), delta=0.25) for inst in instances]
    batch = simulate_batch(instances, "mtc", delta=0.25)
    _assert_traces_equal(batch, scalars)


def test_batch_heterogeneous_D_and_m():
    """Per-lane D/m are honoured (different caps and movement weights)."""
    rng = np.random.default_rng(3)
    instances = []
    for i in range(3):
        pts = np.cumsum(rng.normal(scale=0.4, size=(25, 2, 2)), axis=0)
        instances.append(
            MSPInstance(RequestSequence.from_packed(pts), start=np.zeros(2),
                        D=1.5 + i, m=0.5 + 0.25 * i)
        )
    scalars = [simulate(inst, make_algorithm("greedy-centroid"), delta=0.5) for inst in instances]
    batch = simulate_batch(instances, "greedy-centroid", delta=0.5)
    _assert_traces_equal(batch, scalars)


def test_batch_trace_slicing_and_totals():
    instances = _instances(2, T=20, n=5, uniform=True)
    batch = simulate_batch(instances, "static")
    assert batch.batch_size == 5
    assert batch.length == 20
    assert batch.dim == 2
    totals = batch.total_costs
    for i in range(5):
        tr = batch.trace(i)
        assert isinstance(tr, Trace)
        assert tr.total_cost == pytest.approx(float(totals[i]))
        # slices are copies, not views into the batch arrays
        assert not np.shares_memory(tr.positions, batch.positions)
    assert len(batch.traces()) == 5
    with pytest.raises(IndexError):
        batch.trace(9)


def test_batch_rejects_mismatched_instances():
    a = _instances(1, T=10, n=1, uniform=True)[0]
    b = _instances(1, T=12, n=1, uniform=True)[0]
    with pytest.raises(ValueError, match="length"):
        simulate_batch([a, b], "static")
    c = _instances(2, T=10, n=1, uniform=True)[0]
    with pytest.raises(ValueError, match="dimension"):
        simulate_batch([a, c], "static")
    with pytest.raises(ValueError, match="at least one"):
        simulate_batch([], "static")


def test_batch_cap_violation_names_lane():
    class Cheater(OnlineAlgorithm):
        name = "cheater"

        def decide(self, t, batch):
            return self.position + 100.0

    instances = _instances(1, T=5, n=3, uniform=True)
    with pytest.raises(MovementCapViolation, match=r"lane 0"):
        simulate_batch(instances, Cheater)


def test_as_vectorized_rejects_scalar_instance():
    with pytest.raises(TypeError, match="factory"):
        as_vectorized(make_algorithm("mtc"))


def test_make_vectorized_unknown_name():
    with pytest.raises(KeyError, match="unknown algorithm"):
        make_vectorized("definitely-not-registered")


def test_vectorized_names_mirror_scalar_names():
    for name in VECTORIZED:
        instances = _instances(1, T=4, n=2, uniform=True)
        vec = make_vectorized(name)
        vec.reset_batch(instances, np.ones(2))
        assert vec.name == make_algorithm(name).name


def test_scalar_adapter_covers_unvectorized_algorithms():
    vec = make_vectorized("retrospective")
    assert isinstance(vec, ScalarBatchAdapter)
    instances = _instances(2, T=15, n=3, uniform=True)
    scalars = [simulate(inst, make_algorithm("retrospective"), delta=0.5) for inst in instances]
    _assert_traces_equal(simulate_batch(instances, vec, delta=0.5), scalars)


def test_single_lane_batch_equals_scalar():
    """B=1 is a degenerate but legal batch."""
    inst = _instances(2, T=30, n=1, uniform=True)
    ref = simulate(inst[0], make_algorithm("mtc"), delta=0.5)
    _assert_traces_equal(simulate_batch(inst, "mtc", delta=0.5), [ref])


# -- step gathering (the pre-assembled cross-lane request views) -----------


def _reference_points(instances, t):
    """The (B, r, d) stack a step should expose, or None when ragged."""
    batches = [inst.requests[t] for inst in instances]
    counts = {len(b) for b in batches}
    if counts == {0} or len(counts) != 1:
        return None
    return np.stack([b.points for b in batches])


@pytest.mark.parametrize("uniform", [True, False])
def test_gather_steps_points_match_per_lane_views(uniform):
    """Regression: the ragged-path hoist must index per-lane points by step.

    Every step whose lanes agree on a positive request count must expose
    exactly ``stack(lane[t].points)``; mismatched or empty steps expose
    ``None`` and fall back to per-lane views.
    """
    from repro.core.engine import _gather_steps

    instances = _instances(2, T=25, n=4, uniform=uniform, seed=11)
    steps = _gather_steps(instances, 25)
    assert len(steps) == 25
    for t, step in enumerate(steps):
        expected = _reference_points(instances, t)
        np.testing.assert_array_equal(
            step.counts, [len(inst.requests[t]) for inst in instances])
        if expected is None:
            assert step.points is None
        else:
            np.testing.assert_array_equal(step.points, expected,
                                          err_msg=f"step {t}")


def test_gather_steps_mismatched_uniform_counts_stay_ragged():
    """Lanes individually packed but with different r must not mega-stack."""
    from repro.core.engine import _gather_steps, _packed_stack

    rng = np.random.default_rng(5)
    seqs = []
    for r in (2, 3):
        pts = np.cumsum(rng.normal(scale=0.3, size=(10, r, 2)), axis=0)
        seqs.append(RequestSequence.from_packed(pts))
    instances = [MSPInstance(seq, start=np.zeros(2), D=2.0, m=1.0)
                 for seq in seqs]
    assert _packed_stack(seqs) is None
    for t, step in enumerate(_gather_steps(instances, 10)):
        assert step.points is None  # counts differ: 2 vs 3 at every step
        np.testing.assert_array_equal(step.counts, [2, 3])
        for lane in range(2):
            np.testing.assert_array_equal(
                step.batch(lane).points, instances[lane].requests[t].points)
