"""Tests for the declarative experiment orchestrator.

Synthetic cell functions live at module level so the orchestrator can
resolve them by dotted path (and worker processes can import them); they
drop marker files so the tests can count real executions vs cache hits.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.store import ResultsStore
from repro.experiments import EXPERIMENTS, build_specs, run_all, run_all_detailed
from repro.experiments.orchestrator import (
    SweepSpec,
    WorkUnit,
    execute,
    execute_spec,
    grid,
    legacy_spec,
)
from repro.experiments.runner import ExperimentResult, sweep_seeds

_MODULE = "test_orchestrator"


def _mark(workdir: str, name: str) -> None:
    Path(workdir, name.replace("/", "_")).touch()


def cell_base(value: float, workdir: str) -> dict:
    _mark(workdir, f"base-{value}")
    return {"value": value, "arr": np.arange(3) * value}


def cell_double(key: str, workdir: str, deps: dict) -> dict:
    _mark(workdir, f"double-{key}")
    return {"value": 2 * deps[key]["value"]}


def finalize_sum(results: dict, scale: float, seed: int) -> ExperimentResult:
    total = sum(v["value"] for k, v in results.items() if k.startswith("double/"))
    return ExperimentResult("EX", "synthetic", ["total"], [[total]],
                            notes=["criterion: synthetic"], passed=True)


def cell_soft_source(value: float, workdir: str) -> dict:
    _mark(workdir, f"softsrc-{value}")
    return {"value": value}


def cell_soft_consumer(value: float, workdir: str, deps: dict | None = None) -> dict:
    """Same payload with or without the soft dep — the soft-dep contract."""
    _mark(workdir, f"softcons-{value}")
    base = deps["src"]["value"] if deps else value
    return {"value": 10 * base}


def finalize_first(results: dict, scale: float, seed: int) -> ExperimentResult:
    value = next(iter(results.values()))["value"]
    return ExperimentResult("EX", "soft", ["v"], [[value]], notes=["n"], passed=True)


def _spec(workdir: str, values=(1.0, 2.0, 3.0)) -> SweepSpec:
    units = []
    for v in values:
        units.append(WorkUnit(f"base/{v}", f"{_MODULE}:cell_base",
                              {"value": v, "workdir": workdir}))
        units.append(WorkUnit(f"double/{v}", f"{_MODULE}:cell_double",
                              {"key": f"base/{v}", "workdir": workdir},
                              deps=(f"base/{v}",)))
    return SweepSpec("EX", tuple(units), f"{_MODULE}:finalize_sum")


class TestGrid:
    def test_product_in_declaration_order(self):
        cells = grid(a=[1, 2], b=["x", "y"])
        assert cells == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_single_axis(self):
        assert grid(d=[0.5]) == [{"d": 0.5}]


class TestExecuteInline:
    def test_deps_flow_and_finalize(self, tmp_path):
        result = execute_spec(_spec(str(tmp_path)))
        assert result.rows == [[2.0 * (1 + 2 + 3)]]
        assert len(list(tmp_path.iterdir())) == 6

    def test_unknown_dep_rejected(self):
        spec = SweepSpec("EX", (WorkUnit("a", f"{_MODULE}:cell_base", {"value": 1, "workdir": "."},
                                         deps=("missing",)),), f"{_MODULE}:finalize_sum")
        with pytest.raises(KeyError, match="unknown unit"):
            execute([spec])

    def test_duplicate_keys_rejected(self):
        unit = WorkUnit("a", f"{_MODULE}:cell_base", {"value": 1, "workdir": "."})
        spec = SweepSpec("EX", (unit, unit), f"{_MODULE}:finalize_sum")
        with pytest.raises(ValueError, match="duplicate"):
            execute([spec])

    def test_cycle_rejected(self):
        units = (
            WorkUnit("a", f"{_MODULE}:cell_double", {"key": "b", "workdir": "."}, deps=("b",)),
            WorkUnit("b", f"{_MODULE}:cell_double", {"key": "a", "workdir": "."}, deps=("a",)),
        )
        with pytest.raises(ValueError, match="cycle"):
            execute([SweepSpec("EX", units, f"{_MODULE}:finalize_sum")])


class TestStoreCaching:
    def test_cache_hit_skips_recompute(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        store = ResultsStore(tmp_path / "store")
        report1 = execute([_spec(str(work))], store=store)
        assert (report1.cached, report1.computed) == (0, 6)
        n_markers = len(list(work.iterdir()))

        report2 = execute([_spec(str(work))], store=store)
        assert (report2.cached, report2.computed) == (6, 0)
        assert len(list(work.iterdir())) == n_markers  # nothing re-ran
        assert report2.results[0].render() == report1.results[0].render()

    def test_param_change_is_cache_miss(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        store = ResultsStore(tmp_path / "store")
        execute([_spec(str(work), values=(1.0,))], store=store)
        report = execute([_spec(str(work), values=(4.0,))], store=store)
        assert report.cached == 0 and report.computed == 2

    def test_resume_after_partial_run(self, tmp_path):
        """Simulate an interrupted grid: drop some cells, re-execute."""
        work = tmp_path / "work"
        work.mkdir()
        store = ResultsStore(tmp_path / "store")
        execute([_spec(str(work))], store=store)

        # "Interrupt": remove two of the six persisted cells.
        entries = sorted(store.root.glob("*.npz"))
        for path in entries[:2]:
            path.unlink()

        for marker in work.iterdir():
            marker.unlink()
        report = execute([_spec(str(work))], store=store)
        assert report.computed == 2 and report.cached == 4
        assert len(list(work.iterdir())) == 2  # only the missing cells re-ran

    def test_rerun_recomputes_everything(self, tmp_path):
        work = tmp_path / "work"
        work.mkdir()
        store = ResultsStore(tmp_path / "store")
        execute([_spec(str(work))], store=store)
        report = execute([_spec(str(work))], store=store, rerun=True)
        assert report.cached == 0 and report.computed == 6


class TestParallelExecution:
    def test_jobs2_synthetic_identical(self, tmp_path):
        work1 = tmp_path / "w1"
        work1.mkdir()
        work2 = tmp_path / "w2"
        work2.mkdir()
        r1 = execute([_spec(str(work1))], jobs=1)
        r2 = execute([_spec(str(work2))], jobs=2)
        assert r1.results[0].render() == r2.results[0].render()

    def test_jobs2_experiment_identical_and_store_parity(self, tmp_path):
        """E4 through 2 worker processes == E4 inline, cell for cell."""
        store1 = ResultsStore(tmp_path / "s1")
        store2 = ResultsStore(tmp_path / "s2")
        r1 = run_all_detailed(["E4"], scale=0.1, seed=3, jobs=1, store=store1)
        r2 = run_all_detailed(["E4"], scale=0.1, seed=3, jobs=2, store=store2)
        assert r1.results[0].render() == r2.results[0].render()
        # identical content addresses and identical stored bytes-level payloads
        assert sorted(p.name for p in store1.root.glob("*.npz")) == \
               sorted(p.name for p in store2.root.glob("*.npz"))


class TestSoftDeps:
    def _soft_spec(self, workdir: str, with_dep: bool) -> SweepSpec:
        units = []
        consumer_kwargs = {}
        if with_dep:
            units.append(WorkUnit("src", f"{_MODULE}:cell_soft_source",
                                  {"value": 7.0, "workdir": workdir}, ephemeral=True))
            consumer_kwargs["soft_deps"] = ("src",)
        units.append(WorkUnit("consume", f"{_MODULE}:cell_soft_consumer",
                              {"value": 7.0, "workdir": workdir}, **consumer_kwargs))
        return SweepSpec("EX", tuple(units), f"{_MODULE}:finalize_first")

    def test_soft_dep_payload_delivered(self, tmp_path):
        report = execute([self._soft_spec(str(tmp_path), with_dep=True)])
        assert report.results[0].rows == [[70.0]]
        assert (tmp_path / "softsrc-7.0").exists()

    def test_soft_deps_do_not_change_the_address(self, tmp_path):
        """A cell computed with a soft dep is a cache hit for one without."""
        store = ResultsStore(tmp_path / "store")
        execute([self._soft_spec(str(tmp_path), with_dep=True)], store=store)
        report = execute([self._soft_spec(str(tmp_path), with_dep=False)], store=store)
        assert (report.computed, report.cached) == (0, 1)

    def test_ephemeral_excluded_from_finalize(self, tmp_path):
        report = execute([self._soft_spec(str(tmp_path), with_dep=True)])
        # finalize_first saw only the consumer (rows came out of its payload)
        assert report.results[0].rows == [[70.0]]

    def test_ephemeral_skipped_when_consumers_cached(self, tmp_path):
        """A warm sweep must not re-derive shared ephemeral cells."""
        store = ResultsStore(tmp_path / "store")
        # Seed the store through the dep-free variant: only the consumer lands.
        execute([self._soft_spec(str(tmp_path), with_dep=False)], store=store)
        (tmp_path / "softcons-7.0").unlink()
        report = execute([self._soft_spec(str(tmp_path), with_dep=True)], store=store)
        assert (report.computed, report.cached, report.skipped) == (0, 1, 1)
        assert not (tmp_path / "softsrc-7.0").exists()
        assert not (tmp_path / "softcons-7.0").exists()

    def test_soft_dep_missing_unit_rejected(self, tmp_path):
        spec = SweepSpec("EX", (WorkUnit("consume", f"{_MODULE}:cell_soft_consumer",
                                         {"value": 1.0, "workdir": str(tmp_path)},
                                         soft_deps=("nope",)),),
                         f"{_MODULE}:finalize_first")
        with pytest.raises(KeyError, match="unknown unit"):
            execute([spec])


class TestLegacyWrapping:
    def test_legacy_spec_roundtrip(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        spec = legacy_spec("E9", scale=0.1, seed=0)
        direct = EXPERIMENTS["E9"](scale=0.1, seed=0)
        report = execute([spec], store=store)
        assert report.results[0].render() == direct.render()
        report2 = execute([legacy_spec("E9", scale=0.1, seed=0)], store=store)
        assert report2.cached == 1 and report2.computed == 0
        assert report2.results[0].render() == direct.render()

    def test_build_specs_all_multi_cell(self):
        """Every experiment is a real sweep now — no one-cell wrappers left."""
        specs = build_specs(["E4", "E9"], scale=0.1, seed=0)
        assert specs[0].experiment_id == "E4" and len(specs[0].units) > 1
        assert specs[1].experiment_id == "E9" and len(specs[1].units) > 1

    def test_run_all_unknown_id_still_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_all(["E99"], scale=0.01)

    def test_duplicate_ids_run_twice(self, tmp_path):
        """`--ids E9 E9` must behave like the old loop: two results."""
        store = ResultsStore(tmp_path / "store")
        report = run_all_detailed(["E9", "E9"], scale=0.1, seed=0, store=store)
        assert len(report.results) == 2
        assert report.results[0].render() == report.results[1].render()
        # second spec's cells share the first's content addresses: pure cache hits
        assert report.computed == report.cached > 0


class TestSweepSeeds:
    def test_default_stride(self):
        assert sweep_seeds(7, 3) == [700, 701, 702]

    def test_custom_stride(self):
        assert sweep_seeds(2, 2, stride=1000) == [2000, 2001]

    def test_zero_count(self):
        assert sweep_seeds(5, 0) == []
