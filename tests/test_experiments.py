"""Tests for the experiment harness.

Each experiment must run end-to-end at tiny scale and return a well-formed
result; the fast, deterministic ones additionally assert ``passed`` (the
full-scale criteria are exercised by the benchmark suite).
"""

import pytest

from repro.experiments import EXPERIMENTS, run_all
from repro.experiments.runner import ExperimentResult, scaled


class TestRunnerHelpers:
    def test_scaled_floor(self):
        assert scaled(10, 0.01) == 1
        assert scaled(10, 0.01, minimum=3) == 3

    def test_scaled_up(self):
        assert scaled(10, 2.0) == 20

    def test_render_includes_notes_and_verdict(self):
        res = ExperimentResult("EX", "title", ["a"], [[1.0]], notes=["hello"], passed=True)
        out = res.render()
        assert "EX" in out and "hello" in out and "YES" in out

    def test_render_failure_verdict(self):
        res = ExperimentResult("EX", "t", ["a"], [[1]], passed=False)
        assert "NO" in res.render()

    def test_csv_roundtrip(self):
        res = ExperimentResult("EX", "t", ["a", "b"], [[1, 2]])
        assert res.csv().splitlines()[1] == "1,2"


class TestExperimentRegistry:
    def test_all_seventeen_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 18)}

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_all(["E99"], scale=0.01)


# Scale used for per-experiment smoke tests: small but meaningful.
SMOKE = 0.15


@pytest.mark.parametrize("eid", sorted(EXPERIMENTS, key=lambda e: int(e[1:])))
def test_experiment_smoke(eid):
    """Every experiment runs at tiny scale and yields a coherent table."""
    res = EXPERIMENTS[eid](scale=SMOKE, seed=1)
    assert res.experiment_id == eid
    assert res.rows, "experiment produced no rows"
    for row in res.rows:
        assert len(row) == len(res.headers)
    assert res.notes, "experiment must state its reproduction criterion"


class TestDeterministicCriteria:
    """Fast experiments whose pass criteria hold even at small scale."""

    def test_e3_answer_first_shape(self):
        res = EXPERIMENTS["E3"](scale=0.2, seed=0)
        assert res.passed, res.render()

    def test_e9_lemma6(self):
        res = EXPERIMENTS["E9"](scale=0.1, seed=0)
        assert res.passed, res.render()

    def test_e10_lemma5(self):
        res = EXPERIMENTS["E10"](scale=0.2, seed=0)
        assert res.passed, res.render()

    def test_e11_potential(self):
        res = EXPERIMENTS["E11"](scale=0.2, seed=0)
        assert res.passed, res.render()
