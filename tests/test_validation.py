"""Tests for movement-cap validation."""

import numpy as np
import pytest

from repro.core.validation import MovementCapViolation, cap_tolerance, check_move


class TestCheckMove:
    def test_within_cap_returns_distance(self):
        d = check_move(0, np.zeros(2), np.array([0.3, 0.4]), cap=1.0)
        assert d == pytest.approx(0.5)

    def test_exactly_at_cap_ok(self):
        check_move(0, np.zeros(1), np.array([1.0]), cap=1.0)

    def test_tiny_overshoot_tolerated(self):
        # Floating-point slop from direction arithmetic must not raise.
        check_move(0, np.zeros(1), np.array([1.0 + 1e-12]), cap=1.0)

    def test_violation_raises_with_details(self):
        with pytest.raises(MovementCapViolation) as exc:
            check_move(7, np.zeros(1), np.array([2.0]), cap=1.0, algorithm="alg")
        err = exc.value
        assert err.step == 7 and err.cap == 1.0
        assert err.moved == pytest.approx(2.0)
        assert "alg" in str(err)

    def test_zero_move_always_ok(self):
        assert check_move(0, np.ones(3), np.ones(3), cap=0.0) == 0.0


class TestCapTolerance:
    def test_scales_with_cap(self):
        assert cap_tolerance(1000.0) > cap_tolerance(1.0)

    def test_positive_for_zero_cap(self):
        assert cap_tolerance(0.0) > 0.0
