"""Tests for reprolint (:mod:`repro.devtools.lint`).

Every rule has a paired good/bad fixture under ``tests/data/lint/``: the
bad snippet must produce findings, the good one must be clean — so each
contract is demonstrated by an example that fails before its fix lands.
On top of that: suppression-pragma semantics (reason mandatory, unknown
rules flagged), the ``--json`` schema, CLI exit codes, ``--list``, and
the self-gate — the repository's own ``src``/``tests``/``benchmarks``
trees lint clean, which is exactly what the CI ``invariant-lint`` job
asserts.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.lint import (
    JSON_SCHEMA_VERSION,
    RULES,
    LintRule,
    available_rules,
    register_rule,
    rule_info,
    run_lint,
)

FIXTURES = Path(__file__).resolve().parent / "data" / "lint"
REPO_ROOT = Path(__file__).resolve().parent.parent

ALL_RULES = ("API001", "CLK001", "DET001", "IO001", "MET001", "REG001",
             "RNG001", "SPEC001")

#: In-scope destination for each per-module rule's fixture snippets —
#: the scaffold mirrors the real tree so path-scoped rules apply.
PLACEMENTS = {
    "RNG001": "src/repro/workloads/fixture_mod.py",
    "CLK001": "src/repro/experiments/executors/fixture_mod.py",
    "IO001": "src/repro/experiments/executors/fixture_mod.py",
    "DET001": "src/repro/analysis/fixture_mod.py",
    "API001": "src/repro/api/surface_mod.py",
    "MET001": "src/repro/algorithms/fixture_mod.py",
}


def place(tmp_path: Path, fixture: str, relpath: str) -> Path:
    dst = tmp_path / relpath
    dst.parent.mkdir(parents=True, exist_ok=True)
    dst.write_text((FIXTURES / fixture).read_text())
    return dst


def lint_scaffold(tmp_path: Path, select=None):
    return run_lint([tmp_path / "src"], root=tmp_path, select=select)


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(PLACEMENTS))
    def test_bad_fixture_fires(self, tmp_path, rule):
        place(tmp_path, f"{rule.lower()}_bad.py", PLACEMENTS[rule])
        report = lint_scaffold(tmp_path, select=[rule])
        assert report.findings, f"{rule} bad fixture produced no findings"
        assert {f.rule for f in report.findings} == {rule}

    @pytest.mark.parametrize("rule", sorted(PLACEMENTS))
    def test_good_fixture_clean(self, tmp_path, rule):
        place(tmp_path, f"{rule.lower()}_good.py", PLACEMENTS[rule])
        report = lint_scaffold(tmp_path, select=[rule])
        assert report.findings == [], [f.render() for f in report.findings]

    def test_rng001_flags_both_shapes(self, tmp_path):
        place(tmp_path, "rng001_bad.py", PLACEMENTS["RNG001"])
        report = lint_scaffold(tmp_path, select=["RNG001"])
        messages = " ".join(f.message for f in report.findings)
        assert "seedless" in messages and "legacy" in messages
        assert len(report.findings) >= 3  # default_rng() + seed + rand

    def test_rng001_out_of_scope_tests_tree(self, tmp_path):
        # Tests may use seedless rng freely: the rule only guards src/.
        dst = tmp_path / "tests" / "test_something.py"
        dst.parent.mkdir(parents=True)
        dst.write_text((FIXTURES / "rng001_bad.py").read_text())
        report = run_lint([tmp_path / "tests"], root=tmp_path, select=["RNG001"])
        assert report.findings == []

    def test_met001_flags_both_shapes(self, tmp_path):
        place(tmp_path, "met001_bad.py", PLACEMENTS["MET001"])
        report = lint_scaffold(tmp_path, select=["MET001"])
        assert len(report.findings) == 2  # dotted np.linalg.norm + bare alias

    def test_met001_exempts_metric_module(self, tmp_path):
        # The metric layer itself legitimately spells out l2 arithmetic.
        place(tmp_path, "met001_bad.py", "src/repro/core/metric.py")
        report = lint_scaffold(tmp_path, select=["MET001"])
        assert report.findings == []

    def test_met001_out_of_scope_analysis_tree(self, tmp_path):
        # Analysis geometry is explicitly Euclidean; the rule only guards
        # the trees that execute under a caller-chosen metric.
        place(tmp_path, "met001_bad.py", "src/repro/analysis/fixture_mod.py")
        report = lint_scaffold(tmp_path, select=["MET001"])
        assert report.findings == []

    def test_det001_requires_hash_context(self, tmp_path):
        # json.dumps without sort_keys is fine outside digest scopes.
        dst = tmp_path / "src" / "mod.py"
        dst.parent.mkdir(parents=True)
        dst.write_text("import json\n\ndef render(d):\n    return json.dumps(d)\n")
        report = lint_scaffold(tmp_path, select=["DET001"])
        assert report.findings == []

    def test_clk001_out_of_scope_module(self, tmp_path):
        # Wall-clock reads outside the digest/store/spool layers pass.
        place(tmp_path, "clk001_bad.py", "src/repro/analysis/fixture_mod.py")
        report = lint_scaffold(tmp_path, select=["CLK001"])
        assert report.findings == []


class TestReg001:
    def test_bad_tree_fires_every_check(self):
        root = FIXTURES / "reg001_bad"
        report = run_lint([root / "src", root / "tests"], root=root,
                          select=["REG001"])
        messages = " ".join(f.message for f in report.findings)
        assert "'phantom'" in messages          # advertised, not registered
        assert "'ghost'" in messages            # dead kernel
        assert "'orphan-entry'" in messages     # no ALGORITHMS entry
        assert "never referenced" in messages   # parity suite misses 'ghost'
        assert all(f.rule == "REG001" for f in report.findings)
        assert len(report.findings) >= 4

    def test_good_tree_clean(self):
        root = FIXTURES / "reg001_good"
        report = run_lint([root / "src", root / "tests"], root=root,
                          select=["REG001"])
        assert report.findings == [], [f.render() for f in report.findings]

    def test_parity_module_loaded_on_demand(self):
        # Linting only src/ must still verify the parity tests: the
        # project rule pulls tests/test_kernels.py in by relative path.
        root = FIXTURES / "reg001_bad"
        report = run_lint([root / "src"], root=root, select=["REG001"])
        assert any("never referenced" in f.message for f in report.findings)

    def test_skips_foreign_trees(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "other.py").write_text("X = 1\n")
        report = lint_scaffold(tmp_path, select=["REG001"])
        assert report.findings == []


class TestSpec001:
    def test_bad_tree_fires_every_check(self):
        root = FIXTURES / "spec001_bad"
        report = run_lint([root / "src"], root=root, select=["SPEC001"])
        messages = " ".join(f.message for f in report.findings)
        assert "duplicate SPECS key 'E1'" in messages
        assert "SPECS declares 'E4'" in messages       # spec without runner
        assert "EXPERIMENTS declares 'E3'" in messages  # runner without spec
        assert "already declared" in messages           # cross-module id clash
        assert all(f.rule == "SPEC001" for f in report.findings)
        assert len(report.findings) >= 4

    def test_good_tree_clean(self):
        root = FIXTURES / "spec001_good"
        report = run_lint([root / "src"], root=root, select=["SPEC001"])
        assert report.findings == [], [f.render() for f in report.findings]

    def test_in_module_restatement_allowed(self):
        # e2_second builds ExperimentSpec(experiment_id="E2") twice; a
        # repeat inside the owning module must not be flagged.
        root = FIXTURES / "spec001_good"
        report = run_lint([root / "src"], root=root, select=["SPEC001"])
        assert not any("'E2'" in f.message for f in report.findings)

    def test_skips_foreign_trees(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "other.py").write_text("X = 1\n")
        report = lint_scaffold(tmp_path, select=["SPEC001"])
        assert report.findings == []


class TestSuppressions:
    def _bad_line(self, pragma: str) -> str:
        return (
            "import numpy as np\n\n"
            "def build():\n"
            f"    return np.random.default_rng()  {pragma}\n"
        )

    def test_pragma_with_reason_suppresses(self, tmp_path):
        dst = tmp_path / "src" / "mod.py"
        dst.parent.mkdir(parents=True)
        dst.write_text(self._bad_line(
            "# reprolint: allow[RNG001] reason=entropy wanted here"))
        report = lint_scaffold(tmp_path, select=["RNG001"])
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["RNG001"]

    def test_pragma_without_reason_is_its_own_finding(self, tmp_path):
        dst = tmp_path / "src" / "mod.py"
        dst.parent.mkdir(parents=True)
        dst.write_text(self._bad_line("# reprolint: allow[RNG001]"))
        report = lint_scaffold(tmp_path, select=["RNG001"])
        assert [f.rule for f in report.findings] == ["SUP001"]
        assert [f.rule for f in report.suppressed] == ["RNG001"]

    def test_pragma_unknown_rule_flagged_and_inert(self, tmp_path):
        dst = tmp_path / "src" / "mod.py"
        dst.parent.mkdir(parents=True)
        dst.write_text(self._bad_line(
            "# reprolint: allow[RNG999] reason=typo in the rule name"))
        report = lint_scaffold(tmp_path, select=["RNG001"])
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["RNG001", "SUP002"]  # nothing suppressed

    def test_pragma_other_line_does_not_suppress(self, tmp_path):
        dst = tmp_path / "src" / "mod.py"
        dst.parent.mkdir(parents=True)
        dst.write_text(
            "import numpy as np\n"
            "# reprolint: allow[RNG001] reason=wrong line\n"
            "RNG = np.random.default_rng()\n"
        )
        report = lint_scaffold(tmp_path, select=["RNG001"])
        assert [f.rule for f in report.findings] == ["RNG001"]

    def test_pragma_inside_string_ignored(self, tmp_path):
        dst = tmp_path / "src" / "mod.py"
        dst.parent.mkdir(parents=True)
        dst.write_text(
            'DOC = "# reprolint: allow[RNG001] reason=not a comment"\n'
        )
        report = lint_scaffold(tmp_path, select=["RNG001"])
        assert report.findings == [] and report.suppressed == []

    def test_wildcard_pragma(self, tmp_path):
        dst = tmp_path / "src" / "mod.py"
        dst.parent.mkdir(parents=True)
        dst.write_text(self._bad_line("# reprolint: allow[*] reason=demo"))
        report = lint_scaffold(tmp_path, select=["RNG001"])
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["RNG001"]


class TestRunnerAndSchema:
    def test_unparseable_file_is_a_finding(self, tmp_path):
        dst = tmp_path / "src" / "broken.py"
        dst.parent.mkdir(parents=True)
        dst.write_text("def broken(:\n")
        report = lint_scaffold(tmp_path)
        assert [f.rule for f in report.findings] == ["LNT000"]

    def test_json_schema(self, tmp_path):
        place(tmp_path, "det001_bad.py", "src/mod.py")
        report = lint_scaffold(tmp_path, select=["DET001"])
        data = report.to_json_dict()
        assert data["version"] == JSON_SCHEMA_VERSION
        assert data["rules"] == ["DET001"]
        assert data["files"] == 1
        assert data["counts"] == {
            "findings": len(data["findings"]),
            "suppressed": len(data["suppressed"]),
        }
        for entry in data["findings"]:
            assert sorted(entry) == ["col", "line", "message", "path", "rule"]
            assert entry["path"] == "src/mod.py"
        # Deterministic output: two runs render byte-identically.
        again = lint_scaffold(tmp_path, select=["DET001"])
        assert again.to_json() == report.to_json()

    def test_unknown_select_raises(self, tmp_path):
        (tmp_path / "src").mkdir()
        with pytest.raises(KeyError):
            run_lint([tmp_path / "src"], root=tmp_path, select=["NOPE001"])

    def test_registry_rejects_duplicates(self):
        name = sorted(RULES)[0]
        with pytest.raises(KeyError):
            register_rule(LintRule(name=name, summary="dup", check=lambda m, i: []))

    def test_rule_info_unknown(self):
        with pytest.raises(KeyError):
            rule_info("XXX000")

    def test_available_rules(self):
        assert tuple(available_rules()) == ALL_RULES


class TestCli:
    def test_lint_clean_exit_zero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        place(tmp_path, "det001_good.py", "src/mod.py")
        assert main(["lint", "src"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_findings_exit_one(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        place(tmp_path, "det001_bad.py", "src/mod.py")
        assert main(["lint", "src"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "src/mod.py:" in out

    def test_lint_json_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        place(tmp_path, "det001_bad.py", "src/mod.py")
        assert main(["lint", "src", "--json"]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["version"] == JSON_SCHEMA_VERSION
        assert data["counts"]["findings"] >= 1

    def test_lint_list(self, capsys):
        assert main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_lint_select(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        place(tmp_path, "det001_bad.py", "src/mod.py")
        assert main(["lint", "src", "--select", "RNG001"]) == 0
        assert main(["lint", "src", "--select", "RNG001,DET001"]) == 1

    def test_lint_bad_select_exit_two(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "src").mkdir()
        assert main(["lint", "src", "--select", "NOPE001"]) == 2
        assert "bad --select" in capsys.readouterr().err

    def test_lint_missing_path_exit_two(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "no-such-dir"]) == 2
        assert "no such path" in capsys.readouterr().err


class TestSelfGate:
    """The repository's own tree holds every invariant — the CI gate."""

    def test_src_tests_benchmarks_clean(self):
        report = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
        )
        assert report.findings == [], "\n" + "\n".join(
            f.render() for f in report.findings
        )

    def test_every_suppression_in_tree_has_reason(self):
        report = run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
        assert not any(f.rule == "SUP001" for f in report.findings)

    def test_no_seedless_rng_left_in_src(self):
        report = run_lint([REPO_ROOT / "src"], root=REPO_ROOT, select=["RNG001"])
        assert report.findings == []


class TestSeededFallbacks:
    """The RNG001 fixes: unseeded entry points are now deterministic."""

    def test_coinflip_default_rng_deterministic(self):
        from repro.algorithms import CoinFlip

        a, b = CoinFlip(), CoinFlip()
        assert a.rng.random() == b.rng.random()

    def test_facility_default_rng_deterministic(self):
        from repro.extensions.facility import MeyersonStatic

        a, b = MeyersonStatic(), MeyersonStatic()
        assert a.rng.random() == b.rng.random()

    def test_pagemigration_coinflip_default_rng_deterministic(self):
        from repro.pagemigration.algorithms import CoinFlipGraph

        a, b = CoinFlipGraph(), CoinFlipGraph()
        assert a.rng.random() == b.rng.random()

    def test_lemma6_sampling_reproducible(self):
        from repro.analysis.lemma6 import sample_lemma6

        first = sample_lemma6(delta=0.5, n_samples=200)
        second = sample_lemma6(delta=0.5, n_samples=200)
        assert first.min_slack == second.min_slack
        assert first.min_slack_relative == second.min_slack_relative
