"""The serve front end (:class:`repro.serve.server.ServeServer`).

Protocol semantics in-process — open idempotency, ``at``-indexed replay,
error replies, checkpoint cadence, close/graduation, resume — plus the
crash drill the CI ``serve-smoke`` job scripts: a real ``mobile-server
serve`` subprocess SIGKILLed mid-stream, resumed with ``--resume``, its
replayed trace byte-diffed against an uninterrupted inline batch run.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.core.store import ResultsStore
from repro.serve import (
    batch_reference,
    final_result_digest,
    load_manifest,
    load_session_checkpoint,
    session_checkpoint_digest,
    trace_json,
)
from repro.serve.server import ServeServer

_SRC = str(Path(__file__).resolve().parent.parent / "src")

SPEC = {"algorithm": "mtc", "dim": 2, "start": [0.0, 0.0],
        "D": 1.5, "m": 0.7, "cost_model": "move-first", "delta": 0.25}


def spec_history(steps=20, seed=5, dim=2):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(int(rng.integers(0, 4)), dim)).tolist()
            for _ in range(steps)]


def make_server(tmp_path, **kw):
    return ServeServer(tmp_path / "store", server_id="srv", **kw)


class TestProtocol:
    def test_open_feed_state_trace_close(self, tmp_path):
        server = make_server(tmp_path)
        reply = server.handle({"op": "open", "session": "s1", "spec": SPEC})
        assert reply == {"ok": True, "session": "s1", "steps": 0, "existing": False}

        history = spec_history(6)
        for t, points in enumerate(history):
            reply = server.handle({"op": "feed", "session": "s1",
                                   "points": points, "at": t})
            assert reply["ok"] and reply["applied"] == 1 and reply["steps"] == t + 1

        state = server.handle({"op": "state", "session": "s1"})
        assert state["ok"] and state["steps"] == 6 and not state["closed"]

        trace = server.handle({"op": "trace", "session": "s1"})["trace"]
        from repro.serve import SessionSpec
        reference = batch_reference(SessionSpec.from_dict(SPEC),
                                    [np.asarray(p).reshape(-1, 2) for p in history])
        assert json.dumps(trace, sort_keys=True, separators=(",", ":")) == \
            trace_json(reference)

        closed = server.handle({"op": "close", "session": "s1"})
        assert closed["ok"] and closed["final"] and closed["closed"]
        assert closed["digest"] == final_result_digest(
            SessionSpec.from_dict(SPEC), closed["stream_digest"])
        assert server.store.load_or_none(closed["digest"]) is not None

    def test_open_is_idempotent_mismatch_is_error(self, tmp_path):
        server = make_server(tmp_path)
        server.handle({"op": "open", "session": "s1", "spec": SPEC})
        again = server.handle({"op": "open", "session": "s1", "spec": SPEC})
        assert again == {"ok": True, "session": "s1", "steps": 0, "existing": True}
        other = dict(SPEC, delta=0.5)
        reply = server.handle({"op": "open", "session": "s1", "spec": other})
        assert not reply["ok"] and "different spec" in reply["error"]

    def test_duplicate_feed_acknowledged_gap_is_error(self, tmp_path):
        server = make_server(tmp_path)
        server.handle({"op": "open", "session": "s1", "spec": SPEC})
        pts = [[0.5, 0.5]]
        first = server.handle({"op": "feed", "session": "s1", "points": pts, "at": 0})
        assert first["applied"] == 1
        dup = server.handle({"op": "feed", "session": "s1", "points": pts, "at": 0})
        assert dup["ok"] and dup["applied"] == 0 and dup["steps"] == 1
        gap = server.handle({"op": "feed", "session": "s1", "points": pts, "at": 7})
        assert not gap["ok"] and "gap" in gap["error"]

    def test_error_replies_never_raise(self, tmp_path):
        server = make_server(tmp_path)
        assert not server.handle({"op": "nope"})["ok"]
        assert not server.handle({"op": "feed", "session": "ghost",
                                  "points": []})["ok"]
        assert not server.handle({"op": "state"})["ok"]  # missing session field
        assert not server.handle_line(b"{broken json")["ok"]
        assert not server.handle_line(b"[1, 2]")["ok"]
        bad_spec = server.handle({"op": "open", "spec": {"algorithm": "mtc"}})
        assert not bad_spec["ok"]

    def test_feed_many_batches_across_sessions(self, tmp_path):
        server = make_server(tmp_path)
        for sid in ("a", "b", "c"):
            server.handle({"op": "open", "session": sid, "spec": SPEC})
        histories = {sid: spec_history(10, seed=ord(sid)) for sid in "abc"}
        reply = server.handle({"op": "feed-many", "feeds": [
            {"session": sid, "steps": histories[sid], "at": 0} for sid in "abc"
        ]})
        assert reply["ok"] and reply["applied"] == 30 and reply["sessions"] == 3
        from repro.serve import SessionSpec
        for sid in "abc":
            got = server.handle({"op": "trace", "session": sid})["trace"]
            want = batch_reference(
                SessionSpec.from_dict(SPEC),
                [np.asarray(p).reshape(-1, 2) for p in histories[sid]])
            assert json.dumps(got, sort_keys=True, separators=(",", ":")) == \
                trace_json(want)

    def test_shutdown_checkpoints_and_stops(self, tmp_path):
        server = make_server(tmp_path)
        server.handle({"op": "open", "session": "s1", "spec": SPEC})
        server.handle({"op": "feed", "session": "s1", "points": [[1.0, 0.0]]})
        reply = server.handle({"op": "shutdown"})
        assert reply == {"ok": True, "shutdown": True}
        assert server._stopping
        spec, history = load_session_checkpoint(server.store, "srv", "s1")
        assert len(history) == 1


class TestCheckpointing:
    def test_cadence_and_manifest(self, tmp_path):
        server = make_server(tmp_path, checkpoint_every=4)
        server.handle({"op": "open", "session": "s1", "spec": SPEC})
        assert load_manifest(server.store, "srv") == ["s1"]
        history = spec_history(6)
        for t in range(3):
            server.handle({"op": "feed", "session": "s1",
                           "points": history[t], "at": t})
        # Below cadence: checkpoint still holds the open-time snapshot.
        _, ckpt = load_session_checkpoint(server.store, "srv", "s1")
        assert len(ckpt) == 0
        server.handle({"op": "feed", "session": "s1", "points": history[3], "at": 3})
        _, ckpt = load_session_checkpoint(server.store, "srv", "s1")
        assert len(ckpt) == 4

    def test_open_sessions_pinned_against_gc(self, tmp_path):
        server = make_server(tmp_path)
        server.handle({"op": "open", "session": "s1", "spec": SPEC})
        digest = session_checkpoint_digest("srv", "s1")
        assert digest in server.store.pinned()
        server.store.gc(0)
        assert server.store.load_or_none(digest) is not None
        server.handle({"op": "close", "session": "s1"})
        assert digest not in server.store.pinned()
        assert server.store.load_or_none(digest) is None

    def test_resume_restores_bit_identical_state(self, tmp_path):
        history = spec_history(20)
        server = make_server(tmp_path, checkpoint_every=4)
        server.handle({"op": "open", "session": "s1", "spec": SPEC})
        for t in range(11):
            server.handle({"op": "feed", "session": "s1",
                           "points": history[t], "at": t})
        # Simulate a crash: drop the server object without shutdown.  The
        # last cadence checkpoint (step 8) plus the client's replay with
        # 'at' indices must reconstruct the stream exactly.
        del server

        revived = make_server(tmp_path, checkpoint_every=4)
        assert revived.resume() == ["s1"]
        reopened = revived.handle({"op": "open", "session": "s1", "spec": SPEC})
        assert reopened["existing"] and reopened["steps"] == 8
        for t in range(20):  # blind full replay; dups acknowledged
            revived.handle({"op": "feed", "session": "s1",
                            "points": history[t], "at": t})
        got = revived.handle({"op": "trace", "session": "s1"})["trace"]
        from repro.serve import SessionSpec
        want = batch_reference(SessionSpec.from_dict(SPEC),
                               [np.asarray(p).reshape(-1, 2) for p in history])
        assert json.dumps(got, sort_keys=True, separators=(",", ":")) == \
            trace_json(want)


class _Client:
    """Line-protocol driver for a ``mobile-server serve`` subprocess."""

    def __init__(self, store: Path, *, resume=False, checkpoint_every=7):
        cmd = [sys.executable, "-m", "repro", "serve",
               "--store", str(store), "--server-id", "smoke",
               "--checkpoint-every", str(checkpoint_every)]
        if resume:
            cmd.append("--resume")
        self.proc = subprocess.Popen(
            cmd, env=dict(os.environ, PYTHONPATH=_SRC),
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True)

    def call(self, request: dict) -> dict:
        self.proc.stdin.write(json.dumps(request) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        assert line, "server died mid-conversation"
        return json.loads(line)

    def kill(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def finish(self):
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=30)


class TestServeSmoke:
    def test_sigkill_resume_byte_identical(self, tmp_path):
        """The CI serve-smoke drill: kill -9 mid-stream, resume, byte-diff."""
        store_root = tmp_path / "store"
        history = spec_history(40, seed=9)

        client = _Client(store_root)
        try:
            assert client.call({"op": "open", "session": "s1", "spec": SPEC})["ok"]
            for t in range(23):
                assert client.call({"op": "feed", "session": "s1",
                                    "points": history[t], "at": t})["ok"]
            client.kill()
        finally:
            client.finish()

        revived = _Client(store_root, resume=True)
        try:
            reply = revived.call({"op": "open", "session": "s1", "spec": SPEC})
            assert reply["ok"] and reply["existing"]
            assert 0 < reply["steps"] <= 23  # restored from the last checkpoint
            for t in range(40):  # blind replay of the whole script
                assert revived.call({"op": "feed", "session": "s1",
                                     "points": history[t], "at": t})["ok"]
            streamed = revived.call({"op": "trace", "session": "s1"})["trace"]
            closed = revived.call({"op": "close", "session": "s1"})
            assert closed["ok"]
            assert revived.call({"op": "shutdown"})["ok"]
        finally:
            revived.finish()

        from repro.serve import SessionSpec
        spec = SessionSpec.from_dict(SPEC)
        reference = batch_reference(
            spec, [np.asarray(p).reshape(-1, 2) for p in history])
        assert json.dumps(streamed, sort_keys=True, separators=(",", ":")) == \
            trace_json(reference)
        # The graduated final entry is content-addressed by (spec, stream).
        assert closed["digest"] == final_result_digest(spec, closed["stream_digest"])
        assert ResultsStore(store_root).load_or_none(closed["digest"]) is not None
