"""Tests for the :class:`repro.core.metric.Metric` abstraction.

Four layers of contract:

* the Euclidean instance delegates to the module-level primitives, so
  metric-routed ℓ2 is bit-identical to the pre-refactor code path;
* every registered metric satisfies the metric axioms and the geodesic
  ``move_towards`` contract (never overshoots, monotone approach);
* every batched ``(B, d)`` method performs the exact per-row float64
  arithmetic of its scalar counterpart (bitwise, not approximate);
* the engine threads metrics end-to-end: scalar and batched runs of an
  ℓ1 or graph scenario agree bitwise, explicit ``metric="euclidean"``
  changes nothing, and serialization (Scenario, SessionSpec) omits the
  default so pre-metric digests and payload hashes are untouched.
"""

import numpy as np
import pytest

from repro.api import Scenario, run
from repro.core import metric as metric_mod
from repro.core.metric import (
    EuclideanMetric,
    GraphMetric,
    METRICS,
    Metric,
    MinkowskiMetric,
    available_metrics,
    get_metric,
    graph_point,
    register_metric,
)
from repro.serve.session import SessionSpec
from repro.workloads.graphnet import road_network, topology_metric

NORMED = ["euclidean", "l1", "linf"]


def sample_points(rng, n=24, dim=3):
    return rng.normal(scale=3.0, size=(n, dim))


def sample_graph_points(rng, n=24):
    metric = get_metric("graph")
    pts = []
    for _ in range(n):
        if rng.random() < 0.5:
            pts.append(metric.node_point(int(rng.integers(0, metric.n_nodes))))
        else:
            u, v = list(metric.network.graph.edges)[int(rng.integers(0, 8))]
            pts.append(graph_point(metric._index[u], metric._index[v],
                                   float(rng.uniform(0.05, 0.95))))
    return np.stack(pts)


class TestRegistry:
    def test_available(self):
        assert {"euclidean", "l1", "linf", "graph"} <= set(available_metrics())

    def test_instances_cached(self):
        assert get_metric("l1") is get_metric("l1")

    def test_none_resolves_to_euclidean(self):
        assert get_metric(None).name == "euclidean"

    def test_instance_passthrough(self):
        m = MinkowskiMetric(1)
        assert get_metric(m) is m

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown metric"):
            get_metric("hyperbolic")

    def test_register_rejects_duplicates(self):
        with pytest.raises(KeyError, match="already registered"):
            register_metric("euclidean", EuclideanMetric)

    def test_kernel_capability_tags(self):
        assert get_metric("euclidean").supports_kernels
        assert not get_metric("l1").supports_kernels
        assert not get_metric("linf").supports_kernels
        assert not get_metric("graph").supports_kernels

    def test_minkowski_rejects_other_p(self):
        with pytest.raises(ValueError, match="only l1 and linf"):
            MinkowskiMetric(2)


class TestEuclideanDelegation:
    """Metric-routed ℓ2 is the module-level hot path, bit-for-bit."""

    def test_scalar_functions(self, rng):
        m = get_metric("euclidean")
        a, b = rng.normal(size=3), rng.normal(size=3)
        assert m.distance(a, b) == metric_mod.distance(a, b)
        np.testing.assert_array_equal(
            m.move_towards(a, b, 0.25), metric_mod.move_towards(a, b, 0.25))
        np.testing.assert_array_equal(
            m.clamp_step(a, b, 0.25), metric_mod.clamp_step(a, b, 0.25))
        np.testing.assert_array_equal(
            m.interpolate(a, b, 0.4), metric_mod.interpolate(a, b, 0.4))

    def test_batch_functions(self, rng):
        m = get_metric("euclidean")
        p = rng.normal(size=2)
        batch = rng.normal(size=(7, 2))
        np.testing.assert_array_equal(
            m.distances_to(p, batch), metric_mod.distances_to(p, batch))
        src, dst = rng.normal(size=(5, 2)), rng.normal(size=(5, 2))
        np.testing.assert_array_equal(
            m.batched_move_towards(src, dst, 0.3),
            metric_mod.batched_move_towards(src, dst, 0.3))


class TestMinkowskiValues:
    def test_l1_distance(self):
        m = get_metric("l1")
        assert m.distance(np.zeros(2), np.array([3.0, -4.0])) == 7.0

    def test_linf_distance(self):
        m = get_metric("linf")
        assert m.distance(np.zeros(2), np.array([3.0, -4.0])) == 4.0

    def test_move_towards_exhausts_budget_in_own_norm(self):
        for name in ("l1", "linf"):
            m = get_metric(name)
            src, dst = np.zeros(2), np.array([6.0, 8.0])
            out = m.move_towards(src, dst, 1.0)
            assert m.distance(src, out) == pytest.approx(1.0)

    def test_move_towards_reaches(self):
        m = get_metric("l1")
        dst = np.array([0.5, 0.5])
        np.testing.assert_array_equal(m.move_towards(np.zeros(2), dst, 2.0), dst)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            get_metric("l1").move_towards(np.zeros(1), np.ones(1), -0.1)


class TestMetricAxioms:
    @pytest.mark.parametrize("name", NORMED)
    def test_normed_axioms(self, name, rng):
        m = get_metric(name)
        pts = sample_points(rng)
        for a, b, c in zip(pts[:8], pts[8:16], pts[16:24]):
            assert m.distance(a, a) == 0.0
            assert m.distance(a, b) == m.distance(b, a) >= 0.0
            assert m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-12

    def test_graph_axioms(self, rng):
        m = get_metric("graph")
        pts = sample_graph_points(rng)
        for a, b, c in zip(pts[:8], pts[8:16], pts[16:24]):
            assert m.distance(a, a) == 0.0
            assert m.distance(a, b) == pytest.approx(m.distance(b, a))
            assert m.distance(a, c) <= m.distance(a, b) + m.distance(b, c) + 1e-9

    @pytest.mark.parametrize("name", NORMED + ["graph"])
    def test_move_towards_contract(self, name, rng):
        m = get_metric(name)
        pts = sample_graph_points(rng) if name == "graph" else sample_points(rng)
        for src, dst in zip(pts[:12], pts[12:24]):
            total = m.distance(src, dst)
            for step in (0.0, 0.3, 2.0 * total + 0.1):
                out = m.move_towards(src, dst, step)
                assert m.distance(src, out) <= step + 1e-9      # never overshoots
                assert m.distance(out, dst) <= total + 1e-9     # monotone approach
                if step > total:
                    assert m.distance(out, dst) == pytest.approx(0.0, abs=1e-12)


class TestGraphMetric:
    def test_graph_point_canonical(self):
        np.testing.assert_array_equal(graph_point(3), [3.0, 3.0, 0.0])
        # Edge orientation is canonical (u < v); endpoints collapse to nodes.
        np.testing.assert_array_equal(graph_point(5, 2, 0.25), [2.0, 5.0, 0.75])
        np.testing.assert_array_equal(graph_point(2, 5, 0.0), [2.0, 2.0, 0.0])
        np.testing.assert_array_equal(graph_point(2, 5, 1.0), [5.0, 5.0, 0.0])

    def test_node_distances_are_the_all_pairs_table(self):
        m = topology_metric("road")
        table = np.asarray(m.network.distances)
        for i in range(m.n_nodes):
            for j in range(m.n_nodes):
                assert m.distance(m.node_point(i), m.node_point(j)) == table[i, j]

    def test_edge_point_distance(self):
        m = topology_metric("road")
        # Halfway along edge (0, 1) of weight 1.0: 0.5 from either endpoint.
        p = graph_point(0, 1, 0.5)
        assert m.distance(p, m.node_point(0)) == pytest.approx(0.5)
        assert m.distance(p, m.node_point(1)) == pytest.approx(0.5)

    def test_shared_edge_direct_walk(self):
        m = topology_metric("road")
        a, b = graph_point(0, 1, 0.2), graph_point(0, 1, 0.9)
        assert m.distance(a, b) == pytest.approx(0.7)
        out = m.move_towards(a, b, 0.3)
        np.testing.assert_allclose(out, graph_point(0, 1, 0.5))

    def test_move_lands_mid_edge(self):
        m = topology_metric("road")
        src, dst = m.node_point(0), m.node_point(2)  # via node 1: 1.0 + 1.5
        out = m.move_towards(src, dst, 1.5)
        u, v, t = m._decode(out)
        assert (u, v) == (1, 2)
        assert m.distance(src, out) == pytest.approx(1.5)

    def test_rejects_non_edge_points(self):
        m = topology_metric("road")
        with pytest.raises(ValueError, match="not an edge"):
            m.validate_point(np.array([0.0, 3.0, 0.5]))
        with pytest.raises(ValueError, match="3-vectors"):
            m.validate_point(np.zeros(2))
        with pytest.raises(ValueError, match="outside"):
            m.validate_point(np.array([99.0, 99.0, 0.0]))

    def test_nearest_node(self):
        m = topology_metric("road")
        assert m.nearest_node(graph_point(0, 1, 0.2)) == 0
        assert m.nearest_node(graph_point(0, 1, 0.8)) == 1
        assert m.nearest_node(m.node_point(7)) == 7


class TestScalarBatchedParity:
    """Batched methods replay the scalar float64 arithmetic bit-for-bit."""

    @pytest.mark.parametrize("name", NORMED + ["graph"])
    def test_batched_distances(self, name, rng):
        m = get_metric(name)
        pts = sample_graph_points(rng) if name == "graph" else sample_points(rng)
        a, b = pts[:12], pts[12:24]
        expected = np.array([m.distance(a[i], b[i]) for i in range(12)])
        np.testing.assert_array_equal(m.batched_distances(a, b), expected)

    @pytest.mark.parametrize("name", NORMED + ["graph"])
    def test_batched_move_towards(self, name, rng):
        m = get_metric(name)
        pts = sample_graph_points(rng) if name == "graph" else sample_points(rng)
        src, dst = pts[:12], pts[12:24]
        steps = rng.uniform(0.0, 3.0, size=12)
        expected = np.stack([m.move_towards(src[i], dst[i], float(steps[i]))
                             for i in range(12)])
        np.testing.assert_array_equal(m.batched_move_towards(src, dst, steps),
                                      expected)

    def test_batched_rejects_negative_steps(self):
        m = get_metric("l1")
        with pytest.raises(ValueError, match="non-negative"):
            m.batched_move_towards(np.zeros((2, 1)), np.ones((2, 1)),
                                   np.array([0.1, -0.1]))


class TestEngineThreading:
    """Metrics flow through Scenario -> engine -> costs, both engines."""

    def _costs(self, scenario):
        return run(scenario).costs

    def test_l1_scalar_batched_parity(self):
        base = Scenario.workload("drift", "greedy-centroid",
                                 params={"T": 40, "dim": 2, "D": 2.0, "m": 1.0},
                                 seeds=[0, 1], metric="l1", ratio="none")
        scalar = self._costs(base.with_(engine="scalar"))
        batched = self._costs(base.with_(engine="batched"))
        np.testing.assert_array_equal(scalar, batched)

    def test_graph_scalar_batched_parity(self):
        base = Scenario.workload("graph-road", "nearest-chaser",
                                 params={"T": 30, "D": 2.0, "m": 1.0},
                                 seeds=[0, 1], metric="graph", ratio="none")
        scalar = self._costs(base.with_(engine="scalar"))
        batched = self._costs(base.with_(engine="batched"))
        np.testing.assert_array_equal(scalar, batched)

    def test_explicit_euclidean_is_a_no_op(self):
        base = Scenario.workload("drift", "mtc",
                                 params={"T": 40, "dim": 2, "D": 2.0, "m": 1.0},
                                 seeds=[0, 1], ratio="none")
        np.testing.assert_array_equal(
            self._costs(base), self._costs(base.with_(metric="euclidean")))

    def test_l1_equals_l2_in_1d(self):
        # In 1-D every norm coincides; the ℓ1 path must reproduce ℓ2 bits.
        base = Scenario.workload("drift", "greedy-centroid",
                                 params={"T": 40, "dim": 1, "D": 2.0, "m": 1.0},
                                 seeds=[0, 1], ratio="none")
        np.testing.assert_array_equal(
            self._costs(base), self._costs(base.with_(metric="l1")))

    def test_incompatible_combinations_rejected(self):
        graph = Scenario.workload("graph-road", "mtc",
                                  params={"T": 10}, metric="graph", ratio="none")
        with pytest.raises(ValueError, match="does not support the 'graph' metric"):
            run(graph)  # mtc does not declare graph support
        euclid_wl = Scenario.workload("drift", "static",
                                      params={"T": 10, "dim": 3}, metric="graph",
                                      ratio="none")
        with pytest.raises(ValueError, match="does not generate 'graph'-space"):
            run(euclid_wl)  # drift generates Euclidean requests


class TestSerializationStability:
    """The default metric is omitted everywhere a digest depends on it."""

    def test_scenario_to_dict_omits_default(self):
        sc = Scenario.workload("drift", "mtc", params={"T": 10})
        assert "metric" not in sc.to_dict()
        assert Scenario.from_dict(sc.to_dict()) == sc

    def test_scenario_metric_round_trip_and_digest(self):
        sc = Scenario.workload("drift", "static", params={"T": 10}, metric="l1")
        assert sc.to_dict()["metric"] == "l1"
        assert Scenario.from_dict(sc.to_dict()) == sc
        base = Scenario.workload("drift", "static", params={"T": 10})
        assert sc.digest() != base.digest()
        assert base.digest() == base.with_(metric="euclidean").digest()

    def test_scenario_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            Scenario.workload("drift", "mtc", metric="hyperbolic")

    def test_session_spec_omits_default(self):
        spec = SessionSpec(algorithm="mtc", dim=2, start=(0.0, 0.0))
        assert "metric" not in spec.to_dict()
        assert SessionSpec.from_dict(spec.to_dict()) == spec

    def test_session_spec_metric_round_trip_and_grouping(self):
        spec = SessionSpec(algorithm="static", dim=2, start=(0.0, 0.0), metric="l1")
        assert spec.to_dict()["metric"] == "l1"
        assert SessionSpec.from_dict(spec.to_dict()) == spec
        base = SessionSpec(algorithm="static", dim=2, start=(0.0, 0.0))
        assert spec.group_key != base.group_key

    def test_session_spec_rejects_unknown_metric(self):
        with pytest.raises(ValueError, match="metric"):
            SessionSpec(algorithm="mtc", dim=2, start=(0.0, 0.0), metric="hyperbolic")
