"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mtc" in out and "E1" in out and "drift" in out

    def test_experiments_subset(self, capsys, tmp_path):
        code = main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--csv", str(tmp_path)])
        out = capsys.readouterr().out
        assert "[E9]" in out
        assert (tmp_path / "e9.csv").exists()
        assert code == 0

    def test_compare(self, capsys):
        assert main(["compare", "--workload", "drift", "--T", "60", "--dim", "1"]) == 0
        out = capsys.readouterr().out
        assert "mtc" in out and "ratio" in out

    def test_compare_unknown_workload(self, capsys):
        assert main(["compare", "--workload", "nope"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
