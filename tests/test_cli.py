"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mtc" in out and "E1" in out and "drift" in out

    def test_experiments_subset(self, capsys, tmp_path):
        code = main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--csv", str(tmp_path), "--store", ""])
        out = capsys.readouterr().out
        assert "[E9]" in out
        assert (tmp_path / "e9.csv").exists()
        assert code == 0

    def test_experiments_store_caches_second_run(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        argv = ["experiments", "--ids", "E9", "--scale", "0.05", "--store", store]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "store: 0/15 work units cached, 15 computed" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "store: 15/15 work units cached, 0 computed" in warm
        assert warm.split("store:")[0] == cold.split("store:")[0]

    def test_experiments_rerun_recomputes(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        base = ["experiments", "--ids", "E9", "--scale", "0.05", "--store", store]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--rerun"]) == 0
        assert "15 computed" in capsys.readouterr().out

    def test_experiments_resume_label(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        base = ["experiments", "--ids", "E9", "--scale", "0.05", "--store", store]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        assert "work units resumed" in capsys.readouterr().out

    def test_experiments_jobs_validation(self, capsys):
        assert main(["experiments", "--ids", "E9", "--jobs", "0"]) == 2

    def test_experiments_parallel_jobs(self, capsys, tmp_path):
        code = main(["experiments", "--ids", "E4", "--scale", "0.1", "--jobs", "2",
                     "--store", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert code == 0
        assert "[E4]" in out

    def test_compare(self, capsys):
        assert main(["compare", "--workload", "drift", "--T", "60", "--dim", "1"]) == 0
        out = capsys.readouterr().out
        assert "mtc" in out and "ratio" in out

    def test_compare_unknown_workload(self, capsys):
        assert main(["compare", "--workload", "nope"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLITiming:
    def test_timing_line_reports_computed_cells(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        argv = ["experiments", "--ids", "E9", "--scale", "0.05", "--store", store]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "timing: 15 cells computed" in cold and "slowest:" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "timing:" not in warm  # pure cache hits compute nothing


class TestCLIStoreGC:
    def test_store_gc_reports_eviction(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        base = ["experiments", "--ids", "E9", "--scale", "0.05", "--store", store]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--store-gc", "0"]) == 0
        out = capsys.readouterr().out
        assert "store-gc: evicted 15 entries" in out
        assert main(base) == 0  # store emptied: the cells recompute
        assert "15 computed" in capsys.readouterr().out

    def test_store_gc_size_suffixes(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        base = ["experiments", "--ids", "E9", "--scale", "0.05", "--store", store]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--store-gc", "1G"]) == 0
        assert "store-gc: evicted 0 entries" in capsys.readouterr().out


class TestCLIRun:
    def test_run_adversary_scenario(self, capsys):
        assert main(["run", "--source", "thm1", "-p", "T=32",
                     "--algorithm", "mtc", "--seeds", "0", "1"]) == 0
        out = capsys.readouterr().out
        assert "thm1/mtc" in out and "ratio >=" in out

    def test_run_workload_with_bracket(self, capsys):
        assert main(["run", "--source", "drift", "-p", "T=40", "-p", "dim=1",
                     "--delta", "0.5", "--ratio", "bracket"]) == 0
        out = capsys.readouterr().out
        assert "certified ratio interval" in out

    def test_run_store_caches(self, capsys, tmp_path):
        argv = ["run", "--source", "thm1", "-p", "T=32", "--seeds", "0",
                "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        assert "engine" in capsys.readouterr().out
        assert main(argv) == 0
        assert "cache hit" in capsys.readouterr().out

    def test_run_unknown_source(self, capsys):
        assert main(["run", "--source", "nope"]) == 2
        assert "unknown source" in capsys.readouterr().err

    def test_run_algorithm_params(self, capsys):
        assert main(["run", "--source", "drift", "-p", "T=30", "-p", "dim=1",
                     "--algorithm", "mtc", "--alg-param", "step_scale=0.5",
                     "--delta", "0.5"]) == 0
        assert "scalar engine" in capsys.readouterr().out

    def test_run_grid_sweep(self, capsys):
        assert main(["run", "--grid", "--source", "drift",
                     "--algorithm", "mtc,greedy-centroid",
                     "-p", "T=30", "-p", "dim=1", "-p", "D=2.0", "-p", "m=1.0",
                     "--delta", "0.25,0.5", "--seeds", "0", "1",
                     "--ratio", "bracket"]) == 0
        out = capsys.readouterr().out
        assert "algorithm" in out and "delta" in out
        assert "grid: 4 scenarios" in out and "4 computed" in out

    def test_run_grid_param_axis(self, capsys):
        assert main(["run", "--grid", "--source", "drift",
                     "-p", "T=20,30", "-p", "dim=1", "-p", "D=2.0", "-p", "m=1.0",
                     "--ratio", "none"]) == 0
        out = capsys.readouterr().out
        assert "grid: 2 scenarios" in out

    def test_run_grid_store_caches_second_pass(self, capsys, tmp_path):
        argv = ["run", "--grid", "--source", "drift", "--algorithm", "mtc",
                "-p", "T=20", "-p", "dim=1", "-p", "D=2.0", "-p", "m=1.0",
                "--delta", "0.25,0.5", "--ratio", "bracket",
                "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cached, 2 computed" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "2 cached, 0 computed" in second

    def test_run_grid_unknown_source(self, capsys):
        assert main(["run", "--grid", "--source", "nope,drift"]) == 2
        assert "bad grid" in capsys.readouterr().err

    def test_run_grid_jobs_validation(self, capsys):
        assert main(["run", "--grid", "--source", "drift", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_run_rejects_bad_scenario(self, capsys):
        assert main(["run", "--source", "thm1", "-p", "T=16",
                     "--cost-model", "answer-first"]) == 2
        assert "bad scenario" in capsys.readouterr().err

    def test_run_rejects_bad_source_param(self, capsys):
        assert main(["run", "--source", "thm1", "-p", "bogus=1"]) == 2
        assert "bad scenario" in capsys.readouterr().err

    def test_run_rejects_incompatible_algorithm(self, capsys):
        assert main(["run", "--source", "drift", "-p", "T=20", "-p", "dim=2",
                     "--algorithm", "work-function"]) == 2
        assert "bad scenario" in capsys.readouterr().err

    def test_store_gc_requires_store(self, capsys):
        assert main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--store", "", "--store-gc", "1M"]) == 2
        assert "--store-gc needs a persistent store" in capsys.readouterr().err
