"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mtc" in out and "E1" in out and "drift" in out

    def test_experiments_subset(self, capsys, tmp_path):
        code = main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--csv", str(tmp_path), "--store", ""])
        out = capsys.readouterr().out
        assert "[E9]" in out
        assert (tmp_path / "e9.csv").exists()
        assert code == 0

    def test_experiments_store_caches_second_run(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        argv = ["experiments", "--ids", "E9", "--scale", "0.05", "--store", store]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "store: 0/1 work units cached, 1 computed" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "store: 1/1 work units cached, 0 computed" in warm
        assert warm.split("store:")[0] == cold.split("store:")[0]

    def test_experiments_rerun_recomputes(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        base = ["experiments", "--ids", "E9", "--scale", "0.05", "--store", store]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--rerun"]) == 0
        assert "1 computed" in capsys.readouterr().out

    def test_experiments_resume_label(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        base = ["experiments", "--ids", "E9", "--scale", "0.05", "--store", store]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        assert "work units resumed" in capsys.readouterr().out

    def test_experiments_jobs_validation(self, capsys):
        assert main(["experiments", "--ids", "E9", "--jobs", "0"]) == 2

    def test_experiments_parallel_jobs(self, capsys, tmp_path):
        code = main(["experiments", "--ids", "E4", "--scale", "0.1", "--jobs", "2",
                     "--store", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert code == 0
        assert "[E4]" in out

    def test_compare(self, capsys):
        assert main(["compare", "--workload", "drift", "--T", "60", "--dim", "1"]) == 0
        out = capsys.readouterr().out
        assert "mtc" in out and "ratio" in out

    def test_compare_unknown_workload(self, capsys):
        assert main(["compare", "--workload", "nope"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
