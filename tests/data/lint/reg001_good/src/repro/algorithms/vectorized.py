"""REG001 good fixture: vectorized classes and kernel tags in lock-step."""


class BatchedAlpha:
    kernel = "alpha"


class BatchedBeta:
    kernel = "beta"


VECTORIZED = {
    "alpha": BatchedAlpha,
    "beta": BatchedBeta,
    "beta-soft": lambda: BatchedBeta(),
}
