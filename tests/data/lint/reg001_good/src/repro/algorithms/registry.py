"""REG001 good fixture: every vectorized entry is registry-addressable."""


def _make():
    return object()


ALGORITHMS = {
    "alpha": _make,
    "beta": _make,
    "beta-soft": _make,
    "scalar-only": _make,
}
