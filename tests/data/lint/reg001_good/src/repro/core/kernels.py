"""REG001 good fixture: every kernel advertised, none dead."""


class StepKernel:
    def __init__(self, name):
        self.name = name


KERNELS = {
    "alpha": StepKernel("alpha"),
    "beta": StepKernel("beta"),
}
