"""REG001 good fixture: the parity suite parametrizes over KERNELS itself."""

from repro.core.kernels import KERNELS

KERNEL_ALGOS = sorted(KERNELS)


def test_parity():
    for name in KERNEL_ALGOS:
        assert name
