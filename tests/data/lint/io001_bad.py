"""IO001 bad fixture: torn-file hazards in a crash-safe layer."""

import json


def ack_done(path, payload):
    with open(path, "w") as fh:  # bare writing open: tears on crash
        json.dump(payload, fh)


def publish(final, text):
    final.write_text(text)  # direct write to the final name
