"""RNG001 bad fixture: entropy-seeded randomness in library code."""

import numpy as np


def build(rng=None):
    if rng is None:
        rng = np.random.default_rng()  # seedless: OS entropy
    return rng.random()


def legacy_draw(n):
    np.random.seed(42)  # legacy global state
    return np.random.rand(n)  # legacy global state
