"""REG001 bad fixture: a hand-listed parity suite that misses kernels."""


def test_alpha_parity():
    assert "alpha"  # only 'alpha' is referenced; 'ghost' never is
