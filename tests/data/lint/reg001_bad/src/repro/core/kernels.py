"""REG001 bad fixture: a dead kernel and a missing one."""


class StepKernel:
    def __init__(self, name):
        self.name = name


KERNELS = {
    "alpha": StepKernel("alpha"),
    "ghost": StepKernel("ghost"),  # no vectorized class advertises this
}
