"""REG001 bad fixture: the algorithm registry (missing 'orphan-entry')."""


def _make_alpha():
    return object()


ALGORITHMS = {
    "alpha": _make_alpha,
    "phantom": _make_alpha,
}
