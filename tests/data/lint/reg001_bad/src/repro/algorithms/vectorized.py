"""REG001 bad fixture: kernel tags out of step with the KERNELS registry."""


class BatchedAlpha:
    kernel = "alpha"


class BatchedPhantom:
    kernel = "phantom"  # advertised but never registered in KERNELS


VECTORIZED = {
    "alpha": BatchedAlpha,
    "phantom": BatchedPhantom,
    "orphan-entry": BatchedAlpha,  # not in ALGORITHMS at all
}
