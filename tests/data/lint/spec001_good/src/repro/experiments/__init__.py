"""Fixture registry with SPECS and EXPERIMENTS in perfect agreement."""

from . import e1_first, e2_second

SPECS = {
    "E1": e1_first.build_spec,
    "E2": e2_second.build_spec,
}

EXPERIMENTS = {
    "E1": e1_first.run,
    "E2": e2_second.run,
}
