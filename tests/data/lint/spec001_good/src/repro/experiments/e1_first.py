"""Fixture experiment: id ``E1``."""

from repro.api.spec import ExperimentSpec


def build_spec(scale=1.0):
    return ExperimentSpec(
        experiment_id="E1",
        title="first experiment",
    )


def run(scale=1.0):
    return build_spec(scale)
