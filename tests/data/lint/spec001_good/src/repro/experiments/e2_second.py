"""Fixture experiment: id ``E2``, restated in-module (not a collision)."""

from repro.api.spec import ExperimentSpec


def build_spec(scale=1.0):
    return ExperimentSpec(
        experiment_id="E2",
        title="second experiment",
    )


def preview():
    return ExperimentSpec(experiment_id="E2", title="second experiment (preview)")


def run(scale=1.0):
    return build_spec(scale)
