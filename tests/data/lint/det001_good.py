"""DET001 good fixture: canonical, order-stable digest inputs."""

import hashlib
import json


def digest_params(params):
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def digest_names(names):
    return hashlib.sha256(",".join(sorted(names)).encode()).hexdigest()


def pretty(params):
    # json.dumps without sort_keys is fine here: nothing in this
    # function computes a digest.
    return json.dumps(params, indent=2)
