"""CLK001 good fixture: clocks used for timing only, never in content."""

import time


def run_cell(compute, timeout):
    t0 = time.perf_counter()
    deadline = time.monotonic() + timeout
    payload = compute()
    while time.monotonic() < deadline:
        break
    elapsed = time.perf_counter() - t0
    return payload, elapsed


def poll(spool, idle_exit):
    idle_since = time.monotonic()
    if time.monotonic() - idle_since > idle_exit:
        return None
    return spool
