"""API001 bad fixture: stale __all__ and a silent deprecation shim."""

import warnings

__all__ = ["run", "vanished"]  # 'vanished' is never bound


def run():
    warnings.warn("run() is deprecated; use spec().run()")  # no category
    return None
