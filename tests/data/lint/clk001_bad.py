"""CLK001 bad fixture: wall-clock values landing in persisted content."""

import time
from datetime import datetime


def submit_task(spool, digest):
    payload = {"digest": digest, "created": time.time()}  # timestamp in content
    spool.write(payload)


def stamp_payload(payload):
    payload["written_at"] = datetime.now().isoformat()  # timestamp in content
    return payload
