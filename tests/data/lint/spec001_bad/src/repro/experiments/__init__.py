"""Fixture registry with every SPEC001 failure mode.

* ``"E1"`` appears twice in SPECS (the first entry is shadowed);
* ``"E4"`` has a spec builder but no EXPERIMENTS runner;
* ``"E3"`` has a runner but no SPECS entry;
* ``e3_imposter`` re-declares ``experiment_id="E1"`` (see that module).
"""

from . import e1_first, e2_second, e3_imposter

SPECS = {
    "E1": e1_first.build_spec,
    "E2": e2_second.build_spec,
    "E1": e1_first.build_spec,
    "E4": e2_second.build_spec,
}

EXPERIMENTS = {
    "E1": e1_first.run,
    "E2": e2_second.run,
    "E3": e3_imposter.run,
}
