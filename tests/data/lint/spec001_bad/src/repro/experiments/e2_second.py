"""Fixture experiment: id ``E2``, restated twice in one module (allowed)."""

from repro.api.spec import ExperimentSpec


def build_spec(scale=1.0):
    return ExperimentSpec(
        experiment_id="E2",
        title="second experiment",
    )


def preview():
    # Same id restated inside its own module is one experiment, not a clash.
    return ExperimentSpec(experiment_id="E2", title="second experiment (preview)")


def run(scale=1.0):
    return build_spec(scale)
