"""Fixture experiment: claims ``E1`` although e1_first already owns it."""

from repro.api.spec import ExperimentSpec


def build_spec(scale=1.0):
    return ExperimentSpec(
        experiment_id="E1",
        title="imposter claiming E1",
    )


def run(scale=1.0):
    return build_spec(scale)
