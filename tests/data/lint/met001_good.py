"""MET001 good fixture: distances routed through the Metric interface."""

from repro.core.metric import get_metric

_METRIC = get_metric("euclidean")


def decide(position, target, cap):
    dist = _METRIC.distance(position, target)
    if dist <= cap:
        return target
    return _METRIC.move_towards(position, target, cap)


def movement_cost(old, new):
    return _METRIC.distance(old, new)
