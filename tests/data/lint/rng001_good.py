"""RNG001 good fixture: every draw comes from an explicit seed or Generator."""

import numpy as np


def build(rng=None):
    if rng is None:
        rng = np.random.default_rng(0)  # deterministic fallback
    return rng.random()


def seeded_draw(n, seed):
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return rng.random(n)
