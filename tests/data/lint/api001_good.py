"""API001 good fixture: sound __all__ and a proper deprecation shim."""

import warnings

__all__ = ["run", "spec"]


def spec():
    return object()


def run():
    warnings.warn(
        "run() is deprecated; use spec().run()",
        DeprecationWarning, stacklevel=2,
    )
    return spec()
