"""DET001 bad fixture: order-unstable inputs feeding a digest."""

import hashlib
import json


def digest_params(params):
    blob = json.dumps(params)  # dict insertion order leaks into the address
    return hashlib.sha256(blob.encode()).hexdigest()


def digest_names(names):
    joined = ",".join(set(names))  # set iteration order inside the hash call
    return hashlib.sha256(",".join(set(names)).encode() + joined.encode())
