"""MET001 bad fixture: raw l2 norms in metric-generic decision code."""

import numpy as np
from numpy.linalg import norm


def decide(position, target, cap):
    dist = float(np.linalg.norm(target - position))  # hardwired l2
    if dist <= cap:
        return target
    return position + (cap / dist) * (target - position)


def movement_cost(old, new):
    return float(norm(new - old))  # bare alias from numpy.linalg
