"""IO001 good fixture: the tmp+rename idiom, crash-safe by construction."""

import json
import os


def atomic_write(root, final, payload):
    tmp = root / f".{final.name}.tmp-{os.getpid()}"
    tmp.write_text(json.dumps(payload, sort_keys=True))
    tmp.replace(final)
    return final


def read_back(path):
    with open(path) as fh:  # reading is fine
        return json.load(fh)
