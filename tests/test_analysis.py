"""Tests for the analysis package (ratio, potential, lemma6, regression, stats, tables)."""

import numpy as np
import pytest

from repro.adversaries import build_thm1
from repro.algorithms import MoveToCenter, StaticServer
from repro.analysis import (
    bootstrap_ci,
    collapse_to_centers,
    figure2_worst_case,
    fit_linear,
    fit_power_law,
    measure_adversarial_ratio,
    measure_ratio,
    potential_value,
    render_table,
    sample_lemma6,
    summarize,
    to_csv,
    verify_potential_argument,
)
from repro.core import MSPInstance, RequestSequence, simulate
from repro.offline import solve_line


class TestMeasureRatio:
    def test_certified_interval_contains_point_estimate(self, line_instance):
        meas = measure_ratio(line_instance, MoveToCenter(), delta=0.5)
        assert meas.ratio_lower <= meas.ratio <= meas.ratio_upper

    def test_ratio_lower_at_least_one_for_exact_opt(self, line_instance):
        """No algorithm beats a valid lower bound on OPT by more than eps."""
        meas = measure_ratio(line_instance, MoveToCenter(), delta=0.5)
        assert meas.ratio_upper >= 1.0 - 1e-6

    def test_explicit_bracket_reused(self, line_instance):
        from repro.offline import bracket_optimum

        br = bracket_optimum(line_instance)
        meas = measure_ratio(line_instance, StaticServer(), bracket=br)
        assert meas.opt_lower == br.lower and meas.opt_upper == br.upper

    def test_static_worse_than_mtc_on_drift(self):
        pts = np.cumsum(np.full((80, 1, 1), 0.8), axis=0)
        inst = MSPInstance(RequestSequence.from_packed(pts), start=np.zeros(1),
                           D=2.0, m=1.0)
        m_static = measure_ratio(inst, StaticServer(), delta=0.5)
        m_mtc = measure_ratio(inst, MoveToCenter(), delta=0.5)
        assert m_static.ratio_upper > m_mtc.ratio_upper


class TestAdversarialRatio:
    def test_mean_and_per_seed(self):
        mean, per_seed = measure_adversarial_ratio(
            lambda rng: build_thm1(64, rng=rng),
            MoveToCenter,
            delta=0.0,
            seeds=[1, 2, 3],
        )
        assert per_seed.shape == (3,)
        assert mean == pytest.approx(per_seed.mean())


class TestCollapseToCenters:
    def test_collapsed_batches_are_singleton_valued(self, plane_instance):
        coll = collapse_to_centers(plane_instance)
        assert coll.length == plane_instance.length
        for t in range(coll.length):
            pts = coll.requests[t].points
            assert pts.shape == plane_instance.requests[t].points.shape
            # All rows identical.
            assert np.allclose(pts, pts[0])

    def test_preserves_empty_steps(self):
        seq = RequestSequence([np.empty((0, 1)), np.ones((2, 1))], dim=1)
        inst = MSPInstance(seq, start=np.zeros(1))
        coll = collapse_to_centers(inst)
        assert coll.requests[0].count == 0
        assert coll.requests[1].count == 2


class TestPotential:
    def test_potential_continuity_at_threshold(self):
        """The two branches agree at the switching distance."""
        r, D, delta, m = 4, 2.0, 0.5, 1.0
        threshold = delta * D * m / (4 * r)
        lo = potential_value(threshold, r, D, delta, m)
        hi = potential_value(threshold * (1 + 1e-9), r, D, delta, m)
        assert hi == pytest.approx(lo, rel=1e-6)

    def test_zero_distance_zero_potential(self):
        assert potential_value(0.0, 3, 2.0, 0.5, 1.0) == 0.0

    def test_requires_positive_delta(self):
        with pytest.raises(ValueError):
            potential_value(1.0, 1, 1.0, 0.0, 1.0)

    def test_verify_on_collapsed_instance(self):
        pts = np.cumsum(np.full((60, 1, 1), 0.6), axis=0)
        pts = np.repeat(pts, 3, axis=1)  # 3 co-located requests
        inst = MSPInstance(RequestSequence.from_packed(pts), start=np.zeros(1),
                           D=2.0, m=1.0)
        delta = 0.5
        tr = simulate(inst, MoveToCenter(), delta=delta)
        dp = solve_line(inst)
        rep = verify_potential_argument(inst, tr, dp.positions, delta)
        assert not rep.violations
        assert rep.max_k < 100.0
        assert len(rep.records) == 60

    def test_case_labels_partition(self):
        pts = np.cumsum(np.full((40, 1, 1), 0.6), axis=0)
        inst = MSPInstance(RequestSequence.from_packed(pts), start=np.zeros(1),
                           D=2.0, m=1.0)
        tr = simulate(inst, MoveToCenter(), delta=0.5)
        dp = solve_line(inst)
        rep = verify_potential_argument(inst, tr, dp.positions, 0.5)
        valid = {"1:both-small", "2:p-large-q-small", "3:fast-approach", "4:far", "5:near"}
        assert {r.case for r in rep.records} <= valid

    def test_length_mismatch_rejected(self, line_instance):
        tr = simulate(line_instance, MoveToCenter(), delta=0.5)
        with pytest.raises(ValueError, match="positions"):
            verify_potential_argument(line_instance, tr, np.zeros((3, 1)), 0.5)


class TestLemma6:
    def test_acute_mode_zero_violations(self):
        rep = sample_lemma6(0.25, n_samples=2000, dim=2, acute_only=True,
                            rng=np.random.default_rng(0))
        assert rep.violations == 0

    def test_repaired_mode_zero_violations(self):
        rep = sample_lemma6(0.25, n_samples=2000, dim=2, premise="repaired",
                            rng=np.random.default_rng(0))
        assert rep.violations == 0

    def test_figure2_slack_positive_and_shrinking(self):
        s1 = figure2_worst_case(1.0).slack
        s2 = figure2_worst_case(0.0625).slack
        assert s1 > s2 > 0.0

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            sample_lemma6(0.0, n_samples=10)

    def test_invalid_premise(self):
        with pytest.raises(ValueError):
            sample_lemma6(0.5, n_samples=10, premise="bogus")

    def test_1d_embedding(self):
        rep = sample_lemma6(0.5, n_samples=500, dim=1, rng=np.random.default_rng(1))
        assert rep.n_checked == 500


class TestRegression:
    def test_power_law_recovers_exponent(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        y = 3.0 * x ** 0.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(0.5)
        assert fit.prefactor == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_linear_recovers_slope(self):
        x = np.arange(5, dtype=float)
        y = 2.0 * x + 1.0
        fit = fit_linear(x, y)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)

    def test_power_law_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, -1.0]), np.array([1.0, 1.0]))

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_linear(np.array([1.0]), np.array([1.0]))


class TestStats:
    def test_summarize(self):
        s = summarize(np.array([1.0, 2.0, 3.0]))
        assert s.n == 3 and s.mean == 2.0 and s.median == 2.0
        assert s.minimum == 1.0 and s.maximum == 3.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))

    def test_bootstrap_ci_contains_mean(self):
        data = np.random.default_rng(0).normal(loc=5.0, size=200)
        lo, hi = bootstrap_ci(data, rng=np.random.default_rng(1))
        assert lo <= data.mean() <= hi

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(3), confidence=1.5)


class TestTables:
    def test_render_basic(self):
        txt = render_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        txt = render_table(["x"], [[1234567.0]])
        assert "e" in txt.lower()  # scientific for huge values

    def test_nan_rendering(self):
        assert "nan" in render_table(["x"], [[float("nan")]])

    def test_csv(self):
        csv = to_csv(["a", "b"], [[1, 2]])
        assert csv.splitlines() == ["a,b", "1,2"]
