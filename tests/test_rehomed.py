"""Parity tests for the re-homed k-server and page-migration scenarios.

The metric refactor (PR 10) re-expresses the classical baselines as
scenarios of the one engine:

* k-server on the line runs in configuration space :math:`\\mathbb{R}^k`
  under the ``l1`` metric with movement-only accounting
  (:mod:`repro.algorithms.kserver_line` /
  :mod:`repro.workloads.kserver`), and
* classical page migration runs under the ``graph`` metric through
  :class:`~repro.algorithms.page_adapters.PageMigrationAdapter`.

These tests pin the re-homing to the standalone modules they replace:
configuration / page trajectories must be *bit-identical* (the decision
rules replay the legacy arithmetic operation-for-operation, and both
graph cost paths read the same all-pairs table), while k-server cost
totals agree to float rounding only — the legacy loop accumulates its
own increments (e.g. ``2 * d`` for an interior double move) where the
engine measures ``|new - old|_1``, the same quantity associated
differently.
"""

import numpy as np
import pytest

from repro.algorithms.page_adapters import PageMigrationAdapter
from repro.algorithms.registry import make_algorithm
from repro.api import Scenario, run
from repro.core.metric import graph_point
from repro.core.simulator import simulate
from repro.kserver.double_coverage import double_coverage_line, greedy_kserver_line
from repro.pagemigration.algorithms import (
    CoinFlipGraph,
    CountMoveTo,
    GreedyFollow,
    MoveToMinGraph,
    StaticPage,
)
from repro.pagemigration.simulator import simulate_page_migration
from repro.workloads.base import make_instance
from repro.workloads.graphnet import topology_metric
from repro.workloads.kserver import KServerLineWorkload

KSERVER_LEGACY = {"dc-line": double_coverage_line, "greedy-kserver": greedy_kserver_line}
KSERVER_SEEDS = (0, 1, 7)

PM_MAKERS = {
    "pm-static": StaticPage,
    "pm-greedy": GreedyFollow,
    "pm-move-to-min": MoveToMinGraph,
    "pm-count": CountMoveTo,
    "pm-coin-flip": lambda: CoinFlipGraph(rng=np.random.default_rng(42)),
}
PM_SEEDS = (0, 3)


class TestKServerParity:
    """dc-line / greedy-kserver reproduce repro.kserver.double_coverage."""

    def _run_pair(self, algorithm: str, seed: int, k: int = 3, T: int = 120):
        workload = KServerLineWorkload(T=T, dim=k)
        instance = workload.generate(np.random.default_rng(seed))
        xs = instance.requests.packed[:, 0, 0]
        legacy = KSERVER_LEGACY[algorithm](workload.start_config(), xs)
        trace = simulate(instance, make_algorithm(algorithm), metric="l1")
        return legacy, trace

    @pytest.mark.parametrize("algorithm", sorted(KSERVER_LEGACY))
    @pytest.mark.parametrize("seed", KSERVER_SEEDS)
    def test_positions_bitwise(self, algorithm, seed):
        legacy, trace = self._run_pair(algorithm, seed)
        np.testing.assert_array_equal(trace.positions, legacy.positions)

    @pytest.mark.parametrize("algorithm", sorted(KSERVER_LEGACY))
    @pytest.mark.parametrize("seed", KSERVER_SEEDS)
    def test_total_cost_matches(self, algorithm, seed):
        legacy, trace = self._run_pair(algorithm, seed)
        np.testing.assert_allclose(
            float(trace.movement_costs.sum()), legacy.total, rtol=1e-12)

    def test_no_service_cost(self):
        # MOVEMENT_ONLY accounting: the request-point encoding never costs.
        _, trace = self._run_pair("dc-line", seed=0)
        assert float(np.abs(trace.service_costs).sum()) == 0.0

    @pytest.mark.parametrize("algorithm", sorted(KSERVER_LEGACY))
    def test_api_scalar_batched_parity(self, algorithm):
        base = Scenario.workload(
            "kserver-line", algorithm,
            params={"T": 60, "dim": 3},
            seeds=[0, 1], metric="l1", cost_model="movement-only", ratio="none")
        scalar = run(base.with_(engine="scalar")).costs
        batched = run(base.with_(engine="batched")).costs
        np.testing.assert_array_equal(scalar, batched)


class TestPageMigrationParity:
    """pm-* adapters reproduce repro.pagemigration.simulator exactly."""

    def _node_instance(self, metric, nodes, start, D, m):
        points = np.stack([graph_point(int(v)) for v in nodes])[:, None, :]
        return make_instance(points, start=graph_point(start), D=D, m=m,
                             name="pm-parity")

    def _run_pair(self, name: str, topology: str, seed: int,
                  T: int = 80, D: float = 2.0):
        metric = topology_metric(topology)
        network = metric.network
        rng = np.random.default_rng(seed)
        nodes = rng.integers(0, network.n, size=T)
        legacy = simulate_page_migration(network, nodes, PM_MAKERS[name](),
                                         start=0, D=D)
        m = float(network.distances.max()) + 1.0  # cap must never bind
        instance = self._node_instance(metric, nodes, start=0, D=D, m=m)
        trace = simulate(instance, PageMigrationAdapter(PM_MAKERS[name]()),
                         metric=metric)
        return legacy, trace

    @pytest.mark.parametrize("name", sorted(PM_MAKERS))
    @pytest.mark.parametrize("topology", ("road", "dc"))
    @pytest.mark.parametrize("seed", PM_SEEDS)
    def test_trajectory_and_costs(self, name, topology, seed):
        legacy, trace = self._run_pair(name, topology, seed)
        # Engine positions are node points (j, j, 0); decode exactly.
        np.testing.assert_array_equal(trace.positions[:, 0], trace.positions[:, 1])
        np.testing.assert_array_equal(trace.positions[:, 2], 0.0)
        np.testing.assert_array_equal(
            trace.positions[:, 0].astype(np.int64), legacy.pages)
        np.testing.assert_allclose(
            float(trace.movement_costs.sum()), legacy.movement, rtol=1e-12)
        np.testing.assert_allclose(
            float(trace.service_costs.sum()), legacy.service, rtol=1e-12)
        np.testing.assert_allclose(
            float(trace.movement_costs.sum() + trace.service_costs.sum()),
            legacy.total, rtol=1e-12)

    def test_adapter_requires_graph_metric(self):
        workload = KServerLineWorkload(T=5, dim=3)
        instance = workload.generate(np.random.default_rng(0))
        with pytest.raises(ValueError, match="metric='graph'"):
            simulate(instance, PageMigrationAdapter(StaticPage()), metric="l1")

    @pytest.mark.parametrize("source", ("graph-road", "graph-dc"))
    def test_api_run(self, source):
        scenario = Scenario.workload(
            source, "pm-greedy",
            params={"T": 30, "requests_per_step": 1, "m": 50.0},
            seeds=[0], metric="graph", ratio="none")
        result = run(scenario)
        assert np.all(np.isfinite(result.costs))
