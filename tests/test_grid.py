"""Tests for ``Scenario.grid`` and the pooled ``run_many(jobs=N)``.

The two invariants that make the sweep constructor composable:

* every grid cell keeps the content address of its standalone scenario
  (bracket sharing rides on *soft* dependencies), so grids, inline
  ``run_many`` calls and CLI runs share store entries;
* ``jobs=N`` fan-out is bit-identical to the inline path.  This
  container is single-CPU (``os.cpu_count() == 1`` in CI images too), so
  the asserted win is parity-through-the-store, not wall-clock speedup.
"""

import os

import numpy as np
import pytest

from repro.api import BRACKET_FN, Scenario, expand_axes, fixed, run_many
from repro.core.store import ResultsStore, digest_key


def _grid(seeds=(0, 1), ratio="bracket"):
    return Scenario.grid(
        "drift", ["mtc", "greedy-centroid"],
        params={"T": 40, "dim": 1, "D": 2.0, "m": 1.0},
        delta=[0.25, 0.5], seeds=seeds, ratio=ratio,
    )


class TestExpandAxes:
    def test_product_order_first_axis_outermost(self):
        names, points = expand_axes({"a": [1, 2], "b": "x", "c": [10, 20]})
        assert names == ["a", "c"]
        assert [(p["a"], p["c"]) for p in points] == [(1, 10), (1, 20), (2, 10), (2, 20)]
        assert all(p["b"] == "x" for p in points)

    def test_scalar_only_is_single_point(self):
        names, points = expand_axes({"a": 1})
        assert names == [] and points == [{"a": 1}]

    def test_fixed_escapes_a_literal_list(self):
        names, points = expand_axes({"a": fixed([1, 2])})
        assert names == [] and points == [{"a": [1, 2]}]

    def test_range_is_an_axis(self):
        names, points = expand_axes({"a": range(3)})
        assert names == ["a"] and len(points) == 3

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            expand_axes({"a": []})


class TestScenarioGrid:
    def test_expansion_and_axis_coords(self):
        g = _grid()
        assert len(g) == 4
        assert g.axes == ("algorithm", "delta")
        assert g.point_dicts()[0] == {"algorithm": "mtc", "delta": 0.25}
        assert [sc.algorithm for sc in g] == ["mtc", "mtc", "greedy-centroid",
                                              "greedy-centroid"]
        # axis coordinates are reflected in the scenario, not just the point
        for sc, point in zip(g.scenarios, g.point_dicts()):
            assert sc.algorithm == point["algorithm"]
            assert sc.delta == point["delta"]

    def test_params_may_be_axes(self):
        g = Scenario.grid("drift", "mtc", params={"T": [20, 40], "dim": 1})
        assert g.axes == ("T",)
        assert [dict(sc.source_params)["T"] for sc in g] == [20, 40]

    def test_source_axis_resolves_kind_per_source(self):
        g = Scenario.grid(["drift", "thm2"], "mtc")
        kinds = {sc.source: sc.kind for sc in g}
        assert kinds["drift"] == "workload" and kinds["thm2"] == "adversary"

    def test_unknown_source_rejected(self):
        with pytest.raises(KeyError, match="unknown source"):
            Scenario.grid("no-such-source", "mtc")

    def test_param_colliding_with_field_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            Scenario.grid("drift", "mtc", params={"source": [1, 2]})

    def test_seeds_are_lanes_not_axes(self):
        g = _grid(seeds=range(5))
        assert len(g) == 4
        assert all(sc.seeds == (0, 1, 2, 3, 4) for sc in g)

    def test_round_trip(self):
        g = _grid()
        g2 = type(g).from_dict(g.to_dict())
        assert g2 == g


class TestGridUnits:
    def test_bracket_cell_factored_once_per_share_group(self):
        units = _grid().units()
        brackets = [u for u in units if u.fn == BRACKET_FN]
        cells = [u for u in units if u.fn != BRACKET_FN]
        assert len(brackets) == 1 and brackets[0].ephemeral
        assert len(cells) == 4
        assert all(u.soft_deps == (brackets[0].key,) for u in cells)
        assert all(u.deps == () for u in cells)

    def test_cell_address_equals_standalone_scenario_digest(self):
        """Soft deps keep every cell on its Scenario.digest() address."""
        g = _grid()
        units = [u for u in g.units() if u.fn != BRACKET_FN]
        for unit, sc in zip(units, g.scenarios):
            assert digest_key(unit.fn, dict(unit.params)) == sc.digest()

    def test_no_factoring_without_bracket_certification(self):
        units = _grid(ratio="none").units()
        assert all(u.fn != BRACKET_FN for u in units)

    def test_no_factoring_for_single_member_groups(self):
        g = Scenario.grid("drift", "mtc", params={"T": [20, 30]},
                          seeds=(0,), ratio="bracket")
        # distinct T => distinct share groups of size 1: solve inline
        assert all(u.fn != BRACKET_FN for u in g.units())


class TestRunManyJobs:
    def test_jobs_parity_with_inline(self, tmp_path):
        """run_many(jobs=2) == run_many(jobs=1), bit for bit.

        Recorded alongside (single-CPU container): parity through the
        store is the asserted win, not speedup.
        """
        g = _grid()
        pooled = run_many(list(g), jobs=2, store=ResultsStore(tmp_path / "a"))
        inline = run_many(list(g), jobs=1)
        assert isinstance(os.cpu_count(), int)
        for rp, ri in zip(pooled, inline):
            assert np.array_equal(rp.costs, ri.costs)
            assert np.array_equal(rp.ratio_lower, ri.ratio_lower)
            assert np.array_equal(rp.ratio_upper, ri.ratio_upper)

    def test_pooled_results_cache_for_inline_runs(self, tmp_path):
        """Pooled and inline paths share content addresses in the store."""
        g = _grid()
        store = ResultsStore(tmp_path / "store")
        cold = run_many(list(g), jobs=2, store=store)
        assert all(sc.digest() in store for sc in g)
        warm = run_many(list(g), jobs=1, store=store)
        for rc, rw in zip(cold, warm):
            assert np.array_equal(rc.costs, rw.costs)
            assert rw.traces is None  # loaded from the store, not recomputed

    def test_grid_run_helper(self, tmp_path):
        g = _grid()
        results = g.run(store=ResultsStore(tmp_path / "store"), jobs=2)
        assert len(results) == len(g)

    def test_jobs_validation_and_trace_restriction(self):
        g = _grid()
        with pytest.raises(ValueError, match="at least 1"):
            run_many(list(g), jobs=0)
        with pytest.raises(ValueError, match="keep_traces"):
            run_many(list(g), jobs=2, keep_traces=True)

    def test_scenario_unit_with_non_bracket_hard_dep(self):
        """cell_run ignores dep payloads that carry no brackets."""
        from repro.api import Scenario, scenario_unit
        from repro.experiments.orchestrator import SweepSpec, execute

        sc1 = Scenario.workload("drift", "mtc",
                                params={"T": 20, "dim": 1, "D": 2.0, "m": 1.0})
        units = (scenario_unit("a", sc1),
                 scenario_unit("b", sc1.with_(delta=0.5), deps=("a",)))
        spec = SweepSpec("EX", units, finalize="repro.api.runtime:_collect_payloads")
        payloads = execute([spec]).results[0]
        assert sorted(payloads) == ["a", "b"]

    def test_single_scenario_jobs_falls_back_inline(self):
        sc = Scenario.workload("drift", "mtc",
                               params={"T": 30, "dim": 1, "D": 2.0, "m": 1.0})
        (res,) = run_many([sc], jobs=4, keep_traces=True)
        assert res.traces is not None  # inline path keeps traces
