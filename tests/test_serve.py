"""Streaming serve subsystem parity (:mod:`repro.serve`).

The tentpole contract: a request stream fed step by step through a
:class:`~repro.serve.pool.SessionPool` — in any pool composition, with
fused or unfused kernels, and across a checkpoint/resume cycle — must
reproduce the batched engine's per-step costs and positions
**bit-identically** for every vectorized algorithm.  Every comparison
here is exact (``trace_json`` round-trips float64 via ``repr``, so JSON
equality is bit equality), never approximate.
"""

import numpy as np
import pytest

from repro.algorithms.vectorized import VECTORIZED
from repro.api import Scenario, run
from repro.core.store import ResultsStore
from repro.serve import (
    SessionPool,
    SessionSpec,
    batch_reference,
    delete_session_checkpoint,
    load_session_checkpoint,
    poolable,
    request_stream_digest,
    save_session_checkpoint,
    stream_scenario,
    trace_json,
)

VEC_NAMES = sorted(VECTORIZED)
COST_MODELS = ("move-first", "answer-first")


def make_history(rng, steps, dim, *, max_r=3, allow_empty=True):
    """A ragged request stream: per-step (r_t, dim) arrays, r_t varying."""
    lo = 0 if allow_empty else 1
    return [
        rng.normal(size=(int(rng.integers(lo, max_r + 1)), dim))
        for _ in range(steps)
    ]


def make_spec(algorithm, *, dim=2, cost_model="move-first", seed=0, **kw):
    rng = np.random.default_rng(seed)
    return SessionSpec(
        algorithm=algorithm,
        dim=dim,
        start=tuple(float(x) for x in rng.normal(size=dim)),
        D=1.5,
        m=0.7,
        cost_model=cost_model,
        delta=0.25,
        **kw,
    )


def stream_one(spec, history, *, fuse=None):
    pool = SessionPool(fuse=fuse)
    session = pool.open(spec, "lane")
    for step, points in enumerate(history):
        session.feed(points, at=step)
        pool.tick()
    return session


def assert_bit_identical(session, reference):
    streamed = session.trace()
    assert trace_json(streamed) == trace_json(reference)
    assert streamed.positions.tobytes() == reference.positions.tobytes()
    assert streamed.movement_costs.tobytes() == reference.movement_costs.tobytes()
    assert streamed.service_costs.tobytes() == reference.service_costs.tobytes()


class TestSingleLaneParity:
    @pytest.mark.parametrize("cost_model", COST_MODELS)
    @pytest.mark.parametrize("algorithm", VEC_NAMES)
    def test_every_vectorized_algorithm(self, algorithm, cost_model):
        rng = np.random.default_rng(7)
        spec = make_spec(algorithm, cost_model=cost_model)
        history = make_history(rng, 25, spec.dim)
        session = stream_one(spec, history)
        assert_bit_identical(session, batch_reference(spec, history))

    @pytest.mark.parametrize("algorithm", ("mtc", "lazy", "coin-flip"))
    def test_unfused_path_matches(self, algorithm):
        rng = np.random.default_rng(11)
        spec = make_spec(algorithm, dim=3)
        history = make_history(rng, 20, spec.dim)
        fused = stream_one(spec, history, fuse=True)
        unfused = stream_one(spec, history, fuse=False)
        reference = batch_reference(spec, history, fuse=False)
        assert trace_json(fused.trace()) == trace_json(unfused.trace())
        assert_bit_identical(unfused, reference)

    def test_scalar_adapter_lane(self):
        # algorithm_params force the scalar-adapter path (not poolable);
        # it must still bit-match the batch engine's adapter path.
        rng = np.random.default_rng(13)
        spec = make_spec("mtc", algorithm_params={"step_scale": 0.25})
        assert not poolable(spec)
        history = make_history(rng, 15, spec.dim)
        session = stream_one(spec, history)
        assert_bit_identical(session, batch_reference(spec, history))


class TestPooledParity:
    def test_mixed_pool_lanes_stay_independent(self):
        # Different algorithms, dims and cost models in ONE pool: each
        # lane must still reproduce its own B=1 batch run exactly.
        rng = np.random.default_rng(17)
        specs = [
            make_spec("mtc", dim=2, seed=1),
            make_spec("greedy-centroid", dim=3, seed=2),
            make_spec("lazy", dim=2, cost_model="answer-first", seed=3),
            make_spec("coin-flip", dim=2, seed=4),
            make_spec("nearest-chaser", dim=5, seed=5),
        ]
        histories = [make_history(rng, 18, s.dim) for s in specs]
        pool = SessionPool()
        sessions = [pool.open(s, f"lane{i}") for i, s in enumerate(specs)]
        for step in range(18):
            for i, session in enumerate(sessions):
                session.feed(histories[i][step], at=step)
            pool.tick()
        for session, spec, history in zip(sessions, specs, histories):
            assert_bit_identical(session, batch_reference(spec, history))

    def test_same_algorithm_wave_packs_wide(self):
        # Lanes sharing (algorithm, dim, cost model) advance as one wide
        # wave — results must equal each lane's solo batch run.
        rng = np.random.default_rng(19)
        specs = [make_spec("greedy-center", seed=s) for s in range(6)]
        histories = [make_history(rng, 22, 2) for _ in specs]
        pool = SessionPool()
        sessions = [pool.open(s, f"w{i}") for i, s in enumerate(specs)]
        for step in range(22):
            for i, session in enumerate(sessions):
                session.feed(histories[i][step], at=step)
            pool.tick()
        for session, spec, history in zip(sessions, specs, histories):
            assert_bit_identical(session, batch_reference(spec, history))

    def test_ragged_request_counts_subgroup(self):
        # Lanes with differing per-step r land in different sub-waves;
        # each still matches its own reference including empty steps.
        rng = np.random.default_rng(23)
        specs = [make_spec("follow-last", seed=s) for s in range(4)]
        histories = [
            [rng.normal(size=(r, 2)) for r in (0, 1, 2, 3, 0, 2, 1, 4, 0, 1)],
            [rng.normal(size=(r, 2)) for r in (1, 1, 0, 3, 2, 2, 1, 0, 4, 1)],
            [rng.normal(size=(r, 2)) for r in (2, 0, 2, 0, 2, 0, 2, 0, 2, 0)],
            [rng.normal(size=(r, 2)) for r in (3, 3, 3, 3, 3, 3, 3, 3, 3, 3)],
        ]
        pool = SessionPool()
        sessions = [pool.open(s, f"r{i}") for i, s in enumerate(specs)]
        for step in range(10):
            for i, session in enumerate(sessions):
                session.feed(histories[i][step], at=step)
            pool.tick()
        for session, spec, history in zip(sessions, specs, histories):
            assert_bit_identical(session, batch_reference(spec, history))

    def test_dynamic_membership(self):
        # Opening a lane mid-stream and closing another must not perturb
        # the survivors: carried lane state licenses re-packing.
        rng = np.random.default_rng(29)
        spec_a = make_spec("move-to-min", seed=1)
        spec_b = make_spec("move-to-min", seed=2)
        spec_c = make_spec("move-to-min", seed=3)
        hist_a = make_history(rng, 20, 2)
        hist_b = make_history(rng, 12, 2)
        hist_c = make_history(rng, 10, 2)

        pool = SessionPool()
        a = pool.open(spec_a, "a")
        b = pool.open(spec_b, "b")
        for step in range(12):
            a.feed(hist_a[step], at=step)
            b.feed(hist_b[step], at=step)
            pool.tick()
        pool.close("b")
        c = pool.open(spec_c, "c")
        for step in range(12, 20):
            a.feed(hist_a[step], at=step)
            c.feed(hist_c[step - 12], at=step - 12)
            pool.tick()
        c.feed_steps(hist_c[8:], at=8)
        pool.drain()

        assert_bit_identical(a, batch_reference(spec_a, hist_a))
        assert_bit_identical(b, batch_reference(spec_b, hist_b))
        assert_bit_identical(c, batch_reference(spec_c, hist_c))

    def test_wide_packing_matches_solo_lanes(self):
        # A lane advanced inside a packed wave must equal the same lane
        # advanced alone in its own pool.
        rng = np.random.default_rng(31)
        specs = [make_spec("nearest-chaser", seed=s) for s in range(3)]
        histories = [make_history(rng, 15, 2) for _ in specs]

        pool = SessionPool()
        wide = [pool.open(s, f"n{i}") for i, s in enumerate(specs)]
        for step in range(15):
            for i, session in enumerate(wide):
                session.feed(histories[i][step], at=step)
            pool.tick()

        for i, spec in enumerate(specs):
            solo_pool = SessionPool()
            solo = solo_pool.open(spec, "solo")
            solo.feed_steps(histories[i], at=0)
            solo_pool.drain()
            assert trace_json(wide[i].trace()) == trace_json(solo.trace())


class TestCheckpointResume:
    def test_mid_trace_resume_is_bit_identical(self, tmp_path):
        # Kill-and-resume semantics without a subprocess: checkpoint a
        # session mid-stream, rebuild it in a fresh pool by replaying the
        # checkpointed history, feed the remainder — the final trace must
        # be byte-equal to the uninterrupted run.
        rng = np.random.default_rng(37)
        store = ResultsStore(tmp_path / "store")
        for algorithm in ("mtc", "coin-flip", "lazy-aggressive"):
            spec = make_spec(algorithm, seed=41)
            history = make_history(rng, 24, spec.dim)

            pool = SessionPool()
            live = pool.open(spec, "live")
            for step in range(14):
                live.feed(history[step], at=step)
                pool.tick()
            save_session_checkpoint(store, "srv", live)

            loaded = load_session_checkpoint(store, "srv", "live")
            assert loaded is not None
            restored_spec, restored_history = loaded
            assert restored_spec == spec
            assert len(restored_history) == 14

            pool2 = SessionPool()
            resumed = pool2.open(restored_spec, "live")
            resumed.feed_steps(restored_history, at=0)
            pool2.drain()
            for step in range(14, 24):
                resumed.feed(history[step], at=step)
                pool2.tick()

            assert_bit_identical(resumed, batch_reference(spec, history))
            delete_session_checkpoint(store, "srv", "live")

    def test_checkpoint_roundtrip_preserves_stream_digest(self, tmp_path):
        rng = np.random.default_rng(43)
        store = ResultsStore(tmp_path / "store")
        spec = make_spec("static")
        history = make_history(rng, 9, spec.dim)
        pool = SessionPool()
        session = pool.open(spec, "d")
        session.feed_steps(history, at=0)
        pool.drain()
        save_session_checkpoint(store, "srv", session)
        loaded_spec, loaded_history = load_session_checkpoint(store, "srv", "d")
        assert request_stream_digest(loaded_history, spec.dim) == session.stream_digest()

    def test_missing_checkpoint_is_none(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        assert load_session_checkpoint(store, "srv", "nope") is None


class TestScenarioStreaming:
    def test_stream_scenario_matches_api_run(self):
        scenario = Scenario.workload(
            "drift", "greedy-centroid", params={"T": 30, "dim": 2},
            seeds=(0, 1, 2), delta=0.3,
        )
        result = run(scenario, keep_traces=True)
        sessions = stream_scenario(scenario)
        assert len(sessions) == 3
        streamed_costs = np.array([s.total_cost for s in sessions])
        np.testing.assert_array_equal(streamed_costs, result.costs)
        for session, reference in zip(sessions, result.traces):
            assert trace_json(session.trace()) == trace_json(reference)


class TestSessionProtocol:
    def test_duplicate_feed_is_idempotent_gap_raises(self):
        spec = make_spec("mtc")
        pool = SessionPool()
        session = pool.open(spec, "p")
        pts = np.zeros((1, 2))
        assert session.feed(pts, at=0) is True
        assert session.feed(pts, at=0) is False  # replayed duplicate
        with pytest.raises(ValueError, match="gap"):
            session.feed(pts, at=5)
        with pytest.raises(ValueError):
            session.feed(np.zeros((1, 3)), at=1)  # wrong dim

    def test_closed_session_rejects_feeds(self):
        pool = SessionPool()
        session = pool.open(make_spec("static"), "c")
        session.feed(np.zeros((1, 2)), at=0)
        pool.close("c")
        assert session.closed
        with pytest.raises(RuntimeError):
            session.feed(np.zeros((1, 2)), at=1)

    def test_spec_roundtrips_through_dict(self):
        spec = make_spec("lazy", algorithm_params={"threshold": 2.0})
        assert SessionSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError):
            SessionSpec.from_dict({"algorithm": "mtc", "dim": 2,
                                   "start": [0.0, 0.0], "bogus": 1})

    def test_stream_digest_sensitivity(self):
        rng = np.random.default_rng(47)
        a = [rng.normal(size=(2, 2)), rng.normal(size=(1, 2))]
        base = request_stream_digest(a, 2)
        assert request_stream_digest(a, 2) == base
        assert request_stream_digest(list(reversed(a)), 2) != base
        assert request_stream_digest(a[:1], 2) != base
        perturbed = [a[0].copy(), a[1].copy()]
        perturbed[1][0, 0] += 1e-12
        assert request_stream_digest(perturbed, 2) != base
