"""Tests for Move-to-Center and its variants — the paper's algorithm."""

import numpy as np
import pytest

from repro.algorithms import (
    AnswerFirstMoveToCenter,
    MoveToCenter,
    MovingClientMtC,
)
from repro.core import (
    CostModel,
    MSPInstance,
    RequestBatch,
    RequestSequence,
    simulate,
)


def _instance(D=4.0, m=1.0, dim=1, T=1, model=CostModel.MOVE_FIRST):
    seq = RequestSequence.from_packed(np.zeros((T, 1, dim)))
    return MSPInstance(seq, start=np.zeros(dim), D=D, m=m, cost_model=model)


def _prepared(alg, D=4.0, m=1.0, dim=1, delta=0.0):
    inst = _instance(D=D, m=m, dim=dim)
    alg.reset(inst, inst.online_cap(delta))
    return alg


class TestMtCDecisionRule:
    def test_step_length_is_min_one_r_over_d(self):
        """The paper's rule: move min{1, r/D} * d(P, c) towards c."""
        alg = _prepared(MoveToCenter(), D=4.0, m=10.0)
        batch = RequestBatch(np.array([[2.0]]))  # r=1, c=2.0, d(P,c)=2
        new = alg.decide(0, batch)
        # min(1, 1/4) * 2.0 = 0.5
        np.testing.assert_allclose(new, [0.5])

    def test_full_jump_when_r_exceeds_d(self):
        alg = _prepared(MoveToCenter(), D=2.0, m=10.0)
        batch = RequestBatch(np.tile([[2.0]], (3, 1)))  # r=3 > D=2
        new = alg.decide(0, batch)
        np.testing.assert_allclose(new, [2.0])  # min(1, 3/2)=1 -> all the way

    def test_cap_clamps_step(self):
        alg = _prepared(MoveToCenter(), D=1.0, m=1.0, delta=0.5)
        batch = RequestBatch(np.array([[100.0]]))
        new = alg.decide(0, batch)
        np.testing.assert_allclose(new, [1.5])  # (1+delta)*m

    def test_empty_batch_stays(self):
        alg = _prepared(MoveToCenter())
        new = alg.decide(0, RequestBatch(np.empty((0, 1))))
        np.testing.assert_allclose(new, [0.0])

    def test_requests_at_server_stays(self):
        alg = _prepared(MoveToCenter())
        new = alg.decide(0, RequestBatch(np.zeros((3, 1))))
        np.testing.assert_allclose(new, [0.0])

    def test_moves_along_segment_towards_center(self):
        alg = _prepared(MoveToCenter(), D=2.0, m=0.25, dim=2)
        batch = RequestBatch(np.array([[3.0, 4.0]]))
        new = alg.decide(0, batch)
        # Direction (0.6, 0.8), step = min(min(1,1/2)*5, 0.25) = 0.25.
        np.testing.assert_allclose(new, [0.15, 0.2])

    def test_tie_break_uses_server_position(self):
        """Even collinear batch: c is the median-interval point closest to P."""
        alg = _prepared(MoveToCenter(), D=1.0, m=100.0)
        alg.position = np.array([1.5])
        batch = RequestBatch(np.array([[0.0], [1.0], [2.0], [3.0]]))
        new = alg.decide(0, batch)
        np.testing.assert_allclose(new, [1.5])  # already in the median set

    def test_never_violates_cap_on_random_runs(self, rng):
        pts = np.cumsum(rng.normal(size=(100, 1)) * 2.0, axis=0)
        inst = MSPInstance(RequestSequence.single_requests(pts), start=np.zeros(1),
                           D=2.0, m=0.5)
        tr = simulate(inst, MoveToCenter(), delta=0.25)
        tr.validate_against_cap(0.625)


class TestMtCAblations:
    def test_invalid_step_scale(self):
        with pytest.raises(ValueError):
            MoveToCenter(step_scale=0.0)
        with pytest.raises(ValueError):
            MoveToCenter(step_scale=1.5)

    def test_invalid_cap_fraction(self):
        with pytest.raises(ValueError):
            MoveToCenter(cap_fraction=0.0)

    def test_invalid_tie_break(self):
        with pytest.raises(ValueError):
            MoveToCenter(tie_break="bogus")

    def test_fixed_scale_overrides_damping(self):
        alg = _prepared(MoveToCenter(step_scale=1.0), D=4.0, m=10.0)
        batch = RequestBatch(np.array([[2.0]]))
        np.testing.assert_allclose(alg.decide(0, batch), [2.0])

    def test_cap_fraction_limits_speed(self):
        alg = _prepared(MoveToCenter(cap_fraction=0.5), D=1.0, m=1.0, delta=1.0)
        batch = RequestBatch(np.array([[100.0]]))
        np.testing.assert_allclose(alg.decide(0, batch), [1.0])  # 0.5 * 2.0

    def test_midpoint_tie_break(self):
        alg = _prepared(MoveToCenter(tie_break="midpoint"), D=1.0, m=100.0)
        batch = RequestBatch(np.array([[0.0], [4.0]]))
        np.testing.assert_allclose(alg.decide(0, batch), [2.0])

    def test_names_reflect_ablations(self):
        assert MoveToCenter().name == "mtc"
        assert "scale" in MoveToCenter(step_scale=0.5).name
        assert "tie" in MoveToCenter(tie_break="midpoint").name


class TestAnswerFirstMtC:
    def test_requires_answer_first_instance(self):
        inst = _instance(model=CostModel.MOVE_FIRST)
        with pytest.raises(ValueError, match="ANSWER_FIRST"):
            simulate(inst, AnswerFirstMoveToCenter())

    def test_runs_on_answer_first(self):
        inst = _instance(model=CostModel.ANSWER_FIRST, T=5)
        tr = simulate(inst, AnswerFirstMoveToCenter())
        assert tr.length == 5

    def test_same_decisions_as_plain_mtc(self):
        """Theorem 7 analyses the *same* rule; only accounting differs."""
        pts = np.linspace(0, 3, 8).reshape(8, 1, 1)
        seq = RequestSequence.from_packed(pts)
        inst_mf = MSPInstance(seq, start=np.zeros(1), D=2.0, m=1.0)
        inst_af = inst_mf.with_cost_model(CostModel.ANSWER_FIRST)
        tr_mf = simulate(inst_mf, MoveToCenter(), delta=0.5)
        tr_af = simulate(inst_af, AnswerFirstMoveToCenter(), delta=0.5)
        np.testing.assert_allclose(tr_mf.positions, tr_af.positions)


class TestMovingClientMtC:
    def test_rule_min_cap_dist_over_d(self):
        inst = _instance(D=4.0, m=1.0)
        alg = MovingClientMtC()
        alg.reset(inst, 1.0)
        batch = RequestBatch(np.array([[2.0]]))
        # min(1.0, 2.0/4.0) = 0.5 towards the agent.
        np.testing.assert_allclose(alg.decide(0, batch), [0.5])

    def test_cap_binds_when_agent_far(self):
        inst = _instance(D=1.0, m=1.0)
        alg = MovingClientMtC()
        alg.reset(inst, 1.0)
        batch = RequestBatch(np.array([[50.0]]))
        np.testing.assert_allclose(alg.decide(0, batch), [1.0])

    def test_rejects_multi_request_batch(self):
        inst = _instance()
        alg = MovingClientMtC()
        alg.reset(inst, 1.0)
        with pytest.raises(ValueError, match="one request"):
            alg.decide(0, RequestBatch(np.zeros((2, 1))))

    def test_empty_batch_stays(self):
        inst = _instance()
        alg = MovingClientMtC()
        alg.reset(inst, 1.0)
        np.testing.assert_allclose(alg.decide(0, RequestBatch(np.empty((0, 1)))), [0.0])

    def test_trails_agent_within_dm(self, rng):
        """Theorem 10's proof: MtC keeps d(P, A) <= D*m + agent step."""
        from repro.workloads import PatrolAgentWorkload

        wl = PatrolAgentWorkload(T=150, dim=2, D=3.0, m_server=1.0, m_agent=1.0)
        mc = wl.generate(rng)
        inst = mc.as_msp()
        tr = simulate(inst, MovingClientMtC(), delta=0.0)
        gaps = np.linalg.norm(tr.positions[1:] - mc.agent_path, axis=1)
        assert gaps.max() <= mc.D * inst.m + mc.m_agent + 1e-6
