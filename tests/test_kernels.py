"""Fused step kernels and cross-cell mega-batching: bit-parity contracts.

Two independent fast paths promise *bit-identical* float64 results:

* :mod:`repro.core.kernels` — fused decide/clamp/validate/accounting
  kernels that :func:`repro.core.engine.simulate_batch` auto-selects for
  kernel-capable algorithms on uniformly packed request stacks; and
* cross-cell mega-batching (:mod:`repro.api.runtime`) — compatible
  scenario cells packed into one wide ``simulate_batch`` call, split
  back per cell with unchanged store digests.

These tests enforce both contracts, the fusion toggles that gate them
(``--no-fuse``), and the dispatch conditions under which they engage.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.kernels as kernels_mod
from repro.api import Scenario, run, run_many
from repro.api.runtime import _mega_key, build_instances, cell_run
from repro.core import (
    KERNELS,
    CostModel,
    MSPInstance,
    RequestSequence,
    fusion,
    fusion_enabled,
    set_fusion,
    simulate_batch,
)
from repro.core.kernels import kernel_for
from repro.core.store import ResultsStore

KERNEL_ALGOS = sorted(KERNELS)

_TRACE_FIELDS = ("positions", "movement_costs", "service_costs",
                 "distances_moved", "request_counts")


def _assert_batches_equal(a, b):
    for field in _TRACE_FIELDS:
        np.testing.assert_array_equal(getattr(a, field), getattr(b, field),
                                      err_msg=field)


def _uniform_instances(dim: int, T: int, B: int, r: int, *,
                       model: CostModel = CostModel.MOVE_FIRST,
                       seed: int = 0) -> list[MSPInstance]:
    """Packed instances with heterogeneous caps: per-lane D and m vary."""
    out = []
    for s in range(B):
        rng = np.random.default_rng(seed * 1000 + s)
        demand = np.cumsum(rng.normal(scale=0.4, size=(T, dim)), axis=0)
        pts = demand[:, None, :] + rng.normal(scale=0.3, size=(T, r, dim))
        out.append(MSPInstance(
            RequestSequence.from_packed(pts),
            start=rng.normal(scale=0.5, size=dim),
            D=1.5 + 0.5 * (s % 3),
            m=0.5 + 0.25 * (s % 4),
            cost_model=model,
        ))
    return out


# -- fused kernel parity ---------------------------------------------------


class TestFusedParity:
    @pytest.mark.parametrize("name", KERNEL_ALGOS)
    @pytest.mark.parametrize("model", [CostModel.MOVE_FIRST, CostModel.ANSWER_FIRST])
    @pytest.mark.parametrize("dim,r", [(1, 1), (1, 9), (2, 1), (2, 4), (3, 9)])
    def test_bit_identical_to_per_step_loop(self, name, model, dim, r):
        """Every kernel, both cost models, dims/request counts straddling
        the kernels' internal layout thresholds (d≤2 slice-add vs einsum,
        r≥8 transposed reductions)."""
        instances = _uniform_instances(dim, T=36, B=6, r=r, model=model)
        loop = simulate_batch(instances, name, delta=0.5, fuse=False)
        fused = simulate_batch(instances, name, delta=0.5, fuse=True)
        _assert_batches_equal(fused, loop)

    @pytest.mark.parametrize("name", KERNEL_ALGOS)
    @pytest.mark.parametrize("delta", [0.0, 0.125, 1.0])
    def test_delta_sweep(self, name, delta):
        instances = _uniform_instances(2, T=30, B=5, r=2, seed=3)
        loop = simulate_batch(instances, name, delta=delta, fuse=False)
        fused = simulate_batch(instances, name, delta=delta, fuse=True)
        _assert_batches_equal(fused, loop)

    @pytest.mark.parametrize("name", KERNEL_ALGOS)
    def test_per_lane_delta_array(self, name):
        instances = _uniform_instances(2, T=30, B=4, r=2, seed=5)
        deltas = np.array([0.0, 0.25, 0.5, 1.0])
        loop = simulate_batch(instances, name, delta=deltas, fuse=False)
        fused = simulate_batch(instances, name, delta=deltas, fuse=True)
        _assert_batches_equal(fused, loop)

    @pytest.mark.parametrize("name", KERNEL_ALGOS)
    def test_mixed_cost_models_per_lane(self, name):
        base = _uniform_instances(2, T=25, B=4, r=3, seed=9)
        instances = [
            inst.with_cost_model(CostModel.ANSWER_FIRST if i % 2 else CostModel.MOVE_FIRST)
            for i, inst in enumerate(base)
        ]
        loop = simulate_batch(instances, name, delta=0.5, fuse=False)
        fused = simulate_batch(instances, name, delta=0.5, fuse=True)
        _assert_batches_equal(fused, loop)

    def test_ragged_instances_fall_back_and_agree(self):
        """No packed stack → fused dispatch declines; results still agree."""
        rng = np.random.default_rng(2)
        instances = []
        for s in range(3):
            counts = rng.integers(0, 4, size=20)
            batches = [rng.normal(scale=0.5, size=(int(c), 2)) for c in counts]
            seq = RequestSequence(batches, dim=2)
            instances.append(MSPInstance(seq, start=np.zeros(2), D=2.0, m=1.0))
        loop = simulate_batch(instances, "greedy-centroid", delta=0.5, fuse=False)
        fused = simulate_batch(instances, "greedy-centroid", delta=0.5, fuse=True)
        _assert_batches_equal(fused, loop)


class TestMedianFamilyVariants:
    """Ablation variants share their family's kernel; every parameter
    combination must stay bit-identical to the per-step loop under both
    cost models and per-lane δ arrays."""

    def _factories(self):
        from repro.algorithms.vectorized import (
            BatchedFollowLast,
            BatchedLazyThreshold,
            BatchedMoveToCenter,
            BatchedMoveToMin,
        )

        return {
            "mtc-scale": lambda: BatchedMoveToCenter(step_scale=0.5),
            "mtc-weiszfeld": lambda: BatchedMoveToCenter(tie_break="weiszfeld"),
            "mtc-midpoint": lambda: BatchedMoveToCenter(tie_break="midpoint"),
            "mtc-capfrac": lambda: BatchedMoveToCenter(cap_fraction=0.5),
            "follow-smooth": lambda: BatchedFollowLast(smoothing=0.25),
            "lazy-aggressive": lambda: BatchedLazyThreshold(threshold_factor=0.25),
            "lazy-window": lambda: BatchedLazyThreshold(window=3),
            "mtm-phase": lambda: BatchedMoveToMin(phase_requests=3),
        }

    @pytest.mark.parametrize("variant", [
        "mtc-scale", "mtc-weiszfeld", "mtc-midpoint", "mtc-capfrac",
        "follow-smooth", "lazy-aggressive", "lazy-window", "mtm-phase",
    ])
    @pytest.mark.parametrize("model", [CostModel.MOVE_FIRST, CostModel.ANSWER_FIRST])
    def test_variant_bit_identical(self, variant, model):
        factory = self._factories()[variant]
        instances = _uniform_instances(2, T=32, B=5, r=3, model=model, seed=4)
        deltas = np.array([0.0, 0.25, 0.5, 1.0, 2.0])
        loop = simulate_batch(instances, factory(), delta=deltas, fuse=False)
        fused = simulate_batch(instances, factory(), delta=deltas, fuse=True)
        _assert_batches_equal(fused, loop)

    @pytest.mark.parametrize("name", ["lazy-aggressive", "follow-smooth"])
    def test_registry_variant_names_fuse(self, name, monkeypatch):
        """The registry spellings dispatch to their family kernel and stay
        bit-identical."""
        calls = []
        real = kernels_mod.run_fused

        def spy(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(kernels_mod, "run_fused", spy)
        instances = _uniform_instances(2, T=24, B=4, r=2, seed=6)
        fused = simulate_batch(instances, name, delta=0.5)
        assert len(calls) == 1
        loop = simulate_batch(instances, name, delta=0.5, fuse=False)
        _assert_batches_equal(fused, loop)


class TestNearestChaserRaggedFallback:
    def test_padded_argmin_matches_scalar_loop(self):
        """The vectorized ragged fallback (padded +inf argmin) must pick
        the same request — first of ties included — as the per-lane scalar
        algorithms."""
        from repro.algorithms.registry import ALGORITHMS
        from repro.algorithms.vectorized import ScalarBatchAdapter

        rng = np.random.default_rng(31)
        instances = []
        for s in range(4):
            counts = rng.integers(0, 5, size=30)
            counts[::7] = 0  # lanes with empty steps stay put
            batches = [rng.normal(scale=0.5, size=(int(c), 2)) for c in counts]
            instances.append(MSPInstance(RequestSequence(batches, dim=2),
                                         start=rng.normal(size=2), D=2.0, m=1.0))
        got = simulate_batch(instances, "nearest-chaser", delta=0.5, fuse=False)
        adapter = ScalarBatchAdapter(ALGORITHMS["nearest-chaser"],
                                     name="nearest-chaser")
        want = simulate_batch(instances, adapter, delta=0.5, fuse=False)
        _assert_batches_equal(got, want)

    def test_exact_ties_resolve_to_first_request(self):
        """Duplicate equidistant requests: argmin must keep the scalar
        first-index tie-break."""
        pts = np.array([[1.0, 0.0], [1.0, 0.0], [-1.0, 0.0]])
        seq = RequestSequence([pts, pts[:2], np.empty((0, 2))], dim=2)
        inst = MSPInstance(seq, start=np.zeros(2), D=1.0, m=1.0)
        trace = simulate_batch([inst], "nearest-chaser", delta=0.0, fuse=False)
        np.testing.assert_array_equal(trace.positions[0, 1], [1.0, 0.0])
        np.testing.assert_array_equal(trace.positions[0, 3], trace.positions[0, 2])


# -- dispatch and toggles --------------------------------------------------


class TestFusionDispatch:
    def test_every_kernel_is_registered_on_its_algorithm(self):
        from repro.algorithms import make_vectorized

        for name in KERNEL_ALGOS:
            assert kernel_for(make_vectorized(name)) is KERNELS[name]
        # Variant registry names advertise their family's kernel ...
        assert kernel_for(make_vectorized("lazy-aggressive")) is KERNELS["lazy"]
        assert kernel_for(make_vectorized("follow-smooth")) is KERNELS["follow-last"]
        # ... and the per-lane-RNG algorithm stays unkerneled.
        assert kernel_for(make_vectorized("coin-flip")) is None

    def test_set_fusion_returns_previous_state(self):
        assert fusion_enabled()
        assert set_fusion(False) is True
        try:
            assert not fusion_enabled()
            assert set_fusion(True) is False
        finally:
            set_fusion(True)
        assert fusion_enabled()

    def test_fusion_context_manager_restores_on_exit(self):
        with fusion(False):
            assert not fusion_enabled()
            with fusion(True):
                assert fusion_enabled()
            assert not fusion_enabled()
        assert fusion_enabled()

    def _count_fused_calls(self, monkeypatch):
        calls = []
        real = kernels_mod.run_fused

        def spy(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(kernels_mod, "run_fused", spy)
        return calls

    def test_auto_dispatch_uses_kernel_when_enabled(self, monkeypatch):
        calls = self._count_fused_calls(monkeypatch)
        instances = _uniform_instances(2, T=10, B=3, r=2)
        simulate_batch(instances, "static", delta=0.5)
        assert len(calls) == 1

    def test_auto_dispatch_respects_global_toggle(self, monkeypatch):
        calls = self._count_fused_calls(monkeypatch)
        instances = _uniform_instances(2, T=10, B=3, r=2)
        with fusion(False):
            simulate_batch(instances, "static", delta=0.5)
        assert calls == []

    def test_no_kernel_for_unkerneled_algorithm(self, monkeypatch):
        calls = self._count_fused_calls(monkeypatch)
        instances = _uniform_instances(2, T=10, B=3, r=2)
        simulate_batch(instances, "coin-flip", delta=0.5)
        assert calls == []


# -- cross-cell mega-batching ----------------------------------------------


def _scenario(algorithm: str, *, delta: float, seeds, source: str = "random-walk",
              ratio: str = "none", T: int = 30) -> Scenario:
    params = {"T": T, "dim": 2, "D": 2.0, "m": 1.0,
              "sigma": 0.3, "spread": 0.4, "requests_per_step": 2}
    if source == "drift":
        params = {"T": T, "dim": 2, "D": 2.0, "m": 1.0,
                  "speed": 0.6, "spread": 0.2, "requests_per_step": 2}
    return Scenario.workload(source, algorithm, params=params, seeds=seeds,
                             delta=delta, ratio=ratio)


def _values_equal(va, vb, path: str) -> None:
    if isinstance(va, dict):
        assert isinstance(vb, dict) and set(va) == set(vb), path
        for k in va:
            _values_equal(va[k], vb[k], f"{path}.{k}")
    elif isinstance(va, (list, tuple, np.ndarray)) and not isinstance(va, str):
        np.testing.assert_array_equal(np.asarray(va), np.asarray(vb),
                                      err_msg=path)
    else:
        assert va == vb, path


def _payloads_equal(a: dict, b: dict) -> None:
    """Payload equality modulo wall-clock (the only licensed difference)."""
    assert set(a) == set(b)
    for key in a:
        if key != "elapsed":
            _values_equal(a[key], b[key], key)


class TestMegaBatching:
    #: A sweep that differs only in seed/δ/source — one mega group per
    #: (algorithm, T, dim), i.e. all four cells fuse into one wide pass.
    def _sweep(self, algorithm: str = "greedy-centroid") -> list[Scenario]:
        return [
            _scenario(algorithm, delta=d, seeds=[10 + s, 20 + s], source=src)
            for d in (0.25, 1.0)
            for s, src in enumerate(("random-walk", "drift"))
        ]

    def test_mega_key_groups_compatible_cells(self):
        scenarios = self._sweep()
        keys = {_mega_key(sc, build_instances(sc)[0]) for sc in scenarios}
        assert keys == {("greedy-centroid", 30, 2)}

    def test_run_many_matches_individual_runs(self):
        scenarios = self._sweep()
        grouped = run_many(scenarios)
        for sc, res in zip(scenarios, grouped):
            assert res.engine == "batched"
            _payloads_equal(res.as_payload(), run(sc).as_payload())

    def test_run_many_matches_no_fuse(self):
        scenarios = self._sweep("nearest-chaser")
        grouped = run_many(scenarios)
        with fusion(False):
            ungrouped = run_many(scenarios)
        for a, b in zip(grouped, ungrouped):
            _payloads_equal(a.as_payload(), b.as_payload())

    def test_bracket_certified_cells_mega_batch(self):
        """ratio="bracket" cells join the group; measurements are identical."""
        scenarios = [_scenario("greedy-centroid", delta=d, seeds=[7, 8],
                               ratio="bracket", T=20) for d in (0.5, 1.0)]
        grouped = run_many(scenarios)
        for sc, res in zip(scenarios, grouped):
            assert res.measurements is not None
            _payloads_equal(res.as_payload(), run(sc).as_payload())

    def test_store_digests_unchanged_and_cache_hits(self, tmp_path):
        """Mega-batched results land under each cell's standalone digest,
        so a re-run (and a fusion-off run) is a pure cache hit."""
        scenarios = self._sweep()
        store = ResultsStore(tmp_path / "store")
        first = run_many(scenarios, store=store)
        assert all(not r.cached for r in first)
        for sc in scenarios:
            assert store.load_or_none(sc.digest()) is not None
        again = run_many(scenarios, store=store)
        assert all(r.cached for r in again)
        with fusion(False):
            off = run_many(scenarios, store=store)
        assert all(r.cached for r in off)
        for a, b in zip(first, again):
            _payloads_equal(a.as_payload(), b.as_payload())

    def test_mixed_algorithms_split_into_groups(self):
        scenarios = (self._sweep("greedy-centroid")[:2]
                     + self._sweep("static")[:2]
                     + [_scenario("mtc", delta=0.5, seeds=[3, 4])])
        results = run_many(scenarios)
        for sc, res in zip(scenarios, results):
            _payloads_equal(res.as_payload(), run(sc).as_payload())

    def test_two_mtc_cells_pack_without_warm_start_leaks(self):
        """Regression: mtc's per-lane warm-start centers must stay inside
        their own cell when two mtc cells pack into one wide simulate_batch
        (and when the loop path replays the same pack with fusion off)."""
        scenarios = [_scenario("mtc", delta=d, seeds=[1, 2]) for d in (0.25, 1.0)]
        keys = {_mega_key(sc, build_instances(sc)[0]) for sc in scenarios}
        assert len(keys) == 1  # both cells really share one mega group
        for fuse_on in (True, False):
            with fusion(fuse_on):
                grouped = run_many(scenarios)
                for sc, res in zip(scenarios, grouped):
                    _payloads_equal(res.as_payload(), run(sc).as_payload())

    def test_adversarial_scenarios_mega_batch(self):
        scenarios = [
            Scenario.adversary("thm2", "mtc",
                               params={"delta": d, "cycles": 2, "dim": 2},
                               seeds=[5, 6], delta=d)
            for d in (0.5, 1.0)
        ]
        grouped = run_many(scenarios)
        for sc, res in zip(scenarios, grouped):
            assert res.ratios is not None
            _payloads_equal(res.as_payload(), run(sc).as_payload())

    def test_cell_run_group_matches_cell_run(self):
        """The orchestrator's grouped entry point is bit-identical to the
        per-cell function (the contract that keeps content addresses
        standalone)."""
        runner = cell_run.group_runner
        assert callable(runner)
        calls = [({"scenario": sc.cache_dict()}, None) for sc in self._sweep()]
        grouped = runner(calls)
        for (params, deps), payload in zip(calls, grouped):
            _payloads_equal(payload, cell_run(params["scenario"], deps))
