"""Cross-lane batched median solver: bit-parity with the scalar solver.

:mod:`repro.median.batched` promises that every lane of
``batched_request_center(points, servers)`` equals the scalar
``request_center(points[i], servers[i])`` **bit for bit** — including the
exact-case routing (single / pair / coincident / collinear), the numeric
Weiszfeld lanes, warm starts, and the Vardi–Zhang vertex branch.  These
tests sweep degenerate inputs property-style (deterministic seeds, many
trials) and assert exact float64 equality throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.median import (
    batched_median_set,
    batched_request_center,
    batched_weiszfeld,
    median_set,
    request_center,
    weiszfeld,
)

# -- input generators -------------------------------------------------------


def _degenerate_stack(rng: np.random.Generator, B: int, r: int, d: int) -> np.ndarray:
    """A (B, r, d) stack salted with every degenerate shape the scalar
    solver special-cases: coincident stacks, duplicated points, collinear
    lanes, and wildly varying scales."""
    scale = 10.0 ** float(rng.integers(-6, 7))
    pts = rng.normal(scale=scale, size=(B, r, d))
    for b in range(B):
        kind = b % 5
        if kind == 1:  # all requests coincide
            pts[b] = pts[b, 0]
        elif kind == 2 and r >= 2:  # one duplicated point
            pts[b, 1] = pts[b, 0]
        elif kind == 3 and d >= 2:  # exactly collinear stack
            direction = rng.normal(size=d)
            pts[b] = pts[b, 0] + np.outer(rng.normal(size=r), direction)
        elif kind == 4 and r >= 3:  # near-coincident cluster plus outlier
            pts[b, 1:] = pts[b, 0] + rng.normal(scale=1e-13 * scale, size=(r - 1, d))
    return pts


def _servers(rng: np.random.Generator, B: int, d: int) -> np.ndarray:
    return rng.normal(scale=10.0 ** float(rng.integers(-3, 4)), size=(B, d))


# -- request_center parity --------------------------------------------------


class TestRequestCenterParity:
    @pytest.mark.parametrize("r", [1, 2, 3, 4, 7])
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_matches_scalar_per_lane(self, r, d):
        for trial in range(8):
            rng = np.random.default_rng(1000 * r + 100 * d + trial)
            pts = _degenerate_stack(rng, B=10, r=r, d=d)
            servers = _servers(rng, B=10, d=d)
            got = batched_request_center(pts, servers)
            for i in range(10):
                want = request_center(pts[i], servers[i])
                np.testing.assert_array_equal(
                    got[i], want, err_msg=f"lane {i} (r={r}, d={d}, trial {trial})")

    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_warm_starts_match_scalar_warm_starts(self, d):
        """Warm lanes must replay ``warm_start=...``, cold lanes
        ``warm_start=None`` — both bit-for-bit."""
        for trial in range(6):
            rng = np.random.default_rng(7000 + 10 * d + trial)
            B, r = 8, 5
            pts = _degenerate_stack(rng, B=B, r=r, d=d)
            servers = _servers(rng, B=B, d=d)
            warm = pts.mean(axis=1) + rng.normal(scale=0.1, size=(B, d))
            mask = (np.arange(B) % 2).astype(bool)
            got = batched_request_center(pts, servers,
                                         warm_starts=warm, warm_mask=mask)
            for i in range(B):
                want = request_center(pts[i], servers[i],
                                      warm_start=warm[i] if mask[i] else None)
                np.testing.assert_array_equal(got[i], want, err_msg=f"lane {i}")

    def test_warm_without_mask_means_all_warm(self):
        rng = np.random.default_rng(11)
        pts = _degenerate_stack(rng, B=6, r=4, d=2)
        servers = _servers(rng, B=6, d=2)
        warm = rng.normal(size=(6, 2))
        got = batched_request_center(pts, servers, warm_starts=warm)
        for i in range(6):
            np.testing.assert_array_equal(
                got[i], request_center(pts[i], servers[i], warm_start=warm[i]))

    def test_strided_input_matches_contiguous(self):
        """The fused kernels hand the solver strided views of the packed
        (B, T, r, d) stack; layout must not move any bits."""
        rng = np.random.default_rng(23)
        big = rng.normal(size=(7, 5, 3, 2))
        servers = _servers(rng, B=7, d=2)
        for t in range(5):
            view = big[:, t]
            assert not view.flags.c_contiguous
            np.testing.assert_array_equal(
                batched_request_center(view, servers),
                batched_request_center(np.ascontiguousarray(view), servers))

    def test_rejects_bad_shapes_and_nonfinite(self):
        with pytest.raises(ValueError, match=r"\(B, r, d\)"):
            batched_request_center(np.zeros((3, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError, match="empty"):
            batched_request_center(np.zeros((3, 0, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError, match="non-finite"):
            bad = np.zeros((2, 2, 2))
            bad[1, 0, 0] = np.nan
            batched_request_center(bad, np.zeros((2, 2)))
        with pytest.raises(ValueError, match="servers"):
            batched_request_center(np.zeros((2, 2, 2)), np.zeros((3, 2)))


# -- weiszfeld parity -------------------------------------------------------


class TestBatchedWeiszfeldParity:
    @pytest.mark.parametrize("d", [1, 2, 3])
    @pytest.mark.parametrize("r", [2, 3, 6])
    def test_matches_scalar_default_start(self, r, d):
        for trial in range(6):
            rng = np.random.default_rng(300 * r + 30 * d + trial)
            pts = _degenerate_stack(rng, B=9, r=r, d=d)
            got = batched_weiszfeld(pts)
            for i in range(9):
                np.testing.assert_array_equal(
                    got[i], weiszfeld(pts[i]).point, err_msg=f"lane {i}")

    def test_matches_scalar_with_starts(self):
        rng = np.random.default_rng(77)
        pts = _degenerate_stack(rng, B=8, r=4, d=2)
        starts = rng.normal(size=(8, 2))
        got = batched_weiszfeld(pts, starts)
        for i in range(8):
            np.testing.assert_array_equal(
                got[i], weiszfeld(pts[i], start=starts[i]).point)

    def test_vertex_branch_lanes_match_scalar(self):
        """Starts placed exactly on data points force the Vardi–Zhang
        replay; those lanes must still match the scalar solver."""
        rng = np.random.default_rng(5)
        pts = rng.normal(size=(6, 5, 2))
        starts = np.ascontiguousarray(pts[:, 2])  # each lane starts on a vertex
        got = batched_weiszfeld(pts, starts)
        for i in range(6):
            np.testing.assert_array_equal(
                got[i], weiszfeld(pts[i], start=starts[i]).point)

    def test_single_request_is_copy(self):
        pts = np.arange(6.0).reshape(3, 1, 2)
        got = batched_weiszfeld(pts)
        np.testing.assert_array_equal(got, pts[:, 0])
        got[0, 0] = -1.0
        assert pts[0, 0, 0] == 0.0  # no aliasing


# -- median_set parity ------------------------------------------------------


class TestBatchedMedianSetParity:
    @pytest.mark.parametrize("r", [1, 2, 3, 5, 6])
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_routing_and_endpoints_match_scalar(self, r, d):
        for trial in range(6):
            rng = np.random.default_rng(900 * r + 90 * d + trial)
            pts = _degenerate_stack(rng, B=10, r=r, d=d)
            mset = batched_median_set(pts)
            for i in range(10):
                want = median_set(pts[i])
                if want is None:
                    assert mset.numeric[i], f"lane {i} should be numeric"
                else:
                    assert not mset.numeric[i], f"lane {i} should be exact"
                    np.testing.assert_array_equal(mset.a[i], want.a,
                                                  err_msg=f"lane {i} a")
                    np.testing.assert_array_equal(mset.b[i], want.b,
                                                  err_msg=f"lane {i} b")

    def test_rejects_empty_and_misshaped(self):
        with pytest.raises(ValueError, match="empty"):
            batched_median_set(np.zeros((2, 0, 2)))
        with pytest.raises(ValueError, match=r"\(B, r, d\)"):
            batched_median_set(np.zeros((4, 2)))
