"""Tests for the algorithm registry."""

import pytest

from repro.algorithms import OnlineAlgorithm, available_algorithms, make_algorithm, register
from repro.algorithms.registry import ALGORITHMS


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in available_algorithms():
            alg = make_algorithm(name)
            assert isinstance(alg, OnlineAlgorithm)

    def test_expected_core_entries(self):
        names = available_algorithms()
        for expected in ("mtc", "static", "greedy-center", "move-to-min", "coin-flip",
                         "work-function", "lazy", "follow-last", "retrospective"):
            assert expected in names

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            make_algorithm("definitely-not-registered")

    def test_register_and_use(self):
        from repro.algorithms import StaticServer

        register("test-static", StaticServer)
        try:
            assert isinstance(make_algorithm("test-static"), StaticServer)
        finally:
            del ALGORITHMS["test-static"]

    def test_register_duplicate_rejected(self):
        from repro.algorithms import StaticServer

        with pytest.raises(KeyError, match="already"):
            register("mtc", StaticServer)

    def test_register_overwrite_allowed(self):
        from repro.algorithms import StaticServer

        original = ALGORITHMS["mtc"]
        try:
            register("mtc", StaticServer, overwrite=True)
            assert isinstance(make_algorithm("mtc"), StaticServer)
        finally:
            ALGORITHMS["mtc"] = original

    def test_factories_give_fresh_instances(self):
        a = make_algorithm("lazy")
        b = make_algorithm("lazy")
        assert a is not b

    def test_sorted_output(self):
        names = available_algorithms()
        assert names == sorted(names)
