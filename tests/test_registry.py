"""Tests for the algorithm registry."""

import pytest

from repro.algorithms import OnlineAlgorithm, available_algorithms, make_algorithm, register
from repro.algorithms.registry import ALGORITHMS


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in available_algorithms():
            alg = make_algorithm(name)
            assert isinstance(alg, OnlineAlgorithm)

    def test_expected_core_entries(self):
        names = available_algorithms()
        for expected in ("mtc", "static", "greedy-center", "move-to-min", "coin-flip",
                         "work-function", "lazy", "follow-last", "retrospective"):
            assert expected in names

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            make_algorithm("definitely-not-registered")

    def test_register_and_use(self):
        from repro.algorithms import StaticServer

        register("test-static", StaticServer)
        try:
            assert isinstance(make_algorithm("test-static"), StaticServer)
        finally:
            del ALGORITHMS["test-static"]

    def test_register_duplicate_rejected(self):
        from repro.algorithms import StaticServer

        with pytest.raises(KeyError, match="already"):
            register("mtc", StaticServer)

    def test_register_overwrite_allowed(self):
        from repro.algorithms import StaticServer

        original = ALGORITHMS["mtc"]
        try:
            register("mtc", StaticServer, overwrite=True)
            assert isinstance(make_algorithm("mtc"), StaticServer)
        finally:
            ALGORITHMS["mtc"] = original

    def test_factories_give_fresh_instances(self):
        a = make_algorithm("lazy")
        b = make_algorithm("lazy")
        assert a is not b

    def test_sorted_output(self):
        names = available_algorithms()
        assert names == sorted(names)


class TestCapabilities:
    def test_default_entry_supports_everything(self):
        from repro.algorithms import algorithm_info

        info = algorithm_info("mtc")
        assert info.supported_dims is None
        assert not info.requires_moving_client
        assert info.supports_dim(1) and info.supports_dim(7)

    def test_declared_restrictions(self):
        from repro.algorithms import algorithm_info

        assert algorithm_info("work-function").supported_dims == (1,)
        assert algorithm_info("mtc-moving-client").requires_moving_client

    def test_compatible_filtering(self):
        from repro.algorithms import compatible_algorithms

        dim1 = compatible_algorithms(dim=1, moving_client=False)
        dim2 = compatible_algorithms(dim=2, moving_client=False)
        assert "work-function" in dim1 and "work-function" not in dim2
        assert "mtc-moving-client" not in dim1
        assert "mtc-moving-client" in compatible_algorithms(dim=1, moving_client=True)

    def test_unknown_name_raises(self):
        from repro.algorithms import algorithm_info

        with pytest.raises(KeyError, match="available"):
            algorithm_info("nope")

    def test_register_with_capabilities(self):
        from repro.algorithms import StaticServer, algorithm_info, compatible_algorithms

        register("test-1d-only", StaticServer, supported_dims=(1,))
        try:
            assert algorithm_info("test-1d-only").supported_dims == (1,)
            assert "test-1d-only" not in compatible_algorithms(dim=2)
        finally:
            del ALGORITHMS["test-1d-only"]

    def test_overwrite_without_caps_preserves_metadata(self):
        from repro.algorithms import StaticServer, algorithm_info

        original = ALGORITHMS["work-function"]
        try:
            register("work-function", StaticServer, overwrite=True)
            assert algorithm_info("work-function").supported_dims == (1,)
        finally:
            ALGORITHMS["work-function"] = original

    def test_overwrite_with_caps_replaces_metadata(self):
        from repro.algorithms import StaticServer, algorithm_info
        from repro.algorithms.registry import _CAPABILITIES

        original = ALGORITHMS["work-function"]
        original_caps = _CAPABILITIES.get("work-function")
        try:
            register("work-function", StaticServer, overwrite=True,
                     supported_dims=(1, 2))
            assert algorithm_info("work-function").supported_dims == (1, 2)
        finally:
            ALGORITHMS["work-function"] = original
            if original_caps is not None:
                _CAPABILITIES["work-function"] = original_caps


class TestCostModelCapability:
    def test_answer_first_entry_declared(self):
        from repro.algorithms import algorithm_info

        info = algorithm_info("mtc-answer-first")
        assert info.cost_models == ("answer-first",)
        assert info.supports_cost_model("answer-first")
        assert not info.supports_cost_model("move-first")

    def test_default_entries_support_all_models(self):
        from repro.algorithms import algorithm_info
        from repro.core import CostModel

        info = algorithm_info("mtc")
        assert info.supports_cost_model(CostModel.MOVE_FIRST)
        assert info.supports_cost_model(CostModel.ANSWER_FIRST)

    def test_compatible_filters_by_cost_model(self):
        from repro.algorithms import compatible_algorithms

        default = compatible_algorithms(dim=1, moving_client=False)
        assert "mtc-answer-first" not in default  # move-first is the default
        af = compatible_algorithms(dim=1, moving_client=False, cost_model="answer-first")
        assert "mtc-answer-first" in af
        assert "mtc-answer-first" in compatible_algorithms(dim=1, cost_model=None)


class TestVectorizedFlag:
    def test_flag_matches_vectorized_registry(self):
        from repro.algorithms import VECTORIZED, algorithm_info, available_algorithms

        for name in available_algorithms():
            assert algorithm_info(name).vectorized == (name in VECTORIZED)

    def test_parameterized_factory(self):
        from repro.algorithms import MoveToCenter, make_algorithm

        alg = make_algorithm("mtc", step_scale=0.25)
        assert isinstance(alg, MoveToCenter) and alg.step_scale == 0.25
        with pytest.raises(TypeError):
            make_algorithm("lazy-aggressive", threshold_factor=0.5)  # lambda entry
