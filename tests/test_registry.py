"""Tests for the algorithm registry."""

import pytest

from repro.algorithms import OnlineAlgorithm, available_algorithms, make_algorithm, register
from repro.algorithms.registry import ALGORITHMS


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in available_algorithms():
            alg = make_algorithm(name)
            assert isinstance(alg, OnlineAlgorithm)

    def test_expected_core_entries(self):
        names = available_algorithms()
        for expected in ("mtc", "static", "greedy-center", "move-to-min", "coin-flip",
                         "work-function", "lazy", "follow-last", "retrospective"):
            assert expected in names

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            make_algorithm("definitely-not-registered")

    def test_register_and_use(self):
        from repro.algorithms import StaticServer

        register("test-static", StaticServer)
        try:
            assert isinstance(make_algorithm("test-static"), StaticServer)
        finally:
            del ALGORITHMS["test-static"]

    def test_register_duplicate_rejected(self):
        from repro.algorithms import StaticServer

        with pytest.raises(KeyError, match="already"):
            register("mtc", StaticServer)

    def test_register_overwrite_allowed(self):
        from repro.algorithms import StaticServer

        original = ALGORITHMS["mtc"]
        try:
            register("mtc", StaticServer, overwrite=True)
            assert isinstance(make_algorithm("mtc"), StaticServer)
        finally:
            ALGORITHMS["mtc"] = original

    def test_factories_give_fresh_instances(self):
        a = make_algorithm("lazy")
        b = make_algorithm("lazy")
        assert a is not b

    def test_sorted_output(self):
        names = available_algorithms()
        assert names == sorted(names)


class TestCapabilities:
    def test_default_entry_supports_everything(self):
        from repro.algorithms import algorithm_info

        info = algorithm_info("mtc")
        assert info.supported_dims is None
        assert not info.requires_moving_client
        assert info.supports_dim(1) and info.supports_dim(7)

    def test_declared_restrictions(self):
        from repro.algorithms import algorithm_info

        assert algorithm_info("work-function").supported_dims == (1,)
        assert algorithm_info("mtc-moving-client").requires_moving_client

    def test_compatible_filtering(self):
        from repro.algorithms import compatible_algorithms

        dim1 = compatible_algorithms(dim=1, moving_client=False)
        dim2 = compatible_algorithms(dim=2, moving_client=False)
        assert "work-function" in dim1 and "work-function" not in dim2
        assert "mtc-moving-client" not in dim1
        assert "mtc-moving-client" in compatible_algorithms(dim=1, moving_client=True)

    def test_unknown_name_raises(self):
        from repro.algorithms import algorithm_info

        with pytest.raises(KeyError, match="available"):
            algorithm_info("nope")

    def test_register_with_capabilities(self):
        from repro.algorithms import StaticServer, algorithm_info, compatible_algorithms

        register("test-1d-only", StaticServer, supported_dims=(1,))
        try:
            assert algorithm_info("test-1d-only").supported_dims == (1,)
            assert "test-1d-only" not in compatible_algorithms(dim=2)
        finally:
            del ALGORITHMS["test-1d-only"]

    def test_overwrite_without_caps_preserves_metadata(self):
        from repro.algorithms import StaticServer, algorithm_info

        original = ALGORITHMS["work-function"]
        try:
            register("work-function", StaticServer, overwrite=True)
            assert algorithm_info("work-function").supported_dims == (1,)
        finally:
            ALGORITHMS["work-function"] = original

    def test_overwrite_with_caps_replaces_metadata(self):
        from repro.algorithms import StaticServer, algorithm_info
        from repro.algorithms.registry import _CAPABILITIES

        original = ALGORITHMS["work-function"]
        original_caps = _CAPABILITIES.get("work-function")
        try:
            register("work-function", StaticServer, overwrite=True,
                     supported_dims=(1, 2))
            assert algorithm_info("work-function").supported_dims == (1, 2)
        finally:
            ALGORITHMS["work-function"] = original
            if original_caps is not None:
                _CAPABILITIES["work-function"] = original_caps
