"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.core import MSPInstance, MovingClientInstance
from repro.workloads import (
    BurstyWorkload,
    ClusteredWorkload,
    DriftWorkload,
    PatrolAgentWorkload,
    RandomWalkWorkload,
    SpliceWorkload,
    VehiclePlatoonWorkload,
    make_instance,
    random_waypoint_path,
    splice,
    standard_suite,
)


class TestBase:
    def test_make_instance_packed(self):
        inst = make_instance(np.zeros((4, 2, 3)), start=np.zeros(3), D=2.0, m=1.0)
        assert inst.length == 4 and inst.dim == 3

    def test_make_instance_ragged(self):
        inst = make_instance([np.zeros((1, 2)), np.zeros((3, 2))],
                             start=np.zeros(2), D=1.0, m=1.0)
        assert inst.requests.r_max == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkWorkload(T=0)
        with pytest.raises(ValueError):
            RandomWalkWorkload(T=5, dim=0)

    def test_generate_many_independent(self):
        wl = RandomWalkWorkload(T=10, dim=1)
        a, b = wl.generate_many([1, 2])
        assert not np.allclose(a.requests.all_points(), b.requests.all_points())


class TestRandomWalk:
    def test_shape_and_determinism(self):
        wl = RandomWalkWorkload(T=30, dim=2, requests_per_step=3)
        a = wl.generate(np.random.default_rng(7))
        b = wl.generate(np.random.default_rng(7))
        assert a.length == 30 and a.requests.r_max == 3
        np.testing.assert_array_equal(a.requests.all_points(), b.requests.all_points())

    def test_zero_sigma_keeps_demand_at_origin(self):
        wl = RandomWalkWorkload(T=20, dim=2, sigma=0.0, spread=0.0)
        inst = wl.generate(np.random.default_rng(0))
        np.testing.assert_allclose(inst.requests.all_points(), 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkWorkload(T=5, sigma=-1.0)
        with pytest.raises(ValueError):
            RandomWalkWorkload(T=5, requests_per_step=0)


class TestDrift:
    def test_constant_speed(self):
        wl = DriftWorkload(T=20, dim=2, speed=0.7, spread=0.0)
        inst = wl.generate(np.random.default_rng(3))
        pts = inst.requests.all_points()
        steps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        np.testing.assert_allclose(steps, 0.7, atol=1e-9)

    def test_rotation_requires_2d(self):
        with pytest.raises(ValueError, match="dim == 2"):
            DriftWorkload(T=5, dim=1, rotate=0.1)

    def test_rotating_drift_curves(self):
        wl = DriftWorkload(T=50, dim=2, speed=0.5, rotate=0.2, spread=0.0)
        inst = wl.generate(np.random.default_rng(1))
        pts = inst.requests.all_points()
        # A rotating drift stays bounded, a straight one escapes.
        straight = DriftWorkload(T=50, dim=2, speed=0.5, rotate=0.0, spread=0.0)
        pts_s = straight.generate(np.random.default_rng(1)).requests.all_points()
        assert np.linalg.norm(pts[-1]) < np.linalg.norm(pts_s[-1])


class TestBursty:
    def test_counts_vary(self):
        wl = BurstyWorkload(T=120, burst_probability=0.2, burst_requests=8,
                            quiet_requests=1)
        inst = wl.generate(np.random.default_rng(5))
        counts = inst.requests.counts
        assert counts.min() == 1 and counts.max() == 8

    def test_zero_quiet_allows_empty_steps(self):
        wl = BurstyWorkload(T=60, burst_probability=0.05, quiet_requests=0)
        inst = wl.generate(np.random.default_rng(2))
        assert inst.requests.r_min == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyWorkload(T=5, burst_probability=1.5)
        with pytest.raises(ValueError):
            BurstyWorkload(T=5, burst_length=0)


class TestClustered:
    def test_total_requests_per_step(self):
        wl = ClusteredWorkload(T=15, requests_per_step=6, n_clusters=3)
        inst = wl.generate(np.random.default_rng(4))
        assert np.all(inst.requests.counts == 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusteredWorkload(T=5, n_clusters=0)


class TestVehicles:
    def test_formation_is_cohesive(self):
        wl = VehiclePlatoonWorkload(T=40, n_vehicles=5, formation_radius=2.0,
                                    jitter=0.01)
        inst = wl.generate(np.random.default_rng(6))
        for t in range(inst.length):
            pts = inst.requests[t].points
            spread = np.linalg.norm(pts - pts.mean(axis=0), axis=1).max()
            assert spread <= 2.0 * np.sqrt(2) + 0.5

    def test_platoon_travels(self):
        wl = VehiclePlatoonWorkload(T=100, road_speed=0.8, jitter=0.0)
        inst = wl.generate(np.random.default_rng(0))
        first = inst.requests[0].points.mean(axis=0)
        last = inst.requests[-1].points.mean(axis=0)
        assert np.linalg.norm(last - first) > 30.0

    def test_one_dimensional_road(self):
        wl = VehiclePlatoonWorkload(T=20, dim=1)
        inst = wl.generate(np.random.default_rng(0))
        assert inst.dim == 1


class TestDisaster:
    def test_waypoint_path_speed_exact(self):
        rng = np.random.default_rng(8)
        path = random_waypoint_path(200, dim=2, speed=0.7, rng=rng)
        full = np.vstack([np.zeros((1, 2)), path])
        steps = np.linalg.norm(np.diff(full, axis=0), axis=1)
        assert steps.max() <= 0.7 + 1e-9

    def test_patrol_generates_valid_instance(self):
        wl = PatrolAgentWorkload(T=50, dim=2, m_server=1.0, m_agent=0.8)
        mc = wl.generate(np.random.default_rng(1))
        assert isinstance(mc, MovingClientInstance)
        mc.validate_agent_speed()
        assert mc.epsilon == pytest.approx(-0.2)

    def test_patrol_faster_agent_regime(self):
        wl = PatrolAgentWorkload(T=50, dim=1, m_server=1.0, m_agent=2.0)
        mc = wl.generate(np.random.default_rng(1))
        assert mc.epsilon == pytest.approx(1.0)

    def test_generate_many(self):
        wl = PatrolAgentWorkload(T=20)
        insts = wl.generate_many([1, 2, 3])
        assert len(insts) == 3


class TestSpliceAndSuite:
    def test_splice_lengths_add(self):
        a = DriftWorkload(T=10, dim=1).generate(np.random.default_rng(0))
        b = DriftWorkload(T=15, dim=1).generate(np.random.default_rng(1))
        c = splice(a, b)
        assert c.length == 25

    def test_splice_parameter_mismatch(self):
        a = DriftWorkload(T=10, dim=1, D=2.0).generate(np.random.default_rng(0))
        b = DriftWorkload(T=10, dim=1, D=4.0).generate(np.random.default_rng(0))
        with pytest.raises(ValueError):
            splice(a, b)

    def test_splice_workload_generator(self):
        gen = SpliceWorkload(RandomWalkWorkload(T=10, dim=1),
                             DriftWorkload(T=10, dim=1))
        inst = gen.generate(np.random.default_rng(0))
        assert inst.length == 20

    def test_standard_suite_contents(self):
        suite = standard_suite(T=50, dim=1)
        assert {"random-walk", "drift", "bursty", "clustered", "vehicles"} <= set(suite)
        for wl in suite.values():
            inst = wl.generate(np.random.default_rng(0))
            assert isinstance(inst, MSPInstance)
            assert inst.dim == 1
