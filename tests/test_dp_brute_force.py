"""Brute-force cross-validation of the offline solvers on tiny instances.

The banded DP and the product-grid 2-server DP are the certification
backbone of every experiment; here their values are checked against
exhaustive enumeration of *all* grid trajectories on instances small
enough to enumerate.  This pins down the exact semantics (movement cap per
step, move-then-serve accounting, start snapping) far more rigidly than
sampled comparisons.
"""

import itertools

import numpy as np
import pytest

from repro.core import CostModel, MSPInstance, RequestSequence
from repro.extensions import solve_two_servers_line
from repro.offline.dp_line import _run_dp


def brute_force_line(
    grid: np.ndarray,
    start_idx: int,
    batches: list[np.ndarray],
    band: int,
    D: float,
    serve_after_move: bool,
) -> float:
    """Enumerate every band-feasible grid trajectory."""
    S = grid.shape[0]
    h = float(grid[1] - grid[0])
    best = np.inf
    T = len(batches)
    for traj in itertools.product(range(S), repeat=T):
        prev = start_idx
        cost = 0.0
        ok = True
        for t, idx in enumerate(traj):
            if abs(idx - prev) > band:
                ok = False
                break
            cost += D * h * abs(idx - prev)
            serving = grid[idx] if serve_after_move else grid[prev]
            pts = batches[t]
            if pts.size:
                cost += float(np.abs(serving - pts).sum())
            prev = idx
        if ok and cost < best:
            best = cost
    return best


@pytest.mark.parametrize("serve_after_move", [True, False])
@pytest.mark.parametrize("band", [1, 2])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_run_dp_matches_brute_force(serve_after_move, band, seed):
    rng = np.random.default_rng(seed)
    S, T = 7, 4
    grid = np.linspace(-1.5, 1.5, S)
    h = float(grid[1] - grid[0])
    batches = [rng.uniform(-1.5, 1.5, size=rng.integers(0, 3)) for _ in range(T)]
    D = 2.0
    start_idx = 3
    model = CostModel.MOVE_FIRST if serve_after_move else CostModel.ANSWER_FIRST
    seq = RequestSequence([b.reshape(-1, 1) for b in batches], dim=1)
    inst = MSPInstance(seq, start=np.array([grid[start_idx]]), D=D,
                       m=band * h + 1e-9, cost_model=model)
    dp_cost, _ = _run_dp(inst, grid, band, keep_tables=False)
    bf_cost = brute_force_line(grid, start_idx, batches, band, D, serve_after_move)
    assert dp_cost == pytest.approx(bf_cost, rel=1e-12)


def brute_force_two_servers(
    grid: np.ndarray,
    start: tuple[int, int],
    batches: list[np.ndarray],
    band: int,
    D: float,
) -> float:
    """Enumerate every band-feasible pair trajectory (tiny sizes only)."""
    S = grid.shape[0]
    h = float(grid[1] - grid[0])
    best = np.inf
    T = len(batches)
    states = list(itertools.product(range(S), repeat=2))
    for traj in itertools.product(states, repeat=T):
        prev = start
        cost = 0.0
        ok = True
        for t, (i, j) in enumerate(traj):
            if abs(i - prev[0]) > band or abs(j - prev[1]) > band:
                ok = False
                break
            cost += D * h * (abs(i - prev[0]) + abs(j - prev[1]))
            pts = batches[t]
            if pts.size:
                d = np.minimum(np.abs(grid[i] - pts), np.abs(grid[j] - pts))
                cost += float(d.sum())
            prev = (i, j)
        if ok and cost < best:
            best = cost
    return best


@pytest.mark.parametrize("seed", [0, 1])
def test_two_server_dp_matches_brute_force(seed):
    """The product-grid DP's feasible value equals exhaustive enumeration.

    We call the internal machinery through solve_two_servers_line with a
    grid matched to the brute-force one; the padding shifts the grid, so we
    instead compare against a brute force run on the *same* auto-built grid
    by reconstructing it exactly as the solver does.
    """
    rng = np.random.default_rng(seed)
    T = 3
    batches = [rng.uniform(-1.0, 1.0, size=(rng.integers(1, 3), 1)) for _ in range(T)]
    starts = np.array([[-0.5], [0.5]])
    m, D = 0.8, 2.0
    grid_size = 9
    res = solve_two_servers_line(starts, batches, m=m, D=D, grid_size=grid_size,
                                 padding=0.5)
    # Rebuild the solver's grid.
    pts = np.concatenate([b.reshape(-1) for b in batches])
    lo = min(float(starts.min()), float(pts.min())) - (0.5 * m + 1e-9)
    hi = max(float(starts.max()), float(pts.max())) + (0.5 * m + 1e-9)
    grid = np.linspace(lo, hi, grid_size)
    h = float(grid[1] - grid[0])
    band = max(1, int(np.floor(m / h + 1e-12)))
    i0 = int(np.argmin(np.abs(grid - starts[0, 0])))
    i1 = int(np.argmin(np.abs(grid - starts[1, 0])))
    bf = brute_force_two_servers(grid, (i0, i1), [b.reshape(-1) for b in batches],
                                 band, D)
    assert res.cost == pytest.approx(bf, rel=1e-12)
    assert res.lower_bound <= res.cost + 1e-12
