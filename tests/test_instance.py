"""Tests for MSPInstance and MovingClientInstance."""

import numpy as np
import pytest

from repro.core import CostModel, MovingClientInstance, MSPInstance, RequestSequence


def _seq(T=5, dim=2):
    return RequestSequence.from_packed(np.zeros((T, 1, dim)))


class TestMSPInstance:
    def test_basic_properties(self):
        inst = MSPInstance(_seq(), start=np.zeros(2), D=2.0, m=0.5)
        assert inst.dim == 2 and inst.length == 5
        assert inst.D == 2.0 and inst.m == 0.5

    def test_start_dim_checked(self):
        with pytest.raises(ValueError):
            MSPInstance(_seq(dim=2), start=np.zeros(3))

    def test_d_below_one_rejected(self):
        with pytest.raises(ValueError, match="D >= 1"):
            MSPInstance(_seq(), start=np.zeros(2), D=0.5)

    def test_nonpositive_m_rejected(self):
        with pytest.raises(ValueError, match="m must be positive"):
            MSPInstance(_seq(), start=np.zeros(2), m=0.0)

    def test_online_cap(self):
        inst = MSPInstance(_seq(), start=np.zeros(2), m=2.0)
        assert inst.online_cap(0.5) == pytest.approx(3.0)
        assert inst.online_cap(0.0) == pytest.approx(2.0)

    def test_online_cap_negative_delta(self):
        inst = MSPInstance(_seq(), start=np.zeros(2))
        with pytest.raises(ValueError):
            inst.online_cap(-0.1)

    def test_with_cost_model(self):
        inst = MSPInstance(_seq(), start=np.zeros(2))
        af = inst.with_cost_model(CostModel.ANSWER_FIRST)
        assert af.cost_model is CostModel.ANSWER_FIRST
        assert inst.cost_model is CostModel.MOVE_FIRST  # original untouched

    def test_with_requests(self):
        inst = MSPInstance(_seq(T=5), start=np.zeros(2))
        inst2 = inst.with_requests(_seq(T=9))
        assert inst2.length == 9 and inst.length == 5

    def test_default_cost_model_is_move_first(self):
        inst = MSPInstance(_seq(), start=np.zeros(2))
        assert inst.cost_model is CostModel.MOVE_FIRST


class TestMovingClientInstance:
    def _path(self, T=10, step=0.5):
        return np.cumsum(np.full((T, 1), step), axis=0)

    def test_valid_path(self):
        mc = MovingClientInstance(self._path(), start=np.zeros(1), m_agent=0.5)
        assert mc.length == 10 and mc.dim == 1

    def test_speed_violation_rejected(self):
        with pytest.raises(ValueError, match="m_agent"):
            MovingClientInstance(self._path(step=2.0), start=np.zeros(1), m_agent=1.0)

    def test_first_step_checked_against_start(self):
        path = np.array([[5.0]])  # jump of 5 from start 0
        with pytest.raises(ValueError):
            MovingClientInstance(path, start=np.zeros(1), m_agent=1.0)

    def test_epsilon(self):
        mc = MovingClientInstance(self._path(step=0.5), start=np.zeros(1),
                                  m_server=1.0, m_agent=1.5)
        assert mc.epsilon == pytest.approx(0.5)

    def test_as_msp_single_requests(self):
        mc = MovingClientInstance(self._path(), start=np.zeros(1), m_agent=0.5,
                                  m_server=2.0, D=3.0)
        inst = mc.as_msp()
        assert inst.length == 10
        assert inst.requests.r_max == 1
        assert inst.m == 2.0 and inst.D == 3.0
        np.testing.assert_allclose(inst.requests[3].points[0], mc.agent_path[3])

    def test_d_below_one_rejected(self):
        with pytest.raises(ValueError):
            MovingClientInstance(self._path(), start=np.zeros(1), D=0.5, m_agent=0.5)

    def test_bad_path_shape(self):
        with pytest.raises(ValueError, match="T, d"):
            MovingClientInstance(np.zeros(5), start=np.zeros(1))

    def test_empty_path_ok(self):
        mc = MovingClientInstance(np.zeros((0, 2)), start=np.zeros(2))
        assert mc.length == 0
