"""Cross-module property-based tests (hypothesis) on core invariants.

These encode the *model laws* every component must respect:

* simulated movement never exceeds the granted cap;
* cost accounting decomposes exactly into movement + service;
* certified optimum brackets are ordered and sandwich every feasible cost;
* the geometric median really minimizes the Weber objective;
* replaying a trace reproduces its cost under both cost models;
* more augmentation never increases MtC's certified ratio by much
  (monotonicity up to tie-break noise is not a theorem, so we only check
  the certified-bracket laws here).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import GreedyCenter, MoveToCenter, StaticServer
from repro.core import CostModel, MSPInstance, RequestSequence, replay_cost, simulate
from repro.median import request_center, weber_cost
from repro.offline import bracket_optimum, solve_line


@st.composite
def line_instances(draw):
    """Small random 1-D instances with varied D, m and request counts."""
    T = draw(st.integers(5, 25))
    r = draw(st.integers(1, 3))
    D = draw(st.sampled_from([1.0, 2.0, 4.0]))
    m = draw(st.sampled_from([0.5, 1.0]))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["walk", "drift", "jump"]))
    if kind == "walk":
        base = np.cumsum(rng.normal(scale=0.5 * m, size=(T, 1)), axis=0)
    elif kind == "drift":
        base = np.cumsum(np.full((T, 1), 0.8 * m), axis=0)
    else:
        base = rng.uniform(-5 * m, 5 * m, size=(T, 1))
    pts = base[:, None, :] + rng.normal(scale=0.2, size=(T, r, 1))
    model = draw(st.sampled_from([CostModel.MOVE_FIRST, CostModel.ANSWER_FIRST]))
    return MSPInstance(RequestSequence.from_packed(pts), start=np.zeros(1),
                       D=D, m=m, cost_model=model)


@st.composite
def deltas(draw):
    return draw(st.sampled_from([0.0, 0.25, 0.5, 1.0]))


class TestSimulationLaws:
    @given(line_instances(), deltas())
    def test_cap_respected(self, inst, delta):
        for alg in (MoveToCenter(), GreedyCenter(), StaticServer()):
            tr = simulate(inst, alg, delta=delta)
            tr.validate_against_cap(inst.online_cap(delta))

    @given(line_instances(), deltas())
    def test_cost_decomposition(self, inst, delta):
        tr = simulate(inst, MoveToCenter(), delta=delta)
        assert tr.total_cost == pytest.approx(
            tr.total_movement_cost + tr.total_service_cost
        )
        np.testing.assert_allclose(tr.movement_costs, inst.D * tr.distances_moved)

    @given(line_instances(), deltas())
    def test_replay_reproduces_cost(self, inst, delta):
        tr = simulate(inst, MoveToCenter(), delta=delta)
        rp = replay_cost(inst, tr.positions)
        assert rp.total_cost == pytest.approx(tr.total_cost, rel=1e-9)

    @given(line_instances())
    def test_costs_nonnegative(self, inst):
        tr = simulate(inst, GreedyCenter(), delta=0.5)
        assert np.all(tr.movement_costs >= 0)
        assert np.all(tr.service_costs >= 0)


class TestBracketLaws:
    @settings(max_examples=20)
    @given(line_instances())
    def test_bracket_ordered_and_sandwiches(self, inst):
        br = bracket_optimum(inst)
        assert 0.0 <= br.lower <= br.upper + 1e-9
        # Every online run costs at least the lower bound.
        for alg in (MoveToCenter(), StaticServer()):
            tr = simulate(inst, alg, delta=0.0)
            assert tr.total_cost >= br.lower - 1e-6 * (1 + br.lower)

    @settings(max_examples=20)
    @given(line_instances())
    def test_upper_is_feasible_cost(self, inst):
        br = bracket_optimum(inst)
        rp = replay_cost(inst, br.positions, validate_cap=inst.m)
        assert rp.total_cost == pytest.approx(br.upper, rel=1e-9)


class TestMedianLaws:
    @given(st.integers(1, 8), st.integers(0, 2**31 - 1))
    def test_center_no_worse_than_any_request_point(self, r, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(r, 2))
        c = request_center(pts, server=np.zeros(2))
        best_vertex = min(weber_cost(p, pts) for p in pts)
        assert weber_cost(c, pts) <= best_vertex + 1e-7 * (1 + best_vertex)

    @given(st.integers(2, 8), st.integers(0, 2**31 - 1))
    def test_center_within_convex_hull_box(self, r, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(r, 2))
        c = request_center(pts, server=rng.normal(size=2) * 10)
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        assert np.all(c >= lo - 1e-9) and np.all(c <= hi + 1e-9)

    @given(st.integers(0, 2**31 - 1))
    def test_translation_equivariance(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(5, 2))
        shift = rng.normal(size=2)
        c0 = request_center(pts, server=np.zeros(2))
        c1 = request_center(pts + shift, server=shift)
        np.testing.assert_allclose(c1, c0 + shift, atol=1e-7)


class TestDPLaws:
    @settings(max_examples=15)
    @given(line_instances())
    def test_dp_monotone_in_grid_resolution(self, inst):
        """Finer grids cannot make the feasible optimum worse by much."""
        coarse = solve_line(inst, grid_size=128)
        fine = solve_line(inst, grid_size=512)
        assert fine.cost <= coarse.cost + 1e-6 * (1 + coarse.cost)

    @settings(max_examples=15)
    @given(line_instances())
    def test_lower_bound_consistent_across_grids(self, inst):
        a = solve_line(inst, grid_size=128)
        b = solve_line(inst, grid_size=512)
        # Both are valid lower bounds of the same OPT: each must stay below
        # the other's feasible cost.
        assert a.lower_bound <= b.cost + 1e-6 * (1 + b.cost)
        assert b.lower_bound <= a.cost + 1e-6 * (1 + a.cost)
