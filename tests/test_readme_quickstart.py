"""The README "Public API" quickstart must execute verbatim.

The fenced code block under ``## Public API`` is extracted from
README.md and ``exec``-ed — so the documented API cannot drift from the
code.  CI runs the same extraction as a dedicated smoke job against the
installed package.
"""

import re
from pathlib import Path

README = Path(__file__).parent.parent / "README.md"


def extract_quickstart(text: str) -> str:
    match = re.search(r"## Public API.*?```python\n(.*?)```", text, re.S)
    assert match, "README.md must keep a ```python block under '## Public API'"
    return match.group(1)


def test_public_api_quickstart_executes(capsys):
    code = extract_quickstart(README.read_text())
    exec(compile(code, "README-quickstart", "exec"), {"__name__": "__main__"})
    out = capsys.readouterr().out
    assert "mean cost" in out and "certified competitive ratio" in out


def test_metric_spaces_quickstart_executes(capsys):
    """The '## Metric spaces' graph block runs verbatim."""
    match = re.search(r"## Metric spaces.*?```python\n(.*?)```",
                      README.read_text(), re.S)
    assert match, "README.md must keep a ```python block under '## Metric spaces'"
    exec(compile(match.group(1), "README-metric", "exec"), {"__name__": "__main__"})
    out = capsys.readouterr().out
    assert "['euclidean', 'graph', 'l1', 'linf']" in out
    assert "travel time" in out
    assert "on the 'graph' metric" in out


def test_serve_mode_quickstart_executes(capsys):
    """The '## Serve mode' crash-and-resume block runs verbatim."""
    match = re.search(r"## Serve mode.*?```python\n(.*?)```",
                      README.read_text(), re.S)
    assert match, "README.md must keep a ```python block under '## Serve mode'"
    exec(compile(match.group(1), "README-serve", "exec"), {"__name__": "__main__"})
    out = capsys.readouterr().out
    assert "byte-identical to batch run: YES" in out


def test_authoring_an_experiment_executes(capsys):
    """The '## Authoring an experiment' ExperimentSpec block runs verbatim."""
    match = re.search(r"## Authoring an experiment.*?```python\n(.*?)```",
                      README.read_text(), re.S)
    assert match, "README.md must keep a ```python block under '## Authoring an experiment'"
    exec(compile(match.group(1), "README-authoring", "exec"), {"__name__": "__main__"})
    out = capsys.readouterr().out
    assert "[EX1]" in out and "greedy-centroid" in out
    assert "reproduced: YES" in out
