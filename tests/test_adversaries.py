"""Tests for the lower-bound constructions (Theorems 1, 2, 3, 8) and adaptive play."""

import numpy as np
import pytest

from repro.adversaries import (
    GreedyEscapeAdversary,
    build_thm1,
    build_thm2,
    build_thm3,
    build_thm8,
    thm2_phase_lengths,
)
from repro.algorithms import AnswerFirstMoveToCenter, MoveToCenter, MovingClientMtC, StaticServer
from repro.core import CostModel, simulate


class TestThm1:
    def test_structure(self):
        adv = build_thm1(100, sign=1.0)
        assert adv.instance.length == 100
        assert adv.params["x"] == 10  # floor(sqrt(100))
        assert adv.adversary_positions.shape == (101, 1)

    def test_adversary_respects_cap(self):
        adv = build_thm1(64, sign=-1.0)
        adv.adversary_cost()  # validates against cap internally

    def test_phase1_requests_at_start(self):
        adv = build_thm1(64, sign=1.0)
        x = adv.params["x"]
        for t in range(x):
            np.testing.assert_allclose(adv.instance.requests[t].points, 0.0)

    def test_phase2_requests_on_adversary(self):
        adv = build_thm1(64, sign=1.0, m=2.0)
        x = adv.params["x"]
        for t in range(x, 64):
            np.testing.assert_allclose(
                adv.instance.requests[t].points[0], adv.adversary_positions[t + 1]
            )

    def test_adversary_cost_matches_paper_bound(self):
        """Adversary pays at most x*D*m + m*x^2/2ish + (T-x)*D*m."""
        T, D, m = 256, 2.0, 1.0
        adv = build_thm1(T, D=D, m=m, sign=1.0)
        x = adv.params["x"]
        bound = x * D * m + m * x * (x + 1) / 2 + (T - x) * D * m
        assert adv.adversary_cost() <= bound + 1e-6

    def test_ratio_grows_with_T(self):
        ratios = []
        for T in (64, 1024):
            r = []
            for s in range(4):
                adv = build_thm1(T, rng=np.random.default_rng(s))
                tr = simulate(adv.instance, MoveToCenter(), delta=0.0)
                r.append(adv.ratio_of(tr.total_cost))
            ratios.append(np.mean(r))
        assert ratios[1] > 2.0 * ratios[0]

    def test_multi_dim_embedding(self):
        adv = build_thm1(32, dim=3, sign=1.0)
        assert adv.instance.dim == 3
        # Motion confined to the first axis.
        assert np.all(adv.adversary_positions[:, 1:] == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_thm1(2)
        with pytest.raises(ValueError):
            build_thm1(100, x=100)

    def test_fixed_sign_reproducible(self):
        a = build_thm1(64, sign=1.0)
        b = build_thm1(64, sign=1.0)
        np.testing.assert_array_equal(a.adversary_positions, b.adversary_positions)


class TestThm2:
    def test_phase_lengths(self):
        x, punish = thm2_phase_lengths(0.5)
        assert x == 4 and punish == 8

    def test_phase_lengths_validation(self):
        with pytest.raises(ValueError):
            thm2_phase_lengths(0.0)

    def test_structure(self):
        adv = build_thm2(0.5, cycles=2, signs=np.array([1.0, -1.0]))
        x, punish = adv.params["x"], adv.params["punish"]
        assert adv.instance.length == 2 * (x + punish)

    def test_request_counts(self):
        adv = build_thm2(0.5, cycles=1, r_min=2, r_max=6, signs=np.array([1.0]))
        x = adv.params["x"]
        counts = adv.instance.requests.counts
        assert np.all(counts[:x] == 2)
        assert np.all(counts[x:] == 6)

    def test_adversary_respects_cap(self):
        adv = build_thm2(0.25, cycles=3, rng=np.random.default_rng(0))
        adv.adversary_cost()

    def test_ratio_scales_with_inverse_delta(self):
        means = []
        for delta in (1.0, 0.25):
            r = []
            for s in range(4):
                adv = build_thm2(delta, cycles=3, rng=np.random.default_rng(s))
                tr = simulate(adv.instance, MoveToCenter(), delta=delta)
                r.append(adv.ratio_of(tr.total_cost))
            means.append(np.mean(r))
        assert means[1] > 2.0 * means[0]

    def test_skew_increases_ratio(self):
        base, skew = [], []
        for s in range(4):
            a = build_thm2(0.25, cycles=3, rng=np.random.default_rng(s))
            b = build_thm2(0.25, cycles=3, r_max=4, rng=np.random.default_rng(s))
            tr_a = simulate(a.instance, MoveToCenter(), delta=0.25)
            tr_b = simulate(b.instance, MoveToCenter(), delta=0.25)
            base.append(a.ratio_of(tr_a.total_cost))
            skew.append(b.ratio_of(tr_b.total_cost))
        assert np.mean(skew) > np.mean(base)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_thm2(0.5, r_min=0)
        with pytest.raises(ValueError):
            build_thm2(0.5, r_min=4, r_max=2)
        with pytest.raises(ValueError):
            build_thm2(0.5, cycles=2, signs=np.array([1.0]))


class TestThm3:
    def test_structure(self):
        adv = build_thm3(cycles=5, r=3, signs=np.ones(5))
        assert adv.instance.length == 10
        assert adv.instance.cost_model is CostModel.ANSWER_FIRST
        assert np.all(adv.instance.requests.counts == 3)

    def test_adversary_serves_at_zero_distance(self):
        """The adversary's own cost is pure movement: D*m per cycle."""
        cycles, D, m = 6, 2.0, 1.5
        adv = build_thm3(cycles=cycles, D=D, m=m, rng=np.random.default_rng(0))
        assert adv.adversary_cost() == pytest.approx(cycles * D * m)

    def test_ratio_scales_with_r(self):
        means = []
        for r in (1, 16):
            vals = []
            for s in range(4):
                adv = build_thm3(cycles=20, r=r, rng=np.random.default_rng(s))
                tr = simulate(adv.instance, AnswerFirstMoveToCenter(), delta=0.5)
                vals.append(adv.ratio_of(tr.total_cost))
            means.append(np.mean(vals))
        assert means[1] > 4.0 * means[0]

    def test_move_first_variant_harmless(self):
        adv = build_thm3(cycles=20, r=16, cost_model=CostModel.MOVE_FIRST,
                         rng=np.random.default_rng(0))
        tr = simulate(adv.instance, MoveToCenter(), delta=0.5)
        assert adv.ratio_of(tr.total_cost) < 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            build_thm3(cycles=0)
        with pytest.raises(ValueError):
            build_thm3(cycles=2, r=0)


class TestThm8:
    def test_agent_speed_constraint_holds(self):
        for eps in (0.25, 1.0, 3.0):
            adv = build_thm8(256, epsilon=eps, rng=np.random.default_rng(1))
            assert adv.moving_client is not None
            adv.moving_client.validate_agent_speed()  # raises on violation

    def test_adversary_respects_server_cap(self):
        adv = build_thm8(128, epsilon=1.0, sign=1.0)
        adv.adversary_cost()

    def test_phase2_agent_rides_with_adversary(self):
        adv = build_thm8(128, epsilon=1.0, sign=1.0)
        k = adv.params["k"]
        agent = adv.moving_client.agent_path
        np.testing.assert_allclose(agent[k:], adv.adversary_positions[k + 1:], atol=1e-9)

    def test_ratio_grows_with_T(self):
        means = []
        for T in (128, 2048):
            vals = []
            for s in range(4):
                adv = build_thm8(T, epsilon=1.0, rng=np.random.default_rng(s))
                tr = simulate(adv.instance, MovingClientMtC(), delta=0.0)
                vals.append(adv.ratio_of(tr.total_cost))
            means.append(np.mean(vals))
        assert means[1] > 2.0 * means[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            build_thm8(2)
        with pytest.raises(ValueError):
            build_thm8(100, epsilon=0.0)


class TestAdaptiveAdversary:
    def test_produces_replayable_instance(self):
        res = GreedyEscapeAdversary().run(MoveToCenter(), T=50, delta=0.0)
        assert res.instance.length == 50
        assert res.ratio == pytest.approx(res.algorithm_cost / res.adversary_cost)

    def test_static_server_punished(self):
        res_static = GreedyEscapeAdversary().run(StaticServer(), T=100, delta=0.0)
        res_mtc = GreedyEscapeAdversary().run(MoveToCenter(), T=100, delta=0.0)
        assert res_static.ratio > res_mtc.ratio

    def test_requests_per_step_validation(self):
        with pytest.raises(ValueError):
            GreedyEscapeAdversary(requests_per_step=0)

    def test_replay_matches_recorded_cost(self):
        res = GreedyEscapeAdversary().run(MoveToCenter(), T=30, delta=0.5)
        # Replaying the materialised instance with the same algorithm gives
        # the same cost (the adversary was oblivious *given* the trace).
        tr = simulate(res.instance, MoveToCenter(), delta=0.5)
        assert tr.total_cost == pytest.approx(res.algorithm_cost, rel=1e-9)


class TestSeedReproducibility:
    """Adversary builds are deterministic functions of their rng seed.

    Regression tests for the reprolint RNG001 fixes: the seedless
    ``default_rng()`` fallbacks were replaced with ``default_rng(0)``,
    so an *unseeded* build is now reproducible too.
    """

    def _positions(self, inst):
        return np.asarray([req for req in inst.instance.requests])

    @pytest.mark.parametrize(
        "build, kwargs",
        [
            (build_thm1, {"T": 40}),
            (build_thm2, {"delta": 0.5, "cycles": 5}),
            (build_thm3, {"cycles": 10}),
            (build_thm8, {"T": 40}),
        ],
    )
    def test_same_seed_same_instance(self, build, kwargs):
        a = build(**kwargs, rng=np.random.default_rng(123))
        b = build(**kwargs, rng=np.random.default_rng(123))
        np.testing.assert_array_equal(self._positions(a), self._positions(b))
        np.testing.assert_array_equal(a.adversary_positions, b.adversary_positions)

    @pytest.mark.parametrize(
        "build, kwargs",
        [
            (build_thm1, {"T": 40}),
            (build_thm2, {"delta": 0.5, "cycles": 5}),
            (build_thm3, {"cycles": 10}),
            (build_thm8, {"T": 40}),
        ],
    )
    def test_unseeded_build_is_reproducible(self, build, kwargs):
        a = build(**kwargs)
        b = build(**kwargs)
        np.testing.assert_array_equal(self._positions(a), self._positions(b))
        np.testing.assert_array_equal(a.adversary_positions, b.adversary_positions)

    def test_different_seeds_differ(self):
        # Sanity check that the rng actually feeds the construction.
        draws = {
            tuple(np.asarray(build_thm2(
                delta=0.5, cycles=8, rng=np.random.default_rng(s),
            ).params["signs"]).tolist())
            for s in range(8)
        }
        assert len(draws) > 1
