"""Tests for the baseline algorithms (greedy, lazy, follow, MtM, coin-flip, WFA)."""

import numpy as np
import pytest

from repro.algorithms import (
    CoinFlip,
    FollowLastRequest,
    GreedyCenter,
    GreedyCentroid,
    LazyThreshold,
    MoveToMin,
    NearestRequestChaser,
    RetrospectiveCenter,
    StaticServer,
    WorkFunctionLine,
)
from repro.core import MSPInstance, RequestSequence, simulate


def _instance(pts, D=2.0, m=1.0):
    return MSPInstance(RequestSequence.from_packed(np.asarray(pts, dtype=float)),
                       start=np.zeros(np.asarray(pts).shape[-1]), D=D, m=m)


def _drift_instance(T=50, dim=1, step=0.8, D=2.0):
    pts = np.cumsum(np.full((T, 1, dim), step / np.sqrt(dim)), axis=0)
    return _instance(pts, D=D)


class TestStaticServer:
    def test_never_moves(self):
        tr = simulate(_drift_instance(), StaticServer())
        assert tr.total_distance_moved == 0.0

    def test_cost_is_pure_service(self):
        tr = simulate(_drift_instance(T=10), StaticServer())
        assert tr.total_movement_cost == 0.0
        assert tr.total_service_cost > 0.0


class TestGreedyFamily:
    def test_greedy_center_full_speed_when_far(self):
        inst = _instance(np.full((5, 1, 1), 100.0))
        tr = simulate(inst, GreedyCenter(), delta=0.0)
        np.testing.assert_allclose(tr.distances_moved, 1.0)

    def test_greedy_center_stops_at_center(self):
        inst = _instance(np.full((5, 1, 1), 0.5))
        tr = simulate(inst, GreedyCenter(), delta=0.0)
        np.testing.assert_allclose(tr.positions[1:], 0.5)

    def test_centroid_differs_from_median_on_outliers(self):
        # 3 requests at 0, one far outlier: median stays near 0, mean drifts.
        pts = np.array([[[0.0], [0.0], [0.0], [8.0]]] * 3)
        c_med = simulate(_instance(pts, m=10.0), GreedyCenter(), delta=0.0)
        c_cen = simulate(_instance(pts, m=10.0), GreedyCentroid(), delta=0.0)
        assert abs(float(c_cen.positions[-1, 0])) > abs(float(c_med.positions[-1, 0]))

    def test_nearest_chaser_picks_closest(self):
        inst = _instance(np.array([[[-1.0], [5.0]]]), m=10.0)
        tr = simulate(inst, NearestRequestChaser(), delta=0.0)
        np.testing.assert_allclose(tr.positions[1], [-1.0])

    def test_empty_batches_stay(self):
        seq = RequestSequence([np.empty((0, 1))] * 3, dim=1)
        inst = MSPInstance(seq, start=np.zeros(1))
        for alg in (GreedyCenter(), GreedyCentroid(), NearestRequestChaser()):
            tr = simulate(inst, alg)
            assert tr.total_distance_moved == 0.0


class TestLazyThreshold:
    def test_stays_until_threshold(self):
        # Requests at distance 0.1: service accumulates slowly.
        inst = _instance(np.full((3, 1, 1), 0.1), D=4.0)
        tr = simulate(inst, LazyThreshold(threshold_factor=10.0))
        assert tr.total_distance_moved == 0.0

    def test_moves_after_threshold(self):
        inst = _instance(np.full((30, 1, 1), 5.0), D=1.0)
        tr = simulate(inst, LazyThreshold(threshold_factor=1.0))
        assert tr.total_distance_moved > 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LazyThreshold(threshold_factor=0.0)
        with pytest.raises(ValueError):
            LazyThreshold(window=0)

    def test_reset_clears_state(self):
        alg = LazyThreshold(threshold_factor=0.1)
        inst = _instance(np.full((10, 1, 1), 5.0))
        simulate(inst, alg)
        tr2 = simulate(inst, alg)  # second run must behave identically
        tr3 = simulate(inst, LazyThreshold(threshold_factor=0.1))
        np.testing.assert_allclose(tr2.positions, tr3.positions)


class TestFollowFamily:
    def test_follow_last_chases_center(self):
        inst = _instance(np.full((10, 1, 1), 3.0), m=1.0)
        tr = simulate(inst, FollowLastRequest(), delta=0.0)
        assert float(tr.positions[-1, 0]) == pytest.approx(3.0)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            FollowLastRequest(smoothing=0.0)

    def test_smoothed_target_lags(self):
        # First batch initialises the target directly; the lag appears when
        # the center jumps on the second batch.
        pts = np.array([[[0.0]], [[10.0]]])
        inst = _instance(pts, m=100.0)
        fast = simulate(inst, FollowLastRequest(smoothing=1.0), delta=0.0)
        slow = simulate(inst, FollowLastRequest(smoothing=0.1), delta=0.0)
        assert float(slow.positions[2, 0]) < float(fast.positions[2, 0])

    def test_retrospective_tracks_history_median(self):
        pts = np.concatenate([np.zeros((20, 1, 1)), np.full((2, 1, 1), 9.0)])
        inst = _instance(pts, m=5.0)
        tr = simulate(inst, RetrospectiveCenter(), delta=0.0)
        # History median stays at 0 despite the late requests at 9.
        assert abs(float(tr.positions[-1, 0])) < 1.0

    def test_retrospective_history_capping(self):
        alg = RetrospectiveCenter(max_history=16)
        pts = np.cumsum(np.full((100, 1, 1), 0.1), axis=0)
        simulate(_instance(pts), alg)
        assert alg._count <= 2 * 16 + 1

    def test_retrospective_validation(self):
        with pytest.raises(ValueError):
            RetrospectiveCenter(max_history=1)


class TestMoveToMin:
    def test_waits_for_phase(self):
        inst = _instance(np.full((2, 1, 1), 5.0), D=4.0)  # phase size 4
        tr = simulate(inst, MoveToMin())
        assert tr.distances_moved[0] == 0.0  # still collecting

    def test_moves_to_phase_median(self):
        inst = _instance(np.full((10, 1, 1), 3.0), D=2.0, m=10.0)
        tr = simulate(inst, MoveToMin())
        assert float(tr.positions[-1, 0]) == pytest.approx(3.0)

    def test_phase_override(self):
        alg = MoveToMin(phase_requests=1)
        inst = _instance(np.full((3, 1, 1), 2.0), D=8.0, m=10.0)
        tr = simulate(inst, alg)
        assert tr.distances_moved[0] > 0.0  # reacts immediately

    def test_phase_validation(self):
        with pytest.raises(ValueError):
            MoveToMin(phase_requests=0)


class TestCoinFlip:
    def test_reproducible_with_seed(self):
        inst = _drift_instance(T=40)
        t1 = simulate(inst, CoinFlip(rng=np.random.default_rng(5)))
        t2 = simulate(inst, CoinFlip(rng=np.random.default_rng(5)))
        np.testing.assert_allclose(t1.positions, t2.positions)

    def test_probability_default_half_per_2d(self):
        inst = _drift_instance(D=4.0)
        alg = CoinFlip(rng=np.random.default_rng(0))
        simulate(inst, alg)
        assert alg._p == pytest.approx(1.0 / 8.0)

    def test_probability_override(self):
        inst = _drift_instance()
        alg = CoinFlip(rng=np.random.default_rng(0), probability=1.0)
        tr = simulate(inst, alg)
        assert tr.total_distance_moved > 0.0

    def test_is_randomized(self):
        assert CoinFlip().is_randomized()
        assert not StaticServer().is_randomized()

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            CoinFlip(probability=0.0)


class TestWorkFunctionLine:
    def test_requires_dim_one(self):
        pts = np.zeros((3, 1, 2))
        inst = MSPInstance(RequestSequence.from_packed(pts), start=np.zeros(2))
        with pytest.raises(ValueError, match="dimension 1"):
            simulate(inst, WorkFunctionLine())

    def test_tracks_stationary_requests(self):
        inst = _instance(np.full((30, 1, 1), 2.0), D=1.0)
        tr = simulate(inst, WorkFunctionLine(), delta=0.0)
        assert float(tr.positions[-1, 0]) == pytest.approx(2.0, abs=0.1)

    def test_respects_cap(self):
        inst = _drift_instance(T=40)
        tr = simulate(inst, WorkFunctionLine(), delta=0.5)
        tr.validate_against_cap(1.5)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            WorkFunctionLine(grid_size=2)

    def test_near_optimal_on_stationary(self):
        """WFA should approach the DP optimum on an easy instance."""
        from repro.offline import solve_line

        inst = _instance(np.full((40, 1, 1), 3.0), D=2.0)
        tr = simulate(inst, WorkFunctionLine(), delta=0.0)
        dp = solve_line(inst)
        assert tr.total_cost <= 2.0 * dp.cost + 1.0
