"""Tests for the geometric-median subpackage (exact, Weiszfeld, tie-break)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.median import (
    MedianSet,
    collinearity_frame,
    fermat_point_triangle,
    median_collinear,
    median_pair,
    median_single,
    median_set,
    request_center,
    weber_cost,
    weber_gradient_norm,
    weiszfeld,
)

coords = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


def batch(n, d):
    return arrays(np.float64, (n, d), elements=coords)


class TestMedianSet:
    def test_unique(self):
        ms = MedianSet(np.zeros(2), np.zeros(2))
        assert ms.is_unique

    def test_segment_projection_interior(self):
        ms = MedianSet(np.array([0.0, 0.0]), np.array([2.0, 0.0]))
        np.testing.assert_allclose(ms.closest_point_to(np.array([1.0, 5.0])), [1.0, 0.0])

    def test_segment_projection_clamps(self):
        ms = MedianSet(np.array([0.0]), np.array([2.0]))
        np.testing.assert_allclose(ms.closest_point_to(np.array([-3.0])), [0.0])
        np.testing.assert_allclose(ms.closest_point_to(np.array([9.0])), [2.0])


class TestExactCases:
    def test_single(self):
        ms = median_single(np.array([[3.0, 4.0]]))
        assert ms.is_unique
        np.testing.assert_allclose(ms.a, [3.0, 4.0])

    def test_pair_is_segment(self):
        ms = median_pair(np.array([[0.0, 0.0], [2.0, 2.0]]))
        assert not ms.is_unique

    def test_collinear_odd(self):
        pts = np.array([[0.0], [1.0], [5.0]])
        ms = median_collinear(pts)
        assert ms.is_unique
        np.testing.assert_allclose(ms.a, [1.0])

    def test_collinear_even_segment(self):
        pts = np.array([[0.0], [1.0], [2.0], [10.0]])
        ms = median_collinear(pts)
        np.testing.assert_allclose(sorted([ms.a[0], ms.b[0]]), [1.0, 2.0])

    def test_collinear_embedded_in_2d(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [3.0, 3.0]])
        ms = median_collinear(pts)
        np.testing.assert_allclose(ms.a, [1.0, 1.0])

    def test_collinear_rejects_triangle(self):
        with pytest.raises(ValueError, match="collinear"):
            median_collinear(np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]))

    def test_coincident_points(self):
        pts = np.ones((4, 2))
        ms = median_collinear(pts)
        np.testing.assert_allclose(ms.a, [1.0, 1.0])

    def test_collinearity_frame_detects(self):
        pts = np.array([[0.0, 0.0], [2.0, 2.0], [5.0, 5.0]])
        frame = collinearity_frame(pts)
        assert frame is not None

    def test_collinearity_frame_rejects(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert collinearity_frame(pts) is None


class TestFermatPoint:
    def test_equilateral_center(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        f = fermat_point_triangle(pts)
        np.testing.assert_allclose(f, pts.mean(axis=0), atol=1e-9)

    def test_obtuse_vertex_wins(self):
        # 150-degree angle at the origin: the vertex is the Fermat point.
        pts = np.array([[0.0, 0.0], [1.0, 0.0],
                        [np.cos(np.deg2rad(150)), np.sin(np.deg2rad(150))]])
        f = fermat_point_triangle(pts)
        np.testing.assert_allclose(f, [0.0, 0.0], atol=1e-9)

    def test_120_degree_sight_lines(self):
        """At an interior Fermat point all sides subtend 120 degrees."""
        pts = np.array([[0.0, 0.0], [4.0, 0.0], [1.0, 3.0]])
        f = fermat_point_triangle(pts)
        angles = []
        for i in range(3):
            u = pts[i] - f
            v = pts[(i + 1) % 3] - f
            cosang = np.dot(u, v) / (np.linalg.norm(u) * np.linalg.norm(v))
            angles.append(np.degrees(np.arccos(np.clip(cosang, -1, 1))))
        np.testing.assert_allclose(angles, 120.0, atol=1e-5)

    def test_matches_weiszfeld(self):
        pts = np.array([[0.0, 0.0], [3.0, 1.0], [1.0, 4.0]])
        f = fermat_point_triangle(pts)
        w = weiszfeld(pts).point
        assert weber_cost(f, pts) == pytest.approx(weber_cost(w, pts), abs=1e-8)

    def test_wrong_count_rejected(self):
        with pytest.raises(ValueError):
            fermat_point_triangle(np.zeros((2, 2)))


class TestWeiszfeld:
    def test_single_point(self):
        res = weiszfeld(np.array([[2.0, 3.0]]))
        np.testing.assert_allclose(res.point, [2.0, 3.0])
        assert res.on_vertex and res.converged

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weiszfeld(np.empty((0, 2)))

    def test_square_center(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        res = weiszfeld(pts)
        np.testing.assert_allclose(res.point, [0.5, 0.5], atol=1e-9)

    def test_dominant_vertex(self):
        """A vertex with enough multiplicity absorbs the median."""
        pts = np.vstack([np.zeros((5, 2)), np.array([[1.0, 0.0], [0.0, 1.0]])])
        res = weiszfeld(pts)
        np.testing.assert_allclose(res.point, [0.0, 0.0], atol=1e-9)
        assert res.on_vertex

    def test_gradient_small_at_optimum(self, rng):
        pts = rng.normal(size=(12, 3))
        res = weiszfeld(pts)
        assert weber_gradient_norm(res.point, pts) < 1e-6

    @given(batch(5, 2))
    def test_beats_random_probes(self, pts):
        """Property: no sampled point does better than the Weiszfeld output."""
        res = weiszfeld(pts)
        base = weber_cost(res.point, pts)
        probe_rng = np.random.default_rng(0)
        for _ in range(10):
            probe = res.point + probe_rng.normal(scale=0.1 + 0.1 * np.abs(pts).max(), size=2)
            assert weber_cost(probe, pts) >= base - 1e-6 * (1 + base)

    def test_beats_centroid_or_ties(self, rng):
        pts = rng.normal(size=(9, 2)) ** 3  # skewed
        res = weiszfeld(pts)
        assert weber_cost(res.point, pts) <= weber_cost(pts.mean(axis=0), pts) + 1e-9

    def test_high_dimension(self, rng):
        pts = rng.normal(size=(20, 7))
        res = weiszfeld(pts)
        assert weber_gradient_norm(res.point, pts) < 1e-5


class TestRequestCenter:
    def test_single_request(self):
        c = request_center(np.array([[2.0, 2.0]]), server=np.zeros(2))
        np.testing.assert_allclose(c, [2.0, 2.0])

    def test_pair_tie_break_projects_server(self):
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        c = request_center(pts, server=np.array([1.0, 7.0]))
        np.testing.assert_allclose(c, [1.0, 0.0])

    def test_pair_tie_break_clamps_to_segment(self):
        pts = np.array([[0.0, 0.0], [4.0, 0.0]])
        c = request_center(pts, server=np.array([-3.0, 0.0]))
        np.testing.assert_allclose(c, [0.0, 0.0])

    def test_even_collinear_tie_break(self):
        pts = np.array([[0.0], [1.0], [3.0], [10.0]])
        c = request_center(pts, server=np.array([2.5]))
        np.testing.assert_allclose(c, [2.5])  # inside the median interval

    def test_unique_median_ignores_server(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        c1 = request_center(pts, server=np.zeros(2))
        c2 = request_center(pts, server=np.array([100.0, -50.0]))
        np.testing.assert_allclose(c1, c2, atol=1e-9)

    def test_center_minimizes_weber(self, rng):
        pts = rng.normal(size=(7, 2))
        c = request_center(pts, server=np.zeros(2))
        for _ in range(20):
            probe = c + rng.normal(scale=0.05, size=2)
            assert weber_cost(c, pts) <= weber_cost(probe, pts) + 1e-7

    def test_median_set_none_for_generic_triangle(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        assert median_set(pts) is None

    def test_median_set_for_1d(self):
        pts = np.array([[0.0], [2.0], [4.0]])
        ms = median_set(pts)
        assert ms is not None and ms.is_unique

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            request_center(np.empty((0, 2)), server=np.zeros(2))
