"""Tests for the extension modules (multi-agent, multi-server, facility)."""

import numpy as np
import pytest

from repro.core import simulate
from repro.extensions import (
    CappedDoubleCoverage,
    KGreedyCenters,
    KMoveToCenter,
    MeyersonStatic,
    MobileMeyerson,
    MultiAgentInstance,
    MultiAgentMtC,
    simulate_facilities,
    simulate_k_servers,
    solve_two_servers_line,
)


def _agents(T=20, k=3, step=0.4):
    rng = np.random.default_rng(0)
    dirs = rng.normal(size=(k, 1))
    dirs /= np.abs(dirs)
    paths = np.cumsum(np.full((T, k, 1), step), axis=0) * dirs.T[None, 0, :, None][0]
    return paths


class TestMultiAgentInstance:
    def _paths(self, T=10, k=2, step=0.5, dim=1):
        return np.cumsum(np.full((T, k, dim), step), axis=0)

    def test_valid(self):
        ma = MultiAgentInstance(self._paths(), start=np.zeros(1), m_agent=0.8)
        assert ma.n_agents == 2 and ma.length == 10

    def test_speed_violation_detected(self):
        with pytest.raises(ValueError, match="m_agent"):
            MultiAgentInstance(self._paths(step=2.0), start=np.zeros(1), m_agent=1.0)

    def test_bad_shape(self):
        with pytest.raises(ValueError, match="T, k, d"):
            MultiAgentInstance(np.zeros((5, 2)), start=np.zeros(1))

    def test_as_msp_fixed_r(self):
        ma = MultiAgentInstance(self._paths(k=3), start=np.zeros(1), m_agent=0.6,
                                m_server=2.0, D=2.0)
        inst = ma.as_msp()
        assert inst.requests.r_min == inst.requests.r_max == 3
        assert inst.m == 2.0

    def test_d_validation(self):
        with pytest.raises(ValueError):
            MultiAgentInstance(self._paths(), start=np.zeros(1), D=0.5, m_agent=0.6)


class TestMultiAgentMtC:
    def test_k1_matches_moving_client_rule(self):
        """With one agent the generalised rule equals MovingClientMtC's cost
        up to the damping formulation (min(1, 1/D)·d vs min(cap, d/D))."""
        from repro.algorithms import MovingClientMtC

        path = np.cumsum(np.full((30, 1, 1), 0.5), axis=0)
        ma = MultiAgentInstance(path, start=np.zeros(1), D=4.0, m_server=1.0,
                                m_agent=0.5)
        inst = ma.as_msp()
        tr_multi = simulate(inst, MultiAgentMtC(n_agents=1), delta=0.0)
        tr_mc = simulate(inst, MovingClientMtC(), delta=0.0)
        # min(1, 1/D)*d == d/D for d <= cap*D; identical when neither caps.
        np.testing.assert_allclose(tr_multi.positions, tr_mc.positions, atol=1e-9)

    def test_agent_count_enforced(self):
        path = np.zeros((5, 2, 1))
        ma = MultiAgentInstance(path, start=np.zeros(1), m_agent=1.0)
        inst = ma.as_msp()
        with pytest.raises(ValueError, match="agents"):
            simulate(inst, MultiAgentMtC(n_agents=3), delta=0.0)

    def test_tracks_cohesive_agents(self):
        # Two agents both start at the origin; the second spreads to a +1
        # offset over the first 10 steps (total speed stays within 0.7).
        T = 60
        base = np.cumsum(np.full((T, 1), 0.5), axis=0)
        offset = np.minimum(np.arange(1, T + 1), 10)[:, None] * 0.1
        paths = np.stack([base, base + offset], axis=1)
        ma = MultiAgentInstance(paths, start=np.zeros(1), D=1.0, m_server=1.0,
                                m_agent=0.7)
        tr = simulate(ma.as_msp(), MultiAgentMtC(n_agents=2), delta=0.0)
        # Server ends between the two agents.
        final = float(tr.positions[-1, 0])
        lo, hi = paths[-1, :, 0].min(), paths[-1, :, 0].max()
        assert lo - 0.5 <= final <= hi + 0.5


class TestMultiServer:
    def _batches(self, T=20):
        rng = np.random.default_rng(2)
        return [np.array([[-3.0 + rng.normal(scale=0.1)],
                          [3.0 + rng.normal(scale=0.1)]]) for _ in range(T)]

    def test_simulation_shapes(self):
        starts = np.array([[-1.0], [1.0]])
        tr = simulate_k_servers(starts, self._batches(), KMoveToCenter(2), cap=1.0, D=2.0)
        assert tr.positions.shape == (21, 2, 1)
        assert tr.total_cost > 0

    def test_cap_enforced(self):
        class Teleport(KMoveToCenter):
            def decide(self, t, batch):
                return self.positions + 100.0

        starts = np.array([[0.0], [1.0]])
        with pytest.raises(ValueError, match="cap"):
            simulate_k_servers(starts, self._batches(5), Teleport(2), cap=1.0, D=1.0)

    def test_two_servers_split_hotspots(self):
        starts = np.array([[0.0], [0.5]])
        tr = simulate_k_servers(starts, self._batches(40), KMoveToCenter(2),
                                cap=1.0, D=1.0)
        finals = np.sort(tr.positions[-1, :, 0])
        assert finals[0] == pytest.approx(-3.0, abs=0.5)
        assert finals[1] == pytest.approx(3.0, abs=0.5)

    def test_greedy_also_splits(self):
        starts = np.array([[0.0], [0.5]])
        tr = simulate_k_servers(starts, self._batches(40), KGreedyCenters(2),
                                cap=1.0, D=1.0)
        finals = np.sort(tr.positions[-1, :, 0])
        assert finals[0] < 0 < finals[1]

    def test_capped_dc_requires_1d(self):
        starts = np.zeros((2, 2))
        with pytest.raises(ValueError, match="dimension 1"):
            simulate_k_servers(starts, [np.zeros((1, 2))], CappedDoubleCoverage(2),
                               cap=1.0, D=1.0)

    def test_capped_dc_runs(self):
        starts = np.array([[-1.0], [1.0]])
        tr = simulate_k_servers(starts, self._batches(20), CappedDoubleCoverage(2),
                                cap=1.0, D=1.0)
        tr.validate_against_cap(1.0)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KMoveToCenter(0)

    def test_two_server_dp_bracket(self):
        starts = np.array([[-3.0], [3.0]])
        batches = self._batches(15)
        res = solve_two_servers_line(starts, batches, m=1.0, D=2.0, grid_size=80)
        assert 0.0 <= res.lower_bound <= res.cost
        # Stationary hotspots at the start positions: near-zero optimum.
        assert res.cost < 10.0

    def test_two_server_dp_beats_online(self):
        starts = np.array([[-3.0], [3.0]])
        batches = self._batches(15)
        res = solve_two_servers_line(starts, batches, m=1.0, D=2.0, grid_size=80)
        tr = simulate_k_servers(starts, batches, KMoveToCenter(2), cap=1.0, D=2.0)
        assert res.lower_bound <= tr.total_cost + 1e-6

    def test_dp_rejects_coarse_grid(self):
        starts = np.array([[-50.0], [50.0]])
        batches = [np.array([[0.0]])]
        with pytest.raises(ValueError, match="coarse"):
            solve_two_servers_line(starts, batches, m=0.1, D=1.0, grid_size=16)


class TestFacility:
    def _stationary(self, T=40):
        rng = np.random.default_rng(3)
        return [np.array([[5.0, 0.0]]) + rng.normal(scale=0.2, size=(2, 2))
                for _ in range(T)]

    def test_static_never_pays_movement(self):
        tr = simulate_facilities(self._stationary(), MeyersonStatic(np.random.default_rng(0)),
                                 f=5.0)
        assert tr.movement_costs.sum() == 0.0

    def test_mobile_trace_consistency(self):
        tr = simulate_facilities(self._stationary(), MobileMeyerson(np.random.default_rng(0)),
                                 f=5.0, D=1.0, m=1.0)
        assert tr.total_cost == pytest.approx(
            tr.opening_costs.sum() + tr.movement_costs.sum() + tr.service_costs.sum()
        )
        assert tr.n_facilities >= 1

    def test_opening_rule_eventually_opens_far_cluster(self):
        tr = simulate_facilities(self._stationary(80), MeyersonStatic(np.random.default_rng(1)),
                                 f=5.0)
        assert tr.n_facilities >= 2  # initial + at least one near the cluster

    def test_invalid_f(self):
        with pytest.raises(ValueError):
            simulate_facilities(self._stationary(), MeyersonStatic(), f=0.0)

    def test_empty_batches_rejected(self):
        with pytest.raises(ValueError):
            simulate_facilities([], MeyersonStatic(), f=1.0)

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            MobileMeyerson(smoothing=0.0)

    def test_smoothing_reduces_stationary_movement(self):
        """The EMA target must waste less movement on noise than raw chasing."""
        raw = simulate_facilities(self._stationary(80),
                                  MobileMeyerson(np.random.default_rng(2), smoothing=1.0),
                                  f=5.0, D=1.0, m=1.0)
        ema = simulate_facilities(self._stationary(80),
                                  MobileMeyerson(np.random.default_rng(2), smoothing=0.3),
                                  f=5.0, D=1.0, m=1.0)
        assert ema.movement_costs[40:].sum() < raw.movement_costs[40:].sum()

    def test_mobile_follows_drift(self):
        rng = np.random.default_rng(4)
        batches = []
        pos = np.zeros(2)
        for _ in range(60):
            pos = pos + np.array([0.5, 0.0])
            batches.append(pos[None, :] + rng.normal(scale=0.1, size=(2, 2)))
        st = simulate_facilities(batches, MeyersonStatic(np.random.default_rng(5)),
                                 f=30.0, D=1.0)
        mo = simulate_facilities(batches, MobileMeyerson(np.random.default_rng(5)),
                                 f=30.0, D=1.0, m=1.0)
        assert mo.total_cost < st.total_cost
