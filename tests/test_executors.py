"""Tests for the pluggable executor backends and the distributed spool.

Synthetic cell functions live at module level so every backend can
resolve them by dotted path (in-process threads and pool children alike);
they drop marker files so the tests can count real executions.  The
end-to-end distributed test drives two real ``mobile-server worker``
subprocesses against a spool directory and asserts the tables are
bit-identical to a ``jobs=1`` inline run.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.store import ResultsStore
from repro.experiments import run_all_detailed
from repro.experiments.executors import (
    EXECUTOR_NAMES,
    InlineExecutor,
    ProcessExecutor,
    Spool,
    SpoolExecutor,
    SpoolTaskError,
    make_executor,
    run_worker,
)
from repro.experiments.orchestrator import SweepSpec, WorkUnit, execute
from repro.experiments.runner import ExperimentResult

_MODULE = "test_executors"
_SRC = str(Path(__file__).resolve().parent.parent / "src")


def _mark(workdir: str, name: str) -> None:
    Path(workdir, name.replace("/", "_")).touch()


def cell_value(value: float, workdir: str) -> dict:
    _mark(workdir, f"value-{value}")
    return {"value": value, "arr": np.arange(4) * value}


def cell_combine(keys: list, workdir: str, deps: dict) -> dict:
    _mark(workdir, "combine")
    return {"total": sum(deps[k]["value"] for k in keys)}


def cell_poison(workdir: str) -> dict:
    raise RuntimeError("this cell is poisoned")


def cell_none(workdir: str) -> None:
    """None is a legal payload (pack_payload supports it)."""
    _mark(workdir, "none-cell")
    return None


def finalize_none(results: dict, scale: float, seed: int) -> ExperimentResult:
    assert results["none"] is None
    return ExperimentResult("EX", "none", ["ok"], [[1.0]],
                            notes=["criterion: synthetic"], passed=True)


def _none_spec(workdir: str) -> SweepSpec:
    unit = WorkUnit("none", f"{_MODULE}:cell_none", {"workdir": workdir})
    return SweepSpec("EX", (unit,), f"{_MODULE}:finalize_none")


def cell_slow(seconds: float) -> dict:
    time.sleep(seconds)
    return {"ok": True}


def finalize_first_value(results: dict, scale: float, seed: int) -> ExperimentResult:
    ok = next(iter(results.values()))["ok"]
    return ExperimentResult("EX", "slow", ["ok"], [[float(ok)]],
                            notes=["criterion: synthetic"], passed=True)


def finalize_total(results: dict, scale: float, seed: int) -> ExperimentResult:
    total = results["combine"]["total"]
    return ExperimentResult("EX", "synthetic", ["total"], [[total]],
                            notes=["criterion: synthetic"], passed=True)


def _spec(workdir: str, values=(1.0, 2.0, 3.0)) -> SweepSpec:
    keys = [f"value/{v}" for v in values]
    units = [WorkUnit(key, f"{_MODULE}:cell_value", {"value": v, "workdir": workdir})
             for key, v in zip(keys, values)]
    units.append(WorkUnit("combine", f"{_MODULE}:cell_combine",
                          {"keys": keys, "workdir": workdir}, deps=tuple(keys)))
    return SweepSpec("EX", tuple(units), f"{_MODULE}:finalize_total")


def _poison_spec(workdir: str) -> SweepSpec:
    units = (
        WorkUnit("ok", f"{_MODULE}:cell_value", {"value": 1.0, "workdir": workdir}),
        WorkUnit("bad", f"{_MODULE}:cell_poison", {"workdir": workdir}),
    )
    return SweepSpec("EX", units, f"{_MODULE}:finalize_total")


# -- synthetic cells with a group runner (wave/mega-batch paths) ------------


def cell_gvalue(value: float, workdir: str) -> dict:
    _mark(workdir, f"gsingle-{value}")
    return {"value": value, "arr": np.arange(4) * value}


def _gvalue_group(calls):
    """Group runner: payload-identical to per-call cell_gvalue, but drops
    a wave marker instead of per-task ones so tests can tell which path ran."""
    _mark(calls[0][0]["workdir"], f"gwave-{len(calls)}")
    return [{"value": p["value"], "arr": np.arange(4) * p["value"]}
            for p, _ in calls]


cell_gvalue.group_runner = _gvalue_group


def cell_fragile(value: float, workdir: str) -> dict:
    if value < 0:
        raise RuntimeError("poisoned member")
    _mark(workdir, f"fragile-{value}")
    return {"value": value}


def _fragile_group(calls):
    raise RuntimeError("the whole wave blew up")


cell_fragile.group_runner = _fragile_group


def finalize_gtotal(results: dict, scale: float, seed: int) -> ExperimentResult:
    total = sum(p["value"] for p in results.values())
    return ExperimentResult("EX", "waves", ["total"], [[total]],
                            notes=["criterion: synthetic"], passed=True)


def _gspec(workdir: str, values=(1.0, 2.0, 3.0, 4.0)) -> SweepSpec:
    units = tuple(
        WorkUnit(f"value/{v}", f"{_MODULE}:cell_gvalue",
                 {"value": v, "workdir": workdir})
        for v in values)
    return SweepSpec("EX", units, f"{_MODULE}:finalize_gtotal")


class _WorkerThreads:
    """In-process spool workers for tests (same import path as the suite)."""

    def __init__(self, spool_dir: Path, store: ResultsStore, count: int = 2) -> None:
        self.spool = Spool(spool_dir)
        self.stats = [None] * count
        self.threads = [
            threading.Thread(
                target=self._run, args=(i, store), daemon=True)
            for i in range(count)
        ]

    def _run(self, i: int, store: ResultsStore) -> None:
        self.stats[i] = run_worker(self.spool, store, worker_id=f"w{i}",
                                   poll=0.01, idle_exit=30)

    def __enter__(self) -> "_WorkerThreads":
        for t in self.threads:
            t.start()
        return self

    def __exit__(self, *exc) -> None:
        self.spool.request_stop()
        for t in self.threads:
            t.join(timeout=30)


class TestMakeExecutor:
    def test_jobs_semantics_preserved(self):
        assert isinstance(make_executor(None, jobs=1), InlineExecutor)
        backend = make_executor(None, jobs=3)
        assert isinstance(backend, ProcessExecutor) and backend.jobs == 3

    def test_names(self):
        assert isinstance(make_executor("inline"), InlineExecutor)
        assert isinstance(make_executor("process"), ProcessExecutor)
        assert isinstance(make_executor("spool", spool="dir"), SpoolExecutor)

    def test_instance_passes_through(self):
        backend = SpoolExecutor("dir")
        assert make_executor(backend) is backend

    def test_spool_needs_directory(self):
        with pytest.raises(ValueError, match="spool directory"):
            make_executor("spool")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("carrier-pigeon")
        assert set(EXECUTOR_NAMES) == {"inline", "process", "spool"}

    def test_spool_args_with_non_spool_backend_rejected(self):
        """A spool dir must never silently degrade to a local run."""
        with pytest.raises(ValueError, match="apply only to"):
            make_executor("inline", spool="dir")
        with pytest.raises(ValueError, match="apply only to"):
            make_executor(None, jobs=2, timeout=5.0)
        with pytest.raises(ValueError, match="configure the instance"):
            make_executor(ProcessExecutor(jobs=2), spool="dir")

    def test_timestamp_uses_spool_fs_clock_and_cleans_up(self, tmp_path):
        spool = Spool(tmp_path)
        before = time.time() - 2.0
        stamp = spool.timestamp()
        assert before <= stamp <= time.time() + 2.0  # same clock locally
        assert list(tmp_path.iterdir()) == []  # probe removed


class TestSpoolProtocol:
    def _submit_one(self, spool: Spool, digest: str = "d1") -> None:
        spool.submit(key="k1", digest=digest, fn=f"{_MODULE}:cell_value",
                     params={"value": 1.0, "workdir": "."}, deps={})

    def test_submit_claim_roundtrip(self, tmp_path):
        spool = Spool(tmp_path)
        self._submit_one(spool)
        assert len(spool.pending()) == 1
        claimed = spool.claim("worker-a")
        assert claimed is not None
        assert claimed.key == "k1" and claimed.digest == "d1"
        assert claimed.params == {"value": 1.0, "workdir": "."}
        assert claimed.deps == {}
        assert spool.pending() == [] and len(spool.claimed()) == 1

    def test_claim_contention_exactly_one_winner(self, tmp_path):
        spool = Spool(tmp_path)
        self._submit_one(spool)
        assert spool.claim("worker-a") is not None
        assert spool.claim("worker-b") is None

    def test_ack_done_roundtrip(self, tmp_path):
        spool = Spool(tmp_path)
        self._submit_one(spool)
        claimed = spool.claim("worker-a")
        spool.ack_done(claimed, elapsed=1.25, worker_id="worker-a")
        assert spool.claimed() == []
        info = spool.done_info("d1")
        assert info["elapsed"] == 1.25 and info["worker"] == "worker-a"
        assert spool.failure("d1") is None

    def test_ack_failed_keeps_traceback(self, tmp_path):
        spool = Spool(tmp_path)
        self._submit_one(spool)
        claimed = spool.claim("worker-a")
        spool.ack_failed(claimed, error="Traceback: boom", worker_id="worker-a")
        failure = spool.failure("d1")
        assert "boom" in failure["error"] and failure["worker"] == "worker-a"
        assert spool.done_info("d1") is None

    def test_submit_clears_stale_acks(self, tmp_path):
        """A retried digest must not look already-finished (or failed)."""
        spool = Spool(tmp_path)
        self._submit_one(spool)
        claimed = spool.claim("worker-a")
        spool.ack_failed(claimed, error="boom", worker_id="worker-a")
        self._submit_one(spool)
        assert spool.failure("d1") is None and len(spool.pending()) == 1

    def test_reclaim_returns_task_to_pending(self, tmp_path):
        spool = Spool(tmp_path)
        self._submit_one(spool)
        claimed = spool.claim("worker-a")
        spool.reclaim(claimed.path)
        assert len(spool.pending()) == 1 and spool.claimed() == []
        assert spool.claim("worker-b").key == "k1"

    def test_reclaim_stale_respects_age(self, tmp_path):
        spool = Spool(tmp_path)
        self._submit_one(spool)
        spool.claim("worker-a")
        assert spool.reclaim_stale(max_age_seconds=3600) == []
        requeued = spool.reclaim_stale(max_age_seconds=0.0)
        assert len(requeued) == 1 and len(spool.pending()) == 1

    def test_worker_id_sanitized_in_claim_name(self, tmp_path):
        spool = Spool(tmp_path)
        self._submit_one(spool)
        claimed = spool.claim("we/ird worker")
        assert claimed is not None
        assert claimed.path.parent == spool.root
        assert "/" not in claimed.path.name

    def test_worker_id_cannot_forge_protocol_suffixes(self, tmp_path):
        """An id ending '.task' must not make claims claimable as tasks."""
        spool = Spool(tmp_path)
        self._submit_one(spool)
        assert spool.claim("e4.task") is not None
        assert spool.pending() == []  # the claim is not a task to anyone
        assert spool.claim("other") is None

    def test_claim_of_an_old_task_is_not_born_stale(self, tmp_path):
        """Rename preserves mtime; claim() must freshen it or a
        long-queued task gets reclaimed from under its live worker."""
        spool = Spool(tmp_path)
        self._submit_one(spool)
        old = time.time() - 3600
        os.utime(spool.pending()[0], (old, old))
        assert spool.claim("w0") is not None
        assert spool.reclaim_stale(max_age_seconds=60) == []

    def test_torn_task_file_is_failed_not_fatal(self, tmp_path):
        """A claim that parses to garbage fails the task, not the worker."""
        spool = Spool(tmp_path)
        (tmp_path / "d1.task.json").write_text("{torn")
        assert spool.claim("w0") is None
        failure = spool.failure("d1")
        assert failure is not None and "unparseable" in failure["error"]
        assert spool.pending() == [] and spool.claimed() == []

    def test_torn_ack_reads_as_not_yet_acked(self, tmp_path):
        spool = Spool(tmp_path)
        (tmp_path / "d1.done.json").write_text("{torn")
        assert spool.done_info("d1") is None

    def test_stop_flag(self, tmp_path):
        spool = Spool(tmp_path)
        assert not spool.stop_requested()
        spool.request_stop()
        assert spool.stop_requested()

    def test_half_written_files_are_never_claimable(self, tmp_path):
        """pathlib globs match dotfiles; in-flight tmp writes must not."""
        spool = Spool(tmp_path)
        (tmp_path / ".evil.task.json").write_text("")  # torn write
        (tmp_path / ".evil.claim-w0.json").write_text("")
        assert spool.pending() == [] and spool.claimed() == []
        assert spool.claim("w0") is None
        self._submit_one(spool)
        # The submit's own tmp name must not carry a protocol suffix.
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith(".tmp") or p.name.endswith(".tmp")]
        assert leftovers == []
        assert len(spool.pending()) == 1


class TestExecutorParity:
    """The acceptance bar: every backend is bit-identical to inline."""

    def test_process_executor_matches_inline(self, tmp_path):
        (tmp_path / "w1").mkdir()
        (tmp_path / "w2").mkdir()
        r_inline = execute([_spec(str(tmp_path / "w1"))], executor="inline")
        r_process = execute([_spec(str(tmp_path / "w2"))],
                            executor=ProcessExecutor(jobs=2))
        assert r_inline.results[0].render() == r_process.results[0].render()

    def test_spool_executor_matches_inline(self, tmp_path):
        work = tmp_path / "w"
        work.mkdir()
        store1 = ResultsStore(tmp_path / "s1")
        store2 = ResultsStore(tmp_path / "s2")
        r_inline = execute([_spec(str(work))], store=store1)
        with _WorkerThreads(tmp_path / "spool", store2, count=2):
            r_spool = execute([_spec(str(work))], store=store2,
                              executor=SpoolExecutor(tmp_path / "spool",
                                                     poll=0.01, timeout=60))
        assert r_inline.results[0].render() == r_spool.results[0].render()
        assert r_spool.computed == 4 and r_spool.cached == 0
        # identical content addresses => identical payload bytes semantics
        assert sorted(p.name for p in store1.root.glob("*.npz")) == \
               sorted(p.name for p in store2.root.glob("*.npz"))

    def test_spool_timings_come_from_worker_acks(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with _WorkerThreads(tmp_path / "spool", store, count=1):
            report = execute([_spec(str(tmp_path))], store=store,
                             executor=SpoolExecutor(tmp_path / "spool",
                                                    poll=0.01, timeout=60))
        assert set(report.timings) == {"EX/value/1.0", "EX/value/2.0",
                                       "EX/value/3.0", "EX/combine"}
        # Real in-worker durations from the done-acks, never the 0.0 of
        # bare store presence racing ahead of the ack.
        assert all(t > 0.0 for t in report.timings.values())

    def test_none_payload_caches_and_distributes(self, tmp_path):
        """A stored None payload is a cache hit, not a perpetual miss."""
        work = tmp_path / "work"
        work.mkdir()
        store = ResultsStore(tmp_path / "store")
        report = execute([_none_spec(str(work))], store=store)
        assert report.computed == 1
        warm = execute([_none_spec(str(work))], store=store)
        assert (warm.computed, warm.cached) == (0, 1)
        # And the spool path completes instead of resubmit-looping.
        (work / "none-cell").unlink()
        store2 = ResultsStore(tmp_path / "store2")
        with _WorkerThreads(tmp_path / "spool", store2, count=1):
            spooled = execute([_none_spec(str(work))], store=store2,
                              executor=SpoolExecutor(tmp_path / "spool",
                                                     poll=0.01, timeout=60))
        assert spooled.computed == 1
        assert spooled.results[0].render() == report.results[0].render()

    def test_dead_workers_claim_is_auto_requeued_to_live_fleet(self, tmp_path):
        """A claim whose heartbeat stopped must not hang the submission."""
        store = ResultsStore(tmp_path / "store")
        spool = Spool(tmp_path / "spool")
        work = tmp_path / "work"
        work.mkdir()
        result = []
        drain = threading.Thread(
            target=lambda: result.append(
                execute([_spec(str(work))], store=store,
                        executor=SpoolExecutor(tmp_path / "spool", poll=0.01,
                                               timeout=60, reclaim_after=0.3))),
            daemon=True)
        drain.start()
        # A "worker" claims one task and dies without ever heartbeating.
        deadline = time.monotonic() + 30
        while not spool.pending():
            assert time.monotonic() < deadline
            time.sleep(0.005)
        assert spool.claim("deadbeat") is not None
        with _WorkerThreads(tmp_path / "spool", store, count=1):
            drain.join(timeout=60)
        assert not drain.is_alive()
        assert result and result[0].computed == 4

    def test_spool_rerun_is_cache_hit(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with _WorkerThreads(tmp_path / "spool", store, count=1):
            execute([_spec(str(tmp_path))], store=store,
                    executor=SpoolExecutor(tmp_path / "spool", poll=0.01,
                                           timeout=60))
        # Nothing left to spool: the second submission never needs a worker.
        report = execute([_spec(str(tmp_path))], store=store,
                         executor=SpoolExecutor(tmp_path / "spool", poll=0.01,
                                                timeout=1))
        assert (report.computed, report.cached) == (0, 4)

    def test_submission_clears_stale_stop(self, tmp_path):
        """A reused spool must accept a fresh fleet after a past shutdown."""
        spool = Spool(tmp_path / "spool")
        spool.request_stop()  # leftover from a previous sweep's shutdown
        store = ResultsStore(tmp_path / "store")
        work = tmp_path / "work"
        work.mkdir()

        def late_workers():
            # Workers arrive after the submission (which must have
            # cleared the STOP, or they would exit immediately).
            time.sleep(0.2)
            run_worker(spool, store, worker_id="late", poll=0.01, idle_exit=30)

        thread = threading.Thread(target=late_workers, daemon=True)
        thread.start()
        report = execute([_spec(str(work))], store=store,
                         executor=SpoolExecutor(tmp_path / "spool", poll=0.01,
                                                timeout=60))
        spool.request_stop()
        thread.join(timeout=30)
        assert report.computed == 4

    def test_spool_rerun_recomputes_on_the_workers(self, tmp_path):
        """--rerun must not be short-circuited by the already-in-store ack."""
        work = tmp_path / "work"
        work.mkdir()
        store = ResultsStore(tmp_path / "store")
        with _WorkerThreads(tmp_path / "spool", store, count=1):
            execute([_spec(str(work))], store=store,
                    executor=SpoolExecutor(tmp_path / "spool", poll=0.01,
                                           timeout=60))
        for marker in work.iterdir():
            marker.unlink()
        with _WorkerThreads(tmp_path / "spool2", store, count=1):
            report = execute([_spec(str(work))], store=store, rerun=True,
                             executor=SpoolExecutor(tmp_path / "spool2",
                                                    poll=0.01, timeout=60))
        assert (report.computed, report.cached) == (4, 0)
        assert len(list(work.iterdir())) == 4  # every cell truly re-ran


class TestSpoolExecutorErrors:
    def test_store_required(self, tmp_path):
        with pytest.raises(ValueError, match="persistent store"):
            execute([_spec(str(tmp_path))],
                    executor=SpoolExecutor(tmp_path / "spool"))

    def test_timeout_without_workers(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with pytest.raises(TimeoutError, match="no progress"):
            execute([_spec(str(tmp_path))], store=store,
                    executor=SpoolExecutor(tmp_path / "spool", poll=0.01,
                                           timeout=0.2))

    def test_unreadable_acked_payload_errors_instead_of_livelock(self, tmp_path):
        """Workers keep acking, submitter keeps failing to read: bounded."""
        submitter_store = ResultsStore(tmp_path / "store")
        submitter_store.load_or_none = (
            lambda digest, default=None: default)  # e.g. EACCES on every read
        worker_store = ResultsStore(tmp_path / "store")
        with _WorkerThreads(tmp_path / "spool", worker_store, count=1):
            with pytest.raises(SpoolTaskError, match="unreadable"):
                execute([_spec(str(tmp_path), values=(1.0,))],
                        store=submitter_store,
                        executor=SpoolExecutor(tmp_path / "spool", poll=0.01,
                                               timeout=60))

    def test_library_spool_timeout_reaches_the_backend(self, tmp_path):
        """run_all_detailed(executor='spool', spool_timeout=...) is bounded."""
        store = ResultsStore(tmp_path / "store")
        with pytest.raises(TimeoutError, match="no progress"):
            run_all_detailed(["E9"], scale=0.05, store=store,
                             executor="spool", spool=tmp_path / "spool",
                             spool_timeout=0.2)

    def test_long_cell_outlasting_timeout_survives_via_heartbeat(self, tmp_path):
        """A computing worker's claim heartbeat defers the no-progress
        timeout; only a truly dead fleet should trip it."""
        store = ResultsStore(tmp_path / "store")
        unit = WorkUnit("slow", f"{_MODULE}:cell_slow", {"seconds": 2.5})
        spec = SweepSpec("EX", (unit,), f"{_MODULE}:finalize_first_value")
        with _WorkerThreads(tmp_path / "spool", store, count=1):
            report = execute([spec], store=store,
                             executor=SpoolExecutor(tmp_path / "spool",
                                                    poll=0.05, timeout=1.5))
        assert report.computed == 1

    def test_poisoned_cell_surfaces_worker_traceback(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with _WorkerThreads(tmp_path / "spool", store, count=1):
            with pytest.raises(SpoolTaskError, match="poisoned"):
                execute([_poison_spec(str(tmp_path))], store=store,
                        executor=SpoolExecutor(tmp_path / "spool", poll=0.01,
                                               timeout=60))
        # The healthy sibling cell still landed intact in the store.
        entries = [p for p in store.root.glob("*.npz")]
        assert len(entries) == 1
        digest = entries[0].name[:-len(".npz")]
        assert store.load_or_none(digest)["value"] == 1.0


class TestWorkerLoop:
    def test_poisoned_task_fails_but_worker_survives(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        spool.submit(key="bad", digest="bad-digest", fn=f"{_MODULE}:cell_poison",
                     params={"workdir": str(tmp_path)}, deps={})
        spool.submit(key="ok", digest="ok-digest", fn=f"{_MODULE}:cell_value",
                     params={"value": 2.0, "workdir": str(tmp_path)}, deps={})
        stats = run_worker(spool, store, worker_id="w0", poll=0.01, max_tasks=2)
        assert stats.failed == 1 and stats.completed == 1
        assert "RuntimeError" in spool.failure("bad-digest")["error"]
        # The store is uncorrupted: the failed cell wrote nothing, the
        # healthy one round-trips.
        assert store.load_or_none("bad-digest") is None
        assert store.load_or_none("ok-digest")["value"] == 2.0

    def test_already_stored_task_is_acked_without_recompute(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        store.save("dup-digest", {"value": 9.0})
        work = tmp_path / "work"
        work.mkdir()
        spool.submit(key="dup", digest="dup-digest", fn=f"{_MODULE}:cell_value",
                     params={"value": 9.0, "workdir": str(work)}, deps={})
        stats = run_worker(spool, store, worker_id="w0", poll=0.01, max_tasks=1)
        assert stats.skipped == 1 and stats.completed == 0
        assert spool.done_info("dup-digest") is not None
        assert list(work.iterdir()) == []  # the cell never ran

    def test_missing_dependency_is_handed_back_not_failed(self, tmp_path):
        """A dep the submitter can republish must not kill the sweep."""
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        spool.submit(key="orphan", digest="orphan-digest",
                     fn=f"{_MODULE}:cell_combine",
                     params={"keys": ["gone"], "workdir": str(tmp_path)},
                     deps={"gone": "dep-digest"})
        done = []
        messages = []
        thread = threading.Thread(
            target=lambda: done.append(
                run_worker(spool, store, worker_id="w0", poll=0.01,
                           idle_exit=2.0, progress=messages.append)),
            daemon=True)
        thread.start()
        deadline = time.monotonic() + 30
        # Wait until the worker has handed the task back at least once...
        while not any("waiting on dependency" in m for m in messages):
            assert spool.failure("orphan-digest") is None, \
                "missing dep must not be acked as a failure"
            assert time.monotonic() < deadline
            time.sleep(0.01)
        # ...then "heal" the store like the submitter would.
        store.save("dep-digest", {"value": 4.0})
        thread.join(timeout=30)
        stats = done[0]
        assert stats.completed == 1 and stats.failed == 0 and stats.retried >= 1
        assert store.load_or_none("orphan-digest")["total"] == 4.0

    def test_stale_stop_does_not_kill_a_new_worker(self, tmp_path):
        """Only a STOP requested after the worker started ends its loop."""
        spool = Spool(tmp_path / "spool")
        stop = spool.request_stop()  # previous sweep's shutdown
        stale = time.time() - 3600
        os.utime(stop, (stale, stale))
        spool.submit(key="k", digest="d", fn=f"{_MODULE}:cell_value",
                     params={"value": 5.0, "workdir": str(tmp_path)}, deps={})
        stats = run_worker(spool, ResultsStore(tmp_path / "store"),
                           worker_id="w0", poll=0.01, max_tasks=1)
        assert stats.completed == 1  # the stale STOP was ignored

    def test_fresh_stop_ends_the_loop(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.request_stop()
        # A STOP stamped now is fresh relative to this worker's start.
        stats = run_worker(spool, ResultsStore(tmp_path / "store"),
                           worker_id="w0", poll=0.01)
        assert stats.claimed == 0

    def test_idle_exit(self, tmp_path):
        t0 = time.monotonic()
        stats = run_worker(tmp_path / "spool", tmp_path / "store",
                           poll=0.01, idle_exit=0.05)
        assert time.monotonic() - t0 < 10
        assert stats.claimed == 0

    def test_orphaned_task_cannot_defeat_idle_exit(self, tmp_path):
        """Hand-backs are not productive: a dead submitter's task whose
        dep can never be republished must not spin a worker forever."""
        spool = Spool(tmp_path / "spool")
        spool.submit(key="orphan", digest="orphan-digest",
                     fn=f"{_MODULE}:cell_combine",
                     params={"keys": ["gone"], "workdir": str(tmp_path)},
                     deps={"gone": "never-appears"})
        t0 = time.monotonic()
        stats = run_worker(spool, ResultsStore(tmp_path / "store"),
                           worker_id="w0", poll=0.01, idle_exit=0.3)
        assert time.monotonic() - t0 < 30
        assert stats.retried >= 1 and stats.completed == 0 and stats.failed == 0
        assert len(spool.pending()) == 1  # the task survives for a rescuer

    def test_max_tasks_zero_claims_nothing(self, tmp_path):
        """The budget is enforced before the first claim."""
        spool = Spool(tmp_path / "spool")
        spool.submit(key="k", digest="d", fn=f"{_MODULE}:cell_value",
                     params={"value": 1.0, "workdir": str(tmp_path)}, deps={})
        stats = run_worker(spool, ResultsStore(tmp_path / "store"),
                           worker_id="w0", poll=0.01, max_tasks=0)
        assert stats.claimed == 0 and stats.retried == 0
        assert len(spool.pending()) == 1  # untouched
        assert ResultsStore(tmp_path / "store").load_or_none("d") is None

    def test_hand_back_cap_fails_the_task_fleet_wide(self, tmp_path):
        """The retry count travels in the task file, so a dep nobody can
        repair eventually fails the task instead of bouncing forever."""
        import repro.experiments.executors.worker as worker_mod

        spool = Spool(tmp_path / "spool")
        spool.submit(key="orphan", digest="orphan-digest",
                     fn=f"{_MODULE}:cell_combine",
                     params={"keys": ["gone"], "workdir": str(tmp_path)},
                     deps={"gone": "never-appears"})
        budget = worker_mod.MAX_HAND_BACKS + 1  # hand-backs + the final failure
        stats = run_worker(spool, ResultsStore(tmp_path / "store"),
                           worker_id="w0", poll=0.001, max_tasks=budget,
                           idle_exit=5.0)
        assert stats.retried == worker_mod.MAX_HAND_BACKS
        assert stats.failed == 1
        failure = spool.failure("orphan-digest")
        assert failure is not None and "hand-backs" in failure["error"]

    def test_orphaned_task_counts_toward_max_tasks(self, tmp_path):
        """--max-tasks must bound hand-backs too (no idle_exit set)."""
        spool = Spool(tmp_path / "spool")
        spool.submit(key="orphan", digest="orphan-digest",
                     fn=f"{_MODULE}:cell_combine",
                     params={"keys": ["gone"], "workdir": str(tmp_path)},
                     deps={"gone": "never-appears"})
        stats = run_worker(spool, ResultsStore(tmp_path / "store"),
                           worker_id="w0", poll=0.01, max_tasks=3)
        assert stats.retried == 3 and stats.claimed == 0

    def test_foreign_task_version_fails_cleanly(self, tmp_path):
        """A worker must not compute semantics it does not understand."""
        import json as json_mod

        spool = Spool(tmp_path / "spool")
        spool.submit(key="k", digest="d", fn=f"{_MODULE}:cell_value",
                     params={"value": 1.0, "workdir": str(tmp_path)}, deps={})
        task_path = spool.pending()[0]
        task = json_mod.loads(task_path.read_text())
        task["version"] = 99
        task_path.write_text(json_mod.dumps(task))
        stats = run_worker(spool, ResultsStore(tmp_path / "store"),
                           worker_id="w0", poll=0.01, max_tasks=1)
        assert stats.failed == 1
        assert "version" in spool.failure("d")["error"]


class TestDepHealing:
    def test_drain_republishes_missing_dep_entries(self, tmp_path):
        """Dep payload in submitter memory but absent from the store:
        drain republishes it so the handed-back task can complete."""
        from repro.core.store import digest_key
        from repro.experiments.executors import ExecutionContext

        store = ResultsStore(tmp_path / "store")
        consumer = WorkUnit("consume", f"{_MODULE}:cell_combine",
                            {"keys": ["src"], "workdir": str(tmp_path)},
                            deps=("src",))
        dep_digest = digest_key(f"{_MODULE}:cell_value", {"value": 2.0}, {})
        con_digest = digest_key(consumer.fn, dict(consumer.params),
                                {"src": dep_digest})
        # The dep payload was loaded earlier (cache hit) — in memory
        # only; its store entry has since been corrupted and dropped.
        payloads = {"src": {"value": 2.0}}
        finished = {}

        def finish(key, unit, payload, elapsed, persist=True):
            payloads[key] = payload
            finished[key] = payload

        ctx = ExecutionContext(
            pending=[("consume", consumer)],
            digests={"src": dep_digest, "consume": con_digest},
            payloads=payloads,
            store=store,
            dep_keys=lambda key, unit: list(unit.deps + unit.soft_deps),
            dep_payloads=lambda key, unit: {d: payloads[d] for d in unit.deps},
            finish=finish,
        )
        with _WorkerThreads(tmp_path / "spool", store, count=1):
            SpoolExecutor(tmp_path / "spool", poll=0.01, timeout=60).drain(ctx)
        assert finished["consume"]["total"] == 2.0
        assert store.load_or_none(dep_digest) == {"value": 2.0}  # healed


class TestCrashSafety:
    def test_killed_worker_leaves_reclaimable_task_and_clean_store(self, tmp_path):
        """SIGKILL a real worker mid-cell: no partial payload, claim reclaimable."""
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        spool.submit(key="slow", digest="slow-digest", fn=f"{_MODULE}:cell_slow",
                     params={"seconds": 60.0}, deps={})
        env = dict(os.environ,
                   PYTHONPATH=os.pathsep.join([_SRC, str(Path(__file__).parent)]))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--spool", str(spool.root), "--store", str(store.root),
             "--poll", "0.05", "--worker-id", "doomed"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 30
            while not spool.claimed():
                assert time.monotonic() < deadline, "worker never claimed the task"
                assert proc.poll() is None, "worker exited before claiming"
                time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
        # Mid-cell kill: no payload (not even a partial one), no ack —
        # only the claim file remains, and reclaiming re-queues the task.
        assert store.load_or_none("slow-digest") is None
        assert spool.done_info("slow-digest") is None
        assert spool.failure("slow-digest") is None
        claims = spool.claimed()
        assert len(claims) == 1 and "doomed" in claims[0].name
        spool.reclaim_stale(max_age_seconds=0.0)
        assert len(spool.pending()) == 1
        assert spool.claim("rescuer").key == "slow"

    def test_torn_midfile_copy_is_recomputed_not_crashed(self, tmp_path):
        """Corruption *inside* an entry (zip directory intact) is a miss.

        A partial copy between machines typically tears the compressed
        stream while the central directory still parses — that surfaces
        as zlib.error/EOFError, not BadZipFile, and must degrade to a
        recompute like any other corruption.
        """
        store = ResultsStore(tmp_path / "store")
        store.save("torn", {"arr": np.arange(4096, dtype=np.float64)})
        path = store.path_for("torn")
        raw = bytearray(path.read_bytes())
        mid = len(raw) // 2
        raw[mid:mid + 64] = b"\xff" * 64  # tear the compressed stream
        path.write_bytes(bytes(raw))
        assert store.load_or_none("torn") is None
        assert not path.exists()  # corrupt entry dropped for recompute

    def test_foreign_format_version_is_a_miss_but_never_deleted(self, tmp_path):
        """A newer code version's valid entry must survive our cache scan."""
        import repro.core.store as store_mod
        from repro.core.io import encode_meta

        store = ResultsStore(tmp_path / "store")
        store.root.mkdir(parents=True)
        path = store.path_for("future")
        meta = {"format_version": store_mod._STORE_VERSION + 1,
                "kind": "payload", "skeleton": {"v": 1}, "extra": {}}
        np.savez_compressed(path, meta=encode_meta(meta))
        assert store.load_or_none("future") is None  # unreadable: a miss
        assert path.exists()  # ...but never destroyed for its writer

    def test_corrupt_store_entry_recomputes_only_that_cell(self, tmp_path):
        """A resumed run treats a torn/corrupt entry as a plain cache miss."""
        work = tmp_path / "work"
        work.mkdir()
        store = ResultsStore(tmp_path / "store")
        execute([_spec(str(work))], store=store)
        victim = sorted(store.root.glob("*.npz"))[0]
        victim.write_bytes(b"torn mid-write")
        for marker in work.iterdir():
            marker.unlink()
        report = execute([_spec(str(work))], store=store)
        assert report.computed == 1 and report.cached == 3
        assert len(list(work.iterdir())) == 1  # only the victim re-ran
        # The recomputed entry is valid again.
        assert store.load_or_none(victim.name[:-len(".npz")]) is not None


class TestDistributedEndToEnd:
    """Two real worker subprocesses vs a jobs=1 inline run: bit-identical."""

    def _start_worker(self, spool_dir: Path, store_dir: Path, wid: str):
        env = dict(os.environ, PYTHONPATH=_SRC)
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--spool", str(spool_dir), "--store", str(store_dir),
             "--poll", "0.02", "--idle-exit", "120", "--worker-id", wid],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)

    def test_two_workers_match_inline_jobs1(self, tmp_path):
        spool_dir = tmp_path / "spool"
        store_spool = ResultsStore(tmp_path / "store-spool")
        store_inline = ResultsStore(tmp_path / "store-inline")
        workers = [self._start_worker(spool_dir, store_spool.root, f"w{i}")
                   for i in range(2)]
        try:
            distributed = run_all_detailed(
                ["E9"], scale=0.05, seed=0, store=store_spool,
                executor=SpoolExecutor(spool_dir, poll=0.02, timeout=180))
        finally:
            Spool(spool_dir).request_stop()
            outputs = [proc.communicate(timeout=60)[0] for proc in workers]
        inline = run_all_detailed(["E9"], scale=0.05, seed=0,
                                  store=store_inline, jobs=1)
        assert distributed.results[0].render() == inline.results[0].render()
        assert distributed.computed == inline.computed > 0
        # Same content addresses in both stores: cell-for-cell parity.
        assert sorted(p.name for p in store_spool.root.glob("*.npz")) == \
               sorted(p.name for p in store_inline.root.glob("*.npz"))
        # All cells were computed by the worker fleet (not in-process),
        # and every worker exited cleanly.
        for proc in workers:
            assert proc.returncode == 0
        completed = [int(m.group(1)) for out in outputs
                     for m in [re.search(r"(\d+) completed", out)] if m]
        assert sum(completed) == distributed.computed

    def test_cli_spool_submission_reports_cache_on_resubmit(self, tmp_path, capsys):
        from repro.cli import main

        spool_dir = tmp_path / "spool"
        store_dir = tmp_path / "store"
        store = ResultsStore(store_dir)
        with _WorkerThreads(spool_dir, store, count=2):
            code = main(["experiments", "--ids", "E9", "--scale", "0.05",
                         "--executor", "spool", "--spool", str(spool_dir),
                         "--store", str(store_dir), "--spool-timeout", "180"])
        assert code == 0
        cold = capsys.readouterr().out
        assert "store: 0/15 work units cached, 15 computed" in cold
        # Resubmission: everything cached, no worker needed.
        code = main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--executor", "spool", "--spool", str(spool_dir),
                     "--store", str(store_dir), "--spool-timeout", "1"])
        assert code == 0
        warm = capsys.readouterr().out
        assert "store: 15/15 work units cached, 0 computed" in warm
        assert warm.split("store:")[0] == cold.split("store:")[0]


class TestCLIWorkerAndFlags:
    def test_worker_idle_exit_empty_spool(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["worker", "--spool", str(tmp_path / "spool"),
                     "--store", str(tmp_path / "store"),
                     "--poll", "0.01", "--idle-exit", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 completed, 0 skipped, 0 failed" in out

    def test_worker_drains_pre_submitted_task(self, tmp_path, capsys):
        from repro.cli import main

        spool = Spool(tmp_path / "spool")
        spool.submit(key="k", digest="d", fn=f"{_MODULE}:cell_value",
                     params={"value": 3.0, "workdir": str(tmp_path)}, deps={})
        code = main(["worker", "--spool", str(spool.root),
                     "--store", str(tmp_path / "store"),
                     "--poll", "0.01", "--max-tasks", "1"])
        assert code == 0
        assert "completed k" in capsys.readouterr().out
        assert ResultsStore(tmp_path / "store").load_or_none("d")["value"] == 3.0

    def test_worker_exit_code_flags_failures(self, tmp_path, capsys):
        from repro.cli import main

        spool = Spool(tmp_path / "spool")
        spool.submit(key="bad", digest="d", fn=f"{_MODULE}:cell_poison",
                     params={"workdir": str(tmp_path)}, deps={})
        code = main(["worker", "--spool", str(spool.root),
                     "--store", str(tmp_path / "store"),
                     "--poll", "0.01", "--max-tasks", "1"])
        assert code == 1
        assert "failed bad" in capsys.readouterr().out

    def test_spool_flag_without_spool_executor_rejected(self, capsys, tmp_path):
        """--spool with the default executor must not silently run inline."""
        from repro.cli import main

        assert main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--spool", str(tmp_path), "--store", ""]) == 2
        assert "did you mean --executor spool" in capsys.readouterr().err

    def test_jobs_conflicts_with_non_pool_executors(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--store", "", "--executor", "inline", "--jobs", "2"]) == 2
        assert "--jobs" in capsys.readouterr().err
        assert main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--executor", "spool", "--spool", "s", "--jobs", "2"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_run_nongrid_forwards_jobs_to_run_many(self, capsys):
        """--executor process --jobs 2 on plain `run` must actually pool."""
        from repro.cli import main

        assert main(["run", "--source", "drift", "-p", "T=20", "-p", "dim=1",
                     "--ratio", "none", "--executor", "process",
                     "--jobs", "2"]) == 0
        assert "mean cost" in capsys.readouterr().out
        assert main(["run", "--source", "drift", "-p", "T=20", "-p", "dim=1",
                     "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_process_executor_requires_a_pool_size(self, capsys):
        """--executor process with the default --jobs 1 must not silently
        degenerate to a sequential run."""
        from repro.cli import main

        assert main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--store", "", "--executor", "process"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_experiments_spool_requires_spool_dir(self, capsys):
        from repro.cli import main

        assert main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--executor", "spool"]) == 2
        assert "--spool" in capsys.readouterr().err

    def test_experiments_spool_requires_store(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--executor", "spool", "--spool", str(tmp_path),
                     "--store", ""]) == 2
        assert "--store" in capsys.readouterr().err

    def test_spool_timeout_is_a_clean_cli_error(self, capsys, tmp_path):
        """No workers + --spool-timeout: one-line error, not a traceback."""
        from repro.cli import main

        code = main(["experiments", "--ids", "E9", "--scale", "0.05",
                     "--executor", "spool", "--spool", str(tmp_path / "spool"),
                     "--store", str(tmp_path / "store"),
                     "--spool-timeout", "0.2"])
        assert code == 1
        err = capsys.readouterr().err
        assert "distributed run failed" in err and "no progress" in err

    def test_run_grid_spool_timeout_is_a_clean_cli_error(self, capsys, tmp_path):
        from repro.cli import main

        code = main(["run", "--grid", "--source", "drift",
                     "-p", "T=20", "-p", "dim=1", "-p", "D=2.0", "-p", "m=1.0",
                     "--delta", "0.25,0.5", "--ratio", "bracket",
                     "--executor", "spool", "--spool", str(tmp_path / "spool"),
                     "--store", str(tmp_path / "store"),
                     "--spool-timeout", "0.2"])
        assert code == 1
        assert "distributed run failed" in capsys.readouterr().err

    def test_run_grid_spool_requires_store(self, capsys, tmp_path):
        from repro.cli import main

        assert main(["run", "--grid", "--source", "drift",
                     "-p", "T=20", "-p", "dim=1", "-p", "D=2.0", "-p", "m=1.0",
                     "--executor", "spool", "--spool", str(tmp_path)]) == 2
        assert "--store" in capsys.readouterr().err


class TestRunManyExecutor:
    def test_run_many_spool_matches_inline(self, tmp_path):
        from repro.api import Scenario, run_many

        scenarios = [
            Scenario.workload("drift", algorithm=name,
                              params={"T": 30, "dim": 1, "D": 2.0, "m": 1.0},
                              seeds=(0, 1), delta=0.5, ratio="bracket")
            for name in ("mtc", "greedy-centroid")
        ]
        inline = run_many(scenarios)
        store = ResultsStore(tmp_path / "store")
        with _WorkerThreads(tmp_path / "spool", store, count=2):
            pooled = run_many(scenarios, store=store,
                              executor=SpoolExecutor(tmp_path / "spool",
                                                     poll=0.01, timeout=120))
        for a, b in zip(inline, pooled):
            assert np.array_equal(a.costs, b.costs)
            assert np.array_equal(a.ratio_lower, b.ratio_lower)
            assert np.array_equal(a.ratio_upper, b.ratio_upper)

    def test_run_many_inline_executor_with_jobs_rejected(self):
        from repro.api import Scenario, run_many

        scenario = Scenario.workload("drift", algorithm="mtc",
                                     params={"T": 20, "dim": 1, "D": 2.0, "m": 1.0},
                                     seeds=(0,))
        with pytest.raises(ValueError, match="sequentially"):
            run_many([scenario], jobs=4, executor="inline")

    def test_experiment_spec_runs_on_the_spool_backend(self, tmp_path):
        """The declarative spec surface reaches the distributed backend too."""
        from repro.experiments.e9_lemma6 import spec

        e9 = spec(scale=0.05, seed=0)
        inline = e9.run()
        store = ResultsStore(tmp_path / "store")
        with _WorkerThreads(tmp_path / "spool", store, count=1):
            distributed = e9.run(store=store,
                                 executor=SpoolExecutor(tmp_path / "spool",
                                                        poll=0.01, timeout=120))
        assert distributed.render() == inline.render()

    def test_run_many_keep_traces_rejected_on_spool(self, tmp_path):
        from repro.api import Scenario, run_many

        scenario = Scenario.workload("drift", algorithm="mtc",
                                     params={"T": 20, "dim": 1, "D": 2.0, "m": 1.0},
                                     seeds=(0,))
        with pytest.raises(ValueError, match="keep_traces"):
            run_many([scenario], keep_traces=True,
                     executor=SpoolExecutor(tmp_path / "spool"))


def _assert_payload_equal(got, want) -> None:
    """Recursive bit-exact payload comparison (dicts / sequences / arrays)."""
    if isinstance(want, dict):
        assert isinstance(got, dict) and set(got) == set(want)
        for k in want:
            _assert_payload_equal(got[k], want[k])
    elif isinstance(want, np.ndarray):
        np.testing.assert_array_equal(got, want)
    elif isinstance(want, (list, tuple)):
        assert len(got) == len(want)
        for g, w in zip(got, want):
            _assert_payload_equal(g, w)
    else:
        assert got == want


class TestProcessExecutorWaves:
    """ProcessExecutor groups ready group-runner cells into per-job waves."""

    def test_waves_match_inline_and_record_sizes(self, tmp_path):
        (tmp_path / "w1").mkdir()
        (tmp_path / "w2").mkdir()
        r_inline = execute([_gspec(str(tmp_path / "w1"))], executor="inline")
        backend = ProcessExecutor(jobs=2)
        r_process = execute([_gspec(str(tmp_path / "w2"))], executor=backend)
        assert r_inline.results[0].render() == r_process.results[0].render()
        # 4 ready cells over 2 jobs: two waves of two, never per-cell submits.
        assert sorted(backend.wave_sizes) == [2, 2]
        names = {p.name for p in (tmp_path / "w2").iterdir()}
        assert names == {"gwave-2"}  # pool children took the group path

    def test_mixed_functions_only_wave_the_grouped_ones(self, tmp_path):
        work = tmp_path / "w"
        work.mkdir()
        units = tuple(
            WorkUnit(f"g/{v}", f"{_MODULE}:cell_gvalue",
                     {"value": v, "workdir": str(work)})
            for v in (1.0, 2.0, 3.0)
        ) + (
            WorkUnit("plain", f"{_MODULE}:cell_value",
                     {"value": 7.0, "workdir": str(work)}),
        )
        spec = SweepSpec("EX", units, f"{_MODULE}:finalize_gtotal")
        backend = ProcessExecutor(jobs=2)
        report = execute([spec], executor=backend)
        assert report.computed == 4
        assert sorted(backend.wave_sizes) == [1, 2]  # only gvalue cells waved
        names = {p.name for p in work.iterdir()}
        # The plain cell ran per-task; the singleton chunk still crosses as
        # a run_group_timed call (a wave of one inside the pool child).
        assert "value-7.0" in names and "gwave-2" in names and "gwave-1" in names

    def test_pool_of_one_degenerates_to_inline_wave(self, tmp_path):
        work = tmp_path / "w"
        work.mkdir()
        backend = ProcessExecutor(jobs=1)
        report = execute([_gspec(str(work))], executor=backend)
        assert report.computed == 4
        assert backend.wave_sizes == []  # the inline fallback waved instead
        assert {p.name for p in work.iterdir()} == {"gwave-4"}


class TestWorkerBatching:
    """--batch N: the spool worker drains compatible claims in one wave."""

    def _submit_values(self, spool: Spool, values, workdir: str,
                       fn: str = "cell_gvalue") -> None:
        for v in values:
            spool.submit(key=f"value/{v}", digest=f"digest-{v}",
                         fn=f"{_MODULE}:{fn}",
                         params={"value": v, "workdir": workdir}, deps={})

    def test_batch_drains_one_wave_with_identical_payloads(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        work = tmp_path / "work"
        work.mkdir()
        self._submit_values(spool, (1.0, 2.0, 3.0, 4.0), str(work))
        stats = run_worker(spool, store, worker_id="w0", poll=0.01,
                           max_tasks=4, batch=8)
        assert stats.completed == 4 and stats.failed == 0
        assert stats.waves == 1 and stats.wave_sizes == [4]
        # The wave ran the group entry point, never the per-task cell...
        assert {p.name for p in work.iterdir()} == {"gwave-4"}
        # ...yet every task kept its own digest, payload and done-ack.
        for v in (1.0, 2.0, 3.0, 4.0):
            payload = store.load_or_none(f"digest-{v}")
            assert payload["value"] == v
            np.testing.assert_array_equal(payload["arr"], np.arange(4) * v)
            info = spool.done_info(f"digest-{v}")
            assert info is not None and info["elapsed"] >= 0.0

    def test_batch_respects_max_tasks(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        work = tmp_path / "work"
        work.mkdir()
        self._submit_values(spool, (1.0, 2.0, 3.0, 4.0, 5.0), str(work))
        stats = run_worker(spool, store, worker_id="w0", poll=0.01,
                           max_tasks=3, batch=8)
        assert stats.claimed == 3
        assert stats.waves == 1 and stats.wave_sizes == [3]
        assert len(spool.pending()) == 2  # the budget held mid-scan

    def test_default_batch_is_task_at_a_time(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        work = tmp_path / "work"
        work.mkdir()
        self._submit_values(spool, (1.0, 2.0), str(work))
        stats = run_worker(spool, store, worker_id="w0", poll=0.01, max_tasks=2)
        assert stats.completed == 2 and stats.waves == 0
        assert {p.name for p in work.iterdir()} == {"gsingle-1.0", "gsingle-2.0"}

    def test_wave_of_one_is_a_single(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        work = tmp_path / "work"
        work.mkdir()
        self._submit_values(spool, (1.0,), str(work))
        stats = run_worker(spool, store, worker_id="w0", poll=0.01,
                           max_tasks=1, batch=8)
        assert stats.completed == 1 and stats.waves == 0
        assert {p.name for p in work.iterdir()} == {"gsingle-1.0"}

    def test_wave_failure_falls_back_to_per_task_isolation(self, tmp_path):
        """A poisoned wave retries per task: only the bad cell fails."""
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        work = tmp_path / "work"
        work.mkdir()
        self._submit_values(spool, (1.0, -1.0, 2.0), str(work),
                            fn="cell_fragile")
        stats = run_worker(spool, store, worker_id="w0", poll=0.01,
                           max_tasks=3, batch=8)
        assert stats.completed == 2 and stats.failed == 1
        assert stats.waves == 0  # the blown wave does not count
        assert "poisoned member" in spool.failure("digest--1.0")["error"]
        assert store.load_or_none("digest-1.0")["value"] == 1.0
        assert store.load_or_none("digest-2.0")["value"] == 2.0
        assert store.load_or_none("digest--1.0") is None

    def test_batch_skips_stored_tasks_and_waves_the_rest(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        store.save("digest-1.0", {"value": 1.0, "arr": np.arange(4) * 1.0})
        work = tmp_path / "work"
        work.mkdir()
        self._submit_values(spool, (1.0, 2.0, 3.0), str(work))
        stats = run_worker(spool, store, worker_id="w0", poll=0.01,
                           max_tasks=3, batch=8)
        assert stats.skipped == 1 and stats.completed == 2
        assert stats.waves == 1 and stats.wave_sizes == [2]

    def test_batch_rejects_nonpositive(self, tmp_path):
        with pytest.raises(ValueError, match="batch"):
            run_worker(tmp_path / "spool", tmp_path / "store", batch=0)

    def test_real_scenario_wave_is_bit_identical_to_inline_no_fuse(self, tmp_path):
        """The acceptance bar: a --batch worker's store payloads equal a
        fresh unfused inline run of the same scenarios, bit for bit."""
        from repro.api import Scenario, run
        from repro.api.scenario import CELL_FN
        from repro.core.kernels import fusion

        scenarios = [
            Scenario.workload("drift", algorithm=name,
                              params={"T": 30, "dim": 2, "D": 2.0, "m": 1.0},
                              seeds=(0, 1), delta=0.5, ratio="none")
            for name in ("mtc", "follow-last", "lazy-aggressive")
        ]
        spool = Spool(tmp_path / "spool")
        store = ResultsStore(tmp_path / "store")
        for sc in scenarios:
            spool.submit(key=sc.label(), digest=sc.digest(), fn=CELL_FN,
                         params={"scenario": sc.cache_dict()}, deps={})
        stats = run_worker(spool, store, worker_id="w0", poll=0.01,
                           max_tasks=3, batch=8)
        assert stats.completed == 3
        assert stats.waves == 1 and stats.wave_sizes == [3]
        ref = ResultsStore(tmp_path / "ref")
        with fusion(False):
            for sc in scenarios:
                ref.save(sc.digest(), run(sc, keep_traces=False).as_payload())
        for sc in scenarios:
            got = dict(store.load_or_none(sc.digest()))
            want = dict(ref.load_or_none(sc.digest()))
            # Wall-clock is the one legitimately run-dependent field.
            got.pop("elapsed"), want.pop("elapsed")
            _assert_payload_equal(got, want)

    def test_cli_batch_flag_prints_wave_summary(self, tmp_path, capsys):
        from repro.cli import main

        spool = Spool(tmp_path / "spool")
        work = tmp_path / "work"
        work.mkdir()
        self._submit_values(spool, (1.0, 2.0, 3.0), str(work))
        code = main(["worker", "--spool", str(spool.root),
                     "--store", str(tmp_path / "store"),
                     "--poll", "0.01", "--max-tasks", "3", "--batch", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 wave(s) of sizes [3]" in out
        assert "3 completed, 0 skipped, 0 failed" in out
