"""Tests for viz rendering, instance/trace persistence, ratio curves,
and the dynamic page-migration substrate."""

import numpy as np
import pytest

from repro.algorithms import MoveToCenter, StaticServer
from repro.analysis import ratio_curve, separation_curve
from repro.core import (
    CostModel,
    MSPInstance,
    RequestSequence,
    load_instance,
    load_trace,
    save_instance,
    save_trace,
    simulate,
)
from repro.offline import solve_line
from repro.pagemigration import (
    DynamicNetwork,
    MigrationNetwork,
    MoveToMinGraph,
    StaticPage,
    offline_dynamic_page_migration,
    offline_page_migration,
    simulate_dynamic_page_migration,
    simulate_page_migration,
)
from repro.viz import render_line_chart, render_plane, sparkline


class TestSparkline:
    def test_monotone_series(self):
        s = sparkline(np.arange(8.0))
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_series(self):
        s = sparkline(np.ones(5))
        assert set(s) == {"▁"}

    def test_resampling(self):
        assert len(sparkline(np.arange(1000.0), width=16)) == 16

    def test_empty(self):
        assert sparkline(np.array([])) == ""


class TestRenderPlane:
    def test_contains_markers_and_bounds(self):
        path = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5]])
        reqs = np.array([[0.5, 0.5], [1.5, 0.8]])
        out = render_plane(path, reqs, title="scene")
        assert "scene" in out
        assert "S" in out and "E" in out and "." in out
        assert "x:[" in out

    def test_reference_path_glyph(self):
        path = np.array([[0.0, 0.0], [2.0, 2.0]])
        ref = np.array([[0.0, 2.0], [2.0, 0.0]])
        out = render_plane(path, reference_path=ref)
        assert "o" in out

    def test_rejects_1d_path(self):
        with pytest.raises(ValueError):
            render_plane(np.zeros((3, 1)))

    def test_degenerate_scene(self):
        out = render_plane(np.zeros((2, 2)))
        assert "S" in out or "E" in out


class TestRenderLineChart:
    def test_two_series_with_legend(self):
        out = render_line_chart({"a": np.arange(10.0), "b": np.ones(10)}, title="t")
        assert "*=a" in out and "o=b" in out and "t" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_line_chart({})
        with pytest.raises(ValueError):
            render_line_chart({"a": np.array([])})


class TestPersistence:
    def _instance(self):
        seq = RequestSequence([np.array([[1.0, 2.0]]), np.empty((0, 2)),
                               np.array([[0.0, 0.0], [3.0, 1.0]])], dim=2)
        return MSPInstance(seq, start=np.array([0.5, 0.5]), D=2.0, m=0.75,
                           cost_model=CostModel.ANSWER_FIRST, name="rt")

    def test_instance_roundtrip_exact(self, tmp_path):
        inst = self._instance()
        p = save_instance(inst, tmp_path / "inst")
        back = load_instance(p)
        assert back.D == inst.D and back.m == inst.m
        assert back.cost_model is CostModel.ANSWER_FIRST
        assert back.name == "rt"
        np.testing.assert_array_equal(back.start, inst.start)
        assert back.requests.counts.tolist() == [1, 0, 2]
        for t in range(3):
            np.testing.assert_array_equal(back.requests[t].points,
                                          inst.requests[t].points)

    def test_trace_roundtrip_exact(self, tmp_path, line_instance):
        tr = simulate(line_instance, MoveToCenter(), delta=0.5)
        p = save_trace(tr, tmp_path / "trace")
        back = load_trace(p)
        assert back.algorithm == tr.algorithm
        np.testing.assert_array_equal(back.positions, tr.positions)
        assert back.total_cost == tr.total_cost

    def test_costs_replay_identically_after_roundtrip(self, tmp_path, line_instance):
        from repro.core import replay_cost

        tr = simulate(line_instance, MoveToCenter(), delta=0.5)
        pi = save_instance(line_instance, tmp_path / "i")
        inst2 = load_instance(pi)
        rp = replay_cost(inst2, tr.positions)
        assert rp.total_cost == pytest.approx(tr.total_cost, rel=0, abs=0)

    def test_kind_mismatch_rejected(self, tmp_path, line_instance):
        p = save_instance(line_instance, tmp_path / "x")
        with pytest.raises(ValueError, match="trace"):
            load_trace(p)

    def test_suffix_appended(self, tmp_path, line_instance):
        p = save_instance(line_instance, tmp_path / "noext")
        assert p.suffix == ".npz"


class TestCurves:
    def test_ratio_curve_flattens_for_mtc(self, line_instance):
        tr = simulate(line_instance, MoveToCenter(), delta=0.5)
        dp = solve_line(line_instance)
        curve = ratio_curve(line_instance, tr, dp.positions)
        assert curve.shape == (line_instance.length,)
        assert np.isnan(curve[0])
        tail = curve[~np.isnan(curve)][-10:]
        assert tail.max() - tail.min() < 1.0  # settled

    def test_ratio_curve_final_matches_total_ratio(self, line_instance):
        tr = simulate(line_instance, MoveToCenter(), delta=0.5)
        dp = solve_line(line_instance)
        curve = ratio_curve(line_instance, tr, dp.positions)
        from repro.core import replay_cost

        expected = tr.total_cost / replay_cost(line_instance, dp.positions).total_cost
        assert curve[-1] == pytest.approx(expected)

    def test_separation_curve(self, line_instance):
        tr = simulate(line_instance, StaticServer(), delta=0.0)
        sep = separation_curve(tr, tr.positions)
        np.testing.assert_allclose(sep, 0.0)

    def test_separation_shape_mismatch(self, line_instance):
        tr = simulate(line_instance, StaticServer(), delta=0.0)
        with pytest.raises(ValueError):
            separation_curve(tr, np.zeros((3, 1)))


class TestDynamicPageMigration:
    def test_static_network_matches_classical_substrate(self):
        """Speed-0 dynamic network reproduces the static simulator exactly."""
        rng = np.random.default_rng(0)
        positions = rng.uniform(-5, 5, size=(6, 2))
        T = 30
        requests = rng.integers(0, 6, size=T)
        dyn = DynamicNetwork.static(T, positions)

        # Static reference on the same metric (complete graph of Euclidean
        # distances).
        import networkx as nx

        g = nx.complete_graph(6)
        for i, j in g.edges():
            g[i][j]["weight"] = float(np.linalg.norm(positions[i] - positions[j]))
        net = MigrationNetwork.from_graph(g)

        for make in (StaticPage, MoveToMinGraph):
            cost_dyn = simulate_dynamic_page_migration(dyn, requests, make(), start=0, D=2.0)
            res_static = simulate_page_migration(net, requests, make(), start=0, D=2.0)
            assert cost_dyn == pytest.approx(res_static.total, rel=1e-9)

    def test_offline_matches_static_dp(self):
        rng = np.random.default_rng(1)
        positions = rng.uniform(-5, 5, size=(5, 2))
        T = 20
        requests = rng.integers(0, 5, size=T)
        dyn = DynamicNetwork.static(T, positions)
        opt_dyn = offline_dynamic_page_migration(dyn, requests, start=0, D=2.0)

        import networkx as nx

        g = nx.complete_graph(5)
        for i, j in g.edges():
            g[i][j]["weight"] = float(np.linalg.norm(positions[i] - positions[j]))
        net = MigrationNetwork.from_graph(g)
        opt_static = offline_page_migration(net, requests, start=0, D=2.0)
        assert opt_dyn == pytest.approx(opt_static.total, rel=1e-9)

    def test_dynamic_walkers_online_vs_offline(self):
        rng = np.random.default_rng(2)
        dyn = DynamicNetwork.random_walkers(40, 8, rng, speed=0.2)
        requests = rng.integers(0, 8, size=40)
        opt = offline_dynamic_page_migration(dyn, requests, start=0, D=2.0)
        online = simulate_dynamic_page_migration(dyn, requests, MoveToMinGraph(),
                                                 start=0, D=2.0)
        assert opt <= online + 1e-9

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="T, n, 2"):
            DynamicNetwork(np.zeros((5, 3)))

    def test_request_length_validation(self):
        dyn = DynamicNetwork.static(5, np.zeros((3, 2)))
        with pytest.raises(ValueError, match="per network step"):
            simulate_dynamic_page_migration(dyn, np.zeros(3, dtype=int), StaticPage())
