"""Tests for the declarative ``ExperimentSpec`` layer and reducer registry.

Synthetic cell functions live at module level so orchestrator workers can
import them by dotted path.
"""

import pytest

from repro.api import (
    CellSpec,
    ExperimentSpec,
    Reduction,
    Scenario,
    available_reducers,
    cell_grid,
    reduce_cells,
    reducer_info,
    register_reducer,
)
from repro.core.store import ResultsStore

_MODULE = "test_spec"


def cell_square(x: int, offset: int) -> dict:
    return {"y": x * x + offset, "ok": x < 10}


class TestReducerRegistry:
    def test_generic_reducers_registered(self):
        names = available_reducers()
        for name in ("table", "ratio-curve", "bootstrap-ci", "regression-fit",
                     "potential-trace"):
            assert name in names

    def test_experiment_reducers_registered(self):
        import repro.experiments  # noqa: F401  (registers e9..e16 reducers)

        names = available_reducers()
        for name in ("e9/lemma6", "e11/potential", "e14/multi-agent",
                     "e15/k-server", "e16/facility"):
            assert name in names

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_reducer("table")(lambda *a, **k: Reduction([]))

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="unknown reducer"):
            reducer_info("no-such-reducer")

    def test_reducer_must_return_reduction(self):
        register_reducer("test-spec/bad")(lambda cells, **k: [1, 2])
        with pytest.raises(TypeError, match="must return a Reduction"):
            reduce_cells("test-spec/bad", {}, points=[])


class TestGenericReducers:
    CELLS = {"c/1": {"v": 1.0, "flag": True}, "c/2": {"v": 3.0, "flag": True},
             "c/3": {"v": 5.0, "flag": False}}
    POINTS = [("c/1", {"x": 1}), ("c/2", {"x": 1}), ("c/3", {"x": 2})]

    def test_table(self):
        red = reduce_cells("table", self.CELLS, points=self.POINTS,
                           config={"columns": ["v"], "ok": "flag", "notes": ["n1"]})
        assert red.rows == [[1, 1.0], [1, 3.0], [2, 5.0]]
        assert red.notes == ["n1"] and red.passed is False

    def test_ratio_curve_groups_and_bounds(self):
        red = reduce_cells("ratio-curve", self.CELLS, points=self.POINTS,
                           config={"x": "x", "value": "v", "bound": 4.0})
        assert red.rows == [[1, 2.0], [2, 5.0]]
        assert red.passed is False  # 5.0 > 4.0
        red_ok = reduce_cells("ratio-curve", self.CELLS, points=self.POINTS,
                              config={"x": "x", "value": "v", "bound": 6.0})
        assert red_ok.passed is True

    def test_bootstrap_ci_rows_and_determinism(self):
        red = reduce_cells("bootstrap-ci", self.CELLS, points=self.POINTS,
                           config={"x": "x", "value": "v"}, seed=3)
        assert [row[0] for row in red.rows] == [1, 2]
        x1, mean1, lo1, hi1 = red.rows[0]
        assert mean1 == 2.0 and lo1 <= mean1 <= hi1
        # A single-sample group collapses to a degenerate interval.
        x2, mean2, lo2, hi2 = red.rows[1]
        assert lo2 == mean2 == hi2 == 5.0
        assert any("bootstrap CI" in note for note in red.notes)
        again = reduce_cells("bootstrap-ci", self.CELLS, points=self.POINTS,
                             config={"x": "x", "value": "v"}, seed=3)
        assert again.rows == red.rows  # seeded resampling is deterministic

    def test_bootstrap_ci_bound_criterion(self):
        config = {"x": "x", "value": "v", "bound": 4.0}
        red = reduce_cells("bootstrap-ci", self.CELLS, points=self.POINTS,
                           config=config)
        assert red.passed is False  # the x=2 group's upper end is 5.0
        assert any("criterion" in note for note in red.notes)
        red_ok = reduce_cells("bootstrap-ci", self.CELLS, points=self.POINTS,
                              config={"x": "x", "value": "v", "bound": 6.0})
        assert red_ok.passed is True

    def test_regression_fit(self):
        cells = {f"c/{x}": {"v": 2.0 * x**1.5} for x in (1, 2, 4, 8)}
        points = [(f"c/{x}", {"x": x}) for x in (1, 2, 4, 8)]
        red = reduce_cells("regression-fit", cells, points=points,
                           config={"x": "x", "value": "v",
                                   "exponent_range": [1.4, 1.6]})
        assert red.passed is True
        assert any("~ x^1.5" in note for note in red.notes)

    def test_potential_trace(self):
        cells = {"p/1": {"max_k": 2.0, "q95": 1.5, "violations": 0, "amort": 1.1},
                 "p/2": {"max_k": 3.0, "q95": 2.5, "violations": 2, "amort": 1.3}}
        points = [("p/1", {"delta": 1.0}), ("p/2", {"delta": 0.5})]
        red = reduce_cells("potential-trace", cells, points=points)
        assert red.rows == [[1.0, 2.0, 1.5, 0, 1.1], [0.5, 3.0, 2.5, 2, 1.3]]
        assert red.passed is False


class TestCellGrid:
    def test_expansion_merges_common_and_derive(self):
        cells = cell_grid(f"{_MODULE}:cell_square",
                          axes={"x": [1, 2]}, common={"offset": 5},
                          derive={"double": lambda p: 2 * p["x"]})
        assert [c.key for c in cells] == ["cell/x=1", "cell/x=2"]
        assert dict(cells[0].params) == {"x": 1, "offset": 5, "double": 2}
        assert dict(cells[0].point) == {"x": 1}

    def test_point_preserves_axis_order(self):
        cells = cell_grid("m:f", axes={"z": [1], "a": [2]})
        assert list(dict(cells[0].point)) == ["z", "a"]

    def test_derive_collision_rejected(self):
        with pytest.raises(ValueError, match="collides"):
            cell_grid("m:f", axes={"x": [1]}, derive={"x": lambda p: 1})

    def test_cell_round_trip(self):
        cell = cell_grid("m:f", axes={"x": [3]}, common={"o": 1})[0]
        assert CellSpec.from_dict(cell.to_dict()) == cell


def _synthetic_spec(offset: int = 5) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="EX",
        title="synthetic squares",
        headers=["x", "y"],
        reducer="table",
        cells=cell_grid(f"{_MODULE}:cell_square", axes={"x": [1, 2, 3]},
                        common={"offset": offset}),
        config={"columns": ["y"], "ok": "ok", "notes": ["criterion: synthetic"]},
    )


class TestExperimentSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="grid or function cells"):
            ExperimentSpec("EX", "t", ["a"], reducer="table")
        with pytest.raises(KeyError, match="unknown reducer"):
            ExperimentSpec("EX", "t", ["a"], reducer="no-such",
                           cells=cell_grid("m:f", axes={"x": [1]}))

    def test_run_produces_result(self):
        res = _synthetic_spec().run()
        assert res.experiment_id == "EX"
        assert res.rows == [[1, 6], [2, 9], [3, 14]]
        assert res.headers == ["x", "y"] and res.passed

    def test_run_caches_through_store(self, tmp_path):
        from repro.experiments.orchestrator import execute

        store = ResultsStore(tmp_path / "store")
        spec = _synthetic_spec()
        r1 = execute([spec.to_sweep()], store=store)
        r2 = execute([spec.to_sweep()], store=store)
        assert (r1.computed, r1.cached) == (3, 0)
        assert (r2.computed, r2.cached) == (0, 3)
        assert r1.results[0].render() == r2.results[0].render()

    def test_config_change_is_address_neutral_but_rows_change(self, tmp_path):
        """The reducer runs at finalize time: cells cache across configs."""
        from repro.experiments.orchestrator import execute

        store = ResultsStore(tmp_path / "store")
        execute([_synthetic_spec().to_sweep()], store=store)
        spec2 = _synthetic_spec()
        spec2 = ExperimentSpec.from_dict({**spec2.to_dict(),
                                          "config": {"columns": ["y"], "ok": "ok",
                                                     "notes": ["other note"]}})
        report = execute([spec2.to_sweep()], store=store)
        assert report.computed == 0  # same cells, pure cache hits
        assert report.results[0].notes == ["other note"]

    def test_round_trip(self):
        spec = _synthetic_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_scenario_grid_spec(self, tmp_path):
        """A spec whose cells are a Scenario.grid runs end to end."""
        grid = Scenario.grid("drift", "mtc",
                             params={"T": 30, "dim": 1, "D": 2.0, "m": 1.0},
                             delta=[0.25, 0.5], seeds=(0, 1), ratio="bracket")
        spec = ExperimentSpec(
            experiment_id="EX2", title="grid spec",
            headers=["delta", "mean cost", "ratio >=", "ratio <="],
            reducer="scenario-table",
            grid=grid,
            config={"max_ratio": 100.0},
        )
        res = spec.run(store=ResultsStore(tmp_path / "store"))
        assert [row[0] for row in res.rows] == [0.25, 0.5]
        assert all(len(row) == 4 for row in res.rows)
        assert res.passed
        # the certified upper bound populated from the bracket measurements
        assert all(isinstance(row[3], float) for row in res.rows)

    def test_scenario_table_ratio_ceiling_fails(self, tmp_path):
        grid = Scenario.grid("drift", "mtc",
                             params={"T": 30, "dim": 1, "D": 2.0, "m": 1.0},
                             seeds=(0,), ratio="bracket")
        spec = ExperimentSpec(
            experiment_id="EX3", title="ceiling", headers=["cost", "r>=", "r<="],
            reducer="scenario-table", grid=grid,
            config={"max_ratio": 1e-9},
        )
        res = spec.run(store=ResultsStore(tmp_path / "store"))
        assert not res.passed
        assert any("criterion" in n for n in res.notes)


class TestMigratedExperimentSpecs:
    """E9–E16 are declared via ExperimentSpec / orchestrator specs."""

    @pytest.mark.parametrize("module, eid", [
        ("e9_lemma6", "E9"), ("e10_lemma5", "E10"), ("e11_potential", "E11"),
        ("e14_multi_agent", "E14"), ("e15_multi_server", "E15"),
        ("e16_facility", "E16"),
    ])
    def test_spec_declared_and_lowered(self, module, eid):
        import importlib

        mod = importlib.import_module(f"repro.experiments.{module}")
        spec = mod.spec(0.1, 0)
        assert isinstance(spec, ExperimentSpec)
        assert spec.experiment_id == eid
        sweep = mod.build_spec(0.1, 0)
        assert sweep.experiment_id == eid and len(sweep.units) > 1

    @pytest.mark.parametrize("module", [
        "e9_lemma6", "e10_lemma5", "e11_potential", "e12_ablation",
        "e13_baselines", "e14_multi_agent", "e15_multi_server", "e16_facility",
    ])
    def test_run_entry_points_deprecated(self, module):
        """Legacy run() loop entry points warn and point at the spec."""
        import importlib

        mod = importlib.import_module(f"repro.experiments.{module}")
        with pytest.warns(DeprecationWarning, match="deprecated"):
            res = mod.run(scale=0.1, seed=0)
        assert res.rows  # the shim still returns the real result
