"""Tests for the unified scenario layer (``repro.api``).

Covers the Scenario dataclass (validation, serialization, content
addressing), the workload/adversary registries (full module coverage via
``resolve``), the ``run()`` dispatcher (scalar-vs-batched parity against
both legacy entry points for every registered algorithm), ``run_many``
sharing, and the orchestrator integration (scenario cells share store
addresses with inline runs).
"""

from __future__ import annotations

import pkgutil

import numpy as np
import pytest

import repro.adversaries as adversaries_pkg
import repro.workloads as workloads_pkg
from repro.adversaries import AdversarialInstance
from repro.adversaries.registry import ADVERSARIES, AdaptiveGame, BoundAdversary
from repro.algorithms import algorithm_info, available_algorithms, make_algorithm
from repro.api import (
    RunResult,
    Scenario,
    build_instances,
    resolve,
    run,
    run_many,
    scenario_unit,
)
from repro.core import CostModel, simulate, simulate_batch
from repro.core.store import ResultsStore
from repro.workloads.registry import WORKLOADS


class TestScenario:
    def test_params_are_frozen_and_sorted(self):
        sc = Scenario.workload("drift", "mtc", params={"b": 2, "a": 1})
        assert sc.source_params == (("a", 1), ("b", 2))
        assert sc.source_kwargs() == {"a": 1, "b": 2}

    def test_hashable(self):
        a = Scenario.workload("drift", "mtc", params={"T": 10})
        b = Scenario.workload("drift", "mtc", params={"T": 10})
        assert a == b and hash(a) == hash(b)

    def test_dict_round_trip(self):
        sc = Scenario.adversary("thm2", "mtc", params={"delta": 0.5, "cycles": 3},
                                seeds=[5, 6], delta=0.5, name="x")
        assert Scenario.from_dict(sc.to_dict()) == sc

    def test_digest_stable_and_param_sensitive(self):
        sc = Scenario.workload("drift", "mtc", params={"T": 10})
        assert sc.digest() == sc.digest()
        assert sc.digest() != sc.with_(source_params={"T": 11}).digest()
        assert sc.digest() != sc.with_(delta=0.5).digest()

    def test_digest_ignores_display_name(self):
        sc = Scenario.workload("drift", "mtc", params={"T": 10})
        assert sc.digest() == sc.with_(name="E1/some/label").digest()
        assert "name" not in sc.cache_dict()

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="kind"):
            Scenario(source="drift", algorithm="mtc", kind="nope")
        with pytest.raises(ValueError, match="ratio"):
            Scenario.workload("drift", "mtc", ratio="nope")
        with pytest.raises(ValueError, match="engine"):
            Scenario.workload("drift", "mtc", engine="nope")
        with pytest.raises(ValueError, match="delta"):
            Scenario.workload("drift", "mtc", delta=-1.0)
        with pytest.raises(ValueError, match="seed"):
            Scenario.workload("drift", "mtc", seeds=[])

    def test_rejects_non_jsonable_params(self):
        with pytest.raises(TypeError, match="JSON-able"):
            Scenario.workload("drift", "mtc", params={"x": object()})

    def test_effective_ratio_auto(self):
        assert Scenario.workload("drift", "mtc").effective_ratio() == "none"
        assert Scenario.adversary("thm1", "mtc").effective_ratio() == "adversary"


class TestRegistryCoverage:
    """Satellite: ``resolve`` round-trips every workloads/ and adversaries/ module."""

    # Scaffolding modules (abstract bases, the registries themselves) are
    # not request sources; every other module must be reachable by name.
    WORKLOAD_SCAFFOLDING = {"base", "registry"}
    ADVERSARY_SCAFFOLDING = {"base", "registry"}

    #: Minimal constructor params per registered workload.
    WORKLOAD_PARAMS = {name: {"T": 6} for name in WORKLOADS}

    #: Minimal construction params per registered adversary (new entries
    #: default to ``{"T": 9}`` — extend this map if that does not apply).
    ADVERSARY_PARAMS = {
        "thm2": {"delta": 0.5, "cycles": 2},
        "thm3": {"cycles": 2},
    }

    def _adversary_params(self, name: str) -> dict:
        return dict(self.ADVERSARY_PARAMS.get(name, {"T": 9}))

    def _source_module(self, obj) -> str:
        if isinstance(obj, AdaptiveGame):
            obj = obj.adversary
        if isinstance(obj, BoundAdversary):
            return obj.info.builder.__module__.rsplit(".", 1)[-1]
        return type(obj).__module__.rsplit(".", 1)[-1]

    def test_every_workload_module_is_registered(self):
        modules = {m.name for m in pkgutil.iter_modules(workloads_pkg.__path__)}
        expected = modules - self.WORKLOAD_SCAFFOLDING
        covered = {
            self._source_module(resolve(name, **self.WORKLOAD_PARAMS[name]))
            for name in WORKLOADS
        }
        missing = expected - covered
        assert not missing, f"workload modules without a registry entry: {sorted(missing)}"

    def test_every_adversary_module_is_registered(self):
        modules = {m.name for m in pkgutil.iter_modules(adversaries_pkg.__path__)}
        expected = modules - self.ADVERSARY_SCAFFOLDING
        covered = {
            self._source_module(resolve(name, **self._adversary_params(name)))
            for name in ADVERSARIES
        }
        missing = expected - covered
        assert not missing, f"adversary modules without a registry entry: {sorted(missing)}"

    def test_resolved_workloads_generate(self):
        rng = np.random.default_rng(0)
        for name in WORKLOADS:
            gen = resolve(name, **self.WORKLOAD_PARAMS[name])
            inst = gen.generate(rng)
            assert inst.length >= 1

    def test_resolved_adversaries_build(self):
        for name in ADVERSARIES:
            params = self._adversary_params(name)
            if ADVERSARIES[name].adaptive:
                outcome = resolve(name, **params).play(make_algorithm("static"))
                assert outcome.adversary_cost > 0
            else:
                adv = resolve(name, **params).build(np.random.default_rng(0))
                assert isinstance(adv, AdversarialInstance)

    def test_unknown_source_lists_both_registries(self):
        with pytest.raises(KeyError, match="drift.*thm1") as err:
            resolve("definitely-not-a-source")
        assert "thm2" in str(err.value)


def _parity_scenario(name: str) -> Scenario:
    """A scenario the named algorithm can legally play, B >= 2."""
    info = algorithm_info(name)
    if info.requires_moving_client:
        return Scenario.workload(
            "patrol-agent",
            algorithm=name,
            params={"T": 25, "dim": 2, "D": 2.0},
            seeds=[0, 1, 2],
            delta=0.5,
        )
    if not info.supports_metric("euclidean"):
        # Metric-restricted entries: the re-homed classical scenarios.
        if "graph" in info.metrics:
            return Scenario.workload(
                "graph-road",
                algorithm=name,
                params={"T": 25, "D": 2.0, "m": 50.0, "requests_per_step": 1},
                seeds=[0, 1, 2],
                metric="graph",
                ratio="none",
            )
        return Scenario.workload(
            "kserver-line",
            algorithm=name,
            params={"T": 25, "dim": 3},
            seeds=[0, 1, 2],
            metric=info.metrics[0],
            cost_model="movement-only",
            ratio="none",
        )
    cost_model = None
    if info.cost_models is not None:
        cost_model = info.cost_models[0]
    return Scenario.workload(
        "drift",
        algorithm=name,
        params={"T": 25, "dim": 1, "D": 2.0, "speed": 0.7, "spread": 0.3,
                "requests_per_step": 2},
        seeds=[0, 1, 2],
        delta=0.5,
        cost_model=cost_model,
    )


class TestDispatcherParity:
    """Satellite: identical costs through every path, for every algorithm."""

    @pytest.mark.parametrize("name", available_algorithms())
    def test_scalar_batched_and_legacy_agree(self, name):
        sc = _parity_scenario(name)
        scalar = run(sc.with_(engine="scalar"))
        batched = run(sc.with_(engine="batched"))
        auto = run(sc)
        assert scalar.engine == "scalar" and batched.engine == "batched"
        np.testing.assert_array_equal(scalar.costs, batched.costs)
        np.testing.assert_array_equal(scalar.costs, auto.costs)

        # Legacy path 1: the scalar simulator loop.
        instances, _ = build_instances(sc)
        legacy = np.array([
            simulate(inst, make_algorithm(name), delta=sc.delta,
                     metric=sc.metric).total_cost
            for inst in instances
        ])
        np.testing.assert_array_equal(scalar.costs, legacy)

        # Legacy path 2: the batched engine called directly.
        direct = simulate_batch(instances, name, delta=sc.delta,
                                metric=sc.metric).total_costs
        np.testing.assert_array_equal(batched.costs, direct)

    def test_auto_prefers_vectorized_entries(self):
        sc = _parity_scenario("mtc")
        assert run(sc).engine == "batched"
        # Variant parameters have no vectorized twin: fall back to scalar.
        assert run(sc.with_(algorithm_params={"step_scale": 0.5})).engine == "scalar"

    def test_algorithm_params_change_behaviour(self):
        sc = _parity_scenario("mtc")
        base = run(sc)
        variant = run(sc.with_(algorithm_params={"step_scale": 0.25}))
        assert not np.array_equal(base.costs, variant.costs)


class TestRunSemantics:
    def test_adversary_ratios_match_legacy_loop(self):
        sc = Scenario.adversary("thm2", "mtc", params={"delta": 0.5, "cycles": 3},
                                seeds=[0, 1, 2], delta=0.5)
        result = run(sc)
        source = resolve("thm2", delta=0.5, cycles=3)
        for i, seed in enumerate(sc.seeds):
            adv = source.build(np.random.default_rng(seed))
            trace = simulate(adv.instance, make_algorithm("mtc"), delta=0.5)
            assert result.ratios[i] == adv.ratio_of(trace.total_cost)
        assert result.mean_ratio == float(result.ratios.mean())

    def test_bracket_measurements(self):
        sc = Scenario.workload("drift", "mtc", params={"T": 20, "dim": 1, "D": 2.0},
                               seeds=[0, 1], delta=0.5, ratio="bracket")
        result = run(sc)
        assert len(result.measurements) == 2
        assert np.all(result.ratio_lower <= result.ratio_upper)

    def test_cost_model_override(self):
        base = Scenario.workload("drift", "mtc",
                                 params={"T": 20, "dim": 1, "D": 2.0,
                                         "requests_per_step": 3},
                                 seeds=[0], delta=0.5)
        af = run(base.with_(cost_model="answer-first"))
        mf = run(base)
        assert af.costs[0] != mf.costs[0]
        instances, _ = build_instances(base.with_(cost_model="answer-first"))
        assert instances[0].cost_model is CostModel.ANSWER_FIRST

    def test_adversary_rejects_cost_model_override(self):
        sc = Scenario.adversary("thm1", "mtc", params={"T": 16}, seeds=[0])
        with pytest.raises(ValueError, match="cost_model"):
            run(sc.with_(cost_model="answer-first"))

    def test_incompatible_algorithm_rejected(self):
        sc = Scenario.workload("drift", "mtc-moving-client",
                               params={"T": 10, "dim": 1}, seeds=[0])
        with pytest.raises(ValueError, match="moving-client"):
            run(sc)

    def test_wrong_cost_model_rejected(self):
        sc = Scenario.workload("drift", "mtc-answer-first",
                               params={"T": 10, "dim": 1}, seeds=[0])
        with pytest.raises(ValueError, match="cost model"):
            run(sc)

    def test_dim_restriction_rejected(self):
        sc = Scenario.workload("drift", "work-function",
                               params={"T": 10, "dim": 2}, seeds=[0])
        with pytest.raises(ValueError, match="dim"):
            run(sc)

    def test_workload_cannot_certify_against_adversary(self):
        sc = Scenario.workload("drift", "mtc", params={"T": 10, "dim": 1},
                               seeds=[0], ratio="adversary")
        with pytest.raises(ValueError, match="adversary"):
            run(sc)

    def test_adaptive_game_runs(self):
        sc = Scenario.adversary("greedy-escape", "mtc", params={"T": 20, "D": 2.0},
                                seeds=[0, 1], delta=0.5)
        result = run(sc)
        assert result.engine == "scalar"
        assert result.ratios.shape == (2,)
        with pytest.raises(ValueError, match="adaptive"):
            run(sc.with_(engine="batched"))

    def test_moving_client_source_lowers_to_msp(self):
        sc = Scenario.workload("patrol-agent", "mtc-moving-client",
                               params={"T": 15, "dim": 2, "m_agent": 0.8},
                               seeds=[0])
        result = run(sc)
        assert result.costs.shape == (1,)


class TestRunMany:
    def test_store_round_trip_and_cache_hit(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        sc = Scenario.adversary("thm1", "mtc", params={"T": 16}, seeds=[0, 1])
        first = run_many([sc], store=store)[0]
        assert sc.digest() in store
        second = run_many([sc], store=store)[0]
        assert second.traces is None  # reloaded, summaries only
        np.testing.assert_array_equal(first.costs, second.costs)
        np.testing.assert_array_equal(first.ratios, second.ratios)

    def test_shares_instances_across_algorithms(self):
        base = dict(params={"T": 20, "dim": 1, "D": 2.0}, seeds=[0, 1],
                    delta=0.5, ratio="bracket")
        results = run_many([
            Scenario.workload("drift", "mtc", **base),
            Scenario.workload("drift", "static", **base),
        ])
        # Identical instances => identical brackets on both results.
        a, b = results
        assert [m.opt_lower for m in a.measurements] == [m.opt_lower for m in b.measurements]

    def test_matches_individual_runs(self):
        scs = [
            Scenario.adversary("thm1", "mtc", params={"T": 16}, seeds=[0, 1]),
            Scenario.workload("drift", "lazy", params={"T": 20, "dim": 1}, seeds=[2]),
        ]
        many = run_many(scs)
        for sc, res in zip(scs, many):
            np.testing.assert_array_equal(res.costs, run(sc).costs)


class TestOrchestratorIntegration:
    def test_scenario_unit_digest_matches_inline_digest(self, tmp_path):
        from repro.experiments.orchestrator import SweepSpec, execute

        sc = Scenario.adversary("thm1", "mtc", params={"T": 16}, seeds=[0, 1],
                                name="a sweep label the cache must ignore")
        unit = scenario_unit("cell", sc)
        spec = SweepSpec("TEST", (unit,), finalize="test_api:_finalize_passthrough")
        store = ResultsStore(tmp_path / "store")
        report = execute([spec], store=store)
        assert report.computed == 1
        # The orchestrated cell and the inline API share the address:
        assert sc.digest() in store
        inline = run_many([sc], store=store)[0]
        assert report.results[0].rows[0][0] == float(inline.costs.mean())

    def test_cell_payload_round_trips_exactly(self):
        from repro.api import cell_run

        sc = Scenario.adversary("thm2", "mtc", params={"delta": 0.5, "cycles": 2},
                                seeds=[0, 1], delta=0.5)
        payload = cell_run(sc.to_dict())
        restored = RunResult.from_payload(payload)
        np.testing.assert_array_equal(restored.costs, run(sc).costs)


def _finalize_passthrough(results, scale, seed):
    from repro.experiments.runner import ExperimentResult

    mean_cost = float(np.asarray(results["cell"]["costs"]).mean())
    return ExperimentResult("TEST", "t", ["mean_cost"], [[mean_cost]], notes=["n"])
