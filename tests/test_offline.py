"""Tests for the offline optimum solvers (DP line, DP grid, convex, brackets)."""

import numpy as np
import pytest

from repro.core import CostModel, MSPInstance, RequestSequence, replay_cost, simulate
from repro.algorithms import MoveToCenter, StaticServer
from repro.offline import (
    bracket_optimum,
    convex_bracket,
    project_to_cap,
    relaxed_lower_bound,
    solve_grid,
    solve_line,
)


def _line_instance(pts, D=2.0, m=1.0, model=CostModel.MOVE_FIRST):
    seq = RequestSequence.from_packed(np.asarray(pts, dtype=float))
    return MSPInstance(seq, start=np.zeros(1), D=D, m=m, cost_model=model)


class TestSolveLine:
    def test_requires_dim_one(self, plane_instance):
        with pytest.raises(ValueError, match="dimension 1"):
            solve_line(plane_instance)

    def test_bracket_ordering(self, line_instance):
        res = solve_line(line_instance)
        assert 0.0 <= res.lower_bound <= res.cost

    def test_trajectory_is_feasible_and_achieves_cost(self, line_instance):
        res = solve_line(line_instance)
        tr = replay_cost(line_instance, res.positions, validate_cap=line_instance.m)
        assert tr.total_cost == pytest.approx(res.cost, rel=1e-9)

    def test_stationary_requests_served_in_place(self):
        """All requests on the start position: OPT = 0."""
        inst = _line_instance(np.zeros((10, 1, 1)))
        res = solve_line(inst)
        assert res.cost == pytest.approx(0.0, abs=1e-9)

    def test_single_far_request_rent_vs_buy(self):
        """One request at distance 5 with cap 1: OPT just serves it (D=2)."""
        inst = _line_instance(np.full((1, 1, 1), 5.0), D=2.0)
        res = solve_line(inst)
        # Moving up to 1.0 then serving costs D*x + (5-x) minimized at x=0
        # since D > 1... actually D*x+(5-x) = 5 + x(D-1) so best x=0 -> 5.
        assert res.cost == pytest.approx(5.0, rel=0.02)

    def test_repeated_far_requests_worth_moving(self):
        """Many requests at 2.0: OPT walks there and serves for free."""
        T = 40
        inst = _line_instance(np.full((T, 1, 1), 2.0), D=2.0, m=1.0)
        res = solve_line(inst)
        # Walk 2 units (cost 4), pay service on the way (~2+1), then free.
        assert res.cost <= 9.0
        assert res.cost >= 4.0

    def test_beats_every_online_algorithm(self, line_instance):
        res = solve_line(line_instance)
        for alg in (MoveToCenter(), StaticServer()):
            tr = simulate(line_instance, alg, delta=0.0)
            assert res.lower_bound <= tr.total_cost + 1e-9

    def test_fast_drift_stays_trackable(self):
        """Regression: the feasible band must keep up with a 0.9-speed drift."""
        T = 200
        pts = np.cumsum(np.full((T, 1, 1), 0.9), axis=0)
        inst = _line_instance(pts, D=2.0, m=1.0)
        res = solve_line(inst)
        # OPT tracks the drift: cost ~ T * D * 0.9 plus small service.
        assert res.cost <= 1.3 * T * 2.0 * 0.9
        mtc = simulate(inst, MoveToCenter(), delta=0.5).total_cost
        assert mtc / res.lower_bound < 3.0  # sane certified ratio

    def test_answer_first_model_supported(self):
        pts = np.full((10, 1, 1), 1.0)
        inst = _line_instance(pts, model=CostModel.ANSWER_FIRST)
        res = solve_line(inst)
        tr = replay_cost(inst, res.positions)
        assert tr.total_cost == pytest.approx(res.cost, rel=1e-9)

    def test_explicit_grid_size(self, line_instance):
        res = solve_line(line_instance, grid_size=300)
        assert res.grid.shape == (300,)

    def test_start_position_row(self, line_instance):
        res = solve_line(line_instance)
        assert abs(res.positions[0, 0] - line_instance.start[0]) <= (
            res.grid[1] - res.grid[0]
        )


class TestSolveGrid:
    def test_requires_dim_two(self, line_instance):
        with pytest.raises(ValueError, match="dimension 2"):
            solve_grid(line_instance)

    def test_bracket_ordering(self, plane_instance):
        res = solve_grid(plane_instance, grid_shape=(16, 16))
        assert 0.0 <= res.lower_bound <= res.cost

    def test_trajectory_feasible(self, plane_instance):
        res = solve_grid(plane_instance, grid_shape=(16, 16))
        tr = replay_cost(plane_instance, res.positions, validate_cap=plane_instance.m)
        assert tr.total_cost == pytest.approx(res.cost, rel=1e-9)

    def test_stationary_zero(self):
        seq = RequestSequence.from_packed(np.zeros((5, 1, 2)))
        inst = MSPInstance(seq, start=np.zeros(2), D=2.0, m=1.0)
        res = solve_grid(inst, grid_shape=(12, 12))
        assert res.cost == pytest.approx(0.0, abs=1e-9)

    def test_agrees_with_line_dp_on_collinear_input(self):
        """A 1-D instance embedded in the plane must give similar optima."""
        pts1 = np.cumsum(np.full((20, 1, 1), 0.5), axis=0)
        inst1 = _line_instance(pts1, D=2.0)
        res1 = solve_line(inst1)
        pts2 = np.concatenate([pts1, np.zeros_like(pts1)], axis=2)
        seq2 = RequestSequence.from_packed(pts2)
        inst2 = MSPInstance(seq2, start=np.zeros(2), D=2.0, m=1.0)
        res2 = solve_grid(inst2, grid_shape=(48, 5))
        assert res2.cost == pytest.approx(res1.cost, rel=0.2)


class TestConvex:
    def test_lower_le_upper(self, plane_instance):
        cb = convex_bracket(plane_instance)
        assert cb.lower <= cb.upper + 1e-9

    def test_feasible_positions_respect_cap(self, plane_instance):
        cb = convex_bracket(plane_instance)
        seg = np.diff(cb.feasible_positions, axis=0)
        steps = np.linalg.norm(seg, axis=1)
        assert steps.max() <= plane_instance.m * (1 + 1e-9)

    def test_relaxed_bound_below_any_feasible_cost(self, plane_instance):
        lower, _ = relaxed_lower_bound(plane_instance)
        tr = simulate(plane_instance, MoveToCenter(), delta=0.0)
        assert lower <= tr.total_cost + 1e-6

    def test_stationary_zero(self):
        seq = RequestSequence.from_packed(np.zeros((8, 1, 2)))
        inst = MSPInstance(seq, start=np.zeros(2), D=2.0, m=1.0)
        cb = convex_bracket(inst)
        assert cb.upper == pytest.approx(0.0, abs=1e-3)

    def test_agrees_with_line_dp(self):
        """On a slow 1-D workload the relaxation is nearly tight."""
        pts = np.cumsum(np.full((30, 1, 1), 0.3), axis=0)
        inst = _line_instance(pts, D=2.0)
        dp = solve_line(inst)
        cb = convex_bracket(inst)
        assert cb.lower <= dp.cost + 1e-6
        assert cb.upper >= dp.lower_bound - 1e-6

    def test_empty_sequence(self):
        seq = RequestSequence([np.empty((0, 2))], dim=2)
        inst = MSPInstance(seq, start=np.zeros(2))
        lower, pos = relaxed_lower_bound(inst)
        assert lower >= 0.0 and pos.shape[1] == 2


class TestProjectToCap:
    def test_clamps_each_step(self):
        target = np.array([[0.0], [5.0], [5.0]])
        out = project_to_cap(target, start=np.zeros(1), cap=1.0)
        steps = np.abs(np.diff(out[:, 0]))
        assert steps.max() <= 1.0 + 1e-12

    def test_identity_for_feasible(self):
        target = np.array([[0.0], [0.5], [1.0]])
        out = project_to_cap(target, start=np.zeros(1), cap=1.0)
        np.testing.assert_allclose(out, target)


class TestBracketOptimum:
    def test_auto_line(self, line_instance):
        br = bracket_optimum(line_instance)
        assert br.method == "dp-line"
        assert br.lower <= br.upper

    def test_auto_plane_uses_convex(self, plane_instance):
        br = bracket_optimum(plane_instance)
        assert br.method == "convex"

    def test_prefer_grid(self, plane_instance):
        br = bracket_optimum(plane_instance, prefer="dp-grid", grid_shape=(12, 12))
        assert br.method == "dp-grid"

    def test_unknown_method(self, line_instance):
        with pytest.raises(ValueError, match="unknown method"):
            bracket_optimum(line_instance, prefer="magic")

    def test_methods_mutually_consistent(self, plane_instance):
        convex = bracket_optimum(plane_instance, prefer="convex")
        grid = bracket_optimum(plane_instance, prefer="dp-grid", grid_shape=(20, 20))
        # Both bracket the same OPT, so the intervals must overlap.
        assert convex.lower <= grid.upper + 1e-6
        assert grid.lower <= convex.upper + 1e-6

    def test_relative_gap(self, line_instance):
        br = bracket_optimum(line_instance)
        assert 0.0 <= br.relative_gap <= 1.0
