"""Golden-table parity for the scenario-migrated experiments.

``tests/data/golden_migrated.json`` was captured from the pre-migration
(PR 2) code at ``scale=0.15, seed=1``: the hand-rolled per-seed loops of
E1, E2, E3, E6, E7 and E12.  These experiments now build their cells as
:class:`repro.api.Scenario` work units and run through the unified
dispatcher — and must reproduce the captured tables *exactly* (every
float rendered at 10 digits, every note string), which is the
acceptance criterion for the migration.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS, SPECS

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_migrated.json"
MIGRATED = ["E1", "E2", "E3", "E6", "E7", "E12"]

with GOLDEN_PATH.open() as fh:
    GOLDEN = json.load(fh)


@pytest.mark.parametrize("eid", MIGRATED)
def test_migrated_experiment_reproduces_golden_table(eid):
    result = EXPERIMENTS[eid](scale=0.15, seed=1)
    assert result.render(precision=10) == GOLDEN[eid]["render"]


@pytest.mark.parametrize("eid", MIGRATED)
def test_migrated_experiment_declares_spec(eid):
    spec = SPECS[eid](0.15, 1)
    assert spec.experiment_id == eid
    assert len(spec.units) > 1, "migrated experiments must be real multi-cell sweeps"
