"""Golden-table parity for the migrated experiments.

``tests/data/golden_migrated.json`` was captured from the pre-migration
code at ``scale=0.15, seed=1``, always *before* the corresponding
refactor landed: the hand-rolled per-seed loops of E1, E2, E3, E6, E7 and
E12 (PR 2 state, migrated to scenario cells in PR 3), and of E9, E10,
E11, E14, E15 and E16 (PR 3 state, migrated to declarative
``ExperimentSpec`` grids in PR 4), and the shared-bracket sweeps of E4
and E8 (PR 9 state, migrated to ``ExperimentSpec`` function cells in
PR 10).  The migrated experiments must
reproduce the captured tables *exactly* (every float rendered at 10
digits, every note string), which is the acceptance criterion for each
migration.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS, SPECS

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_migrated.json"
MIGRATED = ["E1", "E2", "E3", "E6", "E7", "E12",
            "E9", "E10", "E11", "E14", "E15", "E16",
            "E4", "E8"]

with GOLDEN_PATH.open() as fh:
    GOLDEN = json.load(fh)


@pytest.mark.parametrize("eid", MIGRATED)
def test_migrated_experiment_reproduces_golden_table(eid):
    result = EXPERIMENTS[eid](scale=0.15, seed=1)
    assert result.render(precision=10) == GOLDEN[eid]["render"]


@pytest.mark.parametrize("eid", MIGRATED)
def test_migrated_experiment_declares_spec(eid):
    spec = SPECS[eid](0.15, 1)
    assert spec.experiment_id == eid
    assert len(spec.units) > 1, "migrated experiments must be real multi-cell sweeps"
