"""Tests for the simulation engine (simulate / replay_cost / moving client)."""

import numpy as np
import pytest

from repro.algorithms import MoveToCenter, OnlineAlgorithm, StaticServer
from repro.core import (
    CostModel,
    MovementCapViolation,
    MovingClientInstance,
    MSPInstance,
    RequestSequence,
    replay_cost,
    simulate,
    simulate_moving_client,
)


class TeleportingAlgorithm(OnlineAlgorithm):
    """Deliberately violates the movement cap."""

    name = "teleporter"

    def decide(self, t, batch):
        return self.position + 100.0


class RecordingAlgorithm(OnlineAlgorithm):
    """Stays put and records what it sees."""

    name = "recorder"

    def __init__(self):
        super().__init__()
        self.seen = []

    def decide(self, t, batch):
        self.seen.append((t, batch.count))
        return self.position


def _instance(T=4, model=CostModel.MOVE_FIRST):
    pts = np.arange(T, dtype=float).reshape(T, 1, 1)
    return MSPInstance(RequestSequence.from_packed(pts), start=np.zeros(1),
                       D=2.0, m=1.0, cost_model=model)


class TestSimulate:
    def test_trace_shapes(self):
        tr = simulate(_instance(), StaticServer())
        assert tr.length == 4 and tr.positions.shape == (5, 1)

    def test_static_costs(self):
        # Requests at 0,1,2,3 served from 0 with no movement.
        tr = simulate(_instance(), StaticServer())
        assert tr.total_movement_cost == 0.0
        assert tr.total_service_cost == pytest.approx(0 + 1 + 2 + 3)

    def test_cap_violation_raises(self):
        with pytest.raises(MovementCapViolation, match="teleporter"):
            simulate(_instance(), TeleportingAlgorithm())

    def test_augmentation_extends_cap(self):
        inst = _instance()
        tr0 = simulate(inst, MoveToCenter(), delta=0.0)
        tr1 = simulate(inst, MoveToCenter(), delta=1.0)
        assert tr0.max_step_distance() <= 1.0 + 1e-9
        assert tr1.max_step_distance() <= 2.0 + 1e-9

    def test_algorithm_sees_every_step(self):
        alg = RecordingAlgorithm()
        simulate(_instance(T=3), alg)
        assert alg.seen == [(0, 1), (1, 1), (2, 1)]

    def test_callback_invoked(self):
        calls = []
        simulate(_instance(T=3), StaticServer(),
                 callback=lambda t, old, new, pts: calls.append(t))
        assert calls == [0, 1, 2]

    def test_positions_row0_is_start(self):
        tr = simulate(_instance(), StaticServer())
        np.testing.assert_allclose(tr.positions[0], [0.0])

    def test_answer_first_charges_old_position(self):
        inst = _instance(model=CostModel.ANSWER_FIRST)
        # MtC moves toward each request; in answer-first the service is
        # charged before the move, so it should cost more than move-first
        # on this forward-drifting sequence.
        af = simulate(inst, MoveToCenter(), delta=0.0).total_cost
        mf = simulate(_instance(), MoveToCenter(), delta=0.0).total_cost
        assert af >= mf

    def test_request_counts_recorded(self):
        tr = simulate(_instance(), StaticServer())
        np.testing.assert_array_equal(tr.request_counts, [1, 1, 1, 1])

    def test_empty_sequence(self):
        seq = RequestSequence([np.empty((0, 1))], dim=1)
        inst = MSPInstance(seq, start=np.zeros(1))
        tr = simulate(inst, MoveToCenter())
        assert tr.length == 1 and tr.total_cost == 0.0

    def test_deterministic(self):
        inst = _instance()
        t1 = simulate(inst, MoveToCenter(), delta=0.5)
        t2 = simulate(inst, MoveToCenter(), delta=0.5)
        np.testing.assert_array_equal(t1.positions, t2.positions)

    def test_in_place_mutation_cannot_corrupt_accounting(self):
        """Regression: decide() mutating its position in place and returning it.

        The simulator's pre-move position must never alias the algorithm's
        live position — otherwise such an algorithm sees ``old == new`` and
        its movement is accounted as zero, and the trace rows could be
        retroactively rewritten.
        """

        class InPlaceDrifter(OnlineAlgorithm):
            name = "in-place-drifter"

            def decide(self, t, batch):
                self.position += 0.5  # mutates, then returns the same array
                return self.position

        tr = simulate(_instance(T=4), InPlaceDrifter())
        # Moves 0.5 per step, weighted by D=2.0 -> movement cost 1.0 per step.
        np.testing.assert_allclose(tr.distances_moved, [0.5, 0.5, 0.5, 0.5])
        np.testing.assert_allclose(tr.movement_costs, [1.0, 1.0, 1.0, 1.0])
        # The trace rows are snapshots, not views of the mutated array.
        np.testing.assert_allclose(tr.positions[:, 0], [0.0, 0.5, 1.0, 1.5, 2.0])

    def test_trace_rows_do_not_alias_algorithm_position(self):
        alg = StaticServer()
        tr = simulate(_instance(), alg)
        assert not np.shares_memory(tr.positions, alg.position)


class TestReplayCost:
    def test_matches_simulation(self):
        """Replaying an algorithm's own trajectory reproduces its costs."""
        inst = _instance()
        tr = simulate(inst, MoveToCenter(), delta=0.5)
        rp = replay_cost(inst, tr.positions)
        assert rp.total_cost == pytest.approx(tr.total_cost)
        np.testing.assert_allclose(rp.service_costs, tr.service_costs)

    def test_accepts_post_move_rows(self):
        inst = _instance()
        tr = simulate(inst, MoveToCenter(), delta=0.5)
        rp = replay_cost(inst, tr.positions[1:])  # start prepended internally
        assert rp.total_cost == pytest.approx(tr.total_cost)

    def test_answer_first_accounting(self):
        inst = _instance(model=CostModel.ANSWER_FIRST)
        positions = np.zeros((5, 1))  # never move
        rp = replay_cost(inst, positions)
        assert rp.total_cost == pytest.approx(0 + 1 + 2 + 3)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="positions"):
            replay_cost(_instance(), np.zeros((2, 1)))

    def test_wrong_dim_rejected(self):
        with pytest.raises(ValueError, match="dimension"):
            replay_cost(_instance(), np.zeros((5, 2)))

    def test_cap_validation_optional(self):
        inst = _instance()
        jumpy = np.zeros((5, 1))
        jumpy[2] = 50.0
        replay_cost(inst, jumpy)  # fine without validation
        with pytest.raises(ValueError, match="movement cap"):
            replay_cost(inst, jumpy, validate_cap=1.0)


class TestMovingClientSimulation:
    def test_lowering_equivalence(self):
        path = np.cumsum(np.full((6, 1), 0.5), axis=0)
        mc = MovingClientInstance(path, start=np.zeros(1), D=2.0,
                                  m_server=1.0, m_agent=0.5)
        tr1 = simulate_moving_client(mc, MoveToCenter(), delta=0.0)
        tr2 = simulate(mc.as_msp(), MoveToCenter(), delta=0.0)
        assert tr1.total_cost == pytest.approx(tr2.total_cost)

    def test_cap_uses_server_speed(self):
        path = np.cumsum(np.full((6, 1), 0.5), axis=0)
        mc = MovingClientInstance(path, start=np.zeros(1), m_server=0.25, m_agent=0.5)
        tr = simulate_moving_client(mc, MoveToCenter(), delta=0.0)
        assert tr.max_step_distance() <= 0.25 + 1e-9
