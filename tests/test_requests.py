"""Tests for RequestBatch / RequestSequence."""

import numpy as np
import pytest

from repro.core import RequestBatch, RequestSequence


class TestRequestBatch:
    def test_count_and_dim(self):
        b = RequestBatch(np.zeros((3, 2)))
        assert b.count == 3 and b.dim == 2

    def test_empty_batch(self):
        b = RequestBatch(np.empty((0, 2)))
        assert b.count == 0
        assert b.service_cost(np.zeros(2)) == 0.0

    def test_service_cost(self):
        b = RequestBatch(np.array([[3.0, 4.0], [0.0, 0.0]]))
        assert b.service_cost(np.zeros(2)) == pytest.approx(5.0)

    def test_iteration(self):
        b = RequestBatch(np.array([[1.0], [2.0]]))
        assert [float(p[0]) for p in b] == [1.0, 2.0]

    def test_len(self):
        assert len(RequestBatch(np.zeros((4, 1)))) == 4

    def test_single_point_promotion(self):
        b = RequestBatch(np.array([1.0, 2.0]))
        assert b.count == 1 and b.dim == 2


class TestRequestSequence:
    def test_from_packed(self):
        seq = RequestSequence.from_packed(np.zeros((5, 2, 3)))
        assert seq.length == 5 and seq.dim == 3
        assert seq.is_uniform
        assert seq.packed.shape == (5, 2, 3)

    def test_single_requests(self):
        seq = RequestSequence.single_requests(np.zeros((4, 2)))
        assert seq.length == 4 and seq.r_min == seq.r_max == 1

    def test_ragged(self):
        seq = RequestSequence([np.zeros((1, 2)), np.zeros((3, 2))])
        assert seq.r_min == 1 and seq.r_max == 3
        assert not seq.is_uniform
        assert seq.packed is None

    def test_empty_steps_allowed(self):
        seq = RequestSequence([np.empty((0, 2)), np.zeros((2, 2))])
        assert seq.r_min == 0 and seq.r_max == 2
        assert seq[0].count == 0 and seq[0].dim == 2

    def test_all_empty_needs_dim(self):
        with pytest.raises(ValueError, match="dim"):
            RequestSequence([np.empty((0, 0))])

    def test_all_empty_with_dim(self):
        seq = RequestSequence([np.empty((0, 2))], dim=2)
        assert seq.dim == 2 and seq.total_requests() == 0

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError, match="dimension"):
            RequestSequence([np.zeros((1, 2)), np.zeros((1, 3))])

    def test_counts_array(self):
        seq = RequestSequence([np.zeros((2, 1)), np.zeros((5, 1))])
        np.testing.assert_array_equal(seq.counts, [2, 5])
        assert seq.total_requests() == 7

    def test_all_points_concat(self):
        seq = RequestSequence([np.ones((2, 1)), 2 * np.ones((1, 1))])
        np.testing.assert_allclose(seq.all_points().ravel(), [1, 1, 2])

    def test_getitem_and_iter(self):
        seq = RequestSequence.from_packed(np.arange(6, dtype=float).reshape(3, 1, 2))
        assert seq[1].points[0, 0] == 2.0
        assert len(list(seq)) == 3

    def test_slice(self):
        seq = RequestSequence.from_packed(np.zeros((6, 1, 2)))
        sl = seq.slice(1, 4)
        assert sl.length == 3 and sl.dim == 2

    def test_concat(self):
        a = RequestSequence.from_packed(np.zeros((2, 1, 2)))
        b = RequestSequence.from_packed(np.ones((3, 1, 2)))
        c = a.concat(b)
        assert c.length == 5
        assert c[4].points[0, 0] == 1.0

    def test_concat_dim_mismatch(self):
        a = RequestSequence.from_packed(np.zeros((2, 1, 2)))
        b = RequestSequence.from_packed(np.zeros((2, 1, 3)))
        with pytest.raises(ValueError):
            a.concat(b)

    def test_from_packed_2d_promotes(self):
        seq = RequestSequence.from_packed(np.zeros((4, 2)))
        assert seq.length == 4 and seq.r_max == 1 and seq.dim == 2

    def test_from_packed_bad_ndim(self):
        with pytest.raises(ValueError):
            RequestSequence.from_packed(np.zeros((2, 2, 2, 2)))

    def test_len_builtin(self):
        assert len(RequestSequence.from_packed(np.zeros((7, 1, 1)))) == 7
