"""Tests for the k-server baselines on the line."""

import numpy as np
import pytest

from repro.kserver import (
    double_coverage_line,
    greedy_kserver_line,
    offline_kserver_line,
)


class TestDoubleCoverage:
    def test_outside_hull_nearest_moves(self):
        res = double_coverage_line(np.array([0.0, 10.0]), np.array([-5.0]))
        assert res.total == pytest.approx(5.0)
        np.testing.assert_allclose(res.positions[-1], [-5.0, 10.0])

    def test_inside_hull_both_move(self):
        res = double_coverage_line(np.array([0.0, 10.0]), np.array([4.0]))
        # Both move 4 (left server arrives): cost 8.
        assert res.total == pytest.approx(8.0)
        np.testing.assert_allclose(res.positions[-1], [4.0, 6.0])

    def test_request_on_server_free(self):
        res = double_coverage_line(np.array([0.0, 10.0]), np.array([0.0]))
        assert res.total == 0.0

    def test_history_shape(self):
        res = double_coverage_line(np.array([0.0, 5.0, 10.0]), np.arange(4.0))
        assert res.positions.shape == (5, 3)

    def test_always_serves(self):
        rng = np.random.default_rng(0)
        servers = np.array([-5.0, 0.0, 5.0])
        reqs = rng.uniform(-10, 10, size=20)
        res = double_coverage_line(servers, reqs)
        for t, x in enumerate(reqs):
            assert np.min(np.abs(res.positions[t + 1] - x)) < 1e-9


class TestGreedy:
    def test_moves_nearest(self):
        res = greedy_kserver_line(np.array([0.0, 10.0]), np.array([4.0]))
        assert res.total == pytest.approx(4.0)

    def test_starvation_vs_dc(self):
        """Greedy famously loses on alternating nearby requests."""
        servers = np.array([0.0, 100.0])
        reqs = np.tile([40.0, 60.0], 20)
        greedy = greedy_kserver_line(servers, reqs)
        dc = double_coverage_line(servers, reqs)
        opt = offline_kserver_line(servers, reqs)
        assert greedy.total / opt > dc.total / opt * 0.9  # greedy not better
        assert dc.total / opt <= 2.0 + 1e-9  # k=2 bound


class TestOfflineKServer:
    def test_single_server_sums_distances(self):
        opt = offline_kserver_line(np.array([0.0]), np.array([3.0, -1.0]))
        # Move 0->3 (3), then 3->-1 (4).
        assert opt == pytest.approx(7.0)

    def test_two_servers_split(self):
        opt = offline_kserver_line(np.array([0.0, 10.0]), np.array([1.0, 9.0, 1.0, 9.0]))
        # Each server adopts one hot point: 1 + 1 total.
        assert opt == pytest.approx(2.0)

    def test_dc_within_k_competitive(self):
        rng = np.random.default_rng(7)
        servers = np.array([-10.0, 0.0, 10.0])
        reqs = rng.uniform(-15, 15, size=25)
        opt = offline_kserver_line(servers, reqs)
        dc = double_coverage_line(servers, reqs)
        assert dc.total <= 3.0 * opt + 1e-6

    def test_opt_lower_than_both(self):
        rng = np.random.default_rng(9)
        servers = np.array([0.0, 5.0])
        reqs = rng.uniform(-5, 10, size=15)
        opt = offline_kserver_line(servers, reqs)
        assert opt <= double_coverage_line(servers, reqs).total + 1e-9
        assert opt <= greedy_kserver_line(servers, reqs).total + 1e-9
