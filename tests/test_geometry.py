"""Unit and property tests for the Euclidean primitives (repro.core.metric).

These functions lived in ``repro.core.geometry`` before the metric
refactor; the module now re-exports them as a deprecated shim, which
:class:`TestGeometryShim` covers.
"""

import importlib
import sys
import warnings

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.metric import (
    as_point,
    as_points,
    bounding_box,
    centroid,
    direction,
    distance,
    distances_to,
    interpolate,
    move_towards,
    norm,
    pairwise_distances,
    total_path_length,
)

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


def vec(dim: int):
    return arrays(np.float64, (dim,), elements=finite_floats)


class TestAsPoint:
    def test_list(self):
        p = as_point([1.0, 2.0])
        assert p.shape == (2,) and p.dtype == np.float64

    def test_scalar_promotes_to_1d(self):
        assert as_point(3.0).shape == (1,)

    def test_dim_check(self):
        with pytest.raises(ValueError, match="dimension"):
            as_point([1.0, 2.0], dim=3)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="single point"):
            as_point(np.zeros((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_point([np.nan, 0.0])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            as_point([np.inf, 0.0])


class TestAsPoints:
    def test_batch(self):
        b = as_points([[0.0, 1.0], [2.0, 3.0]])
        assert b.shape == (2, 2)

    def test_single_point_promoted(self):
        assert as_points([1.0, 2.0]).shape == (1, 2)

    def test_empty_with_dim(self):
        assert as_points([], dim=3).shape == (0, 3)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            as_points([[1.0, 2.0]], dim=3)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="batch"):
            as_points(np.zeros((2, 2, 2)))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            as_points([[np.nan, 1.0]])


class TestDistance:
    def test_simple(self):
        assert distance(np.zeros(2), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_zero(self):
        p = np.array([1.0, -2.0, 3.0])
        assert distance(p, p) == 0.0

    @given(vec(3), vec(3))
    def test_symmetry(self, a, b):
        assert distance(a, b) == pytest.approx(distance(b, a))

    @given(vec(2), vec(2), vec(2))
    def test_triangle_inequality(self, a, b, c):
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-6

    @given(vec(4))
    def test_norm_is_distance_from_origin(self, v):
        assert norm(v) == pytest.approx(distance(np.zeros(4), v))


class TestDistancesTo:
    def test_matches_scalar_distance(self, rng):
        p = rng.normal(size=3)
        batch = rng.normal(size=(10, 3))
        d = distances_to(p, batch)
        expected = [distance(p, row) for row in batch]
        np.testing.assert_allclose(d, expected)

    def test_empty_batch(self):
        assert distances_to(np.zeros(2), np.empty((0, 2))).shape == (0,)


class TestPairwise:
    def test_shape_and_values(self, rng):
        a = rng.normal(size=(4, 2))
        b = rng.normal(size=(3, 2))
        m = pairwise_distances(a, b)
        assert m.shape == (4, 3)
        assert m[1, 2] == pytest.approx(distance(a[1], b[2]))

    def test_self_diagonal_zero(self, rng):
        a = rng.normal(size=(5, 3))
        m = pairwise_distances(a, a)
        np.testing.assert_allclose(np.diag(m), 0.0, atol=1e-12)


class TestDirection:
    def test_unit_norm(self):
        u = direction(np.zeros(2), np.array([3.0, 4.0]))
        assert norm(u) == pytest.approx(1.0)

    def test_coincident_gives_zero(self):
        p = np.ones(3)
        np.testing.assert_array_equal(direction(p, p), np.zeros(3))

    @given(vec(2), vec(2))
    def test_points_towards_target(self, a, b):
        u = direction(a, b)
        if norm(b - a) > 1e-6:
            assert np.dot(u, b - a) > 0


class TestMoveTowards:
    def test_reaches_within_step(self):
        out = move_towards(np.zeros(1), np.array([0.5]), 1.0)
        np.testing.assert_allclose(out, [0.5])

    def test_clamps_to_step(self):
        out = move_towards(np.zeros(2), np.array([10.0, 0.0]), 1.0)
        np.testing.assert_allclose(out, [1.0, 0.0])

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            move_towards(np.zeros(1), np.ones(1), -0.1)

    def test_zero_step_stays(self):
        src = np.array([1.0, 2.0])
        np.testing.assert_allclose(move_towards(src, np.zeros(2), 0.0), src)

    @given(vec(2), vec(2), st.floats(0.0, 100.0))
    def test_never_exceeds_step(self, src, dst, step):
        out = move_towards(src, dst, step)
        assert distance(src, out) <= step * (1 + 1e-9) + 1e-9

    @given(vec(2), vec(2), st.floats(0.001, 100.0))
    def test_monotone_approach(self, src, dst, step):
        out = move_towards(src, dst, step)
        assert distance(out, dst) <= distance(src, dst) + 1e-9

    def test_returns_copy_of_destination(self):
        dst = np.array([0.1, 0.2])
        out = move_towards(np.zeros(2), dst, 5.0)
        out[0] = 99.0
        assert dst[0] == 0.1  # no aliasing


class TestInterpolate:
    def test_endpoints(self):
        a, b = np.zeros(2), np.ones(2)
        np.testing.assert_allclose(interpolate(a, b, 0.0), a)
        np.testing.assert_allclose(interpolate(a, b, 1.0), b)

    def test_midpoint(self):
        np.testing.assert_allclose(interpolate(np.zeros(1), np.ones(1), 0.5), [0.5])


class TestPathLength:
    def test_straight_line(self):
        path = np.array([[0.0], [1.0], [2.0]])
        assert total_path_length(path) == pytest.approx(2.0)

    def test_single_point_is_zero(self):
        assert total_path_length(np.zeros((1, 2))) == 0.0

    def test_l_shape(self):
        path = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
        assert total_path_length(path) == pytest.approx(2.0)


class TestCentroid:
    def test_uniform(self):
        batch = np.array([[0.0, 0.0], [2.0, 0.0]])
        np.testing.assert_allclose(centroid(batch), [1.0, 0.0])

    def test_weighted(self):
        batch = np.array([[0.0], [1.0]])
        np.testing.assert_allclose(centroid(batch, np.array([1.0, 3.0])), [0.75])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid(np.empty((0, 2)))

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            centroid(np.zeros((2, 1)), np.array([1.0]))

    def test_zero_weight_sum(self):
        with pytest.raises(ValueError):
            centroid(np.zeros((2, 1)), np.array([0.0, 0.0]))


class TestBoundingBox:
    def test_basic(self):
        lo, hi = bounding_box(np.array([[0.0, 5.0], [2.0, -1.0]]))
        np.testing.assert_allclose(lo, [0.0, -1.0])
        np.testing.assert_allclose(hi, [2.0, 5.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box(np.empty((0, 2)))


class TestGeometryShim:
    """``repro.core.geometry`` is a deprecated re-export of ``core.metric``."""

    def test_import_warns(self):
        sys.modules.pop("repro.core.geometry", None)
        with pytest.warns(DeprecationWarning, match="repro.core.geometry is deprecated"):
            importlib.import_module("repro.core.geometry")

    def test_reexports_are_the_metric_functions(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sys.modules.pop("repro.core.geometry", None)
            geometry = importlib.import_module("repro.core.geometry")
        from repro.core import metric

        for name in geometry.__all__:
            assert getattr(geometry, name) is getattr(metric, name), name
