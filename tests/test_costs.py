"""Tests for cost models and accounting."""

import numpy as np
import pytest

from repro.core import CostModel, RequestBatch, step_cost
from repro.core.costs import CostAccumulator


class TestCostModel:
    def test_move_first_serves_after_move(self):
        assert CostModel.MOVE_FIRST.serves_after_move

    def test_answer_first_serves_before_move(self):
        assert not CostModel.ANSWER_FIRST.serves_after_move

    def test_values(self):
        assert CostModel.MOVE_FIRST.value == "move-first"
        assert CostModel.ANSWER_FIRST.value == "answer-first"


class TestStepCost:
    def setup_method(self):
        self.old = np.zeros(1)
        self.new = np.array([1.0])
        self.batch = RequestBatch(np.array([[1.0]]))

    def test_move_first_serves_from_new_position(self):
        c = step_cost(self.old, self.new, self.batch, D=2.0, model=CostModel.MOVE_FIRST)
        assert c.movement == pytest.approx(2.0)
        assert c.service == pytest.approx(0.0)  # request is at the new position
        assert c.total == pytest.approx(2.0)

    def test_answer_first_serves_from_old_position(self):
        c = step_cost(self.old, self.new, self.batch, D=2.0, model=CostModel.ANSWER_FIRST)
        assert c.movement == pytest.approx(2.0)
        assert c.service == pytest.approx(1.0)  # served from the old position
        assert c.total == pytest.approx(3.0)

    def test_distance_moved_unweighted(self):
        c = step_cost(self.old, self.new, self.batch, D=5.0)
        assert c.distance_moved == pytest.approx(1.0)

    def test_no_requests(self):
        empty = RequestBatch(np.empty((0, 1)))
        c = step_cost(self.old, self.new, empty, D=3.0)
        assert c.service == 0.0 and c.movement == pytest.approx(3.0)

    def test_multiple_requests_sum(self):
        batch = RequestBatch(np.array([[2.0], [-1.0]]))
        c = step_cost(self.old, self.old, batch, D=1.0)
        assert c.service == pytest.approx(3.0)


class TestCostAccumulator:
    def test_accumulates(self):
        acc = CostAccumulator()
        batch = RequestBatch(np.array([[1.0]]))
        for _ in range(3):
            acc.add(step_cost(np.zeros(1), np.zeros(1), batch, D=1.0))
        assert acc.steps == 3
        assert acc.service == pytest.approx(3.0)
        assert acc.movement == 0.0
        assert acc.total == pytest.approx(3.0)

    def test_as_dict(self):
        acc = CostAccumulator()
        d = acc.as_dict()
        assert d["total"] == 0.0 and d["steps"] == 0.0
        assert set(d) == {"total", "movement", "service", "distance_moved", "steps"}
