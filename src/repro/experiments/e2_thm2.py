"""E2 — Theorem 2: with (1+δ)m augmentation the ratio is Ω((1/δ)·Rmax/Rmin).

Sweeps δ (and the request-count skew) on the Theorem-2 construction and
fits the growth in ``1/δ``.  Each (skew, δ) point is one
:class:`~repro.api.Scenario` cell over the registered ``thm2``
construction.

Reproduction criterion: ratio grows ~ linearly in 1/δ (fitted log–log
exponent of ratio vs 1/δ in [0.7, 1.3]) and increases with Rmax/Rmin.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..analysis import fit_power_law
from ..api import Scenario, scenario_unit
from .orchestrator import SweepSpec, execute_spec
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "finalize", "run"]

_MODULE = "repro.experiments.e2_thm2"
SKEWS = [(1, 1), (1, 4)]


def _axes(scale: float) -> tuple[list[float], int, int]:
    deltas = [1.0, 0.5, 0.25, 0.125]
    if scale > 1.5:
        deltas.append(0.0625)
    n_seeds = scaled(6, scale, minimum=3)
    cycles = scaled(4, scale, minimum=2)
    return deltas, n_seeds, cycles


def _scenario(delta: float, r_min: int, r_max: int, cycles: int,
              n_seeds: int, seed: int) -> Scenario:
    return Scenario.adversary(
        "thm2",
        algorithm="mtc",
        params={"delta": delta, "cycles": cycles, "r_min": r_min, "r_max": r_max},
        seeds=sweep_seeds(seed, n_seeds, stride=1000),
        delta=delta,
        ratio="adversary",
        name=f"E2/skew={r_min}:{r_max}/delta={delta:g}",
    )


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    deltas, n_seeds, cycles = _axes(scale)
    units = [
        scenario_unit(
            f"ratio/skew={r_min}-{r_max}/delta={delta:g}",
            _scenario(delta, r_min, r_max, cycles, n_seeds, seed),
        )
        for r_min, r_max in SKEWS
        for delta in deltas
    ]
    return SweepSpec("E2", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    deltas, _, _ = _axes(scale)
    rows = []
    fits = {}
    for r_min, r_max in SKEWS:
        means = []
        for delta in deltas:
            mean = float(np.asarray(
                results[f"ratio/skew={r_min}-{r_max}/delta={delta:g}"]["ratios"]
            ).mean())
            rows.append([r_min, r_max, delta, 1.0 / delta, mean])
            means.append(mean)
        fits[(r_min, r_max)] = fit_power_law(1.0 / np.array(deltas), np.array(means))
    notes = [
        "criterion: ratio lower bound ~ (1/delta) * Rmax/Rmin under (1+delta)m augmentation (Thm 2)",
    ]
    ok = True
    for (r_min, r_max), fit in fits.items():
        notes.append(
            f"Rmax/Rmin={r_max}/{r_min}: exponent of ratio in 1/delta = {fit.exponent:.3f} "
            f"(R^2={fit.r_squared:.3f}); predicted 1.0"
        )
        if not (0.6 <= fit.exponent <= 1.4):
            ok = False
    # Skew effect at the smallest delta.
    small = deltas[-1]
    base = [r for r in rows if r[:3] == [1, 1, small]][0][4]
    skewed = [r for r in rows if r[:3] == [1, 4, small]][0][4]
    notes.append(f"skew effect at delta={small:g}: ratio {skewed:.2f} vs {base:.2f} (x{skewed / base:.2f}; predicted ~x4)")
    if skewed <= base:
        ok = False
    return ExperimentResult(
        experiment_id="E2",
        title="Thm 2 lower bound: ratio ~ (1/delta) * Rmax/Rmin despite augmentation",
        headers=["Rmin", "Rmax", "delta", "1/delta", "ratio(MtC)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    return execute_spec(build_spec(scale, seed))
