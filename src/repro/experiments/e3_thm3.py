"""E3 — Theorem 3: the Answer-First variant costs Ω(r/D).

Runs MtC on the Theorem-3 two-step cycles in *both* cost models.  In the
answer-first model the ratio must grow linearly in ``r/D``; in the
move-first model the same sequences are harmless (the server hops onto the
requests before serving), which is the model-separation the paper's
Section 2 highlights.

Each (D, r, cost model) point is one :class:`~repro.api.Scenario` cell:
the ``thm3`` registry construction parameterises the cost model, and the
algorithm is the registered ``mtc-answer-first`` / ``mtc`` respectively.

Reproduction criterion: answer-first ratio ≈ linear in r/D (slope fit),
move-first ratio stays O(1) on the same sequences.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..analysis import fit_linear
from ..api import Scenario, scenario_unit
from .orchestrator import SweepSpec, execute_spec
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "finalize", "run"]

_MODULE = "repro.experiments.e3_thm3"
RS = [1, 4, 16, 64]
DS = [1.0, 4.0]
DELTA = 0.5


def _axes(scale: float) -> tuple[int, int]:
    return scaled(6, scale, minimum=3), scaled(40, scale, minimum=10)


def _scenario(model: str, r: int, D: float, cycles: int, n_seeds: int, seed: int) -> Scenario:
    params = {"cycles": cycles, "r": r, "D": D}
    if model == "move-first":
        params["cost_model"] = "move-first"
    return Scenario.adversary(
        "thm3",
        algorithm="mtc-answer-first" if model == "answer-first" else "mtc",
        params=params,
        seeds=sweep_seeds(seed, n_seeds, stride=1000),
        delta=DELTA,
        ratio="adversary",
        name=f"E3/{model}/D={D:g}/r={r}",
    )


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    n_seeds, cycles = _axes(scale)
    units = [
        scenario_unit(f"ratio/{model}/D={D:g}/r={r}",
                      _scenario(model, r, D, cycles, n_seeds, seed))
        for D in DS
        for r in RS
        for model in ("answer-first", "move-first")
    ]
    return SweepSpec("E3", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    rows = []
    fits = {}
    for D in DS:
        af_means = []
        for r in RS:
            af = float(np.asarray(results[f"ratio/answer-first/D={D:g}/r={r}"]["ratios"]).mean())
            mf = float(np.asarray(results[f"ratio/move-first/D={D:g}/r={r}"]["ratios"]).mean())
            rows.append([D, r, r / D, af, mf])
            af_means.append(af)
        fits[D] = fit_linear(np.array(RS, dtype=float) / D, np.array(af_means))
    notes = [
        "criterion: answer-first ratio grows linearly in r/D; move-first stays O(1) (Thm 3)",
    ]
    ok = True
    for D, fit in fits.items():
        notes.append(
            f"D={D:g}: answer-first ratio slope vs r/D = {fit.slope:.3f} (R^2={fit.r_squared:.3f})"
        )
        if fit.slope <= 0.3 or fit.r_squared < 0.9:
            ok = False
    worst_mf = max(row[4] for row in rows)
    notes.append(f"move-first ratio on the same sequences stays <= {worst_mf:.2f}")
    if worst_mf > 10.0:
        ok = False
    return ExperimentResult(
        experiment_id="E3",
        title="Thm 3: answer-first ratio ~ r/D; move-first immune to the same sequences",
        headers=["D", "r", "r/D", "ratio(answer-first)", "ratio(move-first)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    return execute_spec(build_spec(scale, seed))
