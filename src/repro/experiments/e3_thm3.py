"""E3 — Theorem 3: the Answer-First variant costs Ω(r/D).

Runs MtC on the Theorem-3 two-step cycles in *both* cost models.  In the
answer-first model the ratio must grow linearly in ``r/D``; in the
move-first model the same sequences are harmless (the server hops onto the
requests before serving), which is the model-separation the paper's
Section 2 highlights.

Reproduction criterion: answer-first ratio ≈ linear in r/D (slope fit),
move-first ratio stays O(1) on the same sequences.
"""

from __future__ import annotations

import numpy as np

from ..adversaries import build_thm3
from ..algorithms import AnswerFirstMoveToCenter, MoveToCenter
from ..analysis import fit_linear, measure_adversarial_ratio
from ..core.costs import CostModel
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rs = [1, 4, 16, 64]
    Ds = [1.0, 4.0]
    n_seeds = scaled(6, scale, minimum=3)
    cycles = scaled(40, scale, minimum=10)
    delta = 0.5
    rows = []
    fits = {}
    for D in Ds:
        af_means = []
        for r in rs:
            seeds = sweep_seeds(seed, n_seeds, stride=1000)
            af, _ = measure_adversarial_ratio(
                lambda rng, r=r, D=D: build_thm3(cycles, r=r, D=D, rng=rng),
                AnswerFirstMoveToCenter,
                delta=delta,
                seeds=seeds,
            )
            mf, _ = measure_adversarial_ratio(
                lambda rng, r=r, D=D: build_thm3(
                    cycles, r=r, D=D, rng=rng, cost_model=CostModel.MOVE_FIRST
                ),
                MoveToCenter,
                delta=delta,
                seeds=seeds,
            )
            rows.append([D, r, r / D, af, mf])
            af_means.append(af)
        fits[D] = fit_linear(np.array(rs, dtype=float) / D, np.array(af_means))
    notes = [
        "criterion: answer-first ratio grows linearly in r/D; move-first stays O(1) (Thm 3)",
    ]
    ok = True
    for D, fit in fits.items():
        notes.append(
            f"D={D:g}: answer-first ratio slope vs r/D = {fit.slope:.3f} (R^2={fit.r_squared:.3f})"
        )
        if fit.slope <= 0.3 or fit.r_squared < 0.9:
            ok = False
    worst_mf = max(row[4] for row in rows)
    notes.append(f"move-first ratio on the same sequences stays <= {worst_mf:.2f}")
    if worst_mf > 10.0:
        ok = False
    return ExperimentResult(
        experiment_id="E3",
        title="Thm 3: answer-first ratio ~ r/D; move-first immune to the same sequences",
        headers=["D", "r", "r/D", "ratio(answer-first)", "ratio(move-first)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
