"""E6 — Theorem 7: MtC in the Answer-First variant.

Theorem 7's proof relates the answer-first cost of MtC to its move-first
cost on the same sequence: the extra term per step is ``r * a1`` versus
``D * a1`` already paid, so the total inflates by at most a factor
``2 * max(1, r/D)`` (and the optimum changes by at most ``r * m`` via the
dummy-request argument).  We run identical sequences under both cost
models and measure the inflation factor across an ``r/D`` sweep.

Each ``r`` is one orchestrator cell; inside, the two cost models are two
:class:`~repro.api.Scenario` views of the *same* drift workload (the
answer-first one via the scenario's ``cost_model`` override), executed
through :func:`repro.api.run`, plus the exact 1-D DP on the answer-first
instances for the certified ratio column.

Reproduction criterion: measured inflation ≤ 2·max(1, r/D) + slack on
every instance, and the answer-first certified ratio stays bounded in T.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..api import Scenario, build_instances, run as run_scenario
from ..core.costs import CostModel
from ..offline import solve_line
from .orchestrator import SweepSpec, WorkUnit, execute_spec
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "cell_inflation", "finalize", "run"]

_MODULE = "repro.experiments.e6_answer_first"
RS = [1, 2, 4, 8, 16]
DELTA = 0.5
D = 4.0


def _scenario(r: int, T: int, n_seeds: int, seed: int, cost_model: str | None) -> Scenario:
    return Scenario.workload(
        "drift",
        algorithm="mtc",
        params={"T": T, "dim": 1, "D": D, "m": 1.0, "speed": 0.8, "spread": 0.2,
                "requests_per_step": r},
        seeds=sweep_seeds(seed, n_seeds),
        delta=DELTA,
        cost_model=cost_model,
        name=f"E6/r={r}/{cost_model or 'move-first'}",
    )


def cell_inflation(r: int, T: int, n_seeds: int, seed: int) -> dict:
    """Both cost models on identical sequences, plus the exact AF ratio."""
    sc_mf = _scenario(r, T, n_seeds, seed, None)
    sc_af = _scenario(r, T, n_seeds, seed, "answer-first")
    # One materialisation serves both runs and the DP column.
    instances_mf, _ = build_instances(sc_mf)
    instances_af = [inst.with_cost_model(CostModel.ANSWER_FIRST) for inst in instances_mf]
    cost_mf = run_scenario(sc_mf, instances=instances_mf, keep_traces=False).costs
    cost_af = run_scenario(sc_af, instances=instances_af, keep_traces=False).costs
    dp_lower = np.array([solve_line(inst).lower_bound for inst in instances_af])
    return {"cost_mf": cost_mf, "cost_af": cost_af, "dp_lower": dp_lower}


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    T = scaled(300, scale, minimum=100)
    n_seeds = scaled(4, scale, minimum=2)
    units = [
        WorkUnit(
            key=f"inflation/r={r}",
            fn=f"{_MODULE}:cell_inflation",
            params={"r": r, "T": T, "n_seeds": n_seeds, "seed": seed},
        )
        for r in RS
    ]
    return SweepSpec("E6", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    rows = []
    ok = True
    for r in RS:
        cell = results[f"inflation/r={r}"]
        inflations = cell["cost_af"] / cell["cost_mf"]
        af_ratios = cell["cost_af"] / np.maximum(cell["dp_lower"], 1e-12)
        bound = 2.0 * max(1.0, r / D)
        infl = float(np.mean(inflations))
        worst = float(np.max(inflations))
        rows.append([r, r / D, infl, worst, bound, float(np.mean(af_ratios))])
        if worst > bound + 0.25:
            ok = False
    notes = [
        "criterion: answer-first/move-first cost inflation of MtC <= 2*max(1, r/D) (Thm 7)",
        "the last column certifies the answer-first ratio stays bounded (vs exact DP lower bound)",
    ]
    return ExperimentResult(
        experiment_id="E6",
        title="Thm 7: MtC in the Answer-First variant — bounded inflation and ratio",
        headers=["r", "r/D", "inflation(mean)", "inflation(max)", "bound 2*max(1,r/D)", "AF ratio (cert.)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    return execute_spec(build_spec(scale, seed))
