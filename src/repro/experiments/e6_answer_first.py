"""E6 — Theorem 7: MtC in the Answer-First variant.

Theorem 7's proof relates the answer-first cost of MtC to its move-first
cost on the same sequence: the extra term per step is ``r * a1`` versus
``D * a1`` already paid, so the total inflates by at most a factor
``2 * max(1, r/D)`` (and the optimum changes by at most ``r * m`` via the
dummy-request argument).  We run identical sequences under both cost
models and measure the inflation factor across an ``r/D`` sweep.

Reproduction criterion: measured inflation ≤ 2·max(1, r/D) + slack on
every instance, and the answer-first certified ratio stays bounded in T.
"""

from __future__ import annotations

import numpy as np

from ..algorithms import MoveToCenter
from ..core.costs import CostModel
from ..core.simulator import simulate
from ..offline import solve_line
from ..workloads import DriftWorkload
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    T = scaled(300, scale, minimum=100)
    delta = 0.5
    D = 4.0
    rs = [1, 2, 4, 8, 16]
    n_seeds = scaled(4, scale, minimum=2)
    rows = []
    ok = True
    for r in rs:
        inflations = []
        af_ratios = []
        for cell_seed in sweep_seeds(seed, n_seeds):
            wl = DriftWorkload(T, dim=1, D=D, m=1.0, speed=0.8, spread=0.2, requests_per_step=r)
            inst_mf = wl.generate(np.random.default_rng(cell_seed))
            inst_af = inst_mf.with_cost_model(CostModel.ANSWER_FIRST)
            cost_mf = simulate(inst_mf, MoveToCenter(), delta=delta).total_cost
            cost_af = simulate(inst_af, MoveToCenter(), delta=delta).total_cost
            inflations.append(cost_af / cost_mf)
            dp = solve_line(inst_af)
            af_ratios.append(cost_af / max(dp.lower_bound, 1e-12))
        bound = 2.0 * max(1.0, r / D)
        infl = float(np.mean(inflations))
        worst = float(np.max(inflations))
        rows.append([r, r / D, infl, worst, bound, float(np.mean(af_ratios))])
        if worst > bound + 0.25:
            ok = False
    notes = [
        "criterion: answer-first/move-first cost inflation of MtC <= 2*max(1, r/D) (Thm 7)",
        "the last column certifies the answer-first ratio stays bounded (vs exact DP lower bound)",
    ]
    return ExperimentResult(
        experiment_id="E6",
        title="Thm 7: MtC in the Answer-First variant — bounded inflation and ratio",
        headers=["r", "r/D", "inflation(mean)", "inflation(max)", "bound 2*max(1,r/D)", "AF ratio (cert.)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
