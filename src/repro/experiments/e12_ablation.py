"""E12 — ablating MtC's design choices.

Three knobs, each motivated by a specific line of the algorithm's
definition:

* the damping factor ``min{1, r/D}`` (replaced by always-full-speed 1.0
  and by a fixed 0.25) — the proof's Section 4.2 cases rely on it when
  moving is expensive;
* the tie-break "closest minimizer to the server" (replaced by the
  midpoint of the minimizing segment) — matters for even collinear
  batches;
* the cap fraction (does MtC actually need the full ``(1+δ)m``? —
  using only ``1/(1+δ)`` of it removes the augmentation and Thm 1 bites).

Each (workload | thm2, variant) point is one :class:`~repro.api.Scenario`
cell: the variant is expressed as ``algorithm_params`` on the registered
``mtc`` entry, the benign workloads certify against the bracketed DP
optimum (``ratio="bracket"``), the adversarial cells against the thm2
construction's own cost.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ..api import Scenario, scenario_unit
from .orchestrator import SweepSpec, execute_spec
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "finalize", "run"]

_MODULE = "repro.experiments.e12_ablation"
DELTA = 0.5

#: Variant name → MoveToCenter constructor parameters.
VARIANTS: dict[str, dict[str, Any]] = {
    "paper": {},
    "undamped(scale=1)": {"step_scale": 1.0},
    "overdamped(scale=.25)": {"step_scale": 0.25},
    "tie=midpoint": {"tie_break": "midpoint"},
    "no-augmentation": {"cap_fraction": 1.0 / (1.0 + DELTA)},
}

_WORKLOAD_PARAMS: dict[str, dict[str, Any]] = {
    "random-walk": {"sigma": 0.3, "spread": 0.4, "requests_per_step": 2},
    "drift": {"speed": 0.8, "spread": 0.2, "requests_per_step": 2},
}


def _benign(workload: str, variant: str, T: int, n_seeds: int, seed: int) -> Scenario:
    return Scenario.workload(
        workload,
        algorithm="mtc",
        params={"T": T, "dim": 1, "D": 4.0, "m": 1.0, **_WORKLOAD_PARAMS[workload]},
        algorithm_params=VARIANTS[variant],
        seeds=sweep_seeds(seed, n_seeds),
        delta=DELTA,
        ratio="bracket",
        name=f"E12/{workload}/{variant}",
    )


def _adversarial(variant: str, n_seeds: int, seed: int) -> Scenario:
    return Scenario.adversary(
        "thm2",
        algorithm="mtc",
        params={"delta": DELTA, "cycles": 4},
        algorithm_params=VARIANTS[variant],
        seeds=sweep_seeds(seed, n_seeds),
        delta=DELTA,
        ratio="adversary",
        name=f"E12/thm2/{variant}",
    )


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    T = scaled(300, scale, minimum=100)
    n_seeds = scaled(3, scale, minimum=2)
    units = []
    for workload in _WORKLOAD_PARAMS:
        for variant in VARIANTS:
            units.append(scenario_unit(
                f"benign/{workload}/{variant}",
                _benign(workload, variant, T, n_seeds, seed),
            ))
    for variant in VARIANTS:
        units.append(scenario_unit(f"adversarial/{variant}", _adversarial(variant, n_seeds, seed)))
    return SweepSpec("E12", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    rows = []
    table: dict[tuple[str, str], float] = {}
    for workload in _WORKLOAD_PARAMS:
        for variant in VARIANTS:
            payload = results[f"benign/{workload}/{variant}"]
            mean = float(np.mean(payload["measures"]["ratio_upper"]))
            table[(workload, variant)] = mean
            rows.append([workload, variant, mean])
    for variant in VARIANTS:
        mean = float(np.mean(np.asarray(results[f"adversarial/{variant}"]["ratios"])))
        table[("thm2", variant)] = mean
        rows.append(["thm2-adversarial", variant, mean])

    ok = True
    notes = ["criterion: the paper's choices are never dominated; removing augmentation "
             "or damping hurts where the theory says it must"]
    # Undamped must hurt on the expensive-movement random walk (D=4 > r=2).
    if table[("random-walk", "undamped(scale=1)")] < table[("random-walk", "paper")] * 0.95:
        ok = False
        notes.append("UNEXPECTED: undamped variant beat the paper's damping on random-walk")
    else:
        notes.append(
            f"damping helps when D>r: undamped {table[('random-walk', 'undamped(scale=1)')]:.2f} "
            f"vs paper {table[('random-walk', 'paper')]:.2f} on random-walk"
        )
    # Removing augmentation must hurt on the adversarial instance.
    if table[("thm2", "no-augmentation")] <= table[("thm2", "paper")]:
        ok = False
        notes.append("UNEXPECTED: removing augmentation did not hurt on thm2")
    else:
        notes.append(
            f"augmentation is load-bearing: no-aug {table[('thm2', 'no-augmentation')]:.2f} "
            f"vs paper {table[('thm2', 'paper')]:.2f} on thm2"
        )
    return ExperimentResult(
        experiment_id="E12",
        title="Ablations of MtC: damping factor, tie-break, augmentation usage",
        headers=["workload", "variant", "ratio"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e12_ablation.run() is deprecated; E12 is declared as an "
        "orchestrator spec — use build_spec(scale, seed) or "
        "repro.experiments.run_all(['E12'])",
        DeprecationWarning, stacklevel=2,
    )
    return execute_spec(build_spec(scale, seed))
