"""E12 — ablating MtC's design choices.

Three knobs, each motivated by a specific line of the algorithm's
definition:

* the damping factor ``min{1, r/D}`` (replaced by always-full-speed 1.0
  and by a fixed 0.25) — the proof's Section 4.2 cases rely on it when
  moving is expensive;
* the tie-break "closest minimizer to the server" (replaced by the
  midpoint of the minimizing segment) — matters for even collinear
  batches;
* the cap fraction (does MtC actually need the full ``(1+δ)m``? —
  using only ``1/(1+δ)`` of it removes the augmentation and Thm 1 bites).

Each variant runs on a benign 1-D suite (certified vs DP) and on the
Thm-2 adversarial instance.
"""

from __future__ import annotations

import numpy as np

from ..adversaries import build_thm2
from ..algorithms import MoveToCenter
from ..analysis import measure_ratio
from ..core.simulator import simulate
from ..workloads import DriftWorkload, RandomWalkWorkload
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def _variants(delta: float) -> dict[str, MoveToCenter]:
    return {
        "paper": MoveToCenter(),
        "undamped(scale=1)": MoveToCenter(step_scale=1.0),
        "overdamped(scale=.25)": MoveToCenter(step_scale=0.25),
        "tie=midpoint": MoveToCenter(tie_break="midpoint"),
        "no-augmentation": MoveToCenter(cap_fraction=1.0 / (1.0 + delta)),
    }


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    T = scaled(300, scale, minimum=100)
    delta = 0.5
    n_seeds = scaled(3, scale, minimum=2)
    workloads = {
        "random-walk": RandomWalkWorkload(T, dim=1, D=4.0, m=1.0, sigma=0.3, spread=0.4,
                                          requests_per_step=2),
        "drift": DriftWorkload(T, dim=1, D=4.0, m=1.0, speed=0.8, spread=0.2,
                               requests_per_step=2),
    }
    rows = []
    results: dict[tuple[str, str], float] = {}
    for wl_name, wl in workloads.items():
        for var_name in _variants(delta):
            ratios = []
            for cell_seed in sweep_seeds(seed, n_seeds):
                inst = wl.generate(np.random.default_rng(cell_seed))
                meas = measure_ratio(inst, _variants(delta)[var_name], delta=delta)
                ratios.append(meas.ratio_upper)
            mean = float(np.mean(ratios))
            results[(wl_name, var_name)] = mean
            rows.append([wl_name, var_name, mean])
    # Adversarial: Thm 2 at this delta.
    for var_name in _variants(delta):
        ratios = []
        for cell_seed in sweep_seeds(seed, n_seeds):
            adv = build_thm2(delta, cycles=4, rng=np.random.default_rng(cell_seed))
            tr = simulate(adv.instance, _variants(delta)[var_name], delta=delta)
            ratios.append(adv.ratio_of(tr.total_cost))
        mean = float(np.mean(ratios))
        results[("thm2", var_name)] = mean
        rows.append(["thm2-adversarial", var_name, mean])

    ok = True
    notes = ["criterion: the paper's choices are never dominated; removing augmentation "
             "or damping hurts where the theory says it must"]
    # Undamped must hurt on the expensive-movement random walk (D=4 > r=2).
    if results[("random-walk", "undamped(scale=1)")] < results[("random-walk", "paper")] * 0.95:
        ok = False
        notes.append("UNEXPECTED: undamped variant beat the paper's damping on random-walk")
    else:
        notes.append(
            f"damping helps when D>r: undamped {results[('random-walk', 'undamped(scale=1)')]:.2f} "
            f"vs paper {results[('random-walk', 'paper')]:.2f} on random-walk"
        )
    # Removing augmentation must hurt on the adversarial instance.
    if results[("thm2", "no-augmentation")] <= results[("thm2", "paper")]:
        ok = False
        notes.append("UNEXPECTED: removing augmentation did not hurt on thm2")
    else:
        notes.append(
            f"augmentation is load-bearing: no-aug {results[('thm2', 'no-augmentation')]:.2f} "
            f"vs paper {results[('thm2', 'paper')]:.2f} on thm2"
        )
    return ExperimentResult(
        experiment_id="E12",
        title="Ablations of MtC: damping factor, tie-break, augmentation usage",
        headers=["workload", "variant", "ratio"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
