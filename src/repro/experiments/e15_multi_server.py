"""E15 (extension) — two capped mobile servers (the conclusion's k-server).

Runs the capped 2-server strategies on line workloads with two hotspots
(the regime where a second server pays off) against the exact product-grid
DP bracket:

* ``k-mtc`` and ``k-greedy-centers`` must stay within a small certified
  factor;
* ``capped-dc`` (classical Double Coverage clamped to the cap) must be
  competitive on slow workloads but degrade on fast two-sided drift — DC
  drags *both* neighbours towards every request and the cap never lets
  them return, exactly the failure mode the conclusion hints at when it
  says standard solutions "do not apply".

Declared as an :class:`~repro.api.ExperimentSpec`: one function cell per
(regime, seed) grid point — the expensive product-grid DP is solved once
per cell and certifies all three strategies — folded by the
``e15/k-server`` reducer.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ..api import ExperimentSpec, Reduction, cell_grid, register_reducer
from ..extensions import (
    CappedDoubleCoverage,
    KGreedyCenters,
    KMoveToCenter,
    simulate_k_servers,
    solve_two_servers_line,
)
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "cell_regime", "run", "spec"]

_MODULE = "repro.experiments.e15_multi_server"
#: regime label → hotspot speed
REGIMES = {"slow (0.2)": 0.2, "fast (0.8)": 0.8}
DELTA = 0.5
D = 2.0
M = 1.0


def _two_hotspot_batches(T: int, speed: float, gap: float, amplitude: float,
                         spread: float, rng: np.random.Generator) -> list[np.ndarray]:
    """Two hotspots oscillating around ±gap/2, one request per step each.

    The sinusoidal oscillation keeps the arena bounded (so the product-grid
    DP stays sharp) while its peak per-step displacement equals ``speed``.
    """
    batches = []
    omega = speed / max(amplitude, 1e-9)  # peak |d/dt A sin(wt)| = A*w = speed
    for t in range(T):
        left = -gap / 2 - amplitude * np.sin(omega * t)
        right = gap / 2 + amplitude * np.sin(omega * t + 1.3)
        batches.append(np.array([[left + rng.normal(scale=spread)],
                                 [right + rng.normal(scale=spread)]]))
    return batches


def cell_regime(regime: str, cell_seed: int, T: int, grid_size: int) -> dict:
    """One seed's hotspot instance: exact 2-server DP + all three strategies."""
    rng = np.random.default_rng(cell_seed)
    batches = _two_hotspot_batches(T, REGIMES[regime], gap=6.0, amplitude=4.0,
                                   spread=0.2, rng=rng)
    starts = np.array([[-3.0], [3.0]])
    dp = solve_two_servers_line(starts, batches, m=M, D=D, grid_size=grid_size)
    cap = (1.0 + DELTA) * M
    ratios = []
    for alg_factory in (lambda: KMoveToCenter(2), lambda: KGreedyCenters(2),
                        lambda: CappedDoubleCoverage(2)):
        alg = alg_factory()
        tr = simulate_k_servers(starts, batches, alg, cap=cap, D=D)
        ratios.append([alg.name, tr.total_cost / max(dp.lower_bound, 1e-12)])
    return {"ratios": ratios}


@register_reducer("e15/k-server", "per-(regime, algorithm) mean certified ratios + DC degradation check")
def _reduce(cells: Mapping[str, Any], *, points, config, scale: float,
            seed: int) -> Reduction:
    rows: list[list[Any]] = []
    results: dict[tuple[str, str], float] = {}
    for regime in REGIMES:
        per_alg: dict[str, list[float]] = {}
        for key, point in points:
            if point["regime"] != regime:
                continue
            for name, ratio in cells[key]["ratios"]:
                per_alg.setdefault(name, []).append(ratio)
        for name, vals in per_alg.items():
            mean = float(np.mean(vals))
            results[(regime, name)] = mean
            rows.append([regime, name, mean])

    ok = True
    notes = [
        "criterion: capped k-MtC stays within a small certified factor in both regimes; "
        "capped Double Coverage degrades on fast drift (conclusion: classical strategies "
        "do not transfer to the capped model unchanged)",
    ]
    if results[("fast (0.8)", "k-mtc")] > 6.0:
        ok = False
        notes.append("UNEXPECTED: k-mtc not competitive on fast drift")
    if results[("fast (0.8)", "capped-dc")] <= results[("fast (0.8)", "k-mtc")]:
        notes.append("note: capped DC kept pace with k-MtC on this workload")
    else:
        notes.append(
            f"capped DC degrades on fast drift: {results[('fast (0.8)', 'capped-dc')]:.2f} "
            f"vs k-mtc {results[('fast (0.8)', 'k-mtc')]:.2f}"
        )
    return Reduction(rows=rows, notes=notes, passed=ok)


def spec(scale: float = 1.0, seed: int = 0) -> ExperimentSpec:
    T = scaled(120, scale, minimum=50)
    n_seeds = scaled(3, scale, minimum=2)
    return ExperimentSpec(
        experiment_id="E15",
        title="Extension: two capped mobile servers vs exact 2-server DP",
        headers=["regime", "algorithm", "certified ratio"],
        reducer="e15/k-server",
        cells=cell_grid(f"{_MODULE}:cell_regime",
                        axes={"regime": list(REGIMES),
                              "cell_seed": sweep_seeds(seed, n_seeds)},
                        common={"T": T, "grid_size": scaled(160, scale, minimum=128)}),
        scale=scale, seed=seed,
    )


def build_spec(scale: float = 1.0, seed: int = 0):
    return spec(scale, seed).to_sweep()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e15_multi_server.run() is deprecated; E15 is declared as an "
        "ExperimentSpec — use spec(scale, seed).run() or repro.experiments.run_all(['E15'])",
        DeprecationWarning, stacklevel=2,
    )
    return spec(scale, seed).run()
