"""E15 (extension) — two capped mobile servers (the conclusion's k-server).

Runs the capped 2-server strategies on line workloads with two hotspots
(the regime where a second server pays off) against the exact product-grid
DP bracket:

* ``k-mtc`` and ``k-greedy-centers`` must stay within a small certified
  factor;
* ``capped-dc`` (classical Double Coverage clamped to the cap) must be
  competitive on slow workloads but degrade on fast two-sided drift — DC
  drags *both* neighbours towards every request and the cap never lets
  them return, exactly the failure mode the conclusion hints at when it
  says standard solutions "do not apply".
"""

from __future__ import annotations

import numpy as np

from ..extensions import (
    CappedDoubleCoverage,
    KGreedyCenters,
    KMoveToCenter,
    simulate_k_servers,
    solve_two_servers_line,
)
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def _two_hotspot_batches(T: int, speed: float, gap: float, amplitude: float,
                         spread: float, rng: np.random.Generator) -> list[np.ndarray]:
    """Two hotspots oscillating around ±gap/2, one request per step each.

    The sinusoidal oscillation keeps the arena bounded (so the product-grid
    DP stays sharp) while its peak per-step displacement equals ``speed``.
    """
    batches = []
    omega = speed / max(amplitude, 1e-9)  # peak |d/dt A sin(wt)| = A*w = speed
    for t in range(T):
        left = -gap / 2 - amplitude * np.sin(omega * t)
        right = gap / 2 + amplitude * np.sin(omega * t + 1.3)
        batches.append(np.array([[left + rng.normal(scale=spread)],
                                 [right + rng.normal(scale=spread)]]))
    return batches


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    T = scaled(120, scale, minimum=50)
    D = 2.0
    m = 1.0
    delta = 0.5
    cap = (1.0 + delta) * m
    n_seeds = scaled(3, scale, minimum=2)
    regimes = [("slow (0.2)", 0.2), ("fast (0.8)", 0.8)]
    rows = []
    results: dict[tuple[str, str], float] = {}
    for regime_name, speed in regimes:
        per_alg: dict[str, list[float]] = {}
        for cell_seed in sweep_seeds(seed, n_seeds):
            rng = np.random.default_rng(cell_seed)
            batches = _two_hotspot_batches(T, speed, gap=6.0, amplitude=4.0,
                                           spread=0.2, rng=rng)
            starts = np.array([[-3.0], [3.0]])
            dp = solve_two_servers_line(starts, batches, m=m, D=D,
                                        grid_size=scaled(160, scale, minimum=128))
            for alg_factory in (lambda: KMoveToCenter(2), lambda: KGreedyCenters(2),
                                lambda: CappedDoubleCoverage(2)):
                alg = alg_factory()
                tr = simulate_k_servers(starts, batches, alg, cap=cap, D=D)
                per_alg.setdefault(alg.name, []).append(
                    tr.total_cost / max(dp.lower_bound, 1e-12)
                )
        for name, vals in per_alg.items():
            mean = float(np.mean(vals))
            results[(regime_name, name)] = mean
            rows.append([regime_name, name, mean])

    ok = True
    notes = [
        "criterion: capped k-MtC stays within a small certified factor in both regimes; "
        "capped Double Coverage degrades on fast drift (conclusion: classical strategies "
        "do not transfer to the capped model unchanged)",
    ]
    if results[("fast (0.8)", "k-mtc")] > 6.0:
        ok = False
        notes.append("UNEXPECTED: k-mtc not competitive on fast drift")
    if results[("fast (0.8)", "capped-dc")] <= results[("fast (0.8)", "k-mtc")]:
        notes.append("note: capped DC kept pace with k-MtC on this workload")
    else:
        notes.append(
            f"capped DC degrades on fast drift: {results[('fast (0.8)', 'capped-dc')]:.2f} "
            f"vs k-mtc {results[('fast (0.8)', 'k-mtc')]:.2f}"
        )
    return ExperimentResult(
        experiment_id="E15",
        title="Extension: two capped mobile servers vs exact 2-server DP",
        headers=["regime", "algorithm", "certified ratio"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
