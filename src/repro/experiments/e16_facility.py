"""E16 (extension) — mobile Online Facility Location (conclusion's hint).

Compares classical Meyerson (static facilities) with the mobile variant
(same opening rule + capped MtC drift) on:

* a drifting workload — mobility must reduce total cost (facilities follow
  the demand instead of strewing a trail of stale ones);
* a stationary clustered workload — mobility must not lose (the drift is
  damped, so facilities settle onto the cluster medians).

Both are averaged over seeds; the reported ratio is
``cost(static) / cost(mobile)`` (> 1 means mobility wins).

Declared as an :class:`~repro.api.ExperimentSpec`: one function cell per
(workload, seed index) grid point — each runs the static/mobile pair on
identical batches — folded by the ``e16/facility`` reducer.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ..api import ExperimentSpec, Reduction, cell_grid, register_reducer
from ..extensions import MeyersonStatic, MobileMeyerson, simulate_facilities
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "cell_pair", "run", "spec"]

_MODULE = "repro.experiments.e16_facility"
WORKLOAD_NAMES = ["drift", "stationary"]
F = 30.0
D = 1.0


def _drift_batches(T: int, rng: np.random.Generator) -> list[np.ndarray]:
    pos = np.zeros(2)
    u = rng.normal(size=2)
    u /= np.linalg.norm(u)
    out = []
    for _ in range(T):
        pos = pos + 0.6 * u
        out.append(pos[None, :] + rng.normal(scale=0.4, size=(3, 2)))
    return out


def _stationary_batches(T: int, rng: np.random.Generator) -> list[np.ndarray]:
    centers = rng.uniform(-8, 8, size=(3, 2))
    out = []
    for _ in range(T):
        c = centers[rng.integers(0, 3)]
        out.append(c[None, :] + rng.normal(scale=0.4, size=(3, 2)))
    return out


_GENERATORS = {"drift": _drift_batches, "stationary": _stationary_batches}


def cell_pair(workload: str, s: int, cell_seed: int, T: int) -> dict:
    """Static and mobile Meyerson on one workload's identical batches."""
    batches = _GENERATORS[workload](T, np.random.default_rng(cell_seed))
    st = simulate_facilities(batches, MeyersonStatic(np.random.default_rng(s)),
                             f=F, D=D, m=1.0)
    mo = simulate_facilities(batches, MobileMeyerson(np.random.default_rng(s)),
                             f=F, D=D, m=1.0)
    return {"static_cost": st.total_cost, "mobile_cost": mo.total_cost,
            "static_n": st.n_facilities, "mobile_n": mo.n_facilities}


@register_reducer("e16/facility", "per-workload static/mobile means + mobility-advantage verdict")
def _reduce(cells: Mapping[str, Any], *, points, config, scale: float,
            seed: int) -> Reduction:
    groups: dict[str, list[Any]] = {}
    for key, point in points:
        groups.setdefault(point["workload"], []).append(cells[key])
    rows: list[list[Any]] = []
    wins: dict[str, float] = {}
    for wl_name, payloads in groups.items():
        static_costs = [c["static_cost"] for c in payloads]
        mobile_costs = [c["mobile_cost"] for c in payloads]
        advantage = float(np.mean(static_costs) / np.mean(mobile_costs))
        wins[wl_name] = advantage
        rows.append([wl_name, float(np.mean(static_costs)),
                     float(np.mean([c["static_n"] for c in payloads])),
                     float(np.mean(mobile_costs)),
                     float(np.mean([c["mobile_n"] for c in payloads])), advantage])
    ok = wins["drift"] > 1.1 and wins["stationary"] > 0.9
    notes = [
        "criterion: facility mobility wins clearly on drift (advantage > 1.1) and does "
        "not lose on stationary demand (advantage > 0.9) — the conclusion's conjecture",
        f"drift advantage x{wins['drift']:.2f}; stationary advantage x{wins['stationary']:.2f}",
    ]
    return Reduction(rows=rows, notes=notes, passed=ok)


def spec(scale: float = 1.0, seed: int = 0) -> ExperimentSpec:
    T = scaled(250, scale, minimum=80)
    n_seeds = scaled(5, scale, minimum=3)
    seeds = sweep_seeds(seed, n_seeds)
    return ExperimentSpec(
        experiment_id="E16",
        title="Extension: mobile Online Facility Location (Meyerson + capped drift)",
        headers=["workload", "static cost", "static #fac", "mobile cost", "mobile #fac",
                 "static/mobile"],
        reducer="e16/facility",
        cells=cell_grid(f"{_MODULE}:cell_pair",
                        axes={"workload": WORKLOAD_NAMES, "s": range(n_seeds)},
                        common={"T": T},
                        derive={"cell_seed": lambda p: seeds[p["s"]]}),
        scale=scale, seed=seed,
    )


def build_spec(scale: float = 1.0, seed: int = 0):
    return spec(scale, seed).to_sweep()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e16_facility.run() is deprecated; E16 is declared as an "
        "ExperimentSpec — use spec(scale, seed).run() or repro.experiments.run_all(['E16'])",
        DeprecationWarning, stacklevel=2,
    )
    return spec(scale, seed).run()
