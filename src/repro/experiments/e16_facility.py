"""E16 (extension) — mobile Online Facility Location (conclusion's hint).

Compares classical Meyerson (static facilities) with the mobile variant
(same opening rule + capped MtC drift) on:

* a drifting workload — mobility must reduce total cost (facilities follow
  the demand instead of strewing a trail of stale ones);
* a stationary clustered workload — mobility must not lose (the drift is
  damped, so facilities settle onto the cluster medians).

Both are averaged over seeds; the reported ratio is
``cost(static) / cost(mobile)`` (> 1 means mobility wins).
"""

from __future__ import annotations

import numpy as np

from ..extensions import MeyersonStatic, MobileMeyerson, simulate_facilities
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def _drift_batches(T: int, rng: np.random.Generator) -> list[np.ndarray]:
    pos = np.zeros(2)
    u = rng.normal(size=2)
    u /= np.linalg.norm(u)
    out = []
    for _ in range(T):
        pos = pos + 0.6 * u
        out.append(pos[None, :] + rng.normal(scale=0.4, size=(3, 2)))
    return out


def _stationary_batches(T: int, rng: np.random.Generator) -> list[np.ndarray]:
    centers = rng.uniform(-8, 8, size=(3, 2))
    out = []
    for _ in range(T):
        c = centers[rng.integers(0, 3)]
        out.append(c[None, :] + rng.normal(scale=0.4, size=(3, 2)))
    return out


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    T = scaled(250, scale, minimum=80)
    f = 30.0
    D = 1.0
    n_seeds = scaled(5, scale, minimum=3)
    rows = []
    wins = {}
    for wl_name, gen in (("drift", _drift_batches), ("stationary", _stationary_batches)):
        static_costs, mobile_costs, static_n, mobile_n = [], [], [], []
        for s, cell_seed in enumerate(sweep_seeds(seed, n_seeds)):
            batches = gen(T, np.random.default_rng(cell_seed))
            st = simulate_facilities(batches, MeyersonStatic(np.random.default_rng(s)),
                                     f=f, D=D, m=1.0)
            mo = simulate_facilities(batches, MobileMeyerson(np.random.default_rng(s)),
                                     f=f, D=D, m=1.0)
            static_costs.append(st.total_cost)
            mobile_costs.append(mo.total_cost)
            static_n.append(st.n_facilities)
            mobile_n.append(mo.n_facilities)
        advantage = float(np.mean(static_costs) / np.mean(mobile_costs))
        wins[wl_name] = advantage
        rows.append([wl_name, float(np.mean(static_costs)), float(np.mean(static_n)),
                     float(np.mean(mobile_costs)), float(np.mean(mobile_n)), advantage])
    ok = wins["drift"] > 1.1 and wins["stationary"] > 0.9
    notes = [
        "criterion: facility mobility wins clearly on drift (advantage > 1.1) and does "
        "not lose on stationary demand (advantage > 0.9) — the conclusion's conjecture",
        f"drift advantage x{wins['drift']:.2f}; stationary advantage x{wins['stationary']:.2f}",
    ]
    return ExperimentResult(
        experiment_id="E16",
        title="Extension: mobile Online Facility Location (Meyerson + capped drift)",
        headers=["workload", "static cost", "static #fac", "mobile cost", "mobile #fac",
                 "static/mobile"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
