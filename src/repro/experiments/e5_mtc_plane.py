"""E5 — Theorem 4 (plane): MtC is O(1/δ^{3/2})-competitive on ℝ².

Same design as E4 but in the plane: certified ratios against the convex
bracket on benign workloads, adversarial ratios against the planar Thm-2
construction, envelope check on ``ratio * δ^{3/2}``, plus one exact
grid-DP spot check validating the convex bracket.

Declared as an orchestrator sweep.  The convex bracket solves dominate
this experiment's cost and do not depend on δ, so they live in one
``brackets/*`` cell per workload shared by the whole δ sweep — a ~4x
saving over the old sequential loop, which re-solved them per δ.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..adversaries import build_thm2
from ..analysis import (
    measure_adversarial_ratio_batch,
    measure_ratio_batch,
    measures_from_payload,
    measures_to_payload,
)
from ..offline import bracket_optimum
from ..workloads import DriftWorkload, RandomWalkWorkload
from .orchestrator import SweepSpec, WorkUnit, execute_spec, grid
from .runner import ExperimentResult, scaled, seeded_instances, sweep_seeds

__all__ = ["build_spec", "finalize", "run"]

_MODULE = "repro.experiments.e5_mtc_plane"
DELTAS = [1.0, 0.5, 0.25, 0.125]
WORKLOADS = ["random-walk-2d", "drift-2d"]


def _workload(name: str, T: int):
    if name == "random-walk-2d":
        return RandomWalkWorkload(T, dim=2, D=2.0, m=1.0, sigma=0.3,
                                  spread=0.4, requests_per_step=4)
    if name == "drift-2d":
        return DriftWorkload(T, dim=2, D=2.0, m=1.0, speed=0.8, rotate=0.02,
                             spread=0.2, requests_per_step=4)
    raise KeyError(f"unknown E5 workload {name!r}")


# -- cells -----------------------------------------------------------------


def cell_brackets(workload: str, T: int, n_seeds: int, seed: int) -> dict:
    """Convex brackets of the benign instances, shared across the δ sweep."""
    instances = seeded_instances(_workload(workload, T), n_seeds, seed)
    return {"brackets": [bracket_optimum(inst).as_payload() for inst in instances]}


def cell_benign(workload: str, delta: float, T: int, n_seeds: int, seed: int,
                deps: Mapping[str, Any]) -> dict:
    from ..offline.bounds import OptBracket

    instances = seeded_instances(_workload(workload, T), n_seeds, seed)
    brackets = [OptBracket.from_payload(p) for p in deps[f"brackets/{workload}"]["brackets"]]
    measures = measure_ratio_batch(instances, "mtc", delta=delta, brackets=brackets)
    return {"measures": measures_to_payload(measures)}


def cell_adversarial(delta: float, n_seeds: int, seed: int) -> dict:
    mean_adv, per_seed = measure_adversarial_ratio_batch(
        lambda rng: build_thm2(delta, cycles=3, dim=2, rng=rng), "mtc", delta,
        sweep_seeds(seed, n_seeds),
    )
    return {"mean": mean_adv, "per_seed": per_seed}


def cell_spot_check(T: int, seed: int) -> dict:
    """Convex bracket vs exact grid DP on a short instance."""
    wl = RandomWalkWorkload(T, dim=2, D=2.0, m=1.0, sigma=0.3, spread=0.3,
                            requests_per_step=2)
    inst = wl.generate(np.random.default_rng(seed))
    convex = bracket_optimum(inst, prefer="convex")
    dp = bracket_optimum(inst, prefer="dp-grid", grid_shape=(24, 24))
    return {"convex": convex.as_payload(), "grid": dp.as_payload()}


# -- spec ------------------------------------------------------------------


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    T = scaled(250, scale, minimum=80)
    n_seeds = scaled(3, scale, minimum=2)
    units: list[WorkUnit] = []
    for workload in WORKLOADS:
        units.append(WorkUnit(
            key=f"brackets/{workload}",
            fn=f"{_MODULE}:cell_brackets",
            params={"workload": workload, "T": T, "n_seeds": n_seeds, "seed": seed},
        ))
    for p in grid(delta=DELTAS, workload=WORKLOADS):
        units.append(WorkUnit(
            key=f"benign/{p['workload']}/delta={p['delta']}",
            fn=f"{_MODULE}:cell_benign",
            params={**p, "T": T, "n_seeds": n_seeds, "seed": seed},
            deps=(f"brackets/{p['workload']}",),
        ))
    for delta in DELTAS:
        units.append(WorkUnit(
            key=f"adversarial/delta={delta}",
            fn=f"{_MODULE}:cell_adversarial",
            params={"delta": delta, "n_seeds": n_seeds, "seed": seed},
        ))
    units.append(WorkUnit(
        key="spot-check",
        fn=f"{_MODULE}:cell_spot_check",
        params={"T": scaled(40, scale, minimum=20), "seed": seed},
    ))
    return SweepSpec("E5", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    from ..offline.bounds import OptBracket

    rows = []
    envelope = []
    for delta in DELTAS:
        for workload in WORKLOADS:
            measures = measures_from_payload(results[f"benign/{workload}/delta={delta}"]["measures"])
            ratios = [m.ratio_upper for m in measures]
            rows.append([workload, delta, float(np.mean(ratios)),
                         float(np.mean(ratios)) * delta ** 1.5])
        mean_adv = results[f"adversarial/delta={delta}"]["mean"]
        rows.append(["thm2-adversarial-2d", delta, mean_adv, mean_adv * delta ** 1.5])
        envelope.append(mean_adv * delta ** 1.5)

    spot = results["spot-check"]
    convex = OptBracket.from_payload(spot["convex"])
    dp = OptBracket.from_payload(spot["grid"])
    agree = convex.lower <= dp.upper * 1.05 and dp.lower <= convex.upper * 1.05
    notes = [
        "criterion: MtC ratio bounded in T; ratio * delta^{3/2} bounded over delta sweep (Thm 4, plane)",
        f"envelope ratio*delta^1.5 over deltas: min {min(envelope):.2f}, max {max(envelope):.2f}",
        f"OPT-bracket cross-check: convex [{convex.lower:.2f},{convex.upper:.2f}] vs "
        f"grid DP [{dp.lower:.2f},{dp.upper:.2f}] ({'consistent' if agree else 'INCONSISTENT'})",
    ]
    ok = agree and max(envelope) <= 10.0 * max(min(envelope), 0.1)
    return ExperimentResult(
        experiment_id="E5",
        title="Thm 4 (plane): MtC O(1/delta^{3/2})-competitive with augmentation",
        headers=["workload", "delta", "ratio(MtC)", "ratio*delta^1.5"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    return execute_spec(build_spec(scale, seed))
