"""E5 — Theorem 4 (plane): MtC is O(1/δ^{3/2})-competitive on ℝ².

Same design as E4 but in the plane: certified ratios against the convex
bracket on benign workloads, adversarial ratios against the planar Thm-2
construction, envelope check on ``ratio * δ^{3/2}``, plus one exact
grid-DP spot check validating the convex bracket.
"""

from __future__ import annotations

import numpy as np

from ..adversaries import build_thm2
from ..analysis import measure_adversarial_ratio_batch, measure_ratio_batch
from ..offline import bracket_optimum
from ..workloads import DriftWorkload, RandomWalkWorkload
from .runner import ExperimentResult, scaled, seeded_instances

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    deltas = [1.0, 0.5, 0.25, 0.125]
    T = scaled(250, scale, minimum=80)
    n_seeds = scaled(3, scale, minimum=2)
    seeds = [seed * 100 + s for s in range(n_seeds)]
    rows = []
    envelope = []
    for delta in deltas:
        for name, wl in (
            ("random-walk-2d", RandomWalkWorkload(T, dim=2, D=2.0, m=1.0, sigma=0.3,
                                                  spread=0.4, requests_per_step=4)),
            ("drift-2d", DriftWorkload(T, dim=2, D=2.0, m=1.0, speed=0.8, rotate=0.02,
                                       spread=0.2, requests_per_step=4)),
        ):
            measures = measure_ratio_batch(seeded_instances(wl, n_seeds, seed), "mtc",
                                           delta=delta)
            ratios = [m.ratio_upper for m in measures]
            rows.append([name, delta, float(np.mean(ratios)),
                         float(np.mean(ratios)) * delta ** 1.5])
        mean_adv, _ = measure_adversarial_ratio_batch(
            lambda rng: build_thm2(delta, cycles=3, dim=2, rng=rng), "mtc", delta, seeds
        )
        rows.append(["thm2-adversarial-2d", delta, mean_adv, mean_adv * delta ** 1.5])
        envelope.append(mean_adv * delta ** 1.5)

    # Spot check: convex bracket vs exact grid DP on a short instance.
    wl = RandomWalkWorkload(scaled(40, scale, minimum=20), dim=2, D=2.0, m=1.0,
                            sigma=0.3, spread=0.3, requests_per_step=2)
    inst = wl.generate(np.random.default_rng(seed))
    convex = bracket_optimum(inst, prefer="convex")
    grid = bracket_optimum(inst, prefer="dp-grid", grid_shape=(24, 24))
    agree = convex.lower <= grid.upper * 1.05 and grid.lower <= convex.upper * 1.05
    notes = [
        "criterion: MtC ratio bounded in T; ratio * delta^{3/2} bounded over delta sweep (Thm 4, plane)",
        f"envelope ratio*delta^1.5 over deltas: min {min(envelope):.2f}, max {max(envelope):.2f}",
        f"OPT-bracket cross-check: convex [{convex.lower:.2f},{convex.upper:.2f}] vs "
        f"grid DP [{grid.lower:.2f},{grid.upper:.2f}] ({'consistent' if agree else 'INCONSISTENT'})",
    ]
    ok = agree and max(envelope) <= 10.0 * max(min(envelope), 0.1)
    return ExperimentResult(
        experiment_id="E5",
        title="Thm 4 (plane): MtC O(1/delta^{3/2})-competitive with augmentation",
        headers=["workload", "delta", "ratio(MtC)", "ratio*delta^1.5"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
