"""E5 — Theorem 4 (plane): MtC is O(1/δ^{3/2})-competitive on ℝ².

Same design as E4 but in the plane: certified ratios against the convex
bracket on benign workloads, adversarial ratios against the planar Thm-2
construction, envelope check on ``ratio * δ^{3/2}``, plus one exact
grid-DP spot check validating the convex bracket.

Declared as an orchestrator sweep of generic *scenario cells*
(:func:`repro.api.runtime.scenario_units`): the convex bracket solves —
which dominate the cost and do not depend on δ — are factored into one
shared ephemeral cell per workload, and the simulation cells themselves
are mega-batch compatible (same algorithm, same instance shape), so the
inline executor packs the whole δ sweep of a workload into a single wide
batched-engine pass (see :mod:`repro.api.runtime`).  Payloads are
bit-identical to the former experiment-specific cells' measurements.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..api.runtime import scenario_units
from ..api.scenario import Scenario
from ..offline import bracket_optimum
from ..workloads import RandomWalkWorkload
from .orchestrator import SweepSpec, WorkUnit, execute_spec, grid
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "finalize", "run"]

_MODULE = "repro.experiments.e5_mtc_plane"
DELTAS = [1.0, 0.5, 0.25, 0.125]
WORKLOADS = ["random-walk-2d", "drift-2d"]

#: Registry source + extra parameters behind each E5 workload label
#: (geometry ``T``/``dim``/``D``/``m`` joins per spec scale).
_SOURCES = {
    "random-walk-2d": ("random-walk",
                       {"sigma": 0.3, "spread": 0.4, "requests_per_step": 4}),
    "drift-2d": ("drift",
                 {"speed": 0.8, "rotate": 0.02, "spread": 0.2, "requests_per_step": 4}),
}


# -- cells -----------------------------------------------------------------


def cell_spot_check(T: int, seed: int) -> dict:
    """Convex bracket vs exact grid DP on a short instance."""
    wl = RandomWalkWorkload(T, dim=2, D=2.0, m=1.0, sigma=0.3, spread=0.3,
                            requests_per_step=2)
    inst = wl.generate(np.random.default_rng(seed))
    convex = bracket_optimum(inst, prefer="convex")
    dp = bracket_optimum(inst, prefer="dp-grid", grid_shape=(24, 24))
    return {"convex": convex.as_payload(), "grid": dp.as_payload()}


# -- spec ------------------------------------------------------------------


def _scenarios(scale: float, seed: int) -> tuple[list[str], list[Scenario]]:
    """Keyed scenario list: the benign δ×workload grid plus the adversarial sweep."""
    T = scaled(250, scale, minimum=80)
    n_seeds = scaled(3, scale, minimum=2)
    seeds = sweep_seeds(seed, n_seeds)
    keys: list[str] = []
    scenarios: list[Scenario] = []
    for p in grid(delta=DELTAS, workload=WORKLOADS):
        source, extra = _SOURCES[p["workload"]]
        key = f"benign/{p['workload']}/delta={p['delta']}"
        keys.append(key)
        scenarios.append(Scenario.workload(
            source, "mtc",
            params={"T": T, "dim": 2, "D": 2.0, "m": 1.0, **extra},
            seeds=seeds, delta=p["delta"], ratio="bracket", name=key,
        ))
    for delta in DELTAS:
        key = f"adversarial/delta={delta}"
        keys.append(key)
        scenarios.append(Scenario.adversary(
            "thm2", "mtc", params={"delta": delta, "cycles": 3, "dim": 2},
            seeds=seeds, delta=delta, name=key,
        ))
    return keys, scenarios


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    keys, scenarios = _scenarios(scale, seed)
    units = list(scenario_units(scenarios, keys=keys))
    units.append(WorkUnit(
        key="spot-check",
        fn=f"{_MODULE}:cell_spot_check",
        params={"T": scaled(40, scale, minimum=20), "seed": seed},
    ))
    return SweepSpec("E5", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    from ..analysis import measures_from_payload
    from ..offline.bounds import OptBracket

    rows = []
    envelope = []
    for delta in DELTAS:
        for workload in WORKLOADS:
            measures = measures_from_payload(results[f"benign/{workload}/delta={delta}"]["measures"])
            ratios = [m.ratio_upper for m in measures]
            rows.append([workload, delta, float(np.mean(ratios)),
                         float(np.mean(ratios)) * delta ** 1.5])
        mean_adv = float(np.mean(results[f"adversarial/delta={delta}"]["ratios"]))
        rows.append(["thm2-adversarial-2d", delta, mean_adv, mean_adv * delta ** 1.5])
        envelope.append(mean_adv * delta ** 1.5)

    spot = results["spot-check"]
    convex = OptBracket.from_payload(spot["convex"])
    dp = OptBracket.from_payload(spot["grid"])
    agree = convex.lower <= dp.upper * 1.05 and dp.lower <= convex.upper * 1.05
    notes = [
        "criterion: MtC ratio bounded in T; ratio * delta^{3/2} bounded over delta sweep (Thm 4, plane)",
        f"envelope ratio*delta^1.5 over deltas: min {min(envelope):.2f}, max {max(envelope):.2f}",
        f"OPT-bracket cross-check: convex [{convex.lower:.2f},{convex.upper:.2f}] vs "
        f"grid DP [{dp.lower:.2f},{dp.upper:.2f}] ({'consistent' if agree else 'INCONSISTENT'})",
    ]
    ok = agree and max(envelope) <= 10.0 * max(min(envelope), 0.1)
    return ExperimentResult(
        experiment_id="E5",
        title="Thm 4 (plane): MtC O(1/delta^{3/2})-competitive with augmentation",
        headers=["workload", "delta", "ratio(MtC)", "ratio*delta^1.5"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    return execute_spec(build_spec(scale, seed))
