"""Declarative experiment orchestrator.

An experiment is declared as a :class:`SweepSpec`: a flat collection of
:class:`WorkUnit` cells (parameter-grid point × seeds × workload or
adversary factory), each naming a module-level *cell function* by dotted
path plus JSON-able parameters, optionally depending on other cells
(e.g. delta-sweep simulation cells sharing one offline-bracket cell).
:func:`execute` turns one or more specs into results:

1. every unit gets a content address (:func:`repro.core.store.digest_key`
   over its function, parameters and dependency digests);
2. units already present in the :class:`~repro.core.store.ResultsStore`
   are loaded instead of recomputed (cache hits double as ``--resume``:
   an interrupted grid continues from its last persisted cell);
3. remaining units run in dependency order through a pluggable
   :class:`~repro.experiments.executors.Executor` backend — inline for
   ``jobs=1``, a local process pool for ``jobs>1``, or a spool directory
   drained by external ``mobile-server worker`` processes (any number,
   on any machines sharing the filesystem) for ``executor="spool"``.
   Each cell internally dispatches its seed sweep through the batched
   engine (:func:`repro.core.engine.simulate_batch`), so workers
   multiply the single-core win of vectorized lanes;
4. per spec, a *finalize* function assembles the cells into the familiar
   :class:`~repro.experiments.runner.ExperimentResult` table.

Cell functions must be module-level (picklable by path), take only
JSON-able keyword arguments, and return a storable payload (nested
dict/list/scalars/NumPy arrays — see :func:`repro.core.store.pack_payload`).
Units with dependencies receive an extra ``deps`` mapping
``{local unit key: payload}``.  All randomness must derive from the
parameters (seeds), never from global state: that is what makes cells
relocatable across processes and cache entries exact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..core.store import MISSING, ResultsStore, digest_key
from .executors import ExecutionContext, Executor, make_executor
from .executors.base import resolve_callable as _resolve
from .runner import ExperimentResult

__all__ = [
    "ExecutionReport",
    "SweepSpec",
    "WorkUnit",
    "execute",
    "execute_spec",
    "grid",
    "legacy_spec",
]


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable cell of a sweep.

    Attributes
    ----------
    key:
        Unique name within the spec (the orchestrator namespaces it with
        the experiment id globally).
    fn:
        Dotted path ``"package.module:function"`` of the cell function.
    params:
        JSON-able keyword arguments; seeds, scale and every code-relevant
        parameter belong here — they form the cell's content address.
    deps:
        Keys of units (same spec) whose payloads this cell consumes.
        Dependency digests enter this cell's content address.
    soft_deps:
        Like ``deps`` (payloads delivered, execution ordered after them)
        but **excluded from the content address**.  Only valid when the
        dependency's payload is a deterministic function of this cell's
        own parameters — e.g. offline brackets derived from the same
        source parameters and seeds — so a cached payload computed
        without the dependency is interchangeable with one computed with
        it.  This is what lets shared-bracket cells be factored out of a
        scenario sweep while every scenario cell keeps the address of its
        standalone :meth:`repro.api.Scenario.digest`.
    """

    key: str
    fn: str
    params: Mapping[str, Any] = field(default_factory=dict)
    deps: tuple[str, ...] = ()
    soft_deps: tuple[str, ...] = ()
    #: Ephemeral units exist only to feed other units (e.g. factored-out
    #: shared brackets): they are not handed to finalize, and when every
    #: unit that would consume them is already cached they are skipped
    #: entirely instead of computed.
    ephemeral: bool = False


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment: work units plus a finalize function.

    ``meta`` is an optional opaque object handed to the finalize function
    as an extra ``meta=`` keyword (omitted when ``None``); the declarative
    :class:`repro.api.ExperimentSpec` uses it to route every experiment
    through one generic finalize.
    """

    experiment_id: str
    units: tuple[WorkUnit, ...]
    finalize: str
    scale: float = 1.0
    seed: int = 0
    meta: Any = None


@dataclass
class ExecutionReport:
    """What :func:`execute` did: results plus cache and timing accounting."""

    results: list[ExperimentResult] = field(default_factory=list)
    computed: int = 0
    cached: int = 0
    #: Ephemeral units skipped because every consumer was already cached.
    skipped: int = 0
    #: Wall-clock seconds per *computed* cell (cache hits don't appear),
    #: keyed by the cell's namespaced key.  Under ``jobs>1`` these are the
    #: in-worker durations, so they sum to total CPU-side work, not to the
    #: elapsed wall-clock of the pooled run.
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.computed + self.cached

    @property
    def compute_seconds(self) -> float:
        """Total seconds spent inside computed cells."""
        return sum(self.timings.values())

    def slowest(self, n: int = 3) -> list[tuple[str, float]]:
        """The ``n`` slowest computed cells, slowest first."""
        return sorted(self.timings.items(), key=lambda kv: kv[1], reverse=True)[:n]


def grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes, in declaration order.

    ``grid(delta=[1.0, 0.5], workload=["drift"])`` →
    ``[{"delta": 1.0, "workload": "drift"}, {"delta": 0.5, ...}]``.
    """
    names = list(axes)
    return [dict(zip(names, values)) for values in itertools.product(*axes.values())]


def _toposort(units: Sequence[tuple[str, WorkUnit]]) -> list[tuple[str, WorkUnit]]:
    """Kahn's algorithm, stable with respect to declaration order."""
    order: list[tuple[str, WorkUnit]] = []
    placed: set[str] = set()
    remaining = list(units)
    known = {key for key, _ in units}
    for key, unit in units:
        for dep in _dep_keys(key, unit):
            if dep not in known:
                raise KeyError(f"unit {key!r} depends on unknown unit {dep!r}")
    while remaining:
        progressed = False
        still: list[tuple[str, WorkUnit]] = []
        for key, unit in remaining:
            if all(dep in placed for dep in _dep_keys(key, unit)):
                order.append((key, unit))
                placed.add(key)
                progressed = True
            else:
                still.append((key, unit))
        if not progressed:
            cycle = ", ".join(key for key, _ in still)
            raise ValueError(f"dependency cycle among work units: {cycle}")
        remaining = still
    return order


def _spec_prefixes(specs: Sequence[SweepSpec]) -> list[str]:
    """One namespace per spec; repeated experiment ids get ``#n`` suffixes.

    Requesting the same experiment twice (``--ids E9 E9``) is legal — the
    second spec's cells share the first's content addresses, so the
    within-run dedup computes them once and both finalize passes see the
    same payloads, matching the old run-it-twice loop's output.
    """
    counts: dict[str, int] = {}
    prefixes = []
    for spec in specs:
        n = counts.get(spec.experiment_id, 0)
        counts[spec.experiment_id] = n + 1
        prefixes.append(spec.experiment_id if n == 0 else f"{spec.experiment_id}#{n + 1}")
    return prefixes


def _prefixed(full_key: str, deps: tuple[str, ...]) -> list[str]:
    prefix = full_key[: full_key.index("/") + 1] if "/" in full_key else ""
    return [prefix + dep for dep in deps]


def _dep_keys(full_key: str, unit: WorkUnit) -> list[str]:
    """All execution-order dependencies (hard first, then soft)."""
    return _prefixed(full_key, unit.deps + unit.soft_deps)


def execute(
    specs: Sequence[SweepSpec],
    jobs: int = 1,
    store: ResultsStore | None = None,
    rerun: bool = False,
    progress: Callable[[str], None] | None = None,
    executor: str | Executor | None = None,
    spool: Any = None,
    spool_timeout: float | None = None,
) -> ExecutionReport:
    """Run the specs' work units (cache-aware, optionally in parallel).

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs everything inline (no pool).
    store:
        Persistent cell cache.  When given, completed cells are loaded
        instead of recomputed and fresh cells are written back — which is
        both the fast-second-run path and the resume-after-interrupt path.
    rerun:
        Ignore existing store entries and recompute every cell,
        overwriting the stored payloads.
    progress:
        Optional callback for human-readable status lines.
    executor:
        Execution backend: an :class:`~repro.experiments.executors.Executor`
        instance, a name (``"inline"``, ``"process"``, ``"spool"``), or
        ``None`` to derive one from ``jobs`` (inline for ``jobs=1``, a
        process pool otherwise).  The spool backend additionally needs
        ``spool`` (the task directory shared with the workers) and a
        persistent ``store``.
    spool:
        Spool directory for ``executor="spool"``.
    spool_timeout:
        For ``executor="spool"``: fail when no worker makes progress
        for this many seconds (default ``None`` — wait forever).
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    backend = make_executor(executor, jobs=jobs, spool=spool,
                            timeout=spool_timeout)
    prefixes = _spec_prefixes(specs)
    flat: list[tuple[str, WorkUnit]] = []
    seen: set[str] = set()
    for spec, prefix in zip(specs, prefixes):
        for unit in spec.units:
            full = f"{prefix}/{unit.key}"
            if full in seen:
                raise ValueError(f"duplicate work unit key {full!r}")
            seen.add(full)
            flat.append((full, unit))
    ordered = _toposort(flat)

    digests: dict[str, str] = {}
    for full, unit in ordered:
        # Only hard deps enter the address: soft deps are by contract a
        # deterministic function of the unit's own params, so a payload
        # computed with or without them is the same payload.
        dep_digests = {dep: digests[dep] for dep in _prefixed(full, unit.deps)}
        digests[full] = digest_key(unit.fn, dict(unit.params), dep_digests)

    report = ExecutionReport()
    payloads: dict[str, Any] = {}
    if store is not None and not rerun:
        for full, unit in ordered:
            # load_or_none drops corrupt entries (e.g. an interrupted
            # copy between machines) so they recompute as cache misses;
            # the MISSING sentinel keeps stored None payloads cacheable.
            payload = store.load_or_none(digests[full], MISSING)
            if payload is not MISSING:
                payloads[full] = payload
                report.cached += 1

    # Within-run dedup: units with identical content addresses (e.g. the
    # same experiment requested twice, or two sweeps sharing a cell)
    # compute once; the twins count as cache hits.
    pending: list[tuple[str, WorkUnit]] = []
    twins: dict[str, list[str]] = {}
    for full, unit in ordered:
        if full in payloads:
            continue
        digest = digests[full]
        if digest in twins:
            twins[digest].append(full)
            report.cached += 1
        else:
            twins[digest] = []
            pending.append((full, unit))

    # Prune ephemeral units nothing pending consumes (all their dependents
    # were cache hits): a warm sweep must not re-derive shared brackets.
    while True:
        needed: set[str] = set()
        for full, unit in pending:
            needed.update(_dep_keys(full, unit))
        drop = {
            full for full, unit in pending
            if unit.ephemeral and full not in needed
            and not any(twin in needed for twin in twins.get(digests[full], []))
        }
        if not drop:
            break
        pending = [(full, unit) for full, unit in pending if full not in drop]
        report.skipped += len(drop)

    def finish(full: str, unit: WorkUnit, payload: Any, elapsed: float,
               persist: bool = True) -> None:
        payloads[full] = payload
        for twin in twins[digests[full]]:
            payloads[twin] = payload
        report.computed += 1
        report.timings[full] = elapsed
        if store is not None and persist:
            store.save(digests[full], payload,
                       extra_meta={"key": full, "fn": unit.fn, "elapsed": elapsed})
        if progress is not None:
            progress(f"computed {full} ({elapsed:.2f}s)")

    def dep_payloads(full: str, unit: WorkUnit) -> dict[str, Any] | None:
        locals_ = unit.deps + unit.soft_deps
        if not locals_:
            return None
        return {dep_local: payloads[dep]
                for dep_local, dep in zip(locals_, _dep_keys(full, unit))}

    backend.drain(ExecutionContext(
        pending=pending,
        digests=digests,
        payloads=payloads,
        store=store,
        dep_keys=_dep_keys,
        dep_payloads=dep_payloads,
        finish=finish,
        rerun=rerun,
    ))

    for spec, prefix in zip(specs, prefixes):
        local = {unit.key: payloads[f"{prefix}/{unit.key}"]
                 for unit in spec.units if not unit.ephemeral}
        kwargs: dict[str, Any] = {"scale": spec.scale, "seed": spec.seed}
        if spec.meta is not None:
            kwargs["meta"] = spec.meta
        result = _resolve(spec.finalize)(local, **kwargs)
        report.results.append(result)
    return report


def execute_spec(spec: SweepSpec, **kwargs: Any) -> ExperimentResult:
    """Convenience wrapper: run one spec, return its result."""
    return execute([spec], **kwargs).results[0]


# -- wrapping of experiments that predate the orchestrator -----------------


def legacy_spec(experiment_id: str, scale: float, seed: int) -> SweepSpec:
    """A one-cell spec around a plain ``run(scale, seed)`` experiment.

    Gives non-migrated experiments store caching and cross-experiment
    parallelism for free: the whole run is a single cell whose payload is
    the exact :class:`ExperimentResult` round-trip.
    """
    unit = WorkUnit(
        key="run",
        fn="repro.experiments.orchestrator:cell_run_legacy",
        params={"experiment_id": experiment_id, "scale": scale, "seed": seed},
    )
    return SweepSpec(experiment_id, (unit,),
                     finalize="repro.experiments.orchestrator:finalize_legacy",
                     scale=scale, seed=seed)


def cell_run_legacy(experiment_id: str, scale: float, seed: int) -> dict:
    from . import EXPERIMENTS

    result = EXPERIMENTS[experiment_id](scale=scale, seed=seed)
    return result.as_payload()


def finalize_legacy(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    return ExperimentResult.from_payload(results["run"])
