"""E7 — Theorem 8: a faster agent forces ratio Ω(√T · ε/(1+ε)).

Sweeps ``T`` and ε on the Theorem-8 moving-client construction, measuring
the moving-client MtC (which is optimal-in-spirit here: full-speed chase
once behind) and fitting the growth exponent in ``T``.  Each (ε, T) point
is one :class:`~repro.api.Scenario` cell over the registered ``thm8``
construction (tagged moving-client, which is what licenses the
``mtc-moving-client`` algorithm).

Reproduction criterion: fitted exponent ≈ 0.5 at each ε, and at fixed T
the ratio grows with ε/(1+ε).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..analysis import fit_power_law
from ..api import Scenario, scenario_unit
from .orchestrator import SweepSpec, execute_spec
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "finalize", "run"]

_MODULE = "repro.experiments.e7_moving_client_lb"
EPSILONS = [0.25, 1.0]


def _axes(scale: float) -> tuple[list[int], int]:
    Ts = [256, 1024, 4096]
    if scale > 1.5:
        Ts.append(16384)
    return Ts, scaled(6, scale, minimum=3)


def _scenario(T: int, eps: float, n_seeds: int, seed: int) -> Scenario:
    return Scenario.adversary(
        "thm8",
        algorithm="mtc-moving-client",
        params={"T": T, "epsilon": eps},
        seeds=sweep_seeds(seed, n_seeds, stride=1000),
        delta=0.0,
        ratio="adversary",
        name=f"E7/eps={eps:g}/T={T}",
    )


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    Ts, n_seeds = _axes(scale)
    units = [
        scenario_unit(f"ratio/eps={eps:g}/T={T}", _scenario(T, eps, n_seeds, seed))
        for eps in EPSILONS
        for T in Ts
    ]
    return SweepSpec("E7", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    Ts, _ = _axes(scale)
    rows = []
    fits = {}
    for eps in EPSILONS:
        means = []
        for T in Ts:
            mean = float(np.asarray(results[f"ratio/eps={eps:g}/T={T}"]["ratios"]).mean())
            rows.append([eps, T, mean, float(np.sqrt(T) * eps / (1 + eps))])
            means.append(mean)
        fits[eps] = fit_power_law(np.array(Ts, dtype=float), np.array(means))
    notes = [
        "criterion: moving-client ratio ~ sqrt(T) * eps/(1+eps) when m_a=(1+eps)m_s (Thm 8)",
    ]
    ok = True
    for eps, fit in fits.items():
        notes.append(
            f"eps={eps:g}: exponent in T = {fit.exponent:.3f} (R^2={fit.r_squared:.3f}); predicted 0.5"
        )
        if not (0.3 <= fit.exponent <= 0.7):
            ok = False
    # Monotonicity in eps at the largest T.
    T_big = Ts[-1]
    r_small = [r[2] for r in rows if r[0] == EPSILONS[0] and r[1] == T_big][0]
    r_big = [r[2] for r in rows if r[0] == EPSILONS[-1] and r[1] == T_big][0]
    notes.append(f"eps effect at T={T_big}: ratio {r_small:.2f} (eps={EPSILONS[0]}) vs {r_big:.2f} (eps={EPSILONS[-1]})")
    if r_big <= r_small:
        ok = False
    return ExperimentResult(
        experiment_id="E7",
        title="Thm 8: moving-client lower bound ~ sqrt(T)*eps/(1+eps) for a faster agent",
        headers=["eps", "T", "ratio(MtC-mc)", "sqrt(T)*eps/(1+eps)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    return execute_spec(build_spec(scale, seed))
