"""E7 — Theorem 8: a faster agent forces ratio Ω(√T · ε/(1+ε)).

Sweeps ``T`` and ε on the Theorem-8 moving-client construction, measuring
the moving-client MtC (which is optimal-in-spirit here: full-speed chase
once behind) and fitting the growth exponent in ``T``.

Reproduction criterion: fitted exponent ≈ 0.5 at each ε, and at fixed T
the ratio grows with ε/(1+ε).
"""

from __future__ import annotations

import numpy as np

from ..adversaries import build_thm8
from ..algorithms import MovingClientMtC
from ..analysis import fit_power_law, measure_adversarial_ratio
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    Ts = [256, 1024, 4096]
    if scale > 1.5:
        Ts.append(16384)
    epsilons = [0.25, 1.0]
    n_seeds = scaled(6, scale, minimum=3)
    rows = []
    fits = {}
    for eps in epsilons:
        means = []
        for T in Ts:
            seeds = sweep_seeds(seed, n_seeds, stride=1000)
            mean, _ = measure_adversarial_ratio(
                lambda rng, T=T, eps=eps: build_thm8(T, epsilon=eps, rng=rng),
                MovingClientMtC,
                delta=0.0,
                seeds=seeds,
            )
            rows.append([eps, T, mean, float(np.sqrt(T) * eps / (1 + eps))])
            means.append(mean)
        fits[eps] = fit_power_law(np.array(Ts, dtype=float), np.array(means))
    notes = [
        "criterion: moving-client ratio ~ sqrt(T) * eps/(1+eps) when m_a=(1+eps)m_s (Thm 8)",
    ]
    ok = True
    for eps, fit in fits.items():
        notes.append(
            f"eps={eps:g}: exponent in T = {fit.exponent:.3f} (R^2={fit.r_squared:.3f}); predicted 0.5"
        )
        if not (0.3 <= fit.exponent <= 0.7):
            ok = False
    # Monotonicity in eps at the largest T.
    T_big = Ts[-1]
    r_small = [r[2] for r in rows if r[0] == epsilons[0] and r[1] == T_big][0]
    r_big = [r[2] for r in rows if r[0] == epsilons[-1] and r[1] == T_big][0]
    notes.append(f"eps effect at T={T_big}: ratio {r_small:.2f} (eps={epsilons[0]}) vs {r_big:.2f} (eps={epsilons[-1]})")
    if r_big <= r_small:
        ok = False
    return ExperimentResult(
        experiment_id="E7",
        title="Thm 8: moving-client lower bound ~ sqrt(T)*eps/(1+eps) for a faster agent",
        headers=["eps", "T", "ratio(MtC-mc)", "sqrt(T)*eps/(1+eps)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
