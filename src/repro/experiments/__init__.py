"""Experiment harness: one module per reproduced theorem/lemma.

``EXPERIMENTS`` maps experiment ids to their ``run(scale, seed)``
callables; :func:`run_all` executes a subset and returns the results.

Every experiment appears in ``SPECS`` (id → ``build_spec(scale, seed)``):
its sweep is flattened into work units that execute in parallel across
processes and cache per-cell in a persistent results store, so the whole
suite shares one scheduler, one cache and one ``--jobs`` fan-out.  The
E4/E8–E16 builders lower a declarative :class:`repro.api.ExperimentSpec`
(grid + registry-addressed reducer); the rest declare their work units
directly.
"""

from typing import Callable, Dict

from . import (
    e1_thm1,
    e2_thm2,
    e3_thm3,
    e4_mtc_line,
    e5_mtc_plane,
    e6_answer_first,
    e7_moving_client_lb,
    e8_moving_client_mtc,
    e9_lemma6,
    e10_lemma5,
    e11_potential,
    e12_ablation,
    e13_baselines,
    e14_multi_agent,
    e15_multi_server,
    e16_facility,
    e17_dimension,
)
from .orchestrator import ExecutionReport, SweepSpec, execute, execute_spec, legacy_spec
from .runner import ExperimentResult

#: Every experiment declared as an orchestrator sweep (id → spec builder).
#: E1/E2/E3/E6/E7/E12 build their cells as :class:`repro.api.Scenario`
#: work units; E4/E8/E9/E10/E11/E14/E15/E16 are declarative
#: :class:`repro.api.ExperimentSpec` grids (``build_spec`` lowers them);
#: the earlier migrations (E5/E13/E17) still use hand-written cell
#: functions where they share offline brackets.
SPECS: Dict[str, Callable[[float, int], SweepSpec]] = {
    "E1": e1_thm1.build_spec,
    "E2": e2_thm2.build_spec,
    "E3": e3_thm3.build_spec,
    "E4": e4_mtc_line.build_spec,
    "E5": e5_mtc_plane.build_spec,
    "E6": e6_answer_first.build_spec,
    "E7": e7_moving_client_lb.build_spec,
    "E8": e8_moving_client_mtc.build_spec,
    "E9": e9_lemma6.build_spec,
    "E10": e10_lemma5.build_spec,
    "E11": e11_potential.build_spec,
    "E12": e12_ablation.build_spec,
    "E13": e13_baselines.build_spec,
    "E14": e14_multi_agent.build_spec,
    "E15": e15_multi_server.build_spec,
    "E16": e16_facility.build_spec,
    "E17": e17_dimension.build_spec,
}


def _spec_runner(eid: str) -> Callable[..., ExperimentResult]:
    """The canonical (non-deprecated) run entry for a spec-declared experiment."""

    def _run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
        return execute_spec(SPECS[eid](scale, seed))

    _run.__name__ = f"run_{eid.lower()}"
    _run.__doc__ = f"Run {eid} through its declarative spec."
    return _run


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": e1_thm1.run,
    "E2": e2_thm2.run,
    "E3": e3_thm3.run,
    # E4/E8–E16's module-level ``run`` functions are deprecation shims;
    # the registry routes straight through their specs instead.
    "E4": _spec_runner("E4"),
    "E5": e5_mtc_plane.run,
    "E6": e6_answer_first.run,
    "E7": e7_moving_client_lb.run,
    "E8": _spec_runner("E8"),
    "E9": _spec_runner("E9"),
    "E10": _spec_runner("E10"),
    "E11": _spec_runner("E11"),
    "E12": _spec_runner("E12"),
    "E13": _spec_runner("E13"),
    "E14": _spec_runner("E14"),
    "E15": _spec_runner("E15"),
    "E16": _spec_runner("E16"),
    "E17": e17_dimension.run,
}


def build_specs(ids: list[str] | None = None, scale: float = 1.0, seed: int = 0) -> list[SweepSpec]:
    """One spec per requested experiment (legacy ones get one-cell wrappers)."""
    chosen = ids if ids is not None else list(EXPERIMENTS)
    specs = []
    for eid in chosen:
        if eid not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {eid!r}; available: {', '.join(EXPERIMENTS)}")
        if eid in SPECS:
            specs.append(SPECS[eid](scale, seed))
        else:
            specs.append(legacy_spec(eid, scale, seed))
    return specs


def run_all_detailed(
    ids: list[str] | None = None,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    store=None,
    rerun: bool = False,
    executor=None,
    spool=None,
    spool_timeout=None,
) -> ExecutionReport:
    """Run experiments through the orchestrator; report includes cache stats.

    ``store`` is a :class:`repro.core.store.ResultsStore` (or ``None`` to
    compute everything); ``jobs`` fans the pooled work units of *all*
    requested experiments out across processes; ``rerun`` recomputes and
    overwrites cached cells.  ``executor``/``spool``/``spool_timeout``
    select an explicit execution backend (see
    :func:`repro.experiments.orchestrator.execute`) — e.g.
    ``executor="spool"`` with a spool directory drained by external
    ``mobile-server worker`` processes.
    """
    specs = build_specs(ids, scale=scale, seed=seed)
    return execute(specs, jobs=jobs, store=store, rerun=rerun,
                   executor=executor, spool=spool, spool_timeout=spool_timeout)


def run_all(
    ids: list[str] | None = None,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int = 1,
    store=None,
    rerun: bool = False,
    executor=None,
    spool=None,
    spool_timeout=None,
) -> list[ExperimentResult]:
    """Run the named experiments (all by default) and return their results."""
    return run_all_detailed(ids, scale=scale, seed=seed, jobs=jobs, store=store,
                            rerun=rerun, executor=executor, spool=spool,
                            spool_timeout=spool_timeout).results


__all__ = [
    "EXPERIMENTS",
    "SPECS",
    "ExperimentResult",
    "build_specs",
    "run_all",
    "run_all_detailed",
]
