"""Experiment harness: one module per reproduced theorem/lemma.

``EXPERIMENTS`` maps experiment ids to their ``run(scale, seed)``
callables; :func:`run_all` executes a subset and returns the results.
"""

from typing import Callable, Dict

from . import (
    e1_thm1,
    e2_thm2,
    e3_thm3,
    e4_mtc_line,
    e5_mtc_plane,
    e6_answer_first,
    e7_moving_client_lb,
    e8_moving_client_mtc,
    e9_lemma6,
    e10_lemma5,
    e11_potential,
    e12_ablation,
    e13_baselines,
    e14_multi_agent,
    e15_multi_server,
    e16_facility,
    e17_dimension,
)
from .runner import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "E1": e1_thm1.run,
    "E2": e2_thm2.run,
    "E3": e3_thm3.run,
    "E4": e4_mtc_line.run,
    "E5": e5_mtc_plane.run,
    "E6": e6_answer_first.run,
    "E7": e7_moving_client_lb.run,
    "E8": e8_moving_client_mtc.run,
    "E9": e9_lemma6.run,
    "E10": e10_lemma5.run,
    "E11": e11_potential.run,
    "E12": e12_ablation.run,
    "E13": e13_baselines.run,
    "E14": e14_multi_agent.run,
    "E15": e15_multi_server.run,
    "E16": e16_facility.run,
    "E17": e17_dimension.run,
}


def run_all(ids: list[str] | None = None, scale: float = 1.0, seed: int = 0) -> list[ExperimentResult]:
    """Run the named experiments (all by default) and return their results."""
    chosen = ids if ids is not None else list(EXPERIMENTS)
    results = []
    for eid in chosen:
        if eid not in EXPERIMENTS:
            raise KeyError(f"unknown experiment {eid!r}; available: {', '.join(EXPERIMENTS)}")
        results.append(EXPERIMENTS[eid](scale=scale, seed=seed))
    return results


__all__ = ["EXPERIMENTS", "ExperimentResult", "run_all"]
