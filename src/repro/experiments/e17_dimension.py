"""E17 — the claims hold "in the Euclidean space of arbitrary dimension".

The paper states its model and lower bounds for arbitrary dimension and
proves the plane upper bound (the line gets a better constant).  This
experiment sweeps the dimension:

* MtC certified ratios (against the convex bracket) on random-walk
  workloads for d ∈ {1, 2, 3, 5, 8} — bounded and essentially flat in d;
* the Theorem-1 construction embedded in each dimension — the lower bound
  is dimension-independent (the construction lives on a line through the
  space), so measured ratios must match across d.

Declared as an orchestrator sweep: one walk cell and one Thm-1 cell per
dimension, all independent, so the dimension sweep fans out across
workers (the high-d convex bracket solves dominate the cost).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..adversaries import build_thm1
from ..analysis import (
    measure_adversarial_ratio_batch,
    measure_ratio_batch,
    measures_from_payload,
    measures_to_payload,
)
from ..workloads import RandomWalkWorkload
from .orchestrator import SweepSpec, WorkUnit, execute_spec
from .runner import ExperimentResult, scaled, seeded_instances, sweep_seeds

__all__ = ["build_spec", "finalize", "run"]

_MODULE = "repro.experiments.e17_dimension"
DIMS = [1, 2, 3, 5, 8]
_DELTA = 0.5


# -- cells -----------------------------------------------------------------


def cell_walk(dim: int, T: int, n_seeds: int, seed: int) -> dict:
    wl = RandomWalkWorkload(T, dim=dim, D=2.0, m=1.0, sigma=0.3,
                            spread=0.4, requests_per_step=4)
    measures = measure_ratio_batch(seeded_instances(wl, n_seeds, seed), "mtc",
                                   delta=_DELTA)
    return {"measures": measures_to_payload(measures)}


def cell_thm1(dim: int, n_seeds: int, seed: int) -> dict:
    mean_adv, per_seed = measure_adversarial_ratio_batch(
        lambda rng: build_thm1(1024, dim=dim, rng=rng), "mtc", 0.0,
        sweep_seeds(seed, n_seeds),
    )
    return {"mean": mean_adv, "per_seed": per_seed}


# -- spec ------------------------------------------------------------------


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    T = scaled(200, scale, minimum=60)
    n_seeds = scaled(3, scale, minimum=2)
    units: list[WorkUnit] = []
    for dim in DIMS:
        units.append(WorkUnit(
            key=f"walk/dim={dim}",
            fn=f"{_MODULE}:cell_walk",
            params={"dim": dim, "T": T, "n_seeds": n_seeds, "seed": seed},
        ))
        units.append(WorkUnit(
            key=f"thm1/dim={dim}",
            fn=f"{_MODULE}:cell_thm1",
            params={"dim": dim, "n_seeds": n_seeds, "seed": seed},
        ))
    return SweepSpec("E17", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    rows = []
    walk_ratios = {}
    thm1_ratios = {}
    for dim in DIMS:
        walk_measures = measures_from_payload(results[f"walk/dim={dim}"]["measures"])
        walk_ratios[dim] = float(np.mean([m.ratio_upper for m in walk_measures]))
        thm1_ratios[dim] = results[f"thm1/dim={dim}"]["mean"]
        rows.append([dim, walk_ratios[dim], thm1_ratios[dim]])

    walk_spread = max(walk_ratios.values()) / min(walk_ratios.values())
    thm1_spread = max(thm1_ratios.values()) / min(thm1_ratios.values())
    notes = [
        "criterion: certified MtC ratios bounded and near-flat across dimensions; "
        "the Thm-1 construction is dimension-invariant (it lives on one line)",
        f"walk-ratio spread across d: x{walk_spread:.2f}; thm1 spread: x{thm1_spread:.2f}",
    ]
    ok = walk_spread <= 2.0 and thm1_spread <= 1.05 and max(walk_ratios.values()) <= 10.0
    return ExperimentResult(
        experiment_id="E17",
        title="Arbitrary dimension: MtC ratios flat in d; Thm-1 bound dimension-invariant",
        headers=["dim", "MtC ratio (walk, certified)", "Thm-1 ratio (T=1024)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    return execute_spec(build_spec(scale, seed))
