"""E4 — Theorem 4 (line): MtC is O(1/δ)-competitive on ℝ¹.

Measures MtC's certified ratio (against the exact 1-D DP optimum) on
benign and adversarial line workloads across a δ sweep, and checks two
shapes:

* ratios are *bounded in T* (re-running with doubled T does not grow the
  ratio) — the qualitative content of Theorem 4;
* ``ratio * δ`` stays bounded across the δ sweep on the adversarial
  workload — the O(1/δ) envelope.
"""

from __future__ import annotations

import numpy as np

from ..adversaries import build_thm2
from ..algorithms import MoveToCenter
from ..analysis import measure_adversarial_ratio_batch, measure_ratio, measure_ratio_batch
from ..workloads import DriftWorkload, RandomWalkWorkload
from .runner import ExperimentResult, scaled, seeded_instances

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    deltas = [1.0, 0.5, 0.25, 0.125]
    T = scaled(400, scale, minimum=100)
    n_seeds = scaled(4, scale, minimum=2)
    seeds = [seed * 100 + s for s in range(n_seeds)]
    rows = []
    envelope = []
    for delta in deltas:
        # Benign workloads: all seeds in one lock-step engine pass, each
        # certified against its DP bracket.
        for name, wl in (
            ("random-walk", RandomWalkWorkload(T, dim=1, D=2.0, m=1.0, sigma=0.3,
                                               spread=0.4, requests_per_step=4)),
            ("drift", DriftWorkload(T, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.2,
                                    requests_per_step=4)),
        ):
            measures = measure_ratio_batch(seeded_instances(wl, n_seeds, seed), "mtc",
                                           delta=delta)
            ratios = [m.ratio_upper for m in measures]
            rows.append([name, delta, float(np.mean(ratios)), float(np.mean(ratios)) * delta])
        # Adversarial workload (Thm 2 construction at this delta), batched
        # over construction seeds.
        mean_adv, _ = measure_adversarial_ratio_batch(
            lambda rng: build_thm2(delta, cycles=3, rng=rng), "mtc", delta, seeds
        )
        rows.append(["thm2-adversarial", delta, mean_adv, mean_adv * delta])
        envelope.append(mean_adv * delta)

    # Boundedness in T: double T at the middle delta.
    delta0 = 0.25
    wl_s = DriftWorkload(T, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.2, requests_per_step=4)
    wl_l = DriftWorkload(2 * T, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.2, requests_per_step=4)
    r_small = measure_ratio(wl_s.generate(np.random.default_rng(seed)), MoveToCenter(),
                            delta=delta0).ratio_upper
    r_large = measure_ratio(wl_l.generate(np.random.default_rng(seed)), MoveToCenter(),
                            delta=delta0).ratio_upper
    notes = [
        "criterion: MtC ratio bounded independent of T; ratio * delta bounded over delta sweep (Thm 4, line)",
        f"T-independence at delta={delta0}: ratio(T={T}) = {r_small:.2f} vs ratio(T={2 * T}) = {r_large:.2f}",
        f"adversarial envelope ratio*delta over deltas: min {min(envelope):.2f}, max {max(envelope):.2f}",
    ]
    ok = r_large <= r_small * 1.5 + 0.5 and max(envelope) <= 10.0 * max(min(envelope), 0.1)
    return ExperimentResult(
        experiment_id="E4",
        title="Thm 4 (line): MtC O(1/delta)-competitive with (1+delta)m augmentation",
        headers=["workload", "delta", "ratio(MtC)", "ratio*delta"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
