"""E4 — Theorem 4 (line): MtC is O(1/δ)-competitive on ℝ¹.

Measures MtC's certified ratio (against the exact 1-D DP optimum) on
benign and adversarial line workloads across a δ sweep, and checks two
shapes:

* ratios are *bounded in T* (re-running with doubled T does not grow the
  ratio) — the qualitative content of Theorem 4;
* ``ratio * δ`` stays bounded across the δ sweep on the adversarial
  workload — the O(1/δ) envelope.

Declared as an :class:`~repro.api.ExperimentSpec` with hand-built
function cells (the δ sweep shares the offline DP brackets through
explicit cell deps, which :func:`~repro.api.cell_grid` does not express):
the brackets are computed once per benign workload and consumed by all
four δ simulation cells, instead of being re-solved per δ as the old
sequential loop did.  The ``e4/mtc-line`` reducer folds the payloads
into the table.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ..adversaries import build_thm2
from ..algorithms import MoveToCenter
from ..analysis import (
    measure_adversarial_ratio_batch,
    measure_ratio,
    measure_ratio_batch,
    measures_from_payload,
    measures_to_payload,
)
from ..api import CellSpec, ExperimentSpec, Reduction, register_reducer
from ..offline import bracket_optimum
from ..workloads import DriftWorkload, RandomWalkWorkload
from .runner import ExperimentResult, scaled, seeded_instances, sweep_seeds

__all__ = ["build_spec", "run", "spec"]

_MODULE = "repro.experiments.e4_mtc_line"
DELTAS = [1.0, 0.5, 0.25, 0.125]
WORKLOADS = ["random-walk", "drift"]
DELTA0 = 0.25


def _workload(name: str, T: int):
    if name == "random-walk":
        return RandomWalkWorkload(T, dim=1, D=2.0, m=1.0, sigma=0.3,
                                  spread=0.4, requests_per_step=4)
    if name == "drift":
        return DriftWorkload(T, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.2,
                             requests_per_step=4)
    raise KeyError(f"unknown E4 workload {name!r}")


# -- cells -----------------------------------------------------------------


def cell_brackets(workload: str, T: int, n_seeds: int, seed: int) -> dict:
    """Exact DP brackets of the benign instances, shared across the δ sweep."""
    instances = seeded_instances(_workload(workload, T), n_seeds, seed)
    return {"brackets": [bracket_optimum(inst).as_payload() for inst in instances]}


def cell_benign(workload: str, delta: float, T: int, n_seeds: int, seed: int,
                deps: Mapping[str, Any]) -> dict:
    from ..offline.bounds import OptBracket

    instances = seeded_instances(_workload(workload, T), n_seeds, seed)
    brackets = [OptBracket.from_payload(p) for p in deps[f"brackets/{workload}"]["brackets"]]
    measures = measure_ratio_batch(instances, "mtc", delta=delta, brackets=brackets)
    return {"measures": measures_to_payload(measures)}


def cell_adversarial(delta: float, n_seeds: int, seed: int) -> dict:
    mean_adv, per_seed = measure_adversarial_ratio_batch(
        lambda rng: build_thm2(delta, cycles=3, rng=rng), "mtc", delta,
        sweep_seeds(seed, n_seeds),
    )
    return {"mean": mean_adv, "per_seed": per_seed}


def cell_t_doubling(T: int, delta0: float, seed: int) -> dict:
    """Boundedness in T: double T at the middle delta."""
    wl_s = DriftWorkload(T, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.2, requests_per_step=4)
    wl_l = DriftWorkload(2 * T, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.2, requests_per_step=4)
    r_small = measure_ratio(wl_s.generate(np.random.default_rng(seed)), MoveToCenter(),
                            delta=delta0).ratio_upper
    r_large = measure_ratio(wl_l.generate(np.random.default_rng(seed)), MoveToCenter(),
                            delta=delta0).ratio_upper
    return {"r_small": r_small, "r_large": r_large}


# -- reducer ---------------------------------------------------------------


@register_reducer("e4/mtc-line",
                  "benign + adversarial ratio table, O(1/delta) envelope, T-doubling check")
def _reduce(cells: Mapping[str, Any], *, points, config, scale: float,
            seed: int) -> Reduction:
    T = scaled(400, scale, minimum=100)
    rows = []
    envelope = []
    for delta in DELTAS:
        for workload in WORKLOADS:
            measures = measures_from_payload(cells[f"benign/{workload}/delta={delta}"]["measures"])
            ratios = [m.ratio_upper for m in measures]
            rows.append([workload, delta, float(np.mean(ratios)), float(np.mean(ratios)) * delta])
        mean_adv = cells[f"adversarial/delta={delta}"]["mean"]
        rows.append(["thm2-adversarial", delta, mean_adv, mean_adv * delta])
        envelope.append(mean_adv * delta)

    doubling = cells["t-doubling"]
    r_small, r_large = doubling["r_small"], doubling["r_large"]
    notes = [
        "criterion: MtC ratio bounded independent of T; ratio * delta bounded over delta sweep (Thm 4, line)",
        f"T-independence at delta={DELTA0}: ratio(T={T}) = {r_small:.2f} vs ratio(T={2 * T}) = {r_large:.2f}",
        f"adversarial envelope ratio*delta over deltas: min {min(envelope):.2f}, max {max(envelope):.2f}",
    ]
    ok = r_large <= r_small * 1.5 + 0.5 and max(envelope) <= 10.0 * max(min(envelope), 0.1)
    return Reduction(rows=rows, notes=notes, passed=ok)


# -- spec ------------------------------------------------------------------


def spec(scale: float = 1.0, seed: int = 0) -> ExperimentSpec:
    T = scaled(400, scale, minimum=100)
    n_seeds = scaled(4, scale, minimum=2)
    cells: list[CellSpec] = []
    for workload in WORKLOADS:
        cells.append(CellSpec(
            key=f"brackets/{workload}",
            fn=f"{_MODULE}:cell_brackets",
            params={"workload": workload, "T": T, "n_seeds": n_seeds, "seed": seed},
        ))
    for delta in DELTAS:
        for workload in WORKLOADS:
            cells.append(CellSpec(
                key=f"benign/{workload}/delta={delta}",
                fn=f"{_MODULE}:cell_benign",
                params={"workload": workload, "delta": delta, "T": T,
                        "n_seeds": n_seeds, "seed": seed},
                point={"workload": workload, "delta": delta},
                deps=(f"brackets/{workload}",),
            ))
    for delta in DELTAS:
        cells.append(CellSpec(
            key=f"adversarial/delta={delta}",
            fn=f"{_MODULE}:cell_adversarial",
            params={"delta": delta, "n_seeds": n_seeds, "seed": seed},
            point={"delta": delta},
        ))
    cells.append(CellSpec(
        key="t-doubling",
        fn=f"{_MODULE}:cell_t_doubling",
        params={"T": T, "delta0": DELTA0, "seed": seed},
    ))
    return ExperimentSpec(
        experiment_id="E4",
        title="Thm 4 (line): MtC O(1/delta)-competitive with (1+delta)m augmentation",
        headers=["workload", "delta", "ratio(MtC)", "ratio*delta"],
        reducer="e4/mtc-line",
        cells=tuple(cells),
        scale=scale, seed=seed,
    )


def build_spec(scale: float = 1.0, seed: int = 0):
    return spec(scale, seed).to_sweep()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e4_mtc_line.run() is deprecated; E4 is declared as an "
        "ExperimentSpec — use spec(scale, seed).run() or repro.experiments.run_all(['E4'])",
        DeprecationWarning, stacklevel=2,
    )
    return spec(scale, seed).run()
