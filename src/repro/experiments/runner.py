"""Experiment harness plumbing.

Every experiment module exposes ``run(scale=1.0, seed=0) -> ExperimentResult``.
``scale`` shrinks/grows the workload sizes so the same code serves both the
benchmark suite (fast, ``scale<=1``) and full CLI runs; ``seed`` makes the
whole experiment deterministic.

Seed sweeps dispatch through the batched engine: :func:`seeded_instances`
materializes the per-seed instances of a workload (same derivation
``default_rng(seed * stride + s)`` the scalar loops used) and the
experiments hand the whole list to
:func:`repro.analysis.ratio.measure_ratio_batch` /
:func:`repro.core.engine.simulate_batch`, so one lock-step engine pass
replaces ``n_seeds`` Python simulation loops.

Results carry the rendered table plus free-form notes in which each
experiment states the *reproduction criterion* (the shape the paper
predicts) and whether the run met it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..analysis.tables import render_table, to_csv
from ..core.store import load_payload, save_payload

if TYPE_CHECKING:  # pragma: no cover - import only for type hints
    from ..core.instance import MSPInstance
    from ..workloads.base import WorkloadGenerator

__all__ = ["ExperimentResult", "scaled", "seeded_instances", "sweep_seeds"]


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    Attributes
    ----------
    experiment_id:
        Short id (``"E1"``, ..., matching DESIGN.md's index).
    title:
        Human-readable description including the theorem reproduced.
    headers, rows:
        The regenerated table.
    notes:
        Reproduction criterion, fitted exponents, pass/fail remarks.
    passed:
        Whether the run met the paper's predicted shape.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]]
    notes: list[str] = field(default_factory=list)
    passed: bool = True

    def render(self, precision: int = 3) -> str:
        txt = render_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}",
                           precision=precision)
        if self.notes:
            txt += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        txt += f"\n  reproduced: {'YES' if self.passed else 'NO'}"
        return txt

    def csv(self) -> str:
        return to_csv(self.headers, self.rows)

    # -- exact persistence -------------------------------------------------

    def as_payload(self) -> dict[str, Any]:
        """A store-compatible payload preserving every value exactly.

        Rows may mix strings, ints and floats (NumPy scalars are converted
        losslessly); :meth:`from_payload` reconstructs a result whose
        rendered table is byte-identical.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
            "passed": bool(self.passed),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ExperimentResult":
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=payload["headers"],
            rows=payload["rows"],
            notes=payload["notes"],
            passed=payload["passed"],
        )

    def save(self, path: str | Path) -> Path:
        """Write this result as one ``.npz`` archive (exact round-trip)."""
        return save_payload(path, self.as_payload(), extra_meta={"kind": "experiment-result"})

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        """Read a result written by :meth:`save`."""
        return cls.from_payload(load_payload(path))


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer workload parameter, keeping a sane floor."""
    return max(minimum, int(round(value * scale)))


def sweep_seeds(seed: int, n: int, stride: int = 100) -> list[int]:
    """The canonical per-cell seed derivation: ``seed * stride + s``.

    Every experiment routes its seed sweeps through this helper (directly
    or via :func:`seeded_instances`), so the derivation lives in exactly
    one place and a sweep's seed list doubles as part of its work-unit
    identity in the orchestrator's results store.
    """
    return [seed * stride + s for s in range(n)]


def seeded_instances(
    workload: "WorkloadGenerator",
    n_seeds: int,
    seed: int,
    stride: int = 100,
) -> list["MSPInstance"]:
    """One instance per sweep seed, ready for a lock-step batched run.

    Reproduces the experiments' historical seed derivation
    (:func:`sweep_seeds`), so a batched sweep sees exactly the instances
    the scalar per-seed loop generated.
    """
    return [
        workload.generate(np.random.default_rng(s))
        for s in sweep_seeds(seed, n_seeds, stride)
    ]
