"""E11 — the potential-function argument of Sections 4.1/4.2, per step.

Runs MtC on co-located-request instances (the regime the per-step proof
addresses after Lemma 5), computes the exact DP trajectory as the
reference, and evaluates the paper's potential φ along both: every step's
amortised cost :math:`C_{Alg} + \\Delta\\phi` is divided by that step's
:math:`C_{Opt}`.

Reproduction criteria:

* zero steps with positive amortised cost but zero OPT cost;
* the max per-step constant ``K`` stays bounded, and its growth across the
  δ sweep is compatible with the O(1/δ) (line) envelope;
* both ``r > D`` and ``r <= D`` branches of the potential are exercised.
"""

from __future__ import annotations

import numpy as np

from ..algorithms import MoveToCenter
from ..analysis import collapse_to_centers, verify_potential_argument
from ..core.simulator import simulate
from ..offline import solve_line
from ..workloads import DriftWorkload
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    T = scaled(250, scale, minimum=80)
    deltas = [1.0, 0.5, 0.25]
    configs = [
        ("r>D", 6, 2.0),   # r=6 requests, D=2
        ("r<=D", 2, 6.0),  # r=2 requests, D=6
    ]
    rows = []
    ok = True
    for regime, r, D in configs:
        for delta in deltas:
            max_ks = []
            q95s = []
            violations = 0
            amort = []
            for cell_seed in sweep_seeds(seed, scaled(3, scale, minimum=2)):
                wl = DriftWorkload(T, dim=1, D=D, m=1.0, speed=0.75, spread=0.3,
                                   requests_per_step=r)
                inst = collapse_to_centers(wl.generate(np.random.default_rng(cell_seed)))
                tr = simulate(inst, MoveToCenter(), delta=delta)
                dp = solve_line(inst, grid_size=None)
                rep = verify_potential_argument(inst, tr, dp.positions, delta)
                max_ks.append(rep.max_k)
                q95s.append(rep.k_quantile(0.95))
                violations += len(rep.violations)
                amort.append(rep.amortised_ratio)
            rows.append([regime, delta, float(np.mean(max_ks)), float(np.mean(q95s)),
                         violations, float(np.mean(amort))])
            if violations:
                ok = False
    notes = [
        "criterion: no steps with positive amortised cost at zero OPT cost; "
        "per-step K bounded with an O(1/delta)-compatible envelope (Sections 4.1/4.2)",
        "amortised_ratio = (C_Alg + phi_T - phi_0) / C_Opt — the telescoped Theorem-4 bound",
    ]
    # Envelope sanity: K at the smallest delta should not exceed ~(1/delta) x K at delta=1.
    for regime, _, _ in configs:
        k1 = [row[2] for row in rows if row[0] == regime and row[1] == 1.0][0]
        ks = [row[2] for row in rows if row[0] == regime and row[1] == deltas[-1]][0]
        limit = (1.0 / deltas[-1]) * max(k1, 1.0) * 4.0
        notes.append(f"{regime}: max K grows {k1:.2f} -> {ks:.2f} over delta 1 -> {deltas[-1]:g} "
                     f"(envelope limit {limit:.1f})")
        if ks > limit:
            ok = False
    return ExperimentResult(
        experiment_id="E11",
        title="Potential argument: per-step C_Alg + dPhi <= K * C_Opt along MtC vs DP-OPT",
        headers=["regime", "delta", "max K", "K q95", "violations", "amortised ratio"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
