"""E11 — the potential-function argument of Sections 4.1/4.2, per step.

Runs MtC on co-located-request instances (the regime the per-step proof
addresses after Lemma 5), computes the exact DP trajectory as the
reference, and evaluates the paper's potential φ along both: every step's
amortised cost :math:`C_{Alg} + \\Delta\\phi` is divided by that step's
:math:`C_{Opt}`.

Reproduction criteria:

* zero steps with positive amortised cost but zero OPT cost;
* the max per-step constant ``K`` stays bounded, and its growth across the
  δ sweep is compatible with the O(1/δ) (line) envelope;
* both ``r > D`` and ``r <= D`` branches of the potential are exercised.

Declared as an :class:`~repro.api.ExperimentSpec`: one function cell per
(regime, δ, seed) grid point, folded by the ``e11/potential`` reducer
(per-(regime, δ) means plus the envelope check).
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ..algorithms import MoveToCenter
from ..analysis import collapse_to_centers, verify_potential_argument
from ..api import ExperimentSpec, Reduction, cell_grid, register_reducer
from ..core.simulator import simulate
from ..offline import solve_line
from ..workloads import DriftWorkload
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "cell_potential", "run", "spec"]

_MODULE = "repro.experiments.e11_potential"
DELTAS = [1.0, 0.5, 0.25]
#: regime label → (requests per step, D)
REGIMES = {"r>D": (6, 2.0), "r<=D": (2, 6.0)}


def cell_potential(regime: str, delta: float, cell_seed: int, T: int) -> dict:
    """Potential trace of one MtC run against the exact DP trajectory."""
    r, D = REGIMES[regime]
    wl = DriftWorkload(T, dim=1, D=D, m=1.0, speed=0.75, spread=0.3,
                       requests_per_step=r)
    inst = collapse_to_centers(wl.generate(np.random.default_rng(cell_seed)))
    tr = simulate(inst, MoveToCenter(), delta=delta)
    dp = solve_line(inst, grid_size=None)
    rep = verify_potential_argument(inst, tr, dp.positions, delta)
    return {
        "max_k": rep.max_k,
        "q95": rep.k_quantile(0.95),
        "violations": len(rep.violations),
        "amort": rep.amortised_ratio,
    }


@register_reducer("e11/potential", "per-(regime, delta) potential summary + O(1/delta) envelope")
def _reduce(cells: Mapping[str, Any], *, points, config, scale: float,
            seed: int) -> Reduction:
    # Group the per-seed cells by (regime, delta), preserving grid order.
    groups: dict[tuple, list[Any]] = {}
    for key, point in points:
        groups.setdefault((point["regime"], point["delta"]), []).append(cells[key])
    rows = []
    ok = True
    for (regime, delta), payloads in groups.items():
        violations = sum(c["violations"] for c in payloads)
        rows.append([regime, delta,
                     float(np.mean([c["max_k"] for c in payloads])),
                     float(np.mean([c["q95"] for c in payloads])),
                     violations,
                     float(np.mean([c["amort"] for c in payloads]))])
        if violations:
            ok = False
    notes = [
        "criterion: no steps with positive amortised cost at zero OPT cost; "
        "per-step K bounded with an O(1/delta)-compatible envelope (Sections 4.1/4.2)",
        "amortised_ratio = (C_Alg + phi_T - phi_0) / C_Opt — the telescoped Theorem-4 bound",
    ]
    # Envelope sanity: K at the smallest delta should not exceed ~(1/delta) x K at delta=1.
    for regime in REGIMES:
        k1 = [row[2] for row in rows if row[0] == regime and row[1] == 1.0][0]
        ks = [row[2] for row in rows if row[0] == regime and row[1] == DELTAS[-1]][0]
        limit = (1.0 / DELTAS[-1]) * max(k1, 1.0) * 4.0
        notes.append(f"{regime}: max K grows {k1:.2f} -> {ks:.2f} over delta 1 -> {DELTAS[-1]:g} "
                     f"(envelope limit {limit:.1f})")
        if ks > limit:
            ok = False
    return Reduction(rows=rows, notes=notes, passed=ok)


def spec(scale: float = 1.0, seed: int = 0) -> ExperimentSpec:
    T = scaled(250, scale, minimum=80)
    n_seeds = scaled(3, scale, minimum=2)
    return ExperimentSpec(
        experiment_id="E11",
        title="Potential argument: per-step C_Alg + dPhi <= K * C_Opt along MtC vs DP-OPT",
        headers=["regime", "delta", "max K", "K q95", "violations", "amortised ratio"],
        reducer="e11/potential",
        cells=cell_grid(f"{_MODULE}:cell_potential",
                        axes={"regime": list(REGIMES), "delta": DELTAS,
                              "cell_seed": sweep_seeds(seed, n_seeds)},
                        common={"T": T}),
        scale=scale, seed=seed,
    )


def build_spec(scale: float = 1.0, seed: int = 0):
    return spec(scale, seed).to_sweep()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e11_potential.run() is deprecated; E11 is declared as an "
        "ExperimentSpec — use spec(scale, seed).run() or repro.experiments.run_all(['E11'])",
        DeprecationWarning, stacklevel=2,
    )
    return spec(scale, seed).run()
