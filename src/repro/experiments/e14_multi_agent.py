"""E14 (extension) — multiple moving clients (Section 5's remark).

Generates ``k`` independent random-waypoint agents, runs the generalised
multi-agent MtC without augmentation in the ``m_server = m_agent`` regime,
and certifies the ratio against the 1-D DP (agents patrol a line).  The
Theorem-10 dichotomy should survive:

* flat, O(1)-looking certified ratios across ``T`` for every ``k``;
* divergence the moment one agent is faster (Theorem-8 construction with
  ``k - 1`` idle extra agents at the origin).
"""

from __future__ import annotations

import numpy as np

from ..adversaries import build_thm8
from ..core.simulator import simulate
from ..extensions import MultiAgentInstance, MultiAgentMtC
from ..offline import solve_line
from ..workloads import random_waypoint_path
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def _patrol_instance(T: int, k: int, D: float, rng: np.random.Generator) -> MultiAgentInstance:
    paths = np.stack(
        [random_waypoint_path(T, dim=1, speed=1.0, rng=rng, arena=15.0) for _ in range(k)],
        axis=1,
    )
    return MultiAgentInstance(agent_paths=paths, start=np.zeros(1), D=D,
                              m_server=1.0, m_agent=1.0)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    D = 4.0
    ks = [1, 2, 4]
    Ts = [150, 300, 600]
    n_seeds = scaled(3, scale, minimum=2)
    rows = []
    ok = True
    flat = {}
    for k in ks:
        means = []
        for T in Ts:
            ratios = []
            for cell_seed in sweep_seeds(seed, n_seeds):
                ma = _patrol_instance(scaled(T, scale, minimum=50), k, D,
                                      np.random.default_rng(cell_seed))
                inst = ma.as_msp()
                tr = simulate(inst, MultiAgentMtC(n_agents=k), delta=0.0)
                dp = solve_line(inst)
                ratios.append(tr.total_cost / max(dp.lower_bound, 1e-12))
            mean = float(np.mean(ratios))
            means.append(mean)
            rows.append([k, T, mean])
        flat[k] = max(means) / max(min(means), 1e-12)
        if flat[k] > 2.0 or max(means) > 40.0:
            ok = False

    # Faster-agent contrast (one sprinting agent, k-1 idle at origin).
    for T in (512, 4096):
        adv = build_thm8(scaled(T, scale, minimum=64), epsilon=1.0,
                         rng=np.random.default_rng(seed))
        tr = simulate(adv.instance, MultiAgentMtC(n_agents=1), delta=0.0)
        rows.append(["1 (eps=1 sprint)", adv.params["T"], adv.ratio_of(tr.total_cost)])

    notes = [
        "criterion: with m_server >= m_agent the multi-agent MtC keeps flat O(1) certified "
        "ratios for every k, without augmentation (Section 5, multiple agents)",
    ] + [f"k={k}: max/min ratio across T = {v:.2f}" for k, v in flat.items()]
    return ExperimentResult(
        experiment_id="E14",
        title="Extension: multiple moving clients — Thm 10's dichotomy survives k agents",
        headers=["k agents", "T", "certified ratio"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
