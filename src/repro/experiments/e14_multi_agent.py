"""E14 (extension) — multiple moving clients (Section 5's remark).

Generates ``k`` independent random-waypoint agents, runs the generalised
multi-agent MtC without augmentation in the ``m_server = m_agent`` regime,
and certifies the ratio against the 1-D DP (agents patrol a line).  The
Theorem-10 dichotomy should survive:

* flat, O(1)-looking certified ratios across ``T`` for every ``k``;
* divergence the moment one agent is faster (Theorem-8 construction with
  ``k - 1`` idle extra agents at the origin).

Declared as an :class:`~repro.api.ExperimentSpec`: a (k, T, seed) patrol
grid plus two sprint-contrast cells, folded by the ``e14/multi-agent``
reducer (per-(k, T) means, flatness check, contrast rows).
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ..adversaries import build_thm8
from ..api import ExperimentSpec, Reduction, cell_grid, register_reducer
from ..core.simulator import simulate
from ..extensions import MultiAgentInstance, MultiAgentMtC
from ..offline import solve_line
from ..workloads import random_waypoint_path
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "cell_patrol", "cell_sprint", "run", "spec"]

_MODULE = "repro.experiments.e14_multi_agent"
D = 4.0
KS = [1, 2, 4]
TS = [150, 300, 600]
SPRINT_TS = [512, 4096]


def _patrol_instance(T: int, k: int, D: float, rng: np.random.Generator) -> MultiAgentInstance:
    paths = np.stack(
        [random_waypoint_path(T, dim=1, speed=1.0, rng=rng, arena=15.0) for _ in range(k)],
        axis=1,
    )
    return MultiAgentInstance(agent_paths=paths, start=np.zeros(1), D=D,
                              m_server=1.0, m_agent=1.0)


def cell_patrol(k: int, T: int, T_eff: int, cell_seed: int) -> dict:
    """Certified ratio of one k-agent patrol instance."""
    ma = _patrol_instance(T_eff, k, D, np.random.default_rng(cell_seed))
    inst = ma.as_msp()
    tr = simulate(inst, MultiAgentMtC(n_agents=k), delta=0.0)
    dp = solve_line(inst)
    return {"ratio": tr.total_cost / max(dp.lower_bound, 1e-12)}


def cell_sprint(T: int, T_eff: int, seed: int, epsilon: float) -> dict:
    """Faster-agent contrast: Thm-8 sprint with k-1 idle agents."""
    adv = build_thm8(T_eff, epsilon=epsilon, rng=np.random.default_rng(seed))
    tr = simulate(adv.instance, MultiAgentMtC(n_agents=1), delta=0.0)
    return {"T_adv": adv.params["T"], "ratio": adv.ratio_of(tr.total_cost)}


@register_reducer("e14/multi-agent", "per-(k, T) mean ratios + flatness check + sprint contrast")
def _reduce(cells: Mapping[str, Any], *, points, config, scale: float,
            seed: int) -> Reduction:
    patrol: dict[tuple, list[float]] = {}
    sprints: list[str] = []
    for key, point in points:
        if key.startswith("sprint/"):
            sprints.append(key)
        else:
            patrol.setdefault((point["k"], point["T"]), []).append(cells[key]["ratio"])
    rows: list[list[Any]] = []
    ok = True
    flat = {}
    for k in KS:
        means = []
        for T in TS:
            mean = float(np.mean(patrol[(k, T)]))
            means.append(mean)
            rows.append([k, T, mean])
        flat[k] = max(means) / max(min(means), 1e-12)
        if flat[k] > 2.0 or max(means) > 40.0:
            ok = False
    for key in sprints:
        rows.append(["1 (eps=1 sprint)", cells[key]["T_adv"], cells[key]["ratio"]])
    notes = [
        "criterion: with m_server >= m_agent the multi-agent MtC keeps flat O(1) certified "
        "ratios for every k, without augmentation (Section 5, multiple agents)",
    ] + [f"k={k}: max/min ratio across T = {v:.2f}" for k, v in flat.items()]
    return Reduction(rows=rows, notes=notes, passed=ok)


def spec(scale: float = 1.0, seed: int = 0) -> ExperimentSpec:
    n_seeds = scaled(3, scale, minimum=2)
    cells = cell_grid(
        f"{_MODULE}:cell_patrol",
        axes={"k": KS, "T": TS, "cell_seed": sweep_seeds(seed, n_seeds)},
        derive={"T_eff": lambda p: scaled(p["T"], scale, minimum=50)},
        prefix="patrol",
    ) + cell_grid(
        f"{_MODULE}:cell_sprint",
        axes={"T": SPRINT_TS},
        common={"seed": seed, "epsilon": 1.0},
        derive={"T_eff": lambda p: scaled(p["T"], scale, minimum=64)},
        prefix="sprint",
    )
    return ExperimentSpec(
        experiment_id="E14",
        title="Extension: multiple moving clients — Thm 10's dichotomy survives k agents",
        headers=["k agents", "T", "certified ratio"],
        reducer="e14/multi-agent",
        cells=cells,
        scale=scale, seed=seed,
    )


def build_spec(scale: float = 1.0, seed: int = 0):
    return spec(scale, seed).to_sweep()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e14_multi_agent.run() is deprecated; E14 is declared as an "
        "ExperimentSpec — use spec(scale, seed).run() or repro.experiments.run_all(['E14'])",
        DeprecationWarning, stacklevel=2,
    )
    return spec(scale, seed).run()
