"""E8 — Theorem 10 / Corollary 9: MtC is O(1) for m_s ≥ m_a, no augmentation.

Runs the moving-client MtC on random-waypoint patrol agents for a sweep of
``T`` in two regimes:

* ``m_s = m_a`` (Theorem 10): certified ratio must stay *flat* in T;
* ``m_a = 2 m_s`` (contrast, Theorem 8's regime): on the adversarial
  construction the ratio diverges — shown side by side.

OPT is bracketed by the exact 1-D DP (agents patrol a line here so the
certificate is tight); a 2-D spot row uses the convex bracket.

Declared as an :class:`~repro.api.ExperimentSpec` with hand-built
function cells — one per (regime, T) plus the 2-D spot check, all
independent, so the T sweep parallelizes across workers.  The cells take
pre-scaled horizons (``T_wl``/``T_steps``) rather than axis values, which
:func:`~repro.api.cell_grid` would forward verbatim; the
``e8/moving-client`` reducer folds the payloads into the table.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ..adversaries import build_thm8
from ..algorithms import MovingClientMtC
from ..analysis import measure_adversarial_ratio_batch
from ..api import CellSpec, ExperimentSpec, Reduction, register_reducer
from ..core.engine import simulate_batch
from ..core.simulator import simulate
from ..offline import bracket_optimum
from ..workloads import PatrolAgentWorkload
from .runner import ExperimentResult, scaled, seeded_instances, sweep_seeds

__all__ = ["build_spec", "run", "spec"]

_MODULE = "repro.experiments.e8_moving_client_mtc"
TS = [200, 400, 800]
D = 4.0


# -- cells -----------------------------------------------------------------


def cell_patrol(T_wl: int, n_seeds: int, seed: int) -> dict:
    """The O(1) regime: equal speeds, certified against the 1-D DP."""
    wl = PatrolAgentWorkload(T_wl, dim=1, D=D, m_server=1.0, m_agent=1.0, arena=20.0)
    insts = [mc.as_msp() for mc in seeded_instances(wl, n_seeds, seed)]
    costs = simulate_batch(insts, "mtc-moving-client", delta=0.0).total_costs
    ratios = [
        float(cost) / max(bracket_optimum(inst, grid_size=768).lower, 1e-12)
        for inst, cost in zip(insts, costs)
    ]
    return {"ratios": np.array(ratios, dtype=np.float64)}


def cell_thm8(T_steps: int, n_seeds: int, seed: int) -> dict:
    """Contrast: the faster-agent adversarial regime diverges."""
    mean_adv, per_seed = measure_adversarial_ratio_batch(
        lambda rng: build_thm8(T_steps, epsilon=1.0, rng=rng),
        "mtc-moving-client", 0.0, sweep_seeds(seed, n_seeds),
    )
    return {"mean": mean_adv, "per_seed": per_seed}


def cell_spot_2d(T_wl: int, seed: int) -> dict:
    """2-D spot check of the O(1) regime."""
    wl2 = PatrolAgentWorkload(T_wl, dim=2, D=D, m_server=1.0, m_agent=1.0, arena=15.0)
    mc2 = wl2.generate(np.random.default_rng(seed))
    inst2 = mc2.as_msp()
    tr2 = simulate(inst2, MovingClientMtC(), delta=0.0)
    br2 = bracket_optimum(inst2)
    return {"ratio": tr2.total_cost / max(br2.lower, 1e-12), "T": wl2.T}


# -- reducer ---------------------------------------------------------------


@register_reducer("e8/moving-client",
                  "patrol-vs-thm8 ratio table + flatness-in-T criterion")
def _reduce(cells: Mapping[str, Any], *, points, config, scale: float,
            seed: int) -> Reduction:
    rows = []
    flat_ratios = []
    for T in TS:
        mean = float(np.mean(cells[f"patrol/T={T}"]["ratios"]))
        rows.append(["patrol (ms=ma)", T, mean])
        flat_ratios.append(mean)
    for T in TS:
        rows.append(["thm8 (ma=2ms)", T * 4, cells[f"thm8/T={T}"]["mean"]])
    spot = cells["spot-2d"]
    rows.append(["patrol-2d (ms=ma)", spot["T"], spot["ratio"]])

    spread = max(flat_ratios) / max(min(flat_ratios), 1e-12)
    notes = [
        "criterion: with m_s >= m_a the certified ratio is O(1) and flat in T, "
        "no augmentation needed (Thm 10 / Cor 9); with a faster agent it diverges (Thm 8)",
        f"flatness of the ms=ma rows: max/min ratio across T = {spread:.2f}",
    ]
    ok = spread <= 2.0 and max(flat_ratios) <= 40.0
    return Reduction(rows=rows, notes=notes, passed=ok)


# -- spec ------------------------------------------------------------------


def spec(scale: float = 1.0, seed: int = 0) -> ExperimentSpec:
    n_seeds = scaled(4, scale, minimum=2)
    cells: list[CellSpec] = []
    for T in TS:
        cells.append(CellSpec(
            key=f"patrol/T={T}",
            fn=f"{_MODULE}:cell_patrol",
            params={"T_wl": scaled(T, scale, minimum=50), "n_seeds": n_seeds, "seed": seed},
            point={"T": T},
        ))
    for T in TS:
        cells.append(CellSpec(
            key=f"thm8/T={T}",
            fn=f"{_MODULE}:cell_thm8",
            params={"T_steps": scaled(T, scale, minimum=64) * 4, "n_seeds": n_seeds,
                    "seed": seed},
            point={"T": T},
        ))
    cells.append(CellSpec(
        key="spot-2d",
        fn=f"{_MODULE}:cell_spot_2d",
        params={"T_wl": scaled(200, scale, minimum=50), "seed": seed},
    ))
    return ExperimentSpec(
        experiment_id="E8",
        title="Thm 10: moving-client MtC is O(1)-competitive when the server is as fast",
        headers=["regime", "T", "certified ratio"],
        reducer="e8/moving-client",
        cells=tuple(cells),
        scale=scale, seed=seed,
    )


def build_spec(scale: float = 1.0, seed: int = 0):
    return spec(scale, seed).to_sweep()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e8_moving_client_mtc.run() is deprecated; E8 is declared "
        "as an ExperimentSpec — use spec(scale, seed).run() or "
        "repro.experiments.run_all(['E8'])",
        DeprecationWarning, stacklevel=2,
    )
    return spec(scale, seed).run()
