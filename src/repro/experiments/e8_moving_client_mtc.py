"""E8 — Theorem 10 / Corollary 9: MtC is O(1) for m_s ≥ m_a, no augmentation.

Runs the moving-client MtC on random-waypoint patrol agents for a sweep of
``T`` in two regimes:

* ``m_s = m_a`` (Theorem 10): certified ratio must stay *flat* in T;
* ``m_a = 2 m_s`` (contrast, Theorem 8's regime): on the adversarial
  construction the ratio diverges — shown side by side.

OPT is bracketed by the exact 1-D DP (agents patrol a line here so the
certificate is tight); a 2-D spot row uses the convex bracket.
"""

from __future__ import annotations

import numpy as np

from ..adversaries import build_thm8
from ..algorithms import MovingClientMtC
from ..analysis import measure_adversarial_ratio_batch
from ..core.engine import simulate_batch
from ..core.simulator import simulate
from ..offline import bracket_optimum
from ..workloads import PatrolAgentWorkload
from .runner import ExperimentResult, scaled, seeded_instances

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    Ts = [200, 400, 800]
    D = 4.0
    n_seeds = scaled(4, scale, minimum=2)
    seeds = [seed * 100 + s for s in range(n_seeds)]
    rows = []
    flat_ratios = []
    for T in Ts:
        wl = PatrolAgentWorkload(scaled(T, scale, minimum=50), dim=1, D=D,
                                 m_server=1.0, m_agent=1.0, arena=20.0)
        insts = [mc.as_msp() for mc in seeded_instances(wl, n_seeds, seed)]
        costs = simulate_batch(insts, "mtc-moving-client", delta=0.0).total_costs
        ratios = [
            float(cost) / max(bracket_optimum(inst, grid_size=768).lower, 1e-12)
            for inst, cost in zip(insts, costs)
        ]
        mean = float(np.mean(ratios))
        rows.append(["patrol (ms=ma)", T, mean])
        flat_ratios.append(mean)

    # Contrast: the faster-agent adversarial regime diverges.
    for T in Ts:
        mean_adv, _ = measure_adversarial_ratio_batch(
            lambda rng: build_thm8(scaled(T, scale, minimum=64) * 4, epsilon=1.0, rng=rng),
            "mtc-moving-client", 0.0, seeds,
        )
        rows.append(["thm8 (ma=2ms)", T * 4, mean_adv])

    # 2-D spot check of the O(1) regime.
    wl2 = PatrolAgentWorkload(scaled(200, scale, minimum=50), dim=2, D=D,
                              m_server=1.0, m_agent=1.0, arena=15.0)
    mc2 = wl2.generate(np.random.default_rng(seed))
    inst2 = mc2.as_msp()
    tr2 = simulate(inst2, MovingClientMtC(), delta=0.0)
    br2 = bracket_optimum(inst2)
    rows.append(["patrol-2d (ms=ma)", wl2.T, tr2.total_cost / max(br2.lower, 1e-12)])

    spread = max(flat_ratios) / max(min(flat_ratios), 1e-12)
    notes = [
        "criterion: with m_s >= m_a the certified ratio is O(1) and flat in T, "
        "no augmentation needed (Thm 10 / Cor 9); with a faster agent it diverges (Thm 8)",
        f"flatness of the ms=ma rows: max/min ratio across T = {spread:.2f}",
    ]
    ok = spread <= 2.0 and max(flat_ratios) <= 40.0
    return ExperimentResult(
        experiment_id="E8",
        title="Thm 10: moving-client MtC is O(1)-competitive when the server is as fast",
        headers=["regime", "T", "certified ratio"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
