"""E10 — Lemma 5: collapsing requests to their center costs ≤ 4α + 1.

For paired instances (original vs collapsed-to-centers) we measure MtC's
certified ratios α' (collapsed) and α (original) and check the lemma's
transfer inequality α ≤ 4α' + 1.  Run on 1-D workloads so both ratios are
certified against the exact DP.

Declared as an :class:`~repro.api.ExperimentSpec`: one function cell per
(workload, seed index) grid point, folded by the generic ``table``
reducer — each cell reports both certified ratios, the 4α+1 bound and
whether the transfer inequality held.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..algorithms import MoveToCenter
from ..analysis import collapse_to_centers, measure_ratio
from ..api import ExperimentSpec, cell_grid
from ..workloads import ClusteredWorkload, DriftWorkload, RandomWalkWorkload
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "cell_collapse", "run", "spec"]

_MODULE = "repro.experiments.e10_lemma5"
WORKLOAD_NAMES = ["random-walk", "drift", "clustered"]
DELTA = 0.5


def _workload(name: str, T: int):
    if name == "random-walk":
        return RandomWalkWorkload(T, dim=1, D=2.0, m=1.0, sigma=0.3, spread=0.6,
                                  requests_per_step=6)
    if name == "drift":
        return DriftWorkload(T, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.5,
                             requests_per_step=6)
    if name == "clustered":
        return ClusteredWorkload(T, dim=1, D=4.0, m=1.0, n_clusters=3,
                                 requests_per_step=6, arena=6.0)
    raise KeyError(f"unknown E10 workload {name!r}")


def cell_collapse(workload: str, s: int, cell_seed: int, T: int, delta: float) -> dict:
    """Certified ratios of one original/collapsed instance pair."""
    inst = _workload(workload, T).generate(np.random.default_rng(cell_seed))
    coll = collapse_to_centers(inst)
    orig = measure_ratio(inst, MoveToCenter(), delta=delta)
    simp = measure_ratio(coll, MoveToCenter(), delta=delta)
    # Conservative check: certified upper of the original vs the
    # certified *upper* of the collapsed (alpha in the lemma is the
    # collapsed guarantee, so its upper bound is the right input).
    bound = 4.0 * simp.ratio_upper + 1.0
    return {
        "ratio_collapsed": simp.ratio_upper,
        "ratio_original": orig.ratio_upper,
        "bound": bound,
        "ok": not orig.ratio_upper > bound + 1e-6,
    }


def spec(scale: float = 1.0, seed: int = 0) -> ExperimentSpec:
    T = scaled(250, scale, minimum=80)
    n_seeds = scaled(3, scale, minimum=2)
    seeds = sweep_seeds(seed, n_seeds)
    return ExperimentSpec(
        experiment_id="E10",
        title="Lemma 5: collapsing each batch to its center loses at most 4*alpha+1",
        headers=["workload", "seed", "ratio(collapsed)", "ratio(original)", "4a+1 bound"],
        reducer="table",
        cells=cell_grid(f"{_MODULE}:cell_collapse",
                        axes={"workload": WORKLOAD_NAMES, "s": range(n_seeds)},
                        common={"T": T, "delta": DELTA},
                        derive={"cell_seed": lambda p: seeds[p["s"]]}),
        config={
            "columns": ["ratio_collapsed", "ratio_original", "bound"],
            "ok": "ok",
            "notes": [
                "criterion: ratio(original) <= 4 * ratio(collapsed) + 1 on every "
                "paired instance (Lemma 5)",
                "ratios are certified upper bounds against the exact 1-D DP optimum",
            ],
        },
        scale=scale, seed=seed,
    )


def build_spec(scale: float = 1.0, seed: int = 0):
    return spec(scale, seed).to_sweep()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e10_lemma5.run() is deprecated; E10 is declared as an "
        "ExperimentSpec — use spec(scale, seed).run() or repro.experiments.run_all(['E10'])",
        DeprecationWarning, stacklevel=2,
    )
    return spec(scale, seed).run()
