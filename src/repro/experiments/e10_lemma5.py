"""E10 — Lemma 5: collapsing requests to their center costs ≤ 4α + 1.

For paired instances (original vs collapsed-to-centers) we measure MtC's
certified ratios α' (collapsed) and α (original) and check the lemma's
transfer inequality α ≤ 4α' + 1.  Run on 1-D workloads so both ratios are
certified against the exact DP.
"""

from __future__ import annotations

import numpy as np

from ..algorithms import MoveToCenter
from ..analysis import collapse_to_centers, measure_ratio
from ..workloads import ClusteredWorkload, DriftWorkload, RandomWalkWorkload
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    T = scaled(250, scale, minimum=80)
    delta = 0.5
    n_seeds = scaled(3, scale, minimum=2)
    workloads = {
        "random-walk": RandomWalkWorkload(T, dim=1, D=2.0, m=1.0, sigma=0.3, spread=0.6,
                                          requests_per_step=6),
        "drift": DriftWorkload(T, dim=1, D=2.0, m=1.0, speed=0.8, spread=0.5,
                               requests_per_step=6),
        "clustered": ClusteredWorkload(T, dim=1, D=4.0, m=1.0, n_clusters=3,
                                       requests_per_step=6, arena=6.0),
    }
    rows = []
    ok = True
    for name, wl in workloads.items():
        for s, cell_seed in enumerate(sweep_seeds(seed, n_seeds)):
            inst = wl.generate(np.random.default_rng(cell_seed))
            coll = collapse_to_centers(inst)
            orig = measure_ratio(inst, MoveToCenter(), delta=delta)
            simp = measure_ratio(coll, MoveToCenter(), delta=delta)
            # Conservative check: certified upper of the original vs the
            # certified *upper* of the collapsed (alpha in the lemma is the
            # collapsed guarantee, so its upper bound is the right input).
            bound = 4.0 * simp.ratio_upper + 1.0
            rows.append([name, s, simp.ratio_upper, orig.ratio_upper, bound])
            if orig.ratio_upper > bound + 1e-6:
                ok = False
    notes = [
        "criterion: ratio(original) <= 4 * ratio(collapsed) + 1 on every paired instance (Lemma 5)",
        "ratios are certified upper bounds against the exact 1-D DP optimum",
    ]
    return ExperimentResult(
        experiment_id="E10",
        title="Lemma 5: collapsing each batch to its center loses at most 4*alpha+1",
        headers=["workload", "seed", "ratio(collapsed)", "ratio(original)", "4a+1 bound"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
