"""Executor abstraction: pluggable backends draining orchestrator cells.

The orchestrator (:mod:`repro.experiments.orchestrator`) reduces a sweep
to a topologically ordered list of *pending* work units (cache hits and
within-run twins already removed) and hands it to an :class:`Executor`
wrapped in an :class:`ExecutionContext`.  The executor's only obligation
is to call ``ctx.finish(key, unit, payload, elapsed)`` exactly once per
pending unit, respecting dependency order (``ctx.ready`` tells it when a
unit's dependency payloads have landed).

Three backends ship:

* :class:`InlineExecutor` — run every cell in this process, in order;
* :class:`ProcessExecutor` — fan ready cells out over a local
  ``ProcessPoolExecutor`` (the former ``jobs > 1`` path);
* :class:`~repro.experiments.executors.spool.SpoolExecutor` — serialize
  ready cells as JSON task files into a shared *spool* directory and let
  any number of ``mobile-server worker`` processes (on any machines
  sharing the filesystem) compute them, delivering payloads through the
  content-addressed :class:`~repro.core.store.ResultsStore`.

All three are bit-identical: a cell is a pure function of its parameters
and dependency payloads, and the store round-trip is exact.
"""

from __future__ import annotations

import abc
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from importlib import import_module
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:  # avoid a cycle: the orchestrator imports this package
    from ...core.store import ResultsStore
    from ..orchestrator import WorkUnit

__all__ = [
    "EXECUTOR_NAMES",
    "ExecutionContext",
    "Executor",
    "InlineExecutor",
    "ProcessExecutor",
    "find_group_runner",
    "make_executor",
    "resolve_callable",
    "run_cell",
    "run_cell_timed",
    "run_group_timed",
]

#: The names ``make_executor`` (and the ``--executor`` CLI flags) accept.
EXECUTOR_NAMES = ("inline", "process", "spool")


def resolve_callable(fn: str) -> Callable[..., Any]:
    """Import a cell/finalize function from its ``"module:function"`` path."""
    module_name, _, func_name = fn.partition(":")
    if not func_name:
        raise ValueError(f"cell path {fn!r} must look like 'package.module:function'")
    return getattr(import_module(module_name), func_name)


def run_cell(fn: str, params: Mapping[str, Any], deps: Mapping[str, Any] | None) -> Any:
    """Worker entry point: import the cell function and call it."""
    func = resolve_callable(fn)
    if deps is None:
        return func(**params)
    return func(**params, deps=dict(deps))


def run_cell_timed(
    fn: str, params: Mapping[str, Any], deps: Mapping[str, Any] | None
) -> tuple[Any, float]:
    """Run a cell and measure its wall-clock inside the executing process."""
    t0 = time.perf_counter()
    payload = run_cell(fn, params, deps)
    return payload, time.perf_counter() - t0


def run_group_timed(
    fn: str, calls: list[tuple[Mapping[str, Any], Mapping[str, Any] | None]]
) -> tuple[list[Any], float]:
    """Worker entry point: drain one wave through the cell's group runner.

    Module-level (hence picklable) so :class:`ProcessExecutor` can submit
    whole waves to its pool.  Falls back to per-call execution when the
    function resolves without a group runner in the worker process (an
    import-skew guard) — bit-identical either way by the group-runner
    contract.
    """
    t0 = time.perf_counter()
    runner = find_group_runner(fn)
    if runner is None:
        payloads = [run_cell(fn, params, deps) for params, deps in calls]
    else:
        payloads = runner(calls)
    return payloads, time.perf_counter() - t0


def find_group_runner(fn: str) -> Callable[..., list[Any]] | None:
    """The cell function's batch entry point, when it declares one.

    A cell function may carry a ``group_runner`` attribute — a callable
    taking ``[(params, deps), ...]`` and returning the payload list in
    call order, **bit-identical** to calling the cell per pair (that
    contract is what keeps every cell's content address standalone).
    Executors that drain several ready cells of the same ``fn`` in one
    process can then hand them over together; e.g.
    :func:`repro.api.runtime.cell_run` groups compatible scenario cells
    into one wide batched-engine pass (cross-cell mega-batching).
    """
    try:
        func = resolve_callable(fn)
    except (ImportError, AttributeError, ValueError):
        return None
    runner = getattr(func, "group_runner", None)
    return runner if callable(runner) else None


@dataclass
class ExecutionContext:
    """Everything a backend needs to drain one batch of pending units.

    Attributes
    ----------
    pending:
        Topologically ordered ``(key, unit)`` pairs still to compute
        (cache hits and within-run duplicates already removed).
    digests:
        Content address of every unit in the run, pending or not — spool
        tasks reference dependency payloads by these store keys.
    payloads:
        Shared key → payload map, pre-populated with cache hits;
        :meth:`finish` adds each computed cell, which is what makes
        dependents :meth:`ready`.
    store:
        The persistent results store, or ``None`` (the spool backend
        requires one — workers deliver payloads through it).
    dep_keys / dep_payloads:
        Resolve a unit's dependencies to full keys / to the payload
        mapping its cell function receives (``None`` when it has none).
    finish:
        ``finish(key, unit, payload, elapsed, persist=True)`` — record a
        computed cell (store write, report accounting, progress).  Pass
        ``persist=False`` when the payload is already in the store (the
        spool path, where the worker saved it).
    rerun:
        The run ignored existing store entries; distributed backends
        must tell their workers to recompute-and-overwrite rather than
        short-circuit on a stored payload.
    """

    pending: list[tuple[str, "WorkUnit"]]
    digests: Mapping[str, str]
    payloads: dict[str, Any]
    store: "ResultsStore | None"
    dep_keys: Callable[[str, "WorkUnit"], list[str]]
    dep_payloads: Callable[[str, "WorkUnit"], dict[str, Any] | None]
    finish: Callable[..., None]
    rerun: bool = False

    def ready(self, key: str, unit: "WorkUnit") -> bool:
        """Whether every dependency payload of ``unit`` has landed."""
        return all(dep in self.payloads for dep in self.dep_keys(key, unit))


class Executor(abc.ABC):
    """One strategy for computing the pending cells of a sweep."""

    #: Registry name (what ``--executor`` calls this backend).
    name: str = "?"

    @abc.abstractmethod
    def drain(self, ctx: ExecutionContext) -> None:
        """Compute every pending unit, calling ``ctx.finish`` for each."""


class InlineExecutor(Executor):
    """Run every cell in this process, in dependency order.

    Cells whose function declares a :func:`find_group_runner` batch entry
    point are drained in *waves*: each wave hands all currently-ready
    cells of that function over together (one ``group_runner`` call),
    letting compatible scenario cells share one batched-engine pass.
    Payloads are bit-identical to per-cell execution by the group-runner
    contract; per-cell timings become proportional shares of the wave.
    """

    name = "inline"

    def drain(self, ctx: ExecutionContext) -> None:
        runners: dict[str, Callable[..., list[Any]] | None] = {}
        waiting = list(ctx.pending)
        while waiting:
            deferred: list[tuple[str, "WorkUnit"]] = []
            grouped: dict[str, list[tuple[str, "WorkUnit"]]] = {}
            for key, unit in waiting:
                if not ctx.ready(key, unit):
                    deferred.append((key, unit))
                    continue
                if unit.fn not in runners:
                    runners[unit.fn] = find_group_runner(unit.fn)
                if runners[unit.fn] is None:
                    payload, elapsed = run_cell_timed(unit.fn, dict(unit.params),
                                                      ctx.dep_payloads(key, unit))
                    ctx.finish(key, unit, payload, elapsed)
                else:
                    grouped.setdefault(unit.fn, []).append((key, unit))
            for fn, units in grouped.items():
                calls = [(dict(unit.params), ctx.dep_payloads(key, unit))
                         for key, unit in units]
                t0 = time.perf_counter()
                payloads = runners[fn](calls)
                share = (time.perf_counter() - t0) / len(units)
                for (key, unit), payload in zip(units, payloads):
                    ctx.finish(key, unit, payload, share)
            if not grouped and len(deferred) == len(waiting):
                # Toposort guarantees progress; guard anyway so a bug
                # surfaces as an error rather than a spin.
                stuck = ", ".join(key for key, _ in deferred)
                raise RuntimeError(f"inline drain stalled on: {stuck}")
            waiting = deferred


@dataclass
class ProcessExecutor(Executor):
    """Fan ready cells out over a local process pool of ``jobs`` workers.

    Ready cells whose function declares a :func:`find_group_runner` batch
    entry point are grouped into per-job *waves*: the currently-ready
    cells of each such function are split into at most ``jobs``
    contiguous chunks, and each chunk crosses the process boundary as one
    :func:`run_group_timed` call — so a wide sweep still saturates the
    pool while every pool process mega-batches its share.  Payloads are
    bit-identical to per-cell execution by the group-runner contract;
    per-cell timings become proportional shares of their wave.
    """

    jobs: int = 2

    #: Sizes of the waves actually dispatched (one entry per group call),
    #: recorded for benchmarks/diagnostics.
    wave_sizes: list = field(default_factory=list, repr=False)

    name = "process"

    def drain(self, ctx: ExecutionContext) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")
        if self.jobs == 1 or len(ctx.pending) <= 1:
            # A pool of one (or for one cell) buys nothing but pickling.
            InlineExecutor().drain(ctx)
            return
        runners: dict[str, bool] = {}
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            waiting = dict(ctx.pending)
            #: future → list of units it computes (singles are waves of 1).
            futures: dict[Any, list[tuple[str, "WorkUnit"]]] = {}

            def launch_ready() -> None:
                ready: list[tuple[str, "WorkUnit"]] = []
                for key in list(waiting):
                    unit = waiting[key]
                    if ctx.ready(key, unit):
                        ready.append((key, unit))
                        del waiting[key]
                grouped: dict[str, list[tuple[str, "WorkUnit"]]] = {}
                for key, unit in ready:
                    if unit.fn not in runners:
                        runners[unit.fn] = find_group_runner(unit.fn) is not None
                    if runners[unit.fn]:
                        grouped.setdefault(unit.fn, []).append((key, unit))
                    else:
                        fut = pool.submit(run_cell_timed, unit.fn,
                                          dict(unit.params),
                                          ctx.dep_payloads(key, unit))
                        futures[fut] = [(key, unit)]
                for fn, units in grouped.items():
                    # At most `jobs` contiguous waves per function, so a
                    # wide wave-front keeps every pool slot busy while
                    # each slot still mega-batches its chunk.
                    size = -(-len(units) // self.jobs)  # ceil division
                    for i in range(0, len(units), size):
                        chunk = units[i:i + size]
                        calls = [(dict(unit.params), ctx.dep_payloads(key, unit))
                                 for key, unit in chunk]
                        fut = pool.submit(run_group_timed, fn, calls)
                        futures[fut] = chunk
                        self.wave_sizes.append(len(chunk))

            launch_ready()
            while futures:
                done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
                for fut in done:
                    units = futures.pop(fut)
                    if len(units) == 1 and not runners.get(units[0][1].fn, False):
                        key, unit = units[0]
                        ctx.finish(key, unit, *fut.result())
                    else:
                        payloads, elapsed = fut.result()
                        share = elapsed / len(units)
                        for (key, unit), payload in zip(units, payloads):
                            ctx.finish(key, unit, payload, share)
                launch_ready()


def make_executor(
    executor: "str | Executor | None",
    jobs: int = 1,
    spool: Any = None,
    timeout: float | None = None,
) -> Executor:
    """Resolve an executor request to a backend instance.

    ``None`` preserves the historic ``jobs`` semantics: inline for
    ``jobs=1``, a process pool otherwise.  A string picks a backend by
    name (``"spool"`` additionally needs the ``spool`` directory); an
    :class:`Executor` instance passes through untouched.  ``"process"``
    honours ``jobs`` exactly — with ``jobs=1`` its drain degenerates to
    the (bit-identical) inline path rather than paying for a one-slot
    pool.
    """
    if isinstance(executor, Executor):
        if spool is not None or timeout is not None:
            # Pre-built instances carry their own configuration; extra
            # spool/timeout arguments would be silently dead (and with a
            # non-spool instance the caller would believe the sweep was
            # distributed while it ran locally).
            raise ValueError(
                "spool/timeout arguments cannot be combined with an "
                "Executor instance — configure the instance directly")
        return executor
    if executor is None:
        executor = "process" if jobs > 1 else "inline"
    if executor == "spool":
        from .spool import SpoolExecutor

        if spool is None:
            raise ValueError("the spool executor needs a spool directory "
                             "(spool=DIR, shared with the workers)")
        return SpoolExecutor(spool, timeout=timeout)
    if spool is not None or timeout is not None:
        # A spool directory with a non-spool backend would silently run
        # locally while the caller believes the sweep was distributed.
        raise ValueError(
            f"spool/timeout arguments apply only to executor='spool' "
            f"(got executor={executor!r})")
    if executor == "inline":
        return InlineExecutor()
    if executor == "process":
        return ProcessExecutor(jobs=jobs)
    raise ValueError(
        f"unknown executor {executor!r}; available: {', '.join(EXECUTOR_NAMES)}")
