"""File-based task spool: the distributed executor's shared work queue.

A *spool* is a directory (on a filesystem shared between the submitting
orchestrator and any number of workers) holding one JSON file per
in-flight cell.  Claiming is an atomic ``rename`` — exactly one worker
wins a task, with no locks, daemons or network protocol — and results
travel through the content-addressed
:class:`~repro.core.store.ResultsStore`, which both sides already share.
Acks travel back as small JSON files next to the tasks.

Lifecycle of a task (files are named by the cell's content digest):

.. code-block:: text

    {digest}.task.json             submitted, unclaimed
    {digest}.claim-{worker}.json   claimed by exactly one worker
    {digest}.done.json             completed; the payload is in the store
    {digest}.failed.json           the cell raised; carries the traceback

Every write is crash-safe: files are written to a dot-prefixed temporary
name and atomically renamed, so a killed submitter or worker never
leaves a half-written task or ack behind.  A worker killed *mid-cell*
leaves its claim file in place — :meth:`Spool.reclaim_stale` (or
:meth:`Spool.reclaim`) turns such orphans back into claimable tasks, and
because payload delivery is an atomic store write keyed by content, a
task accidentally computed twice is benign: both writes carry identical
bytes.
"""

from __future__ import annotations

import json
import os
import re
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ...core.store import MISSING
from .base import ExecutionContext, Executor

if TYPE_CHECKING:
    from ..orchestrator import WorkUnit

__all__ = [
    "ClaimedTask",
    "Spool",
    "SpoolExecutor",
    "SpoolTaskError",
    "TASK_VERSION",
]

TASK_VERSION = 1

_TASK_SUFFIX = ".task.json"
_DONE_SUFFIX = ".done.json"
_FAILED_SUFFIX = ".failed.json"
_STOP_NAME = "STOP"


class SpoolTaskError(RuntimeError):
    """A worker reported a cell failure (the message carries its traceback)."""


@dataclass(frozen=True)
class ClaimedTask:
    """One task a worker has exclusively claimed (by winning the rename)."""

    path: Path
    task: Mapping[str, Any]

    @property
    def key(self) -> str:
        return self.task["key"]

    @property
    def digest(self) -> str:
        return self.task["digest"]

    @property
    def fn(self) -> str:
        return self.task["fn"]

    @property
    def params(self) -> dict[str, Any]:
        return dict(self.task["params"])

    @property
    def deps(self) -> dict[str, str]:
        """Local dependency name → store digest of its payload."""
        return dict(self.task.get("deps") or {})

    @property
    def overwrite(self) -> bool:
        """Recompute even if the store already holds this digest (--rerun)."""
        return bool(self.task.get("overwrite", False))

    @property
    def retries(self) -> int:
        """How many times workers have handed this task back already."""
        return int(self.task.get("retries", 0))


def _safe_worker_id(worker_id: str) -> str:
    """Worker ids become file-name components; keep them protocol-safe.

    No dots: an id ending in ``.task``/``.done``/``.failed`` would make
    claim files match the protocol suffix globs of other readers.
    """
    cleaned = re.sub(r"[^A-Za-z0-9_-]+", "_", worker_id)
    return cleaned or "worker"


class Spool:
    """One shared task directory (see the module docstring for the protocol)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- submitting --------------------------------------------------------

    def submit(self, *, key: str, digest: str, fn: str,
               params: Mapping[str, Any], deps: Mapping[str, str],
               overwrite: bool = False) -> Path:
        """Atomically publish one task file; returns its path.

        Stale acks for the same digest (a previous run whose store entry
        was evicted, or a failure being retried) are cleared first so the
        fresh task cannot be mistaken for already-finished.  With
        ``overwrite`` (a ``--rerun`` submission) the worker recomputes
        even when the store already holds the digest.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self._ack_path(digest, _DONE_SUFFIX).unlink(missing_ok=True)
        self._ack_path(digest, _FAILED_SUFFIX).unlink(missing_ok=True)
        task = {
            "version": TASK_VERSION,
            "key": key,
            "digest": digest,
            "fn": fn,
            "params": dict(params),
            "deps": dict(deps),
            "overwrite": bool(overwrite),
        }
        return self._atomic_write(self.root / f"{digest}{_TASK_SUFFIX}", task)

    # -- claiming ----------------------------------------------------------

    def pending(self) -> list[Path]:
        """Unclaimed task files, oldest digest first (stable order).

        Dot-prefixed names are in-flight temporary writes, never tasks
        (``pathlib`` globs *do* match dotfiles, unlike the shell).
        """
        if not self.root.exists():
            return []
        return sorted(p for p in self.root.glob(f"*{_TASK_SUFFIX}")
                      if not p.name.startswith("."))

    def claimed(self) -> list[Path]:
        """Claim files currently held by some worker."""
        if not self.root.exists():
            return []
        return sorted(p for p in self.root.glob("*.claim-*.json")
                      if not p.name.startswith("."))

    def claim(self, worker_id: str) -> ClaimedTask | None:
        """Try to claim one pending task; ``None`` when the spool is drained.

        The claim is an atomic rename of the task file onto a
        worker-specific name: when several workers race for the same
        task, exactly one rename succeeds and the losers simply move on
        to the next file.
        """
        wid = _safe_worker_id(worker_id)
        for path in self.pending():
            digest = path.name[: -len(_TASK_SUFFIX)]
            target = self.root / f"{digest}.claim-{wid}.json"
            try:
                os.rename(path, target)
            except FileNotFoundError:
                continue  # lost the race to another worker
            # Rename preserves the *task's* mtime: freshen it now so a
            # claim of a long-queued task is not born stale and reclaimed
            # out from under us before the compute heartbeat starts.
            try:
                os.utime(target)
            except OSError:
                pass
            try:
                task = json.loads(target.read_text())
            except FileNotFoundError:
                continue  # reclaimed/acked from under us — move on
            except json.JSONDecodeError:
                # A torn task file (should be impossible with atomic
                # submits — defense in depth): fail it visibly instead
                # of crashing the worker or recycling it forever.
                self._atomic_write(self._ack_path(digest, _FAILED_SUFFIX), {
                    "key": digest,
                    "digest": digest,
                    "error": "unparseable task file (torn write?)",
                    "worker": wid,
                })
                target.unlink(missing_ok=True)
                continue
            return ClaimedTask(path=target, task=task)
        return None

    def reclaim(self, claim_path: str | Path) -> Path:
        """Turn a claim (e.g. of a crashed worker) back into a pending task."""
        claim_path = Path(claim_path)
        digest = claim_path.name.split(".claim-", 1)[0]
        target = self.root / f"{digest}{_TASK_SUFFIX}"
        os.rename(claim_path, target)
        return target

    def hand_back(self, claimed: ClaimedTask) -> int:
        """Re-queue a claimed task, incrementing its retry counter.

        Unlike :meth:`reclaim` (same-content rename, for claims of
        *other* workers), this rewrites the task with ``retries + 1`` so
        the count survives across whichever worker claims it next —
        what lets the fleet give up on a task whose dependency can never
        be read instead of bouncing it forever.  Returns the new count.
        """
        task = dict(claimed.task)
        task["retries"] = int(task.get("retries", 0)) + 1
        self._atomic_write(self.root / f"{claimed.digest}{_TASK_SUFFIX}", task)
        claimed.path.unlink(missing_ok=True)
        return task["retries"]

    def reclaim_stale(self, max_age_seconds: float) -> list[Path]:
        """Re-queue claims older than ``max_age_seconds``.

        Safe against live workers finishing concurrently (their ack
        unlinks the claim; the rename then simply fails) and against a
        slow-but-alive worker: the duplicated cell writes the identical
        content-addressed payload.  Ages are measured against the
        spool's own filesystem clock (see :meth:`timestamp`), so server
        clock skew cannot hide a dead worker or requeue a live one.
        """
        now = self.timestamp()
        requeued = []
        for path in self.claimed():
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age < max_age_seconds:
                continue
            try:
                requeued.append(self.reclaim(path))
            except OSError:
                continue
        return requeued

    # -- acks --------------------------------------------------------------

    def ack_done(self, claimed: ClaimedTask, *, elapsed: float, worker_id: str) -> Path:
        """Mark a claimed task completed (its payload is in the store)."""
        ack = self._atomic_write(self._ack_path(claimed.digest, _DONE_SUFFIX), {
            "key": claimed.key,
            "digest": claimed.digest,
            "elapsed": float(elapsed),
            "worker": worker_id,
        })
        claimed.path.unlink(missing_ok=True)
        return ack

    def ack_failed(self, claimed: ClaimedTask, *, error: str, worker_id: str) -> Path:
        """Mark a claimed task failed, preserving the worker's traceback."""
        ack = self._atomic_write(self._ack_path(claimed.digest, _FAILED_SUFFIX), {
            "key": claimed.key,
            "digest": claimed.digest,
            "error": error,
            "worker": worker_id,
        })
        claimed.path.unlink(missing_ok=True)
        return ack

    def done_info(self, digest: str) -> dict[str, Any] | None:
        return self._read_ack(self._ack_path(digest, _DONE_SUFFIX))

    def failure(self, digest: str) -> dict[str, Any] | None:
        return self._read_ack(self._ack_path(digest, _FAILED_SUFFIX))

    def freshest_claim_age(self, digests: "set[str] | frozenset[str]") -> float | None:
        """Age (seconds, spool clock) of the most recently active claim.

        Workers heartbeat their claim file's mtime while computing, so a
        small age means a live worker is mid-cell — the executor defers
        its no-progress timeout on that evidence.  ``None`` when none of
        ``digests`` is claimed.
        """
        now = self.timestamp()
        best = None
        for path in self.claimed():
            digest = path.name.split(".claim-", 1)[0]
            if digest not in digests:
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if best is None or age < best:
                best = age
        return best

    def entry_names(self) -> set[str]:
        """Every file name in the spool, from one directory scan.

        The executor's polling loop checks hundreds of in-flight tasks
        per tick; set membership against a single ``scandir`` keeps that
        O(tasks) name lookups instead of O(tasks) file probes — which
        matters on the network filesystems spools are designed for.
        """
        try:
            return {entry.name for entry in os.scandir(self.root)}
        except FileNotFoundError:
            return set()

    # -- shutdown ----------------------------------------------------------

    def request_stop(self) -> Path:
        """Ask every worker polling this spool to exit after its current task."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / _STOP_NAME
        path.touch()
        return path

    def clear_stop(self) -> None:
        """Remove a leftover ``STOP`` so a reused spool accepts workers again."""
        (self.root / _STOP_NAME).unlink(missing_ok=True)

    def timestamp(self) -> float:
        """Now, as stamped by the spool's *own* filesystem clock.

        STOP freshness must compare like with like: on a network mount
        the file server stamps mtimes, and its clock may be seconds off
        a worker's local ``time.time()``.  Touching a probe file and
        reading its mtime yields a skew-free reference.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        # uuid, not just the pid: containerized workers on different
        # machines frequently share small pids, and a colliding probe
        # name would let one worker unlink the other's mid-stat.
        probe = self.root / f".clock-probe-{os.getpid()}-{uuid.uuid4().hex}"
        probe.touch()
        try:
            return probe.stat().st_mtime
        finally:
            probe.unlink(missing_ok=True)

    def stop_requested(self, since: float | None = None) -> bool:
        """Whether a ``STOP`` exists — and, with ``since``, is fresh.

        Workers pass their start time as ``since`` so a stale ``STOP``
        left over from a previous sweep's shutdown does not kill a newly
        started fleet: only a stop requested after (or just before) the
        worker came up counts.
        """
        path = self.root / _STOP_NAME
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return False
        return since is None or mtime >= since

    # -- helpers -----------------------------------------------------------

    def _ack_path(self, digest: str, suffix: str) -> Path:
        return self.root / f"{digest}{suffix}"

    def _atomic_write(self, final: Path, payload: Mapping[str, Any]) -> Path:
        # Dot prefix *and* a non-protocol suffix: a half-written file must
        # never be claimable, whichever filter a reader applies.  The
        # uuid keeps two same-pid writers on different machines (small
        # container pids collide) from tearing each other's tmp file.
        tmp = self.root / f".{final.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        tmp.replace(final)
        return final

    def _read_ack(self, path: Path) -> dict[str, Any] | None:
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except json.JSONDecodeError:
            # Unreadable ack (defense in depth): treat as not-yet-acked
            # — completion is still detectable through the store.
            return None


@dataclass
class SpoolExecutor(Executor):
    """Drain a sweep through a spool directory serviced by external workers.

    Ready cells are published as task files the moment their dependency
    payloads land; completion is detected through the shared store (the
    workers' atomic content-addressed writes), with per-cell timings read
    from the done-acks.  ``timeout`` bounds how long the executor waits
    *without any progress* before raising — ``None`` waits forever, which
    is the right default when workers may come and go.
    """

    spool_dir: str | Path
    poll: float = 0.05
    timeout: float | None = None
    #: Claims whose heartbeat (mtime) is older than this are treated as
    #: dead workers and automatically re-queued for the live fleet.
    #: Generous vs the ~0.5s heartbeat to absorb NFS attribute caching.
    reclaim_after: float = 30.0

    name = "spool"

    def drain(self, ctx: ExecutionContext) -> None:
        if ctx.store is None:
            raise ValueError(
                "the spool executor needs a persistent store: workers "
                "deliver cell payloads through it (pass store=/--store)")
        spool = Spool(self.spool_dir)
        # A fresh submission means the fleet should run: clear a STOP
        # left over from a previous sweep's shutdown, which would
        # otherwise make every new worker exit on arrival while this
        # drain waits forever.
        spool.clear_stop()
        waiting: dict[str, "WorkUnit"] = dict(ctx.pending)
        inflight: dict[str, "WorkUnit"] = {}
        resubmits: dict[str, int] = {}
        last_progress = time.monotonic()
        last_reclaim_scan = time.monotonic()

        def submit(key: str, unit: "WorkUnit") -> None:
            locals_ = unit.deps + unit.soft_deps
            spool.submit(
                key=key,
                digest=ctx.digests[key],
                fn=unit.fn,
                params=dict(unit.params),
                deps={local: ctx.digests[dep]
                      for local, dep in zip(locals_, ctx.dep_keys(key, unit))},
                overwrite=ctx.rerun,
            )

        while waiting or inflight:
            for key in list(waiting):
                unit = waiting[key]
                if ctx.ready(key, unit):
                    submit(key, unit)
                    inflight[key] = unit
                    del waiting[key]

            progressed = False
            names = spool.entry_names() if inflight else set()
            # One store scan per tick, same rationale as entry_names().
            stored_now = ctx.store.entry_digests() if inflight else set()
            # Stale entries must not count as completion under --rerun.
            stored = stored_now if not ctx.rerun else set()
            # Self-heal dependency entries: a worker finding a dep
            # unreadable (torn copy — load_or_none drops it) hands its
            # task back; this side still holds every dep payload in
            # memory, so republish missing entries instead of stalling.
            for key, unit in inflight.items():
                for dep in ctx.dep_keys(key, unit):
                    dep_digest = ctx.digests[dep]
                    if dep_digest not in stored_now and dep in ctx.payloads:
                        ctx.store.save(dep_digest, ctx.payloads[dep],
                                       extra_meta={"key": dep, "healed": True})
                        stored_now.add(dep_digest)
            for key in list(inflight):
                digest = ctx.digests[key]
                if f"{digest}{_FAILED_SUFFIX}" in names:
                    failed = spool.failure(digest) or {}
                    raise SpoolTaskError(
                        f"worker {failed.get('worker', '?')!r} failed on cell "
                        f"{key!r}:\n{failed.get('error', '(no traceback)')}")
                # The done-ack is the authoritative completion signal
                # (under --rerun the store may still hold the *stale*
                # payload until the worker overwrites it); bare store
                # presence also counts outside rerun — e.g. a concurrent
                # sweep delivered the same content address.
                info = (spool.done_info(digest)
                        if f"{digest}{_DONE_SUFFIX}" in names else None)
                if info is None and any(
                        name.startswith(f"{digest}.claim-") for name in names):
                    # A worker holds the claim: its save may already be
                    # visible but the done-ack (with the real elapsed)
                    # lands momentarily — wait a tick rather than record
                    # a bogus 0.0 timing off bare store presence.
                    continue
                if info is not None or digest in stored:
                    payload = ctx.store.load_or_none(digest, MISSING)
                    if payload is MISSING:
                        # The entry was corrupt or unreadable: put the
                        # task back out for recomputation — that *is*
                        # progress (don't let the timeout count it as a
                        # stall while the worker recomputes), but only a
                        # few times: a payload the workers keep acking
                        # and we keep failing to read (e.g. a permission
                        # mismatch on a shared store) must surface as an
                        # error, not a hot resubmit livelock.
                        resubmits[key] = resubmits.get(key, 0) + 1
                        if resubmits[key] > 3:
                            raise SpoolTaskError(
                                f"cell {key!r} was acked by workers "
                                f"{resubmits[key]} times but its store "
                                f"entry ({digest[:12]}…) is unreadable "
                                f"from the submitting side — check "
                                f"permissions/consistency of the shared "
                                f"store")
                        submit(key, inflight[key])
                        progressed = True
                        continue
                    unit = inflight.pop(key)
                    ctx.finish(key, unit, payload,
                               float((info or {}).get("elapsed", 0.0)),
                               persist=False)
                    progressed = True

            if progressed:
                last_progress = time.monotonic()
                continue
            # A worker killed mid-cell leaves a claim whose heartbeat has
            # stopped: re-queue it for the live fleet instead of waiting
            # on a corpse (scan at ~1s granularity, ages measured on the
            # spool's own clock inside reclaim_stale).
            if inflight and time.monotonic() - last_reclaim_scan > max(1.0, self.poll):
                last_reclaim_scan = time.monotonic()
                spool.reclaim_stale(self.reclaim_after)
            if (self.timeout is not None
                    and time.monotonic() - last_progress > self.timeout):
                # A live worker heartbeats its claim file while computing
                # — a fresh claim means a cell merely takes longer than
                # the timeout, which is activity, not a stall.  (Worker
                # heartbeats tick every ~0.5s; timeouts much below ~1s
                # cannot tell the difference.)
                claim_age = spool.freshest_claim_age(
                    {ctx.digests[key] for key in inflight})
                if claim_age is not None and claim_age < self.timeout:
                    last_progress = time.monotonic() - max(claim_age, 0.0)
                    time.sleep(self.poll)
                    continue
                # Last resort before giving up: a dead worker's stale
                # claim may simply not have hit reclaim_after yet when
                # the timeout is the shorter of the two — requeue it for
                # any live worker rather than failing the sweep.
                if spool.reclaim_stale(min(self.reclaim_after, self.timeout)):
                    last_progress = time.monotonic()
                    continue
                stuck = sorted(inflight) or sorted(waiting)
                raise TimeoutError(
                    f"spool executor made no progress for {self.timeout:.0f}s "
                    f"({len(inflight)} task(s) in flight, {len(waiting)} "
                    f"waiting; next: {stuck[:3]}); are workers running "
                    f"against {Path(self.spool_dir)}?")
            time.sleep(self.poll)
