"""Standalone spool worker: claim tasks, run cells, deliver via the store.

This is the long-running side of the distributed executor — what
``mobile-server worker --spool DIR --store DIR`` runs.  A worker needs
nothing but the two shared directories: tasks are claimed with an atomic
rename (see :mod:`repro.experiments.executors.spool`), the cell function
is resolved from its dotted path through the same registries every other
executor uses, dependency payloads are loaded from the store by digest,
and the computed payload is written back with one atomic
content-addressed save before the task is acked.

Failure containment: a cell that raises poisons *its task*, not the
worker — the traceback is acked back to the submitting orchestrator as a
``.failed.json`` file and the loop keeps draining.  A worker killed
mid-cell leaves only its claim file behind (the store save is atomic, so
no partial payload can exist); the claim is reclaimable.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ...core.store import MISSING, ResultsStore
from .base import run_cell_timed
from .spool import TASK_VERSION, Spool

#: How often a computing worker freshens its claim file's mtime.  The
#: submitter reads this as liveness: a fresh claim defers its
#: no-progress timeout even when a cell outlasts it.
HEARTBEAT_SECONDS = 0.5

#: Fleet-wide cap on per-task hand-backs (the count travels in the task
#: file): past this, a dependency that never became readable fails the
#: task instead of bouncing it between workers forever.
MAX_HAND_BACKS = 50

__all__ = [
    "WorkerStats",
    "default_worker_id",
    "run_worker",
]


@dataclass
class WorkerStats:
    """What one :func:`run_worker` loop did before exiting."""

    completed: int = 0
    failed: int = 0
    #: Tasks acked without computing (their payload was already stored).
    skipped: int = 0
    #: Tasks handed back (reclaimed) because a dependency payload was not
    #: readable from the store yet — the submitter re-publishes missing
    #: dependency entries, so these come around again.
    retried: int = 0

    @property
    def claimed(self) -> int:
        return self.completed + self.failed + self.skipped


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    spool: str | Path | Spool,
    store: str | Path | ResultsStore,
    *,
    worker_id: str | None = None,
    poll: float = 0.1,
    max_tasks: int | None = None,
    idle_exit: float | None = None,
    progress: Callable[[str], None] | None = None,
) -> WorkerStats:
    """Drain tasks from ``spool`` until told (or timed out) to stop.

    Parameters
    ----------
    worker_id:
        Name under which claims and acks are filed (default:
        ``hostname-pid``).
    poll:
        Seconds to sleep between scans of an empty spool.
    max_tasks:
        Exit after claiming this many tasks (``None``: unbounded).
    idle_exit:
        Exit after this many consecutive seconds without finding a task
        (``None``: wait forever).  A ``STOP`` file in the spool directory
        (:meth:`Spool.request_stop`) always ends the loop.
    progress:
        Optional callback for human-readable per-task status lines.
    """
    spool = spool if isinstance(spool, Spool) else Spool(spool)
    store = store if isinstance(store, ResultsStore) else ResultsStore(store)
    wid = worker_id or default_worker_id()
    say = progress or (lambda message: None)
    stats = WorkerStats()
    idle_since = time.monotonic()
    # Honour only STOPs requested after (or just before) this worker came
    # up: a stale STOP from a previous sweep's shutdown must not kill a
    # freshly started fleet.  The reference time comes from the spool's
    # own filesystem clock (skew-free on network mounts); the 1s grace
    # absorbs coarse mtime granularity.
    started_at = spool.timestamp() - 1.0

    while True:
        if spool.stop_requested(since=started_at):
            say("stop requested; exiting")
            break
        # The idle budget runs from the last *productive* action (a task
        # acked, or startup) — handed-back tasks do not reset it, so an
        # orphaned task whose submitter died cannot keep a worker
        # claim/reclaim-looping past --idle-exit.
        if idle_exit is not None and time.monotonic() - idle_since > idle_exit:
            say(f"idle for {idle_exit:.0f}s; exiting")
            break
        # The claim budget is enforced *before* claiming, so max_tasks=0
        # really claims nothing (hand-backs count toward it too: an
        # orphan task must not loop a bounded worker forever).
        if max_tasks is not None and stats.claimed + stats.retried >= max_tasks:
            say(f"claimed {stats.claimed + stats.retried} task(s); exiting")
            break
        claimed = spool.claim(wid)
        if claimed is None:
            time.sleep(poll)
            continue
        acked = _process(claimed, spool, store, wid, stats, say)
        if acked:
            # Idleness starts *after* the task finishes — a long cell
            # must not eat into the idle budget of the following poll.
            idle_since = time.monotonic()
        else:
            # The task went back to pending (dependency not readable
            # yet): give the submitter a beat to republish the missing
            # entry rather than spinning hot on the same claim.
            time.sleep(poll)
    return stats


def _process(claimed, spool: Spool, store: ResultsStore, wid: str,
             stats: WorkerStats, say: Callable[[str], None]) -> bool:
    """Run one claimed task; acked (``True``) or handed back (``False``).

    Every path either writes exactly one ack or reclaims the task: a
    dependency whose store entry is unreadable (e.g. a torn copy that
    :meth:`~repro.core.store.ResultsStore.load_or_none` just dropped) is
    *retryable* — the submitter holds the payload in memory and
    republishes the entry — so it must not fail the sweep.
    """
    version = claimed.task.get("version")
    if version != TASK_VERSION:
        # A mixed-version fleet: computing a payload under semantics we
        # do not understand would poison the shared store under a valid
        # content address — fail the task cleanly instead.
        spool.ack_failed(
            claimed,
            error=f"task format version {version!r}; this worker understands "
                  f"{TASK_VERSION} — upgrade the older side of the fleet",
            worker_id=wid)
        stats.failed += 1
        say(f"failed {claimed.key}: task format version {version!r}")
        return True
    if not claimed.overwrite and store.load_or_none(claimed.digest, MISSING) is not MISSING:
        # Another worker (or a previous run) already delivered this cell
        # (--rerun submissions skip this shortcut: they must recompute).
        spool.ack_done(claimed, elapsed=0.0, worker_id=wid)
        stats.skipped += 1
        say(f"skipped {claimed.key} (already in store)")
        return True
    try:
        deps = None
        if claimed.deps:
            deps = {}
            for local, dep_digest in claimed.deps.items():
                dep_payload = store.load_or_none(dep_digest, MISSING)
                if dep_payload is MISSING:
                    if claimed.retries >= MAX_HAND_BACKS:
                        # Nobody managed to (re)publish the dep across
                        # many hand-backs — e.g. a corrupt entry on a
                        # share this worker cannot repair.  Fail the
                        # task visibly rather than bouncing it forever.
                        raise LookupError(
                            f"dependency {local!r} of {claimed.key!r} "
                            f"({dep_digest[:12]}…) still unreadable after "
                            f"{claimed.retries} hand-backs")
                    spool.hand_back(claimed)
                    stats.retried += 1
                    say(f"waiting on dependency {local!r} of {claimed.key} "
                        f"({dep_digest[:12]}…); task handed back")
                    return False
                deps[local] = dep_payload
        payload, elapsed = _compute_with_heartbeat(claimed, deps)
        store.save(claimed.digest, payload,
                   extra_meta={"key": claimed.key, "fn": claimed.fn,
                               "elapsed": elapsed, "worker": wid})
        spool.ack_done(claimed, elapsed=elapsed, worker_id=wid)
        stats.completed += 1
        say(f"completed {claimed.key} ({elapsed:.2f}s)")
        return True
    except (KeyboardInterrupt, SystemExit):
        # Interactive shutdown: hand the task back instead of failing it.
        spool.reclaim(claimed.path)
        raise
    except Exception as exc:
        spool.ack_failed(claimed, error=traceback.format_exc(), worker_id=wid)
        stats.failed += 1
        say(f"failed {claimed.key}: {exc}")
        return True


def _compute_with_heartbeat(claimed, deps) -> tuple:
    """Run the cell while freshening the claim file's mtime.

    The claim's mtime is the worker's liveness signal: the submitter's
    no-progress timeout is deferred while it stays fresh, so a cell that
    legitimately outlasts ``--spool-timeout`` does not fail the run —
    while a killed worker's claim goes stale and the timeout still
    fires.
    """
    done = threading.Event()

    def beat() -> None:
        while not done.wait(HEARTBEAT_SECONDS):
            try:
                os.utime(claimed.path)
            except OSError:
                return

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        return run_cell_timed(claimed.fn, claimed.params, deps)
    finally:
        done.set()
        thread.join(timeout=5)
