"""Standalone spool worker: claim tasks, run cells, deliver via the store.

This is the long-running side of the distributed executor — what
``mobile-server worker --spool DIR --store DIR`` runs.  A worker needs
nothing but the two shared directories: tasks are claimed with an atomic
rename (see :mod:`repro.experiments.executors.spool`), the cell function
is resolved from its dotted path through the same registries every other
executor uses, dependency payloads are loaded from the store by digest,
and the computed payload is written back with one atomic
content-addressed save before the task is acked.

Failure containment: a cell that raises poisons *its task*, not the
worker — the traceback is acked back to the submitting orchestrator as a
``.failed.json`` file and the loop keeps draining.  A worker killed
mid-cell leaves only its claim file behind (the store save is atomic, so
no partial payload can exist); the claim is reclaimable.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ...core.store import MISSING, ResultsStore
from .base import find_group_runner, run_cell_timed
from .spool import TASK_VERSION, ClaimedTask, Spool

#: How often a computing worker freshens its claim file's mtime.  The
#: submitter reads this as liveness: a fresh claim defers its
#: no-progress timeout even when a cell outlasts it.
HEARTBEAT_SECONDS = 0.5

#: Fleet-wide cap on per-task hand-backs (the count travels in the task
#: file): past this, a dependency that never became readable fails the
#: task instead of bouncing it between workers forever.
MAX_HAND_BACKS = 50

__all__ = [
    "WorkerStats",
    "default_worker_id",
    "run_worker",
]


@dataclass
class WorkerStats:
    """What one :func:`run_worker` loop did before exiting."""

    completed: int = 0
    failed: int = 0
    #: Tasks acked without computing (their payload was already stored).
    skipped: int = 0
    #: Tasks handed back (reclaimed) because a dependency payload was not
    #: readable from the store yet — the submitter re-publishes missing
    #: dependency entries, so these come around again.
    retried: int = 0
    #: Multi-task waves drained through a cell function's group runner
    #: (``--batch`` > 1), and how many tasks each wave carried.
    waves: int = 0
    wave_sizes: list[int] = field(default_factory=list)

    @property
    def claimed(self) -> int:
        return self.completed + self.failed + self.skipped


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    spool: str | Path | Spool,
    store: str | Path | ResultsStore,
    *,
    worker_id: str | None = None,
    poll: float = 0.1,
    max_tasks: int | None = None,
    idle_exit: float | None = None,
    batch: int = 1,
    progress: Callable[[str], None] | None = None,
) -> WorkerStats:
    """Drain tasks from ``spool`` until told (or timed out) to stop.

    Parameters
    ----------
    worker_id:
        Name under which claims and acks are filed (default:
        ``hostname-pid``).
    poll:
        Seconds to sleep between scans of an empty spool.
    max_tasks:
        Exit after claiming this many tasks (``None``: unbounded).
    idle_exit:
        Exit after this many consecutive seconds without finding a task
        (``None``: wait forever).  A ``STOP`` file in the spool directory
        (:meth:`Spool.request_stop`) always ends the loop.
    batch:
        Claim up to this many pending tasks per scan and drain the ones
        whose cell function declares a group runner through **one** wave
        call (cross-cell mega-batching inside the worker).  Digests,
        acks, store writes and payload bytes are unchanged — per-task
        timings become proportional shares of the wave — so batched
        fleet runs still cache-hit ``--jobs 1 --no-fuse`` inline runs.
        ``1`` (the default) preserves the historic task-at-a-time loop.
    progress:
        Optional callback for human-readable per-task status lines.
    """
    if batch < 1:
        raise ValueError(f"batch must be at least 1, got {batch}")
    spool = spool if isinstance(spool, Spool) else Spool(spool)
    store = store if isinstance(store, ResultsStore) else ResultsStore(store)
    wid = worker_id or default_worker_id()
    say = progress or (lambda message: None)
    stats = WorkerStats()
    idle_since = time.monotonic()
    # Honour only STOPs requested after (or just before) this worker came
    # up: a stale STOP from a previous sweep's shutdown must not kill a
    # freshly started fleet.  The reference time comes from the spool's
    # own filesystem clock (skew-free on network mounts); the 1s grace
    # absorbs coarse mtime granularity.
    started_at = spool.timestamp() - 1.0

    while True:
        if spool.stop_requested(since=started_at):
            say("stop requested; exiting")
            break
        # The idle budget runs from the last *productive* action (a task
        # acked, or startup) — handed-back tasks do not reset it, so an
        # orphaned task whose submitter died cannot keep a worker
        # claim/reclaim-looping past --idle-exit.
        if idle_exit is not None and time.monotonic() - idle_since > idle_exit:
            say(f"idle for {idle_exit:.0f}s; exiting")
            break
        # The claim budget is enforced *before* claiming, so max_tasks=0
        # really claims nothing (hand-backs count toward it too: an
        # orphan task must not loop a bounded worker forever).
        if max_tasks is not None and stats.claimed + stats.retried >= max_tasks:
            say(f"claimed {stats.claimed + stats.retried} task(s); exiting")
            break
        claimed = spool.claim(wid)
        if claimed is None:
            time.sleep(poll)
            continue
        claims = [claimed]
        while len(claims) < batch:
            # Respect the claim budget for every extra claim too — a
            # batched worker must not blow past --max-tasks mid-scan.
            if (max_tasks is not None
                    and stats.claimed + stats.retried + len(claims) >= max_tasks):
                break
            extra = spool.claim(wid)
            if extra is None:
                break
            claims.append(extra)
        acked = _process_batch(claims, spool, store, wid, stats, say)
        if acked:
            # Idleness starts *after* the task finishes — a long cell
            # must not eat into the idle budget of the following poll.
            idle_since = time.monotonic()
        else:
            # The task went back to pending (dependency not readable
            # yet): give the submitter a beat to republish the missing
            # entry rather than spinning hot on the same claim.
            time.sleep(poll)
    return stats


#: Sentinel: the task was handed back to the spool (dependency pending).
_HANDED_BACK = object()


def _process_batch(claims: "list[ClaimedTask]", spool: Spool, store: ResultsStore,
                   wid: str, stats: WorkerStats,
                   say: Callable[[str], None]) -> int:
    """Drain one scan's worth of claimed tasks; returns how many were acked.

    Per-task pre-checks (task version, already-stored shortcut, dependency
    readability) run exactly as in the task-at-a-time loop; the surviving
    tasks are then partitioned by cell function, and functions declaring a
    :func:`find_group_runner` batch entry point drain through **one**
    group call per function — the worker-side counterpart of the inline
    executor's waves.  Every path still writes exactly one ack (or
    hand-back) per task, with unchanged digests and payload bytes.
    """
    try:
        acked = 0
        ready: list[tuple[ClaimedTask, dict | None]] = []
        for claimed in claims:
            version = claimed.task.get("version")
            if version != TASK_VERSION:
                # A mixed-version fleet: computing a payload under
                # semantics we do not understand would poison the shared
                # store under a valid content address — fail the task
                # cleanly instead.
                spool.ack_failed(
                    claimed,
                    error=f"task format version {version!r}; this worker "
                          f"understands {TASK_VERSION} — upgrade the older "
                          f"side of the fleet",
                    worker_id=wid)
                stats.failed += 1
                say(f"failed {claimed.key}: task format version {version!r}")
                acked += 1
                continue
            if not claimed.overwrite and store.load_or_none(claimed.digest, MISSING) is not MISSING:
                # Another worker (or a previous run) already delivered
                # this cell (--rerun submissions skip this shortcut: they
                # must recompute).
                spool.ack_done(claimed, elapsed=0.0, worker_id=wid)
                stats.skipped += 1
                say(f"skipped {claimed.key} (already in store)")
                acked += 1
                continue
            try:
                deps = _load_deps(claimed, spool, store, stats, say)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                spool.ack_failed(claimed, error=traceback.format_exc(),
                                 worker_id=wid)
                stats.failed += 1
                say(f"failed {claimed.key}: {exc}")
                acked += 1
                continue
            if deps is _HANDED_BACK:
                continue
            ready.append((claimed, deps))

        singles: list[tuple[ClaimedTask, dict | None]] = []
        grouped: dict[str, list[tuple[ClaimedTask, dict | None]]] = {}
        for claimed, deps in ready:
            if len(ready) > 1 and find_group_runner(claimed.fn) is not None:
                grouped.setdefault(claimed.fn, []).append((claimed, deps))
            else:
                singles.append((claimed, deps))
        for fn, group in grouped.items():
            if len(group) == 1:
                singles.extend(group)  # a wave of one is just overhead
                continue
            acked += _run_wave(fn, group, spool, store, wid, stats, say)
        for claimed, deps in singles:
            acked += _run_single(claimed, deps, spool, store, wid, stats, say)
        return acked
    except (KeyboardInterrupt, SystemExit):
        # Interactive shutdown mid-batch: hand every still-held claim
        # back (acked/handed-back tasks have no claim file left; tasks
        # the inner handlers already reclaimed likewise).
        for claimed in claims:
            try:
                if claimed.path.exists():
                    spool.reclaim(claimed.path)
            except OSError:
                pass
        raise


def _load_deps(claimed: "ClaimedTask", spool: Spool, store: ResultsStore,
               stats: WorkerStats, say: Callable[[str], None]):
    """Resolve a task's dependency payloads from the store.

    Returns the ``deps`` mapping (``None`` when the task has none), or
    :data:`_HANDED_BACK` after re-queueing the task because a dependency
    entry is unreadable (e.g. a torn copy that
    :meth:`~repro.core.store.ResultsStore.load_or_none` just dropped) —
    that is *retryable*: the submitter holds the payload in memory and
    republishes the entry, so it must not fail the sweep.
    """
    if not claimed.deps:
        return None
    deps = {}
    for local, dep_digest in claimed.deps.items():
        dep_payload = store.load_or_none(dep_digest, MISSING)
        if dep_payload is MISSING:
            if claimed.retries >= MAX_HAND_BACKS:
                # Nobody managed to (re)publish the dep across many
                # hand-backs — e.g. a corrupt entry on a share this
                # worker cannot repair.  Fail the task visibly rather
                # than bouncing it forever.
                raise LookupError(
                    f"dependency {local!r} of {claimed.key!r} "
                    f"({dep_digest[:12]}…) still unreadable after "
                    f"{claimed.retries} hand-backs")
            spool.hand_back(claimed)
            stats.retried += 1
            say(f"waiting on dependency {local!r} of {claimed.key} "
                f"({dep_digest[:12]}…); task handed back")
            return _HANDED_BACK
        deps[local] = dep_payload
    return deps


def _run_single(claimed: "ClaimedTask", deps, spool: Spool, store: ResultsStore,
                wid: str, stats: WorkerStats, say: Callable[[str], None]) -> int:
    """Compute one task; exactly one ack (or reclaim on shutdown)."""
    try:
        payload, elapsed = _with_heartbeat(
            [claimed.path],
            lambda: run_cell_timed(claimed.fn, claimed.params, deps))
        store.save(claimed.digest, payload,
                   extra_meta={"key": claimed.key, "fn": claimed.fn,
                               "elapsed": elapsed, "worker": wid})
        spool.ack_done(claimed, elapsed=elapsed, worker_id=wid)
        stats.completed += 1
        say(f"completed {claimed.key} ({elapsed:.2f}s)")
        return 1
    except (KeyboardInterrupt, SystemExit):
        # Interactive shutdown: hand the task back instead of failing it.
        spool.reclaim(claimed.path)
        raise
    except Exception as exc:
        spool.ack_failed(claimed, error=traceback.format_exc(), worker_id=wid)
        stats.failed += 1
        say(f"failed {claimed.key}: {exc}")
        return 1


def _run_wave(fn: str, group: "list[tuple[ClaimedTask, dict | None]]",
              spool: Spool, store: ResultsStore, wid: str,
              stats: WorkerStats, say: Callable[[str], None]) -> int:
    """Drain several same-function tasks through one group-runner call.

    Payload bytes are bit-identical to per-task execution by the group
    runner's contract; each task keeps its own store digest and ack, with
    a proportional share of the wave's wall-clock as its timing.  A wave
    that raises falls back to per-task execution so one poisoned cell
    fails only its own task, never its wave-mates.
    """
    runner = find_group_runner(fn)
    tasks = [claimed for claimed, _ in group]
    try:
        calls = [(claimed.params, deps) for claimed, deps in group]
        t0 = time.perf_counter()
        payloads = _with_heartbeat([c.path for c in tasks], lambda: runner(calls))
        share = (time.perf_counter() - t0) / len(group)
    except (KeyboardInterrupt, SystemExit):
        for claimed in tasks:
            spool.reclaim(claimed.path)
        raise
    except Exception:
        say(f"wave of {len(group)} {fn} task(s) failed; retrying individually")
        return sum(_run_single(claimed, deps, spool, store, wid, stats, say)
                   for claimed, deps in group)
    stats.waves += 1
    stats.wave_sizes.append(len(group))
    for (claimed, _), payload in zip(group, payloads):
        store.save(claimed.digest, payload,
                   extra_meta={"key": claimed.key, "fn": claimed.fn,
                               "elapsed": share, "worker": wid})
        spool.ack_done(claimed, elapsed=share, worker_id=wid)
        stats.completed += 1
        say(f"completed {claimed.key} ({share:.2f}s, wave of {len(group)})")
    return len(group)


def _with_heartbeat(paths, thunk):
    """Run ``thunk`` while freshening every claim file's mtime.

    A claim's mtime is the worker's liveness signal: the submitter's
    no-progress timeout is deferred while it stays fresh, so a cell (or
    wave) that legitimately outlasts ``--spool-timeout`` does not fail
    the run — while a killed worker's claims go stale and the timeout
    still fires.
    """
    done = threading.Event()

    def beat() -> None:
        while not done.wait(HEARTBEAT_SECONDS):
            for path in paths:
                try:
                    os.utime(path)
                except OSError:
                    pass

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    try:
        return thunk()
    finally:
        done.set()
        thread.join(timeout=5)
