"""Pluggable execution backends for the experiment orchestrator.

``inline`` runs cells in-process, ``process`` fans them out over a local
pool, and ``spool`` hands them to external ``mobile-server worker``
processes through a shared task directory plus the content-addressed
results store.  All three are bit-identical; see
:mod:`repro.experiments.executors.base` for the contract.
"""

from .base import (
    EXECUTOR_NAMES,
    ExecutionContext,
    Executor,
    InlineExecutor,
    ProcessExecutor,
    find_group_runner,
    make_executor,
    resolve_callable,
    run_cell,
    run_cell_timed,
    run_group_timed,
)
from .spool import ClaimedTask, Spool, SpoolExecutor, SpoolTaskError
from .worker import WorkerStats, default_worker_id, run_worker

__all__ = [
    "EXECUTOR_NAMES",
    "ClaimedTask",
    "ExecutionContext",
    "Executor",
    "InlineExecutor",
    "ProcessExecutor",
    "Spool",
    "SpoolExecutor",
    "SpoolTaskError",
    "WorkerStats",
    "default_worker_id",
    "find_group_runner",
    "make_executor",
    "resolve_callable",
    "run_cell",
    "run_cell_timed",
    "run_group_timed",
    "run_worker",
]
