"""E13 — baseline cross-section: who wins where.

Part A runs every registered Euclidean algorithm on the 1-D standard
suite with certified DP ratios — the "who wins, by what factor" table the
paper's positioning implies (MtC robust everywhere; batch-then-jump and
lazy strategies break on drift; greedy over-pays movement when D is
large).

Part B anchors the classical Page-Migration substrate: Move-To-Min,
Coin-Flip, counter and greedy strategies versus the exact node DP on a
uniform complete graph and a random tree — their measured ratios should
sit near/below the classical constants (7, 3, 3).

Part C contrasts Double Coverage and greedy on the k-server line against
the configuration DP (DC ≤ k-competitive, greedy unbounded).
"""

from __future__ import annotations

import numpy as np

from ..algorithms import available_algorithms
from ..analysis import measure_ratio_batch
from ..offline import bracket_optimum
from ..kserver import double_coverage_line, greedy_kserver_line, offline_kserver_line
from ..pagemigration import (
    CoinFlipGraph,
    CountMoveTo,
    GreedyFollow,
    MoveToMinGraph,
    StaticPage,
    complete_uniform,
    offline_page_migration,
    random_tree,
    simulate_page_migration,
)
from ..workloads import standard_suite
from .runner import ExperimentResult, scaled

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rows = []
    notes = []
    ok = True

    # -- Part A: Euclidean algorithms on the 1-D suite ----------------------
    # All suite workloads share T, so each algorithm plays the whole suite
    # in one lock-step batched run; the per-instance DP brackets are solved
    # once and shared across every algorithm's measurement.
    T = scaled(300, scale, minimum=100)
    suite = standard_suite(T=T, dim=1, D=4.0, m=1.0)
    algs = [a for a in available_algorithms() if a != "mtc-moving-client"]
    delta = 0.5
    wl_names = list(suite)
    instances = [suite[n].generate(np.random.default_rng(seed)) for n in wl_names]
    brackets = [bracket_optimum(inst) for inst in instances]
    ratio_table = {}
    for alg_name in algs:
        measures = measure_ratio_batch(instances, alg_name, delta=delta, brackets=brackets)
        for wl_name, meas in zip(wl_names, measures):
            ratio_table[(wl_name, alg_name)] = meas.ratio_upper
    for wl_name in wl_names:
        for alg_name in algs:
            rows.append(["euclidean:" + wl_name, alg_name, ratio_table[(wl_name, alg_name)]])
    mtc_scores = {wl_name: ratio_table[(wl_name, "mtc")] for wl_name in wl_names}
    worst_mtc = max(mtc_scores.values())
    notes.append(f"MtC's worst certified ratio across the suite: {worst_mtc:.2f}")
    if worst_mtc > 25.0:
        ok = False

    # -- Part B: classical page migration vs node DP ------------------------
    rng = np.random.default_rng(seed)
    T_pm = scaled(400, scale, minimum=150)
    D_pm = 4.0
    for net_name, net in (
        ("complete(16)", complete_uniform(16)),
        ("tree(24)", random_tree(24, rng)),
    ):
        requests = rng.integers(0, net.n, size=T_pm)
        opt = offline_page_migration(net, requests, start=0, D=D_pm)
        for alg in (MoveToMinGraph(), CoinFlipGraph(rng=np.random.default_rng(seed)),
                    CountMoveTo(), GreedyFollow(), StaticPage()):
            res = simulate_page_migration(net, requests, alg, start=0, D=D_pm)
            ratio = res.total / max(opt.total, 1e-12)
            rows.append(["pagemigration:" + net_name, alg.name, ratio])
            if alg.name == "pm-move-to-min" and ratio > 7.5:
                ok = False
                notes.append(f"UNEXPECTED: Move-To-Min ratio {ratio:.2f} > 7 on {net_name}")

    # -- Part C: k-server on the line ----------------------------------------
    k = 3
    T_ks = scaled(60, scale, minimum=30)
    servers = np.array([-10.0, 0.0, 10.0])
    requests_ks = np.random.default_rng(seed).uniform(-12, 12, size=T_ks)
    opt_ks = offline_kserver_line(servers, requests_ks)
    dc = double_coverage_line(servers, requests_ks)
    gr = greedy_kserver_line(servers, requests_ks)
    rows.append(["kserver:line(k=3)", "double-coverage", dc.total / max(opt_ks, 1e-12)])
    rows.append(["kserver:line(k=3)", "greedy", gr.total / max(opt_ks, 1e-12)])
    if dc.total / max(opt_ks, 1e-12) > k + 0.5:
        ok = False
        notes.append("UNEXPECTED: Double Coverage exceeded its k-competitive bound")

    notes.append("criterion: MtC robust across the suite; classical constants respected "
                 "(Move-To-Min <= 7, DC <= k)")
    return ExperimentResult(
        experiment_id="E13",
        title="Baseline cross-section: Euclidean algorithms, classical page migration, k-server",
        headers=["setting", "algorithm", "ratio"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
