"""E13 — baseline cross-section: who wins where.

Part A runs every registered Euclidean algorithm on the 1-D standard
suite with certified DP ratios — the "who wins, by what factor" table the
paper's positioning implies (MtC robust everywhere; batch-then-jump and
lazy strategies break on drift; greedy over-pays movement when D is
large).  The algorithm list comes from the registry's capability
metadata (:func:`repro.algorithms.compatible_algorithms`), not from
hardcoded name exclusions.

Part B anchors the classical Page-Migration substrate: Move-To-Min,
Coin-Flip, counter and greedy strategies versus the exact node DP on a
uniform complete graph and a random tree — their measured ratios should
sit near/below the classical constants (7, 3, 3).

Part C contrasts Double Coverage and greedy on the k-server line against
the configuration DP (DC ≤ k-competitive, greedy unbounded).

Declared as an orchestrator sweep: the suite's DP brackets are solved in
one shared cell, each algorithm's lock-step batched run is its own cell
depending on it, and parts B/C are independent cells (B stays one cell —
both networks draw from a single RNG stream).
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ..algorithms import compatible_algorithms
from ..analysis import measure_ratio_batch
from ..offline import bracket_optimum
from ..kserver import double_coverage_line, greedy_kserver_line, offline_kserver_line
from ..pagemigration import (
    CoinFlipGraph,
    CountMoveTo,
    GreedyFollow,
    MoveToMinGraph,
    StaticPage,
    complete_uniform,
    offline_page_migration,
    random_tree,
    simulate_page_migration,
)
from ..workloads import standard_suite
from .orchestrator import SweepSpec, WorkUnit, execute_spec
from .runner import ExperimentResult, scaled

__all__ = ["build_spec", "finalize", "run"]

_MODULE = "repro.experiments.e13_baselines"
_DELTA = 0.5


def _suite_instances(T: int, seed: int):
    suite = standard_suite(T=T, dim=1, D=4.0, m=1.0)
    wl_names = list(suite)
    instances = [suite[n].generate(np.random.default_rng(seed)) for n in wl_names]
    return wl_names, instances


# -- cells -----------------------------------------------------------------


def cell_suite_brackets(T: int, seed: int) -> dict:
    """Per-instance DP brackets, shared by every algorithm's cell."""
    wl_names, instances = _suite_instances(T, seed)
    return {
        "wl_names": wl_names,
        "brackets": [bracket_optimum(inst).as_payload() for inst in instances],
    }


def cell_euclidean(algorithm: str, T: int, seed: int, deps: Mapping[str, Any]) -> dict:
    from ..offline.bounds import OptBracket

    wl_names, instances = _suite_instances(T, seed)
    brackets = [OptBracket.from_payload(p) for p in deps["suite-brackets"]["brackets"]]
    measures = measure_ratio_batch(instances, algorithm, delta=_DELTA, brackets=brackets)
    return {
        "wl_names": wl_names,
        "ratios": np.array([m.ratio_upper for m in measures], dtype=np.float64),
    }


def cell_page_migration(T: int, seed: int, D_pm: float) -> dict:
    """Both networks in one cell: they share a single RNG stream."""
    rng = np.random.default_rng(seed)
    entries = []
    for net_name, net in (
        ("complete(16)", complete_uniform(16)),
        ("tree(24)", random_tree(24, rng)),
    ):
        requests = rng.integers(0, net.n, size=T)
        opt = offline_page_migration(net, requests, start=0, D=D_pm)
        for alg in (MoveToMinGraph(), CoinFlipGraph(rng=np.random.default_rng(seed)),
                    CountMoveTo(), GreedyFollow(), StaticPage()):
            res = simulate_page_migration(net, requests, alg, start=0, D=D_pm)
            entries.append([net_name, alg.name, res.total / max(opt.total, 1e-12)])
    return {"entries": entries}


def cell_kserver(T: int, seed: int) -> dict:
    k = 3
    servers = np.array([-10.0, 0.0, 10.0])
    requests_ks = np.random.default_rng(seed).uniform(-12, 12, size=T)
    opt_ks = offline_kserver_line(servers, requests_ks)
    dc = double_coverage_line(servers, requests_ks)
    gr = greedy_kserver_line(servers, requests_ks)
    return {
        "k": k,
        "dc_ratio": dc.total / max(opt_ks, 1e-12),
        "greedy_ratio": gr.total / max(opt_ks, 1e-12),
    }


# -- spec ------------------------------------------------------------------


def _algorithms() -> list[str]:
    return compatible_algorithms(dim=1, moving_client=False)


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    T = scaled(300, scale, minimum=100)
    units: list[WorkUnit] = [WorkUnit(
        key="suite-brackets",
        fn=f"{_MODULE}:cell_suite_brackets",
        params={"T": T, "seed": seed},
    )]
    for alg_name in _algorithms():
        units.append(WorkUnit(
            key=f"euclidean/{alg_name}",
            fn=f"{_MODULE}:cell_euclidean",
            params={"algorithm": alg_name, "T": T, "seed": seed},
            deps=("suite-brackets",),
        ))
    units.append(WorkUnit(
        key="page-migration",
        fn=f"{_MODULE}:cell_page_migration",
        params={"T": scaled(400, scale, minimum=150), "seed": seed, "D_pm": 4.0},
    ))
    units.append(WorkUnit(
        key="kserver",
        fn=f"{_MODULE}:cell_kserver",
        params={"T": scaled(60, scale, minimum=30), "seed": seed},
    ))
    return SweepSpec("E13", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    rows = []
    notes = []
    ok = True

    # -- Part A: Euclidean algorithms on the 1-D suite ----------------------
    algs = _algorithms()
    wl_names = results[f"euclidean/{algs[0]}"]["wl_names"]
    ratio_table = {}
    for alg_name in algs:
        cell = results[f"euclidean/{alg_name}"]
        for wl_name, ratio in zip(cell["wl_names"], cell["ratios"]):
            ratio_table[(wl_name, alg_name)] = float(ratio)
    for wl_name in wl_names:
        for alg_name in algs:
            rows.append(["euclidean:" + wl_name, alg_name, ratio_table[(wl_name, alg_name)]])
    mtc_scores = {wl_name: ratio_table[(wl_name, "mtc")] for wl_name in wl_names}
    worst_mtc = max(mtc_scores.values())
    notes.append(f"MtC's worst certified ratio across the suite: {worst_mtc:.2f}")
    if worst_mtc > 25.0:
        ok = False

    # -- Part B: classical page migration vs node DP ------------------------
    for net_name, alg_name, ratio in results["page-migration"]["entries"]:
        rows.append(["pagemigration:" + net_name, alg_name, ratio])
        if alg_name == "pm-move-to-min" and ratio > 7.5:
            ok = False
            notes.append(f"UNEXPECTED: Move-To-Min ratio {ratio:.2f} > 7 on {net_name}")

    # -- Part C: k-server on the line ----------------------------------------
    ks = results["kserver"]
    rows.append(["kserver:line(k=3)", "double-coverage", ks["dc_ratio"]])
    rows.append(["kserver:line(k=3)", "greedy", ks["greedy_ratio"]])
    if ks["dc_ratio"] > ks["k"] + 0.5:
        ok = False
        notes.append("UNEXPECTED: Double Coverage exceeded its k-competitive bound")

    notes.append("criterion: MtC robust across the suite; classical constants respected "
                 "(Move-To-Min <= 7, DC <= k)")
    return ExperimentResult(
        experiment_id="E13",
        title="Baseline cross-section: Euclidean algorithms, classical page migration, k-server",
        headers=["setting", "algorithm", "ratio"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e13_baselines.run() is deprecated; E13 is declared as an "
        "orchestrator spec — use build_spec(scale, seed) or "
        "repro.experiments.run_all(['E13'])",
        DeprecationWarning, stacklevel=2,
    )
    return execute_spec(build_spec(scale, seed))
