"""E9 — Lemma 6 / Figures 1–2: the geometric inequality, numerically.

Three verification modes per δ (see :mod:`repro.analysis.lemma6`):

* ``paper/acute`` — the stated premise over the proof's configuration
  family (angle between s₂ and a₂ at most 90°): **zero violations**
  expected — this is Lemma 6 as proved;
* ``paper/all`` — the stated premise over *all* angles: exhibits the
  reproduction finding — marginal (≈δ²-relative) violations in the obtuse
  small-a₁ regime, where the true worst factor is √(1−ε²) rather than the
  proof's 1/√(1+ε²);
* ``repaired/all`` — the premise coefficient tightened to √δ/(1+δ):
  **zero violations** over all angles; this repair costs only constants
  inside Theorem 4's O(·).

The pass criterion covers the two zero-violation modes; the middle mode's
worst slack is reported as the finding.

Declared as an :class:`~repro.api.ExperimentSpec`: one function cell per
(δ, dim) grid point, folded by the ``e9/lemma6`` reducer.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

import numpy as np

from ..analysis import figure2_worst_case, sample_lemma6
from ..api import ExperimentSpec, Reduction, cell_grid, register_reducer
from .runner import ExperimentResult, scaled

__all__ = ["build_spec", "cell_modes", "run", "spec"]

_MODULE = "repro.experiments.e9_lemma6"
DELTAS = [1.0, 0.5, 0.25, 0.125, 0.0625]
DIMS = [1, 2, 3]


def cell_modes(delta: float, dim: int, n: int, seed: int) -> dict:
    """All three premise readings plus the Figure-2 frontier at one point."""
    acute = sample_lemma6(delta, n_samples=n, dim=dim, premise="paper",
                          acute_only=True, rng=np.random.default_rng(seed + dim))
    allang = sample_lemma6(delta, n_samples=n, dim=dim, premise="paper",
                           acute_only=False, rng=np.random.default_rng(seed + dim))
    repaired = sample_lemma6(delta, n_samples=n, dim=dim, premise="repaired",
                             acute_only=False, rng=np.random.default_rng(seed + dim))
    wc = figure2_worst_case(delta)
    return {
        "viol_acute": acute.violations,
        "viol_all": allang.violations,
        "min_rel_slack": allang.min_slack_relative,
        "viol_repaired": repaired.violations,
        "fig2_slack": wc.slack,
    }


@register_reducer("e9/lemma6", "Lemma 6 mode table + worst-finding note")
def _reduce(cells: Mapping[str, Any], *, points, config, scale: float,
            seed: int) -> Reduction:
    rows = []
    ok = True
    worst_finding = 0.0
    for key, point in points:
        c = cells[key]
        rows.append([point["delta"], point["dim"], c["viol_acute"], c["viol_all"],
                     c["min_rel_slack"], c["viol_repaired"], c["fig2_slack"]])
        if c["viol_acute"] or c["viol_repaired"]:
            ok = False
        worst_finding = min(worst_finding, c["min_rel_slack"])
    notes = [
        "criterion: zero violations for paper/acute (the lemma as proved) and repaired/all modes",
        "finding: the literal all-angle reading of Lemma 6 admits marginal violations "
        f"(worst relative slack {worst_finding:.2e}); premise sqrt(d)/(1+d) repairs it "
        "(slack 3/4 d^2 in the squared comparison), constants-only impact on Thm 4",
        "fig2_slack -> 0 confirms the 90-degree construction is the tight frontier",
    ]
    return Reduction(rows=rows, notes=notes, passed=ok)


def spec(scale: float = 1.0, seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="E9",
        title="Lemma 6 (Figs 1-2): premise => h-q >= (1+d/2)/(1+d) a1, three readings",
        headers=["delta", "dim", "viol(acute)", "viol(all)", "min_rel_slack(all)",
                 "viol(repaired)", "fig2_slack"],
        reducer="e9/lemma6",
        cells=cell_grid(f"{_MODULE}:cell_modes",
                        axes={"delta": DELTAS, "dim": DIMS},
                        common={"n": scaled(20000, scale, minimum=2000), "seed": seed}),
        scale=scale, seed=seed,
    )


def build_spec(scale: float = 1.0, seed: int = 0):
    return spec(scale, seed).to_sweep()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    warnings.warn(
        "repro.experiments.e9_lemma6.run() is deprecated; E9 is declared as an "
        "ExperimentSpec — use spec(scale, seed).run() or repro.experiments.run_all(['E9'])",
        DeprecationWarning, stacklevel=2,
    )
    return spec(scale, seed).run()
