"""E9 — Lemma 6 / Figures 1–2: the geometric inequality, numerically.

Three verification modes per δ (see :mod:`repro.analysis.lemma6`):

* ``paper/acute`` — the stated premise over the proof's configuration
  family (angle between s₂ and a₂ at most 90°): **zero violations**
  expected — this is Lemma 6 as proved;
* ``paper/all`` — the stated premise over *all* angles: exhibits the
  reproduction finding — marginal (≈δ²-relative) violations in the obtuse
  small-a₁ regime, where the true worst factor is √(1−ε²) rather than the
  proof's 1/√(1+ε²);
* ``repaired/all`` — the premise coefficient tightened to √δ/(1+δ):
  **zero violations** over all angles; this repair costs only constants
  inside Theorem 4's O(·).

The pass criterion covers the two zero-violation modes; the middle mode's
worst slack is reported as the finding.
"""

from __future__ import annotations

import numpy as np

from ..analysis import figure2_worst_case, sample_lemma6
from .runner import ExperimentResult, scaled

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    deltas = [1.0, 0.5, 0.25, 0.125, 0.0625]
    n = scaled(20000, scale, minimum=2000)
    rows = []
    ok = True
    worst_finding = 0.0
    for delta in deltas:
        for dim in (1, 2, 3):
            acute = sample_lemma6(delta, n_samples=n, dim=dim, premise="paper",
                                  acute_only=True, rng=np.random.default_rng(seed + dim))
            allang = sample_lemma6(delta, n_samples=n, dim=dim, premise="paper",
                                   acute_only=False, rng=np.random.default_rng(seed + dim))
            repaired = sample_lemma6(delta, n_samples=n, dim=dim, premise="repaired",
                                     acute_only=False, rng=np.random.default_rng(seed + dim))
            wc = figure2_worst_case(delta)
            rows.append([delta, dim, acute.violations, allang.violations,
                         allang.min_slack_relative, repaired.violations, wc.slack])
            if acute.violations or repaired.violations:
                ok = False
            worst_finding = min(worst_finding, allang.min_slack_relative)
    notes = [
        "criterion: zero violations for paper/acute (the lemma as proved) and repaired/all modes",
        "finding: the literal all-angle reading of Lemma 6 admits marginal violations "
        f"(worst relative slack {worst_finding:.2e}); premise sqrt(d)/(1+d) repairs it "
        "(slack 3/4 d^2 in the squared comparison), constants-only impact on Thm 4",
        "fig2_slack -> 0 confirms the 90-degree construction is the tight frontier",
    ]
    return ExperimentResult(
        experiment_id="E9",
        title="Lemma 6 (Figs 1-2): premise => h-q >= (1+d/2)/(1+d) a1, three readings",
        headers=["delta", "dim", "viol(acute)", "viol(all)", "min_rel_slack(all)",
                 "viol(repaired)", "fig2_slack"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
