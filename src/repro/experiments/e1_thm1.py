"""E1 — Theorem 1: no augmentation ⇒ ratio grows like √(T/D).

Runs MtC (the best algorithm we have) and the full-speed greedy baseline
against the Theorem-1 construction for a geometric sweep of ``T`` and
several ``D``; reports mean certified ratio lower bounds and the fitted
growth exponent in ``T``.

Reproduction criterion: fitted exponent ≈ 0.5 (we accept [0.35, 0.65]),
and ratios decrease with ``D`` at fixed ``T``.
"""

from __future__ import annotations

import numpy as np

from ..adversaries import build_thm1
from ..algorithms import GreedyCenter, MoveToCenter
from ..analysis import fit_power_law, measure_adversarial_ratio
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["run"]


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    Ts = [256, 1024, 4096]
    if scale > 1.5:
        Ts.append(16384)
    Ds = [1.0, 4.0]
    n_seeds = scaled(6, scale, minimum=3)
    rows = []
    exponents = {}
    for D in Ds:
        means = []
        for T in Ts:
            seeds = sweep_seeds(seed, n_seeds, stride=1000)
            mean_mtc, _ = measure_adversarial_ratio(
                lambda rng, T=T, D=D: build_thm1(T, D=D, rng=rng),
                MoveToCenter,
                delta=0.0,
                seeds=seeds,
            )
            mean_greedy, _ = measure_adversarial_ratio(
                lambda rng, T=T, D=D: build_thm1(T, D=D, rng=rng),
                GreedyCenter,
                delta=0.0,
                seeds=seeds,
            )
            rows.append([D, T, mean_mtc, mean_greedy, float(np.sqrt(T / D))])
            means.append(mean_mtc)
        fit = fit_power_law(np.array(Ts, dtype=float), np.array(means))
        exponents[D] = fit
    notes = [
        "criterion: ratio lower bound grows ~ sqrt(T/D) for every online algorithm (Thm 1)",
    ]
    ok = True
    for D, fit in exponents.items():
        notes.append(
            f"MtC exponent in T at D={D:g}: {fit.exponent:.3f} (R^2={fit.r_squared:.3f}); predicted 0.5"
        )
        if not (0.35 <= fit.exponent <= 0.65):
            ok = False
    return ExperimentResult(
        experiment_id="E1",
        title="Thm 1 lower bound: ratio ~ sqrt(T/D) without augmentation",
        headers=["D", "T", "ratio(MtC)", "ratio(greedy)", "sqrt(T/D)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )
