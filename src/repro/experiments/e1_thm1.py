"""E1 — Theorem 1: no augmentation ⇒ ratio grows like √(T/D).

Runs MtC (the best algorithm we have) and the full-speed greedy baseline
against the Theorem-1 construction for a geometric sweep of ``T`` and
several ``D``; reports mean certified ratio lower bounds and the fitted
growth exponent in ``T``.

Declared as an orchestrator sweep of :class:`~repro.api.Scenario` cells:
each (D, T, algorithm) point is one scenario over the registered
``thm1`` construction, executed through :func:`repro.api.run` (the
batched engine plays all seeds of a cell in lock-step, bit-identical to
the old scalar loop).

Reproduction criterion: fitted exponent ≈ 0.5 (we accept [0.35, 0.65]),
and ratios decrease with ``D`` at fixed ``T``.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from ..analysis import fit_power_law
from ..api import Scenario, scenario_unit
from .orchestrator import SweepSpec, execute_spec
from .runner import ExperimentResult, scaled, sweep_seeds

__all__ = ["build_spec", "finalize", "run"]

_MODULE = "repro.experiments.e1_thm1"
ALGORITHMS = ["mtc", "greedy-center"]


def _axes(scale: float) -> tuple[list[int], list[float], int]:
    Ts = [256, 1024, 4096]
    if scale > 1.5:
        Ts.append(16384)
    Ds = [1.0, 4.0]
    n_seeds = scaled(6, scale, minimum=3)
    return Ts, Ds, n_seeds


def _scenario(alg: str, T: int, D: float, n_seeds: int, seed: int) -> Scenario:
    return Scenario.adversary(
        "thm1",
        algorithm=alg,
        params={"T": T, "D": D},
        seeds=sweep_seeds(seed, n_seeds, stride=1000),
        delta=0.0,
        ratio="adversary",
        name=f"E1/{alg}/D={D:g}/T={T}",
    )


def build_spec(scale: float = 1.0, seed: int = 0) -> SweepSpec:
    Ts, Ds, n_seeds = _axes(scale)
    units = [
        scenario_unit(f"ratio/D={D:g}/T={T}/{alg}", _scenario(alg, T, D, n_seeds, seed))
        for D in Ds
        for T in Ts
        for alg in ALGORITHMS
    ]
    return SweepSpec("E1", tuple(units), finalize=f"{_MODULE}:finalize",
                     scale=scale, seed=seed)


def finalize(results: Mapping[str, Any], scale: float, seed: int) -> ExperimentResult:
    Ts, Ds, _ = _axes(scale)
    rows = []
    exponents = {}
    for D in Ds:
        means = []
        for T in Ts:
            mean_by_alg = {
                alg: float(np.asarray(results[f"ratio/D={D:g}/T={T}/{alg}"]["ratios"]).mean())
                for alg in ALGORITHMS
            }
            rows.append([D, T, mean_by_alg["mtc"], mean_by_alg["greedy-center"],
                         float(np.sqrt(T / D))])
            means.append(mean_by_alg["mtc"])
        exponents[D] = fit_power_law(np.array(Ts, dtype=float), np.array(means))
    notes = [
        "criterion: ratio lower bound grows ~ sqrt(T/D) for every online algorithm (Thm 1)",
    ]
    ok = True
    for D, fit in exponents.items():
        notes.append(
            f"MtC exponent in T at D={D:g}: {fit.exponent:.3f} (R^2={fit.r_squared:.3f}); predicted 0.5"
        )
        if not (0.35 <= fit.exponent <= 0.65):
            ok = False
    return ExperimentResult(
        experiment_id="E1",
        title="Thm 1 lower bound: ratio ~ sqrt(T/D) without augmentation",
        headers=["D", "T", "ratio(MtC)", "ratio(greedy)", "sqrt(T/D)"],
        rows=rows,
        notes=notes,
        passed=ok,
    )


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    return execute_spec(build_spec(scale, seed))
