"""Numerical verification of Lemma 6 (and Figures 1/2).

Lemma 6 is the geometric heart of the upper-bound proof: with the
notation of Figure 1 (:math:`a_1 = d(P_{Alg}, P'_{Alg})`,
:math:`a_2 = d(P'_{Alg}, c)`, :math:`s_2 = d(P'_{Opt}, c)`,
:math:`h = d(P'_{Opt}, P_{Alg})`, :math:`q = d(P'_{Opt}, P'_{Alg})`, where
:math:`P'_{Alg}` lies on the segment from :math:`P_{Alg}` to :math:`c`),

.. math:: s_2 \\le \\frac{\\sqrt{\\delta}}{1 + \\delta/2}\\, a_2
          \\quad\\Longrightarrow\\quad
          h - q \\ge \\frac{1 + \\delta/2}{1 + \\delta}\\, a_1 .

The experiment samples the configuration space of Figure 1 exhaustively at
random — all scales and angles — keeps the samples satisfying the premise,
and checks the conclusion.  It also reports the *slack profile* and probes
the worst case (the 90°-angle construction of Figure 2), showing where the
bound is tight.  A violation count of zero is the reproduction target.

**Reproduction finding.**  The lemma's proof maximizes :math:`q` "by
setting the angle between :math:`s_2` and :math:`a_2` to 90 degrees"; for
*obtuse* placements of :math:`P'_{Opt}` (beyond 90°, which the fixed-
:math:`(h, s_2, a_1)` extremization does not cover) the true worst factor
as :math:`a_1 \\to 0` is :math:`\\sqrt{1 - \\varepsilon^2}` rather than the
proof's :math:`1/\\sqrt{1+\\varepsilon^2}` (:math:`\\varepsilon = s_2/a_2`),
and the stated conclusion fails by a relative margin of order
:math:`\\delta^2` (e.g. :math:`0.94301 < 0.94444` at :math:`\\delta = 1/8`).
Tightening the premise coefficient from :math:`\\sqrt\\delta/(1+\\delta/2)`
to :math:`\\sqrt\\delta/(1+\\delta)` repairs the lemma for *all* angles —
:math:`(1+\\delta)^2 - \\delta \\ge (1+\\delta/2)^2` holds with slack
:math:`\\tfrac34\\delta^2` — and only shifts constants inside the
:math:`O(\\cdot)` of Theorem 4.  :func:`sample_lemma6` therefore supports
three modes: the paper's premise restricted to the proof's acute
configurations (zero violations), the paper's premise over all angles
(exhibits the finding), and the repaired premise over all angles (zero
violations).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Lemma6Sample", "Lemma6Report", "sample_lemma6", "figure2_worst_case"]


@dataclass(frozen=True)
class Lemma6Sample:
    """One sampled configuration of Figure 1 (premise satisfied)."""

    a1: float
    a2: float
    s2: float
    h: float
    q: float
    slack: float  # (h - q) - bound * a1; Lemma 6 says slack >= 0


@dataclass
class Lemma6Report:
    """Result of a Lemma 6 sampling run.

    Attributes
    ----------
    n_checked:
        Samples satisfying the premise.
    violations:
        Samples with negative slack beyond tolerance (target: 0).
    min_slack:
        Smallest observed slack.
    min_slack_relative:
        Smallest slack normalised by ``a1`` (tightness measure; the
        Figure-2 construction drives this towards 0).
    """

    n_checked: int
    violations: int
    min_slack: float
    min_slack_relative: float


def _config_geometry(a1: float, a2: float, s2: float, angle_polar: float, angle_azim: float,
                     dim: int) -> tuple[float, float]:
    """Distances (h, q) for a concrete embedding of Figure 1.

    ``P_Alg`` at the origin, ``c`` at distance ``a1 + a2`` along +x (so
    ``P'_Alg`` sits between them at ``a1``), and ``P'_Opt`` at distance
    ``s2`` from ``c`` in the direction given by the sampled angles.
    """
    p_alg = np.zeros(dim)
    p_alg2 = np.zeros(dim)
    p_alg2[0] = a1
    c = np.zeros(dim)
    c[0] = a1 + a2
    u = np.zeros(dim)
    if dim == 1:
        u[0] = np.sign(np.cos(angle_polar)) or 1.0
    elif dim == 2:
        u[0], u[1] = np.cos(angle_polar), np.sin(angle_polar)
    else:
        u[0] = np.cos(angle_polar)
        u[1] = np.sin(angle_polar) * np.cos(angle_azim)
        u[2] = np.sin(angle_polar) * np.sin(angle_azim)
    p_opt2 = c + s2 * u
    h = float(np.linalg.norm(p_opt2 - p_alg))
    q = float(np.linalg.norm(p_opt2 - p_alg2))
    return h, q


def sample_lemma6(
    delta: float,
    n_samples: int = 10000,
    dim: int = 2,
    rng: np.random.Generator | None = None,
    tolerance: float = 1e-9,
    scale: float = 10.0,
    premise: str = "paper",
    acute_only: bool = False,
) -> Lemma6Report:
    """Randomly sample Figure-1 configurations and check Lemma 6.

    Parameters
    ----------
    delta:
        The augmentation parameter in the premise/conclusion constants.
    n_samples:
        Number of *accepted* samples (premise-satisfying) to check.
    dim:
        Embedding dimension (1, 2 or 3; the lemma is planar — any
        configuration spans at most a plane — but we verify embeddings).
    scale:
        Lengths are sampled log-uniformly up to this scale.
    premise:
        ``"paper"`` uses the stated coefficient
        :math:`\\sqrt\\delta/(1+\\delta/2)`; ``"repaired"`` uses the
        all-angle-valid :math:`\\sqrt\\delta/(1+\\delta)` (see module
        docstring).
    acute_only:
        Restrict :math:`P'_{Opt}` to the proof's configuration family —
        angle between :math:`s_2` and :math:`a_2` at most 90° (the
        component of the offset along the :math:`c`-ward axis is
        non-negative).
    """
    if not (0.0 < delta <= 1.0):
        raise ValueError("delta must lie in (0, 1]")
    if premise not in ("paper", "repaired"):
        raise ValueError(f"unknown premise {premise!r}")
    if rng is None:
        # Seeded fallback (reprolint RNG001): the Monte-Carlo verification
        # is reproducible by default; pass a Generator to vary the draw.
        rng = np.random.default_rng(0)
    if premise == "paper":
        bound_premise = np.sqrt(delta) / (1.0 + 0.5 * delta)
    else:
        bound_premise = np.sqrt(delta) / (1.0 + delta)
    bound_conclusion = (1.0 + 0.5 * delta) / (1.0 + delta)

    checked = 0
    violations = 0
    min_slack = np.inf
    min_rel = np.inf
    while checked < n_samples:
        batch = n_samples - checked
        a1 = np.exp(rng.uniform(np.log(1e-3), np.log(scale), size=batch))
        a2 = np.exp(rng.uniform(np.log(1e-3), np.log(scale), size=batch))
        # Premise: s2 <= bound_premise * a2 — sample inside it.
        s2 = rng.uniform(0.0, 1.0, size=batch) * bound_premise * a2
        if acute_only:
            # Offset direction within 90° of +x (the a2 axis away from the
            # servers): polar angle in [-pi/2, pi/2].
            polar = rng.uniform(-0.5 * np.pi, 0.5 * np.pi, size=batch)
        else:
            polar = rng.uniform(0.0, 2.0 * np.pi, size=batch)
        azim = rng.uniform(0.0, 2.0 * np.pi, size=batch)
        for i in range(batch):
            h, q = _config_geometry(a1[i], a2[i], s2[i], polar[i], azim[i], dim)
            slack = (h - q) - bound_conclusion * a1[i]
            checked += 1
            if slack < -tolerance * max(1.0, a1[i]):
                violations += 1
            if slack < min_slack:
                min_slack = slack
            rel = slack / a1[i]
            if rel < min_rel:
                min_rel = rel
    return Lemma6Report(
        n_checked=checked,
        violations=violations,
        min_slack=float(min_slack),
        min_slack_relative=float(min_rel),
    )


def figure2_worst_case(delta: float, a1: float = 1.0, a2: float = 1.0) -> Lemma6Sample:
    """The extremal configuration of Figure 2 (right angle at ``c``).

    With the premise at equality (:math:`s_2 = \\frac{\\sqrt\\delta}{1+\\delta/2} a_2`)
    and the angle between :math:`s_2` and :math:`a_2` at 90°, the proof's
    estimate of :math:`h - q` is tight up to its algebraic relaxations;
    this function returns that configuration's actual slack for tightness
    reporting.
    """
    s2 = np.sqrt(delta) / (1.0 + 0.5 * delta) * a2
    # Right angle: place c at origin, P'_Alg at (-a2, 0), P_Alg at
    # (-(a1+a2), 0), P'_Opt at (0, s2).
    h = float(np.hypot(a1 + a2, s2))
    q = float(np.hypot(a2, s2))
    bound_conclusion = (1.0 + 0.5 * delta) / (1.0 + delta)
    slack = (h - q) - bound_conclusion * a1
    return Lemma6Sample(a1=a1, a2=a2, s2=s2, h=h, q=q, slack=slack)
