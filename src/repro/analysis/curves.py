"""Competitive-ratio curves over time.

Theorem 4's qualitative content is that MtC's ratio is *bounded
independent of T*; the most direct way to see it is the running ratio

.. math:: t \\mapsto \\frac{C_{Alg}(1..t)}{C_{Opt}(1..t)}

flattening out.  :func:`ratio_curve` computes it from an algorithm trace
and a reference (OPT or adversary) trajectory, and
:func:`separation_curve` tracks the server separation
:math:`d(P^{Alg}_t, P^{Opt}_t)` — the quantity the potential function
controls, useful for visualising why un-augmented algorithms lose
(separation ratchets up and never recovers).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MSPInstance
from ..core.simulator import replay_cost
from ..core.trace import Trace

__all__ = ["ratio_curve", "separation_curve"]


def ratio_curve(
    instance: MSPInstance,
    alg_trace: Trace,
    reference_positions: np.ndarray,
    burn_in: int = 1,
) -> np.ndarray:
    """Running ratio of cumulative costs, ``(T,)``.

    Entries before ``burn_in`` or with zero reference cost are ``nan`` (no
    meaningful ratio yet).
    """
    ref = replay_cost(instance, reference_positions)
    num = alg_trace.cumulative_costs()
    den = ref.cumulative_costs()
    out = np.full(alg_trace.length, np.nan)
    mask = (den > 0) & (np.arange(alg_trace.length) >= burn_in)
    out[mask] = num[mask] / den[mask]
    return out


def separation_curve(alg_trace: Trace, reference_positions: np.ndarray) -> np.ndarray:
    """Per-step distance between the two servers, ``(T + 1,)``."""
    ref = np.asarray(reference_positions, dtype=np.float64)
    if ref.shape != alg_trace.positions.shape:
        if ref.shape[0] == alg_trace.positions.shape[0] - 1:
            ref = np.vstack([alg_trace.positions[0][None, :], ref])
        else:
            raise ValueError("reference trajectory shape mismatch")
    diff = alg_trace.positions - ref
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))
