"""Summary statistics and bootstrap confidence intervals.

The lower-bound constructions are randomized (Yao instances) and some
algorithms are randomized too, so every reported ratio is a mean over
seeds; the bootstrap CI quantifies the sampling noise without normality
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "bootstrap_ci"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} med={self.median:.4g} max={self.maximum:.4g}"
        )


def summarize(data: np.ndarray) -> Summary:
    """Summary statistics of a non-empty 1-D sample."""
    data = np.asarray(data, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        median=float(np.median(data)),
        maximum=float(data.max()),
    )


def bootstrap_ci(
    data: np.ndarray,
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of a sample."""
    data = np.asarray(data, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must lie in (0, 1)")
    if rng is None:
        rng = np.random.default_rng(0)
    idx = rng.integers(0, data.size, size=(n_boot, data.size))
    means = data[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha)))
