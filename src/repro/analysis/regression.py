"""Growth-rate fits for the lower-bound experiments.

The lower-bound theorems predict *growth rates* — ratio
:math:`\\propto \\sqrt{T}`, :math:`\\propto 1/\\delta`,
:math:`\\propto r/D` — and the reproduction criterion is that measured
ratios exhibit those exponents/slopes.  This module provides the
log–log exponent fit and an ordinary linear fit, both with :math:`R^2`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FitResult", "fit_power_law", "fit_linear"]


@dataclass(frozen=True)
class FitResult:
    """A least-squares fit.

    Attributes
    ----------
    slope, intercept:
        Fitted coefficients.  For :func:`fit_power_law` the model is
        ``log y = slope * log x + intercept`` — ``slope`` *is* the
        exponent and ``exp(intercept)`` the prefactor.
    r_squared:
        Coefficient of determination in the fitted (possibly log) space.
    """

    slope: float
    intercept: float
    r_squared: float

    @property
    def exponent(self) -> float:
        """Alias for ``slope`` when used as a power-law fit."""
        return self.slope

    @property
    def prefactor(self) -> float:
        return float(np.exp(self.intercept))


def _least_squares(x: np.ndarray, y: np.ndarray) -> FitResult:
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D arrays")
    if x.size < 2:
        raise ValueError("need at least two points to fit")
    A = np.vstack([x, np.ones_like(x)]).T
    coef, *_ = np.linalg.lstsq(A, y, rcond=None)
    pred = A @ coef
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitResult(slope=float(coef[0]), intercept=float(coef[1]), r_squared=r2)


def fit_power_law(x: np.ndarray, y: np.ndarray) -> FitResult:
    """Fit ``y ≈ prefactor * x^exponent`` by least squares in log–log space.

    All inputs must be strictly positive.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires strictly positive data")
    return _least_squares(np.log(x), np.log(y))


def fit_linear(x: np.ndarray, y: np.ndarray) -> FitResult:
    """Ordinary least-squares line ``y ≈ slope * x + intercept``."""
    return _least_squares(np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64))
