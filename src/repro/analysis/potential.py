"""Empirical verification of the paper's potential-function argument.

Sections 4.1 (:math:`r > D`) and 4.2 (:math:`r \\le D`) prove, case by
case, a per-step amortised inequality

.. math:: C_{Alg}(t) + \\Delta\\phi(t) \\;\\le\\; K \\cdot C_{Opt}(t)

with :math:`K = O(1/\\delta^{3/2})` in the plane and :math:`O(1/\\delta)` on
the line, where the potential is

.. math:: \\phi(P_{Opt}, P_{Alg}) = \\begin{cases}
      \\kappa \\frac{r}{\\delta m} d(P_{Opt}, P_{Alg})^2
          & d(P_{Opt}, P_{Alg}) > \\delta \\frac{Dm}{4r} \\\\
      \\lambda D\\, d(P_{Opt}, P_{Alg}) & \\text{otherwise}
  \\end{cases}

with :math:`(\\kappa, \\lambda) = (8, 2)` for :math:`r > D` and
:math:`(16, 4)` for :math:`r \\le D`.

:class:`PotentialTracker` evaluates φ along an (algorithm trace, reference
trajectory) pair and reports every step's
:math:`(C_{Alg} + \\Delta\\phi) / C_{Opt}` together with the proof-case
bucket it falls into, so experiment E11 can exhibit the boundedness of the
amortised cost *numerically* — the closest one can get to "reproducing"
Theorem 4's proof by measurement.

The analysis applies verbatim to instances whose per-step requests are
co-located (Lemma 5 reduces the general case to this one at a constant
factor); pass instances through
:func:`repro.analysis.ratio.collapse_to_centers` first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import MSPInstance
from ..core.trace import Trace

__all__ = ["PotentialReport", "StepRecord", "potential_value", "verify_potential_argument"]


def potential_value(
    dist: float,
    r: int,
    D: float,
    delta: float,
    m: float,
) -> float:
    """The paper's potential φ for a server-separation ``dist``.

    Uses the Section-4.1 constants for ``r > D`` and the doubled
    Section-4.2 constants for ``r <= D``.
    """
    if delta <= 0:
        raise ValueError("the potential argument requires delta > 0")
    kappa, lam = (8.0, 2.0) if r > D else (16.0, 4.0)
    threshold = delta * D * m / (4.0 * max(r, 1))
    if dist > threshold:
        return kappa * (max(r, 1) / (delta * m)) * dist * dist
    return lam * D * dist


@dataclass(frozen=True)
class StepRecord:
    """One step of the amortised analysis.

    Attributes
    ----------
    t:
        Step index.
    alg_cost, opt_cost:
        The two players' step costs.
    dphi:
        Potential difference :math:`\\phi_t - \\phi_{t-1}`.
    amortised:
        :math:`C_{Alg}(t) + \\Delta\\phi(t)`.
    k:
        ``amortised / opt_cost`` (``inf`` when ``opt_cost == 0`` and the
        amortised cost is positive; such steps are counted as violations
        unless the amortised cost is ≤ tolerance).
    case:
        Proof-case bucket label (based on p, q versus the potential
        threshold and the catch-up margin).
    """

    t: int
    alg_cost: float
    opt_cost: float
    dphi: float
    amortised: float
    k: float
    case: str


@dataclass
class PotentialReport:
    """Aggregate of the per-step amortised analysis.

    Attributes
    ----------
    records:
        All step records.
    max_k:
        Largest finite per-step ``k``.
    violations:
        Steps where ``opt_cost == 0`` but the amortised cost exceeded
        tolerance (the proof predicts none).
    total_alg, total_opt:
        Summed costs (for the telescoped global bound).
    """

    records: list[StepRecord]
    max_k: float
    violations: list[StepRecord]
    total_alg: float
    total_opt: float

    @property
    def amortised_ratio(self) -> float:
        """Telescoped bound: (ΣC_Alg + φ_T - φ_0) / ΣC_Opt."""
        dphi_total = sum(rec.dphi for rec in self.records)
        if self.total_opt <= 0:
            return float("inf")
        return (self.total_alg + dphi_total) / self.total_opt

    def k_quantile(self, q: float) -> float:
        ks = [rec.k for rec in self.records if np.isfinite(rec.k)]
        if not ks:
            return 0.0
        return float(np.quantile(ks, q))


def _case_label(p: float, q: float, h: float, threshold: float, delta: float, m: float) -> str:
    """Bucket a step into the proof's case structure (Section 4.1)."""
    if p <= threshold and q <= threshold:
        return "1:both-small"
    if p > threshold and q <= threshold:
        return "2:p-large-q-small"
    if q - h <= -(1.0 + 0.5 * delta) * m:
        return "3:fast-approach"
    if p >= 4.0 * m:
        return "4:far"
    return "5:near"


def verify_potential_argument(
    instance: MSPInstance,
    alg_trace: Trace,
    opt_positions: np.ndarray,
    delta: float,
    tolerance: float = 1e-9,
) -> PotentialReport:
    """Evaluate the amortised inequality along a run.

    Parameters
    ----------
    instance:
        The (co-located-requests) instance both trajectories played.
    alg_trace:
        The online algorithm's trace.
    opt_positions:
        ``(T + 1, d)`` reference trajectory (e.g. the DP optimum); its
        costs are recomputed here under the instance's accounting.
    delta:
        The augmentation the online algorithm used (sets the potential's
        scale).
    """
    from ..core.simulator import replay_cost

    opt_trace = replay_cost(instance, opt_positions)
    T = alg_trace.length
    if opt_trace.length != T:
        raise ValueError("trajectory length mismatch")
    m = instance.m
    D = instance.D
    counts = instance.requests.counts

    records: list[StepRecord] = []
    violations: list[StepRecord] = []
    max_k = 0.0
    for t in range(T):
        r = int(counts[t]) if counts[t] > 0 else 1
        threshold = delta * D * m / (4.0 * r)
        p = float(np.linalg.norm(opt_trace.positions[t] - alg_trace.positions[t]))
        q = float(np.linalg.norm(opt_trace.positions[t + 1] - alg_trace.positions[t + 1]))
        h = float(np.linalg.norm(opt_trace.positions[t + 1] - alg_trace.positions[t]))
        phi_before = potential_value(p, r, D, delta, m)
        phi_after = potential_value(q, r, D, delta, m)
        dphi = phi_after - phi_before
        alg_cost = float(alg_trace.step_costs[t])
        opt_cost = float(opt_trace.step_costs[t])
        amortised = alg_cost + dphi
        if opt_cost > tolerance:
            k = amortised / opt_cost
        else:
            k = float("inf") if amortised > tolerance else 0.0
        rec = StepRecord(
            t=t,
            alg_cost=alg_cost,
            opt_cost=opt_cost,
            dphi=dphi,
            amortised=amortised,
            k=k,
            case=_case_label(p, q, h, threshold, delta, m),
        )
        records.append(rec)
        if np.isfinite(k):
            max_k = max(max_k, k)
        elif amortised > tolerance:
            violations.append(rec)
    return PotentialReport(
        records=records,
        max_k=max_k,
        violations=violations,
        total_alg=alg_trace.total_cost,
        total_opt=opt_trace.total_cost,
    )
