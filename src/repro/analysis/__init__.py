"""Analysis utilities: ratios, potentials, geometry lemmas, fits, tables."""

from .curves import ratio_curve, separation_curve
from .lemma6 import Lemma6Report, Lemma6Sample, figure2_worst_case, sample_lemma6
from .potential import (
    PotentialReport,
    StepRecord,
    potential_value,
    verify_potential_argument,
)
from .ratio import (
    RatioMeasurement,
    collapse_to_centers,
    measure_adversarial_ratio,
    measure_adversarial_ratio_batch,
    measure_ratio,
    measure_ratio_batch,
    measures_from_payload,
    measures_to_payload,
)
from .regression import FitResult, fit_linear, fit_power_law
from .stats import Summary, bootstrap_ci, summarize
from .tables import render_table, to_csv

__all__ = [
    "FitResult",
    "Lemma6Report",
    "Lemma6Sample",
    "PotentialReport",
    "RatioMeasurement",
    "StepRecord",
    "Summary",
    "bootstrap_ci",
    "collapse_to_centers",
    "figure2_worst_case",
    "fit_linear",
    "fit_power_law",
    "measure_adversarial_ratio",
    "measure_adversarial_ratio_batch",
    "measures_from_payload",
    "measures_to_payload",
    "measure_ratio",
    "measure_ratio_batch",
    "potential_value",
    "ratio_curve",
    "render_table",
    "sample_lemma6",
    "separation_curve",
    "summarize",
    "to_csv",
    "verify_potential_argument",
]
