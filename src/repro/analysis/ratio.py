"""Competitive-ratio measurement.

Two measurement modes:

* against a **bracketed optimum** (:func:`measure_ratio`): ratio is quoted
  as a certified interval ``[cost/upper, cost/lower]``;
* against an **adversary construction** (:func:`measure_adversarial_ratio`):
  the adversary's own cost upper-bounds OPT, so ``cost/adv_cost`` is a
  certified ratio *lower bound* — exactly what a lower-bound experiment
  needs.  Randomized constructions / algorithms are averaged over seeds.

Both modes have batched counterparts (:func:`measure_ratio_batch`,
:func:`measure_adversarial_ratio_batch`) that play all seeds/instances in
lock-step through :func:`repro.core.engine.simulate_batch` — one engine
pass instead of one Python simulation loop per seed — and return the same
per-instance measurements, so experiment sweeps switch between the paths
freely.

Also here: the Lemma-5 pairing helper (:func:`collapse_to_centers`), which
replaces each batch by ``r`` copies of its tie-broken center — the
simplified instances on which the paper's per-step analysis operates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..adversaries.base import AdversarialInstance
from ..algorithms.base import OnlineAlgorithm
from ..core.engine import AlgorithmSpec, simulate_batch
from ..core.instance import MSPInstance
from ..core.requests import RequestSequence
from ..core.simulator import simulate
from ..median import request_center
from ..offline.bounds import OptBracket, bracket_optimum

__all__ = [
    "RatioMeasurement",
    "measure_ratio",
    "measure_ratio_batch",
    "measure_adversarial_ratio",
    "measure_adversarial_ratio_batch",
    "measures_from_payload",
    "measures_to_payload",
    "collapse_to_centers",
]


@dataclass(frozen=True)
class RatioMeasurement:
    """A measured competitive ratio with certification bounds.

    Attributes
    ----------
    cost:
        Online algorithm's total cost.
    opt_lower, opt_upper:
        Certified bracket of the offline optimum.
    ratio_lower, ratio_upper:
        ``cost/opt_upper`` and ``cost/opt_lower``.
    algorithm:
        Name of the measured algorithm.
    """

    cost: float
    opt_lower: float
    opt_upper: float
    ratio_lower: float
    ratio_upper: float
    algorithm: str = ""

    @property
    def ratio(self) -> float:
        """Point estimate: cost over the bracket midpoint."""
        mid = 0.5 * (self.opt_lower + self.opt_upper)
        return self.cost / mid if mid > 0 else float("inf")


def measure_ratio(
    instance: MSPInstance,
    algorithm: OnlineAlgorithm,
    delta: float = 0.0,
    bracket: OptBracket | None = None,
    **bracket_kwargs,
) -> RatioMeasurement:
    """Simulate and divide by a bracketed offline optimum."""
    trace = simulate(instance, algorithm, delta=delta)
    if bracket is None:
        bracket = bracket_optimum(instance, **bracket_kwargs)
    lower = max(bracket.lower, 1e-300)
    upper = max(bracket.upper, 1e-300)
    return RatioMeasurement(
        cost=trace.total_cost,
        opt_lower=bracket.lower,
        opt_upper=bracket.upper,
        ratio_lower=trace.total_cost / upper,
        ratio_upper=trace.total_cost / lower,
        algorithm=algorithm.name,
    )


def measure_ratio_batch(
    instances: Sequence[MSPInstance],
    algorithm: AlgorithmSpec,
    delta: float = 0.0,
    brackets: Sequence[OptBracket] | None = None,
    **bracket_kwargs,
) -> list[RatioMeasurement]:
    """Batched :func:`measure_ratio`: one engine pass over ``B`` instances.

    All instances are simulated in lock-step through
    :func:`repro.core.engine.simulate_batch`; the offline bracket is still
    computed per instance (DP solves do not batch) unless precomputed
    ``brackets`` are supplied — useful when several algorithms are measured
    on the same instances.

    Returns one :class:`RatioMeasurement` per instance, in order.
    """
    instances = list(instances)
    if brackets is not None and len(brackets) != len(instances):
        raise ValueError("need exactly one bracket per instance")
    batch_trace = simulate_batch(instances, algorithm, delta=delta)
    costs = batch_trace.total_costs
    out = []
    for i, inst in enumerate(instances):
        bracket = brackets[i] if brackets is not None else bracket_optimum(inst, **bracket_kwargs)
        lower = max(bracket.lower, 1e-300)
        upper = max(bracket.upper, 1e-300)
        cost = float(costs[i])
        out.append(
            RatioMeasurement(
                cost=cost,
                opt_lower=bracket.lower,
                opt_upper=bracket.upper,
                ratio_lower=cost / upper,
                ratio_upper=cost / lower,
                algorithm=batch_trace.algorithm,
            )
        )
    return out


def measures_to_payload(measures: Sequence[RatioMeasurement]) -> dict:
    """Pack measurements for the orchestrator's results store (exact).

    All float fields travel as float64 arrays, so a measurement loaded
    back via :func:`measures_from_payload` is bit-identical to the one
    that was computed.
    """
    return {
        "algorithm": [m.algorithm for m in measures],
        "cost": np.array([m.cost for m in measures], dtype=np.float64),
        "opt_lower": np.array([m.opt_lower for m in measures], dtype=np.float64),
        "opt_upper": np.array([m.opt_upper for m in measures], dtype=np.float64),
        "ratio_lower": np.array([m.ratio_lower for m in measures], dtype=np.float64),
        "ratio_upper": np.array([m.ratio_upper for m in measures], dtype=np.float64),
    }


def measures_from_payload(payload: dict) -> list[RatioMeasurement]:
    """Inverse of :func:`measures_to_payload`."""
    return [
        RatioMeasurement(
            cost=float(payload["cost"][i]),
            opt_lower=float(payload["opt_lower"][i]),
            opt_upper=float(payload["opt_upper"][i]),
            ratio_lower=float(payload["ratio_lower"][i]),
            ratio_upper=float(payload["ratio_upper"][i]),
            algorithm=payload["algorithm"][i],
        )
        for i in range(len(payload["algorithm"]))
    ]


def measure_adversarial_ratio(
    build: Callable[[np.random.Generator], AdversarialInstance],
    algorithm_factory: Callable[[], OnlineAlgorithm],
    delta: float,
    seeds: Sequence[int],
) -> tuple[float, np.ndarray]:
    """Expected ratio of an algorithm against a randomized construction.

    Parameters
    ----------
    build:
        Draws one adversarial instance from a seeded generator.
    algorithm_factory:
        Fresh algorithm per seed (stateful algorithms must not leak state
        across draws).
    delta:
        Augmentation granted to the online algorithm.
    seeds:
        Instance seeds; the expected ratio is their mean.

    Returns
    -------
    (mean_ratio, per_seed_ratios)
    """
    ratios = np.empty(len(seeds))
    for i, seed in enumerate(seeds):
        adv = build(np.random.default_rng(seed))
        trace = simulate(adv.instance, algorithm_factory(), delta=delta)
        ratios[i] = adv.ratio_of(trace.total_cost)
    return float(ratios.mean()), ratios


def measure_adversarial_ratio_batch(
    build: Callable[[np.random.Generator], AdversarialInstance],
    algorithm: AlgorithmSpec,
    delta: float,
    seeds: Sequence[int],
) -> tuple[float, np.ndarray]:
    """Batched :func:`measure_adversarial_ratio`.

    Draws one adversarial instance per seed (the construction parameters
    must give every draw the same length ``T``) and plays all of them in
    one lock-step engine pass.  ``algorithm`` is an engine spec — registry
    name, scalar factory, or :class:`~repro.core.engine.VectorizedAlgorithm`
    — instantiated fresh per lane, so stateful and randomized algorithms
    behave exactly as in the scalar per-seed loop.
    """
    advs = [build(np.random.default_rng(seed)) for seed in seeds]
    costs = simulate_batch([adv.instance for adv in advs], algorithm, delta=delta).total_costs
    ratios = np.array([adv.ratio_of(float(c)) for adv, c in zip(advs, costs)])
    return float(ratios.mean()), ratios


def collapse_to_centers(instance: MSPInstance, server_hint: np.ndarray | None = None) -> MSPInstance:
    """Lemma 5's simplification: each batch becomes ``r`` copies of its center.

    The center is the tie-broken geometric median; since the true tie-break
    depends on the online server's position (unknown offline), the hint
    defaults to the instance start — for batches with unique medians (the
    typical case) the hint is irrelevant.
    """
    hint = np.asarray(server_hint if server_hint is not None else instance.start, dtype=np.float64)
    batches = []
    for t in range(instance.length):
        batch = instance.requests[t]
        if batch.count == 0:
            batches.append(np.empty((0, instance.dim)))
            continue
        c = request_center(batch.points, hint)
        batches.append(np.tile(c, (batch.count, 1)))
    seq = RequestSequence(batches, dim=instance.dim)
    return MSPInstance(
        seq,
        start=instance.start,
        D=instance.D,
        m=instance.m,
        cost_model=instance.cost_model,
        name=f"collapsed({instance.name})",
    )
