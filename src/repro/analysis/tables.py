"""Plain-text table rendering and CSV export.

The benchmark harness prints each experiment's table in a fixed-width
format (matplotlib is not a dependency); :func:`render_table` is the one
renderer every experiment uses, so outputs are uniform and greppable.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Sequence

__all__ = ["render_table", "to_csv"]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e5 or (abs(value) < 1e-3 and value != 0.0):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render a fixed-width text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; floats are formatted to ``precision``.
    title:
        Optional caption printed above the table.
    """
    str_rows = [[_fmt(v, precision) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """CSV string of the same table (for machine consumption)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()
