"""Command-line interface: ``python -m repro`` / ``mobile-server``.

Subcommands
-----------

``experiments``
    Run the reproduction experiments and print their tables
    (``--ids E1 E2 ...``, ``--scale`` to shrink/grow workloads,
    ``--csv DIR`` to also dump CSVs).  Sweeps go through the declarative
    orchestrator: ``--jobs N`` fans the pooled work units of all
    requested experiments out across processes, and completed cells are
    cached in a persistent content-addressed store (``--store DIR``), so
    a repeated or interrupted invocation only computes what is missing
    (``--resume``); ``--rerun`` forces recomputation.

``compare``
    Quick algorithm comparison on a named workload.  Algorithms are
    selected via the registry's capability metadata (dimension support,
    moving-client requirement).  With ``--batch B`` each algorithm plays
    ``B`` seeded instances in one lock-step pass of the batched engine
    and certified ratios are averaged (the offline brackets are solved
    once per instance and shared across algorithms).

``list``
    Show registered algorithms and workloads.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .core.store import ResultsStore
    from .experiments import EXPERIMENTS, run_all_detailed

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    ids = args.ids if args.ids else list(EXPERIMENTS)
    store = ResultsStore(args.store) if args.store else None
    report = run_all_detailed(ids, scale=args.scale, seed=args.seed,
                              jobs=args.jobs, store=store, rerun=args.rerun)
    results = report.results
    all_ok = True
    for res in results:
        print(res.render())
        print()
        if args.csv:
            out = Path(args.csv)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{res.experiment_id.lower()}.csv").write_text(res.csv())
        all_ok &= res.passed
    print(f"{sum(r.passed for r in results)}/{len(results)} experiments reproduced their predicted shape")
    if store is not None:
        verb = "resumed" if args.resume else "cached"
        print(f"store: {report.cached}/{report.total} work units {verb}, "
              f"{report.computed} computed ({store.root})")
    return 0 if all_ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from .algorithms import compatible_algorithms
    from .analysis import measure_ratio_batch, render_table
    from .offline import bracket_optimum
    from .workloads import standard_suite

    if args.batch < 1:
        print("--batch must be at least 1", file=sys.stderr)
        return 2
    suite = standard_suite(T=args.T, dim=args.dim, D=args.D, m=1.0)
    if args.workload not in suite:
        print(f"unknown workload {args.workload!r}; available: {', '.join(suite)}", file=sys.stderr)
        return 2
    instances = [
        suite[args.workload].generate(np.random.default_rng(args.seed + i))
        for i in range(args.batch)
    ]
    brackets = [bracket_optimum(inst) for inst in instances]
    rows = []
    # Plain MSP instances in args.dim dimensions: let the registry's
    # capability metadata pick the algorithms that can play them.
    for name in compatible_algorithms(dim=args.dim, moving_client=False):
        measures = measure_ratio_batch(instances, name, delta=args.delta, brackets=brackets)
        rows.append([
            name,
            float(np.mean([m.cost for m in measures])),
            float(np.mean([m.ratio_lower for m in measures])),
            float(np.mean([m.ratio_upper for m in measures])),
        ])
    rows.sort(key=lambda r: r[3])
    batch_tag = f", batch={args.batch}" if args.batch > 1 else ""
    print(render_table(
        ["algorithm", "cost", "ratio >=", "ratio <="],
        rows,
        title=f"{args.workload} (T={args.T}, dim={args.dim}, D={args.D}, "
              f"delta={args.delta}{batch_tag})",
    ))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .algorithms import available_algorithms
    from .experiments import EXPERIMENTS
    from .workloads import standard_suite

    print("algorithms:")
    for name in available_algorithms():
        print(f"  {name}")
    print("workloads:")
    for name in standard_suite():
        print(f"  {name}")
    print("experiments:")
    for eid in EXPERIMENTS:
        print(f"  {eid}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mobile-server",
        description="Reproduction of 'The Mobile Server Problem' (SPAA 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="run reproduction experiments")
    p_exp.add_argument("--ids", nargs="*", default=None, help="experiment ids (default: all)")
    p_exp.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--csv", type=str, default="", help="directory for CSV dumps")
    p_exp.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the experiment work units (default 1)")
    p_exp.add_argument("--store", type=str, default="results/store", metavar="DIR",
                       help="persistent results store; completed work units are "
                            "skipped on re-runs ('' disables caching)")
    p_exp.add_argument("--resume", action="store_true",
                       help="continue an interrupted grid from the store "
                            "(cell-level caching makes this the default; the flag "
                            "documents intent and labels the cache report)")
    p_exp.add_argument("--rerun", action="store_true",
                       help="recompute every work unit, overwriting store entries")
    p_exp.set_defaults(func=_cmd_experiments)

    p_cmp = sub.add_parser("compare", help="compare algorithms on a workload")
    p_cmp.add_argument("--workload", default="drift")
    p_cmp.add_argument("--T", type=int, default=300)
    p_cmp.add_argument("--dim", type=int, default=1)
    p_cmp.add_argument("--D", type=float, default=4.0)
    p_cmp.add_argument("--delta", type=float, default=0.5)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--batch", type=int, default=1, metavar="B",
                       help="play B seeded instances per algorithm in one batched "
                            "engine pass and average the certified ratios")
    p_cmp.set_defaults(func=_cmd_compare)

    p_list = sub.add_parser("list", help="list algorithms, workloads, experiments")
    p_list.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
