"""Command-line interface: ``python -m repro`` / ``mobile-server``.

Subcommands
-----------

``experiments``
    Run the reproduction experiments and print their tables
    (``--ids E1 E2 ...``, ``--scale`` to shrink/grow workloads,
    ``--csv DIR`` to also dump CSVs).  Sweeps go through the declarative
    orchestrator: ``--jobs N`` fans the pooled work units of all
    requested experiments out across processes, and completed cells are
    cached in a persistent content-addressed store (``--store DIR``), so
    a repeated or interrupted invocation only computes what is missing
    (``--resume``); ``--rerun`` forces recomputation.  The cache report
    includes per-cell wall-clock timing; ``--store-gc SIZE`` evicts
    least-recently-used store entries down to a size budget afterwards.

``run``
    Execute one declarative :class:`repro.api.Scenario` — a registered
    workload *or* adversary source plus an algorithm, seeds, δ and a
    certification mode — through the unified dispatcher and print the
    per-seed results.

``compare``
    Quick algorithm comparison on a named workload.  Each algorithm is
    one scenario over the same source and seeds; ``run_many`` shares the
    instances and offline brackets across all of them.  Algorithms are
    selected via the registry's capability metadata (dimension support,
    moving-client requirement, cost model).

``serve``
    Long-lived streaming mode: open per-client sessions, feed request
    steps as JSONL over stdin or TCP, and read positions/costs/traces
    incrementally.  Compatible sessions share cross-lane engine waves,
    state checkpoints ride the content-addressed store with atomic
    writes, and ``--resume`` replays checkpointed streams so completed
    traces are bit-identical to uninterrupted runs.

``list``
    Show registered algorithms, workloads, adversaries and experiments.

``lint``
    Run the :mod:`repro.devtools.lint` invariant linter (reprolint) over
    source paths: AST rules enforcing determinism (RNG001/CLK001),
    crash-safety (IO001), digest order-stability (DET001), kernel/
    registry/parity-test completeness (REG001) and public-surface
    hygiene (API001).  ``--list`` enumerates the rules, ``--json`` emits
    the machine schema; exit code 1 on findings makes it a CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _parse_size(text: str) -> int:
    """``"500M"``/``"2G"``/``"100K"``/plain bytes → byte count."""
    text = text.strip()
    factors = {"K": 1024, "M": 1024**2, "G": 1024**3}
    if text and text[-1].upper() in factors:
        return int(float(text[:-1]) * factors[text[-1].upper()])
    return int(text)


def _fmt_bytes(n: int) -> str:
    for unit, factor in (("G", 1024**3), ("M", 1024**2), ("K", 1024)):
        if n >= factor:
            return f"{n / factor:.1f}{unit}"
    return f"{n}B"


def _add_no_fuse_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-fuse", action="store_true",
                        help="disable the fused step kernels and cross-cell "
                             "mega-batching (the bit-identical reference path; "
                             "results are byte-for-byte the same either way)")


def _apply_no_fuse(args: argparse.Namespace) -> None:
    if getattr(args, "no_fuse", False):
        from .core import set_fusion

        set_fusion(False)


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    """The execution-backend flags shared by ``experiments`` and ``run``."""
    parser.add_argument("--executor", choices=["inline", "process", "spool"],
                        default=None,
                        help="execution backend (default: inline, or a local "
                             "process pool when --jobs > 1); 'spool' hands "
                             "cells to external 'mobile-server worker' "
                             "processes via --spool + --store")
    parser.add_argument("--spool", type=str, default="", metavar="DIR",
                        help="task directory for --executor spool (shared "
                             "with the workers)")
    parser.add_argument("--spool-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="fail a spool run when no worker makes progress "
                             "for this long (default: wait forever)")


def _run_distributed(call):
    """Run a sweep callable, mapping distributed failures to exit code 1.

    Returns ``(result, None)`` on success, ``(None, 1)`` after printing
    the one-line operational error (a worker's cell raised, or no worker
    made progress within ``--spool-timeout``) — not crashes, not usage
    errors.
    """
    from .experiments.executors import SpoolTaskError

    try:
        return call(), None
    except (SpoolTaskError, TimeoutError) as exc:
        print(f"distributed run failed: {exc}", file=sys.stderr)
        return None, 1


def _resolve_executor(args: argparse.Namespace, has_store: bool):
    """Build the executor for a ``--executor`` flag; (executor, error).

    The spool backend is the only one needing extra wiring: a spool
    directory shared with the workers and a persistent store for the
    payloads to travel through.
    """
    if args.executor != "spool":
        if args.spool or args.spool_timeout is not None:
            return None, ("--spool/--spool-timeout have no effect without "
                          "--executor spool (did you mean --executor spool?)")
        if args.executor == "inline" and args.jobs > 1:
            return None, "--executor inline runs cells sequentially; drop --jobs"
        if args.executor == "process" and args.jobs < 2:
            return None, ("--executor process needs a pool size: pass "
                          "--jobs N (N >= 2), or drop --executor for the "
                          "sequential default")
        return args.executor, None
    if args.jobs > 1:
        return None, ("--jobs has no effect with --executor spool "
                      "(parallelism = how many workers you start)")
    if not args.spool:
        return None, "--executor spool needs a task directory (--spool DIR)"
    if not has_store:
        return None, "--executor spool needs a persistent store (--store DIR)"
    from .experiments.executors import SpoolExecutor

    return SpoolExecutor(args.spool, timeout=args.spool_timeout), None


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .core.store import ResultsStore
    from .experiments import EXPERIMENTS, run_all_detailed

    _apply_no_fuse(args)
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    if args.store_gc is not None and not args.store:
        print("--store-gc needs a persistent store (--store DIR)", file=sys.stderr)
        return 2
    executor, error = _resolve_executor(args, has_store=bool(args.store))
    if error:
        print(error, file=sys.stderr)
        return 2
    ids = args.ids if args.ids else list(EXPERIMENTS)
    store = ResultsStore(args.store) if args.store else None
    report, error_code = _run_distributed(
        lambda: run_all_detailed(ids, scale=args.scale, seed=args.seed,
                                 jobs=args.jobs, store=store, rerun=args.rerun,
                                 executor=executor))
    if error_code:
        return error_code
    results = report.results
    all_ok = True
    for res in results:
        print(res.render())
        print()
        if args.csv:
            out = Path(args.csv)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{res.experiment_id.lower()}.csv").write_text(res.csv())
        all_ok &= res.passed
    print(f"{sum(r.passed for r in results)}/{len(results)} experiments reproduced their predicted shape")
    if store is not None:
        verb = "resumed" if args.resume else "cached"
        print(f"store: {report.cached}/{report.total} work units {verb}, "
              f"{report.computed} computed ({store.root})")
    if report.timings:
        slowest = ", ".join(f"{key} {secs:.2f}s" for key, secs in report.slowest(3))
        print(f"timing: {report.computed} cells computed in {report.compute_seconds:.2f}s; "
              f"slowest: {slowest}")
    if store is not None and args.store_gc is not None:
        stats = store.gc(args.store_gc)
        print(f"store-gc: evicted {stats.evicted} entries ({_fmt_bytes(stats.freed_bytes)} freed), "
              f"{stats.remaining_entries} entries ({_fmt_bytes(stats.remaining_bytes)}) remain")
    return 0 if all_ok else 1


def _parse_value(text: str):
    """One value: JSON if it parses, plain string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_params(pairs: list[str], axes: bool = False) -> dict:
    """``KEY=VALUE`` pairs; values parse as JSON, falling back to strings.

    With ``axes=True`` (the ``run --grid`` syntax) a comma-separated
    value like ``delta=0.1,0.2,0.5`` becomes a list — which
    :meth:`repro.api.Scenario.grid` expands into an axis (as does a JSON
    list value).
    """
    params = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"parameter {pair!r} must look like KEY=VALUE")
        if axes and "," in value:
            try:
                params[key] = json.loads(value)
            except json.JSONDecodeError:
                params[key] = [_parse_value(part) for part in value.split(",")]
        else:
            params[key] = _parse_value(value)
    return params


def _axis_arg(value: str, parse=str):
    """A top-level CLI axis: ``a,b,c`` → list, single value → scalar."""
    if "," in value:
        return [parse(part) for part in value.split(",")]
    return parse(value)


def _cmd_run_grid(args: argparse.Namespace) -> int:
    from .analysis import render_table
    from .api import Scenario, run_many
    from .core.store import ResultsStore

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    try:
        grid = Scenario.grid(
            source=_axis_arg(args.source),
            algorithm=_axis_arg(args.algorithm),
            params=_parse_params(args.param, axes=True),
            algorithm_params=_parse_params(args.alg_param, axes=True),
            seeds=tuple(args.seeds),
            delta=_axis_arg(args.delta, parse=float),
            cost_model=args.cost_model,
            metric=_axis_arg(args.metric),
            ratio=args.ratio,
            engine=args.engine,
        )
    except (ValueError, TypeError, KeyError) as exc:
        print(f"bad grid: {exc}", file=sys.stderr)
        return 2
    executor, error = _resolve_executor(args, has_store=bool(args.store))
    if error:
        print(error, file=sys.stderr)
        return 2
    store = ResultsStore(args.store) if args.store else None
    try:
        results, error_code = _run_distributed(
            lambda: run_many(list(grid.scenarios), store=store, jobs=args.jobs,
                             executor=executor))
    except (ValueError, TypeError, KeyError) as exc:
        print(f"bad grid: {exc}", file=sys.stderr)
        return 2
    if error_code:
        return error_code
    headers = [*grid.axes, "mean cost", "ratio >=", "ratio <="]
    rows = [[*point.values(), *res.table_columns()]
            for point, res in zip(grid.point_dicts(), results)]
    title = f"grid over {' x '.join(grid.axes) if grid.axes else '1 point'}, " \
            f"{len(args.seeds)} seed(s)"
    print(render_table(headers, rows, title=title))
    # Accounting comes from the run itself (RunResult.cached), so torn
    # entries that were silently recomputed never report as hits.
    hits = sum(res.cached for res in results)
    computed = len(grid) - hits
    cache_tag = f"{hits} cached, " if store is not None else ""
    print(f"  grid: {len(grid)} scenarios; {cache_tag}{computed} computed "
          f"(jobs={args.jobs})")
    if store is not None:
        print(f"  store: {store.root}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .adversaries import ADVERSARIES
    from .analysis import render_table
    from .api import Scenario, run_many
    from .core.store import ResultsStore
    from .workloads import WORKLOADS

    _apply_no_fuse(args)
    if args.grid:
        return _cmd_run_grid(args)
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    if args.source in WORKLOADS:
        kind = "workload"
    elif args.source in ADVERSARIES:
        kind = "adversary"
    else:
        known = ", ".join(sorted(WORKLOADS) + sorted(ADVERSARIES))
        print(f"unknown source {args.source!r}; available: {known}", file=sys.stderr)
        return 2
    try:
        scenario = Scenario(
            kind=kind,
            source=args.source,
            source_params=_parse_params(args.param),
            algorithm=args.algorithm,
            algorithm_params=_parse_params(args.alg_param),
            seeds=tuple(args.seeds),
            delta=float(args.delta),
            cost_model=args.cost_model,
            metric=args.metric,
            ratio=args.ratio,
            engine=args.engine,
        )
    except (ValueError, TypeError) as exc:
        print(f"bad scenario: {exc}", file=sys.stderr)
        return 2
    executor, error = _resolve_executor(args, has_store=bool(args.store))
    if error:
        print(error, file=sys.stderr)
        return 2
    store = ResultsStore(args.store) if args.store else None
    try:
        results, error_code = _run_distributed(
            lambda: run_many([scenario], store=store, executor=executor,
                             jobs=args.jobs))
    except (ValueError, TypeError, KeyError) as exc:
        # Capability mismatches, unknown algorithm names, bad source or
        # algorithm parameters — user input errors, not crashes.
        print(f"bad scenario: {exc}", file=sys.stderr)
        return 2
    if error_code:
        return error_code
    result = results[0]
    cached = result.cached
    headers = ["seed", "cost"]
    rows: list[list] = [[s, float(c)] for s, c in zip(scenario.seeds, result.costs)]
    if result.ratios is not None:
        headers.append("ratio >=")
        for row, r in zip(rows, result.ratios):
            row.append(float(r))
    if result.measurements is not None:
        headers += ["ratio >=", "ratio <="]
        for row, m in zip(rows, result.measurements):
            row += [m.ratio_lower, m.ratio_upper]
    print(render_table(headers, rows, title=scenario.label()))
    origin = "store (cache hit)" if cached else f"{result.engine} engine, {result.elapsed:.3f}s"
    print(f"  mean cost {result.mean_cost:.4f} over {result.batch_size} seed(s); {origin}")
    if result.ratios is not None:
        print(f"  certified ratio lower bound (mean): {result.mean_ratio:.4f}")
    if result.measurements is not None:
        print(f"  certified ratio interval (mean): [{float(result.ratio_lower.mean()):.4f}, "
              f"{float(result.ratio_upper.mean()):.4f}]")
    if store is not None:
        print(f"  scenario digest {scenario.digest()[:16]}... ({store.root})")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .algorithms import compatible_algorithms
    from .analysis import render_table
    from .api import Scenario, run_many
    from .workloads import SUITE_NAMES, suite_entry

    _apply_no_fuse(args)
    if args.batch < 1:
        print("--batch must be at least 1", file=sys.stderr)
        return 2
    if args.workload not in SUITE_NAMES:
        print(f"unknown workload {args.workload!r}; available: {', '.join(SUITE_NAMES)}", file=sys.stderr)
        return 2
    source, extra = suite_entry(args.workload, args.dim)
    seeds = [args.seed + i for i in range(args.batch)]
    # Plain MSP instances in args.dim dimensions: let the registry's
    # capability metadata pick the algorithms that can play them.  All
    # scenarios share one source + seed set, so run_many materialises the
    # instances once and solves each offline bracket once.
    scenarios = [
        Scenario.workload(
            source,
            algorithm=name,
            params={"T": args.T, "dim": args.dim, "D": args.D, "m": 1.0, **extra},
            seeds=seeds,
            delta=args.delta,
            ratio="bracket",
            name=f"compare/{name}",
        )
        for name in compatible_algorithms(dim=args.dim, moving_client=False)
    ]
    results = run_many(scenarios)
    rows = [
        [res.scenario.algorithm, res.mean_cost,
         float(res.ratio_lower.mean()), float(res.ratio_upper.mean())]
        for res in results
    ]
    rows.sort(key=lambda r: r[3])
    batch_tag = f", batch={args.batch}" if args.batch > 1 else ""
    print(render_table(
        ["algorithm", "cost", "ratio >=", "ratio <="],
        rows,
        title=f"{args.workload} (T={args.T}, dim={args.dim}, D={args.D}, "
              f"delta={args.delta}{batch_tag})",
    ))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .core.store import ResultsStore
    from .experiments.executors import default_worker_id, run_worker

    wid = args.worker_id or default_worker_id()
    print(f"worker {wid}: draining {args.spool} -> {args.store}", flush=True)
    stats = run_worker(
        args.spool,
        ResultsStore(args.store),
        worker_id=wid,
        poll=args.poll,
        max_tasks=args.max_tasks,
        idle_exit=args.idle_exit,
        batch=args.batch,
        progress=lambda message: print(f"worker {wid}: {message}", flush=True),
    )
    if stats.waves:
        sizes = ",".join(str(n) for n in stats.wave_sizes)
        print(f"worker {wid}: {stats.waves} wave(s) of sizes [{sizes}]", flush=True)
    print(f"worker {wid}: exiting — {stats.completed} completed, "
          f"{stats.skipped} skipped, {stats.failed} failed", flush=True)
    return 0 if stats.failed == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeServer

    _apply_no_fuse(args)
    try:
        server = ServeServer(
            args.store,
            server_id=args.server_id,
            checkpoint_every=args.checkpoint_every,
        )
    except ValueError as exc:
        print(f"bad serve options: {exc}", file=sys.stderr)
        return 2
    if args.resume:
        restored = server.resume()
        print(f"resumed {len(restored)} session(s)"
              + (f": {', '.join(restored)}" if restored else ""),
              file=sys.stderr, flush=True)
    try:
        server.run(host=args.host, port=args.port)
    except KeyboardInterrupt:
        # Leave resumable state behind, like an EOF would.
        server.checkpoint_all()
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .adversaries import available_adversaries
    from .algorithms import algorithm_info, available_algorithms
    from .api import available_metrics, available_reducers, reducer_info
    from .experiments import EXPERIMENTS
    from .workloads import available_workloads, workload_info

    default_metrics = ("euclidean", "l1", "linf")

    def metric_tag(metrics: tuple) -> str:
        return "" if tuple(metrics) == default_metrics else f"  [{', '.join(metrics)}]"

    print("metrics:")
    for name in available_metrics():
        print(f"  {name}")
    print("algorithms:")
    for name in available_algorithms():
        print(f"  {name}{metric_tag(algorithm_info(name).metrics)}")
    print("workloads:")
    for name in available_workloads():
        print(f"  {name}{metric_tag(workload_info(name).metrics)}")
    print("adversaries:")
    for name in available_adversaries():
        print(f"  {name}")
    print("experiments:")
    for eid in EXPERIMENTS:
        print(f"  {eid}")
    print("reducers:")
    for name in available_reducers():
        summary = reducer_info(name).summary
        print(f"  {name}" + (f" — {summary}" if summary else ""))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.lint import available_rules, rule_info, run_lint

    if args.list:
        print("rules:")
        for name in available_rules():
            info = rule_info(name)
            where = "project-wide" if info.project else (
                ", ".join(info.scopes) if info.scopes else "all files")
            print(f"  {name} — {info.summary} [{where}]")
        return 0
    select = None
    if args.select:
        select = [part for chunk in args.select for part in chunk.split(",") if part]
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    try:
        report = run_lint(args.paths, select=select)
    except KeyError as exc:
        print(f"bad --select: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.clean else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mobile-server",
        description="Reproduction of 'The Mobile Server Problem' (SPAA 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="run reproduction experiments")
    p_exp.add_argument("--ids", nargs="*", default=None, help="experiment ids (default: all)")
    p_exp.add_argument("--scale", type=float, default=1.0, help="workload scale factor")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--csv", type=str, default="", help="directory for CSV dumps")
    p_exp.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the experiment work units (default 1)")
    p_exp.add_argument("--store", type=str, default="results/store", metavar="DIR",
                       help="persistent results store; completed work units are "
                            "skipped on re-runs ('' disables caching)")
    p_exp.add_argument("--resume", action="store_true",
                       help="continue an interrupted grid from the store "
                            "(cell-level caching makes this the default; the flag "
                            "documents intent and labels the cache report)")
    p_exp.add_argument("--rerun", action="store_true",
                       help="recompute every work unit, overwriting store entries")
    p_exp.add_argument("--store-gc", type=_parse_size, default=None, metavar="SIZE",
                       help="after the run, evict least-recently-used store entries "
                            "until the store fits SIZE (e.g. 500M, 2G, 120000 bytes); "
                            "validated up front, requires --store")
    _add_no_fuse_flag(p_exp)
    _add_executor_flags(p_exp)
    p_exp.set_defaults(func=_cmd_experiments)

    p_run = sub.add_parser("run", help="run one declarative scenario (or a --grid sweep)")
    p_run.add_argument("--source", required=True,
                       help="registered workload or adversary name (see 'list'); "
                            "with --grid, a comma list is a sweep axis")
    p_run.add_argument("--algorithm", default="mtc",
                       help="registered algorithm name; with --grid, a comma list "
                            "is a sweep axis (e.g. --algorithm mtc,greedy-centroid)")
    p_run.add_argument("-p", "--param", action="append", default=[], metavar="KEY=VALUE",
                       help="source parameter (repeatable), e.g. -p T=200 -p D=4.0; "
                            "with --grid, comma values are an axis (-p D=2.0,4.0)")
    p_run.add_argument("--alg-param", action="append", default=[], metavar="KEY=VALUE",
                       help="algorithm parameter (repeatable), e.g. --alg-param step_scale=0.5")
    p_run.add_argument("--seeds", type=int, nargs="+", default=[0],
                       help="seed sweep (per-scenario engine lanes, never a grid axis)")
    p_run.add_argument("--delta", type=str, default="0.0",
                       help="resource augmentation; with --grid, a comma list is an "
                            "axis (e.g. --delta 0.1,0.2,0.5)")
    p_run.add_argument("--grid", action="store_true",
                       help="expand comma/list values into a Scenario.grid sweep and "
                            "run every cell (one table row per grid point)")
    p_run.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for a --grid sweep (default 1)")
    p_run.add_argument("--cost-model", default=None,
                       choices=["move-first", "answer-first", "movement-only"],
                       help="override the instance cost model (workload sources only)")
    p_run.add_argument("--ratio", default="auto", choices=["auto", "adversary", "bracket", "none"],
                       help="certification mode")
    p_run.add_argument("--metric", default="euclidean", metavar="NAME",
                       help="metric space to run in (euclidean, l1, linf, graph; "
                            "comma-separated values become a --grid axis)")
    p_run.add_argument("--engine", default="auto", choices=["auto", "scalar", "batched"],
                       help="simulation engine (auto picks; both are bit-identical)")
    p_run.add_argument("--store", type=str, default="", metavar="DIR",
                       help="content-addressed result cache (same store the "
                            "experiments orchestrator uses)")
    _add_no_fuse_flag(p_run)
    _add_executor_flags(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_wrk = sub.add_parser(
        "worker",
        help="drain orchestrator tasks from a shared spool directory",
        description="Standalone distributed worker: claims task files from "
                    "--spool (atomic rename locking), computes each cell, "
                    "delivers the payload through the shared content-addressed "
                    "--store, and acks.  Run any number of these, on any "
                    "machines sharing the two directories, against a sweep "
                    "submitted with '--executor spool'.")
    p_wrk.add_argument("--spool", required=True, metavar="DIR",
                       help="task directory shared with the submitting sweep")
    p_wrk.add_argument("--store", required=True, metavar="DIR",
                       help="results store shared with the submitting sweep")
    p_wrk.add_argument("--poll", type=float, default=0.1, metavar="SECONDS",
                       help="sleep between scans of an empty spool (default 0.1)")
    p_wrk.add_argument("--max-tasks", type=int, default=None, metavar="N",
                       help="exit after claiming N tasks (default: unbounded)")
    p_wrk.add_argument("--batch", type=int, default=1, metavar="N",
                       help="claim up to N ready tasks per scan and drain "
                            "compatible ones through a single fused mega-batch "
                            "call (default 1: one task at a time)")
    p_wrk.add_argument("--idle-exit", type=float, default=None, metavar="SECONDS",
                       help="exit after this long without finding a task "
                            "(default: wait forever; a STOP file in the spool "
                            "always ends the loop)")
    p_wrk.add_argument("--worker-id", type=str, default=None,
                       help="name used in claim/ack files (default: hostname-pid)")
    p_wrk.set_defaults(func=_cmd_worker)

    p_cmp = sub.add_parser("compare", help="compare algorithms on a workload")
    p_cmp.add_argument("--workload", default="drift")
    p_cmp.add_argument("--T", type=int, default=300)
    p_cmp.add_argument("--dim", type=int, default=1)
    p_cmp.add_argument("--D", type=float, default=4.0)
    p_cmp.add_argument("--delta", type=float, default=0.5)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--batch", type=int, default=1, metavar="B",
                       help="play B seeded instances per algorithm in one batched "
                            "engine pass and average the certified ratios")
    _add_no_fuse_flag(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_srv = sub.add_parser(
        "serve",
        help="long-lived streaming server: feed requests step by step over "
             "JSONL (stdin or TCP), with checkpointed bit-identical resume",
        description="Turn the batched engine into a service.  Clients open "
                    "sessions (one engine lane each), feed request steps as "
                    "newline-delimited JSON, and read positions/costs/traces "
                    "back; compatible lanes advance in shared cross-lane "
                    "engine waves.  Sessions checkpoint periodically through "
                    "the content-addressed store (atomic writes, pinned "
                    "against gc), so after a crash '--resume' replays each "
                    "checkpointed stream and completed traces are "
                    "bit-identical to an uninterrupted run.")
    p_srv.add_argument("--store", required=True, metavar="DIR",
                       help="content-addressed store for checkpoints and "
                            "final session results")
    p_srv.add_argument("--server-id", type=str, default="serve",
                       help="stable identity of this server's checkpoint "
                            "slots (default: serve); resume with the same id")
    p_srv.add_argument("--port", type=int, default=None, metavar="N",
                       help="serve the line protocol on TCP port N (0 picks "
                            "a free port, announced on stdout); default: "
                            "stdin/stdout JSONL")
    p_srv.add_argument("--host", type=str, default="127.0.0.1",
                       help="bind address for --port (default 127.0.0.1)")
    p_srv.add_argument("--checkpoint-every", type=int, default=16, metavar="K",
                       help="checkpoint a session every K committed steps "
                            "(default 16; crash loses at most K-1 steps, "
                            "which an idempotent client replay restores)")
    p_srv.add_argument("--resume", action="store_true",
                       help="restore every session in this server-id's "
                            "manifest by replaying its checkpointed request "
                            "history before serving")
    _add_no_fuse_flag(p_srv)
    p_srv.set_defaults(func=_cmd_serve)

    p_list = sub.add_parser("list", help="list algorithms, workloads, adversaries, experiments")
    p_list.set_defaults(func=_cmd_list)

    p_lint = sub.add_parser(
        "lint",
        help="run the reprolint invariant linter (AST rules: determinism, "
             "crash-safety, kernel parity, API surface)",
        description="Static analysis over the source tree: every registered "
                    "rule is an AST visitor enforcing one of the invariants "
                    "the parity tests otherwise only check after the fact. "
                    "Suppress one line with '# reprolint: allow[RULE] "
                    "reason=...' — the reason is mandatory and audited. "
                    "Exit code: 0 clean, 1 findings, 2 usage error.")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src); "
                             "run from the repository root so path-scoped "
                             "rules resolve (CI uses 'src tests benchmarks')")
    p_lint.add_argument("--json", action="store_true",
                        help="machine-readable report (schema version, "
                             "findings, suppressions, counts)")
    p_lint.add_argument("--list", action="store_true",
                        help="list registered rules with one-line docs and "
                             "their path scopes, then exit")
    p_lint.add_argument("--select", action="append", default=[], metavar="RULES",
                        help="comma-separated rule subset (repeatable), "
                             "e.g. --select RNG001,DET001")
    p_lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
