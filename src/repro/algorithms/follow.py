"""Follow-style baselines.

* :class:`FollowLastRequest` — damped pursuit of the most recent request
  (exponential smoothing of the target); a common heuristic in mobile
  data-placement prototypes.
* :class:`RetrospectiveCenter` — moves towards the geometric median of
  *all* requests seen so far (the offline 1-median of the prefix), the
  "follow the leader" strategy from online learning.  Good on i.i.d.
  workloads, provably terrible against drift — the adversarial experiments
  quantify this.
"""

from __future__ import annotations

import numpy as np

from ..core.requests import RequestBatch
from ..median import request_center
from .base import OnlineAlgorithm

__all__ = ["FollowLastRequest", "RetrospectiveCenter"]


class FollowLastRequest(OnlineAlgorithm):
    """Pursue an exponentially-smoothed target of recent request centers.

    Parameters
    ----------
    smoothing:
        Weight of the newest batch center in the smoothed target, in
        ``(0, 1]``; 1 means "chase the latest center directly".
    """

    def __init__(self, smoothing: float = 1.0) -> None:
        super().__init__()
        if not (0.0 < smoothing <= 1.0):
            raise ValueError("smoothing must lie in (0, 1]")
        self.smoothing = smoothing
        self.name = f"follow-last[{smoothing:g}]" if smoothing != 1.0 else "follow-last"
        self._target: np.ndarray | None = None

    def reset(self, instance, cap) -> None:  # type: ignore[override]
        super().reset(instance, cap)
        self._target = None

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count:
            c = request_center(batch.points, self.position)
            if self._target is None:
                self._target = c
            else:
                self._target = (1.0 - self.smoothing) * self._target + self.smoothing * c
        if self._target is None:
            return self.position
        return self.metric.move_towards(self.position, self._target, self.cap)


class RetrospectiveCenter(OnlineAlgorithm):
    """Move towards the median of the entire request history.

    To keep the per-step cost bounded the history is subsampled to at most
    ``max_history`` points (uniformly thinned, preserving order statistics
    approximately).
    """

    def __init__(self, max_history: int = 4096) -> None:
        super().__init__()
        if max_history < 2:
            raise ValueError("max_history must be at least 2")
        self.max_history = max_history
        self.name = "retrospective"
        self._history: list[np.ndarray] = []
        self._count = 0

    def reset(self, instance, cap) -> None:  # type: ignore[override]
        super().reset(instance, cap)
        self._history = []
        self._count = 0

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count:
            self._history.append(batch.points)
            self._count += batch.count
            if self._count > 2 * self.max_history:
                pooled = np.concatenate(self._history, axis=0)
                stride = max(1, pooled.shape[0] // self.max_history)
                self._history = [pooled[::stride].copy()]
                self._count = self._history[0].shape[0]
        if not self._history:
            return self.position
        pooled = np.concatenate(self._history, axis=0)
        c = request_center(pooled, self.position)
        return self.metric.move_towards(self.position, c, self.cap)
