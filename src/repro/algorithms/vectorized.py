"""Vectorized (batched) implementations of the online algorithms.

Each class here is the :class:`~repro.core.engine.VectorizedAlgorithm`
counterpart of one scalar :class:`~repro.algorithms.base.OnlineAlgorithm`:
it plays ``B`` independent instances in lock-step, holding its per-lane
state (pursuit targets, phase buffers, RNG streams) in arrays and Python
lists indexed by lane.  The decision arithmetic — clamped moves, damping,
thresholds — runs as whole-batch NumPy operations; only the geometric
median (:func:`repro.median.request_center`), whose tie-broken exact
solver is inherently per-batch, is evaluated in a short per-lane loop.
Because every lane performs bit-identical float64 operations to the scalar
algorithm, batched runs reproduce scalar traces exactly (the equivalence
suite asserts this for every registry entry).

:class:`ScalarBatchAdapter` is the generic fallback: it instantiates one
scalar algorithm per lane and forwards ``decide`` calls, so *every*
registry algorithm — including scalar-only ones like ``work-function`` —
works under :func:`repro.core.engine.simulate_batch` unchanged.

:func:`as_vectorized` resolves a registry name (or scalar factory) to the
best available batched implementation: a truly vectorized class when one
is registered in :data:`VECTORIZED`, the adapter otherwise.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from ..core.engine import BatchStepRequests, VectorizedAlgorithm
from ..core.metric import batched_move_towards, row_norms
from ..core.instance import MSPInstance
from ..median import request_center, weiszfeld
from .base import OnlineAlgorithm
from .registry import ALGORITHMS

__all__ = [
    "VECTORIZED",
    "BatchedCoinFlip",
    "BatchedFollowLast",
    "BatchedGreedyCenter",
    "BatchedGreedyCentroid",
    "BatchedLazyThreshold",
    "BatchedMoveToCenter",
    "BatchedMoveToMin",
    "BatchedNearestChaser",
    "BatchedStatic",
    "ScalarBatchAdapter",
    "as_vectorized",
    "make_vectorized",
]


class ScalarBatchAdapter(VectorizedAlgorithm):
    """Run any scalar algorithm under the batched engine, one copy per lane.

    The adapter owns ``B`` independent algorithm objects built from
    ``factory`` and forwards each lane's requests to its own copy, keeping
    the scalar ``position`` attribute in sync with the engine's state.
    Results are bit-identical to ``B`` separate scalar runs by
    construction; the engine still amortizes trace allocation, move
    validation and cost accounting across lanes.
    """

    def __init__(self, factory: Callable[[], OnlineAlgorithm], name: str | None = None) -> None:
        super().__init__()
        self._factory = factory
        self._algorithms: list[OnlineAlgorithm] = []
        #: Metric injected into every lane algorithm before reset; ``None``
        #: leaves each algorithm's Euclidean default untouched.
        self.metric = None
        if name is not None:
            self.name = name

    def reset_batch(self, instances: Sequence[MSPInstance], caps: np.ndarray) -> None:
        super().reset_batch(instances, caps)
        self._algorithms = [self._factory() for _ in self.instances]
        for alg, inst, cap in zip(self._algorithms, self.instances, self.caps):
            if self.metric is not None:
                alg.metric = self.metric
            alg.reset(inst, float(cap))
        if self._algorithms:
            self.name = self._algorithms[0].name

    def decide_batch(
        self, t: int, positions: np.ndarray, step: BatchStepRequests
    ) -> np.ndarray:
        out = np.empty_like(positions)
        for i, alg in enumerate(self._algorithms):
            out[i] = alg.decide(t, step.batch(i))
            # The scalar simulator updates ``position`` after validating the
            # move; the engine validates the whole batch afterwards, so sync
            # here with a private copy the algorithm cannot alias.
            alg.position = np.array(out[i], dtype=np.float64, copy=True)
        return out

    def export_lane_states(self) -> list:
        # The scalar algorithm object *is* the lane state: carrying it
        # across batch recompositions preserves every internal attribute.
        return list(self._algorithms)

    def import_lane_states(self, states) -> None:
        if len(states) != self.batch_size:
            raise ValueError(f"expected {self.batch_size} lane states, got {len(states)}")
        self._algorithms = [
            fresh if carried is None else carried
            for fresh, carried in zip(self._algorithms, states)
        ]


class BatchedStatic(VectorizedAlgorithm):
    """Vectorized :class:`~repro.algorithms.lazy.StaticServer`: never moves."""

    name = "static"
    kernel = "static"

    def decide_batch(
        self, t: int, positions: np.ndarray, step: BatchStepRequests
    ) -> np.ndarray:
        return positions


class BatchedGreedyCentroid(VectorizedAlgorithm):
    """Vectorized :class:`~repro.algorithms.greedy.GreedyCentroid`.

    The centroid is a plain mean, so with a packed ``(B, r, d)`` step the
    whole decision is three NumPy calls — this is the engine's showcase
    fully-vectorized algorithm (see ``benchmarks/bench_engine_batched.py``).
    """

    name = "greedy-centroid"
    kernel = "greedy-centroid"

    def decide_batch(
        self, t: int, positions: np.ndarray, step: BatchStepRequests
    ) -> np.ndarray:
        if step.points is not None:
            targets = step.points.mean(axis=1)
            return batched_move_towards(positions, targets, self.caps)
        targets = positions.copy()
        steps = np.zeros(len(step))
        for i in np.nonzero(step.counts)[0]:
            targets[i] = step.batch(int(i)).points.mean(axis=0)
            steps[i] = self.caps[i]
        return batched_move_towards(positions, targets, steps)


class BatchedNearestChaser(VectorizedAlgorithm):
    """Vectorized :class:`~repro.algorithms.greedy.NearestRequestChaser`."""

    name = "nearest-chaser"
    kernel = "nearest-chaser"

    def decide_batch(
        self, t: int, positions: np.ndarray, step: BatchStepRequests
    ) -> np.ndarray:
        if step.points is not None:
            diff = step.points - positions[:, None, :]
            dists = np.sqrt(np.einsum("brd,brd->br", diff, diff))
            nearest = step.points[np.arange(len(step)), np.argmin(dists, axis=1)]
            return batched_move_towards(positions, nearest, self.caps)
        # Ragged fallback: pad each lane's requests into one (n, rmax, d)
        # block with +inf fill and take a single batched argmin.  The inf
        # rows give +inf distances, which can never beat a real request,
        # so each lane's winning index — and argmin's first-of-ties rule —
        # matches the per-lane loop exactly; the distances themselves are
        # the same sequential sum-over-d einsum followed by sqrt.
        targets = positions.copy()
        steps = np.zeros(len(step))
        lanes = np.nonzero(step.counts)[0]
        if lanes.size:
            rmax = int(step.counts[lanes].max())
            pad = np.full((lanes.size, rmax, positions.shape[1]), np.inf)
            for row, i in enumerate(lanes):
                pts = step.batch(int(i)).points
                pad[row, : pts.shape[0]] = pts
            diff = pad - positions[lanes, None, :]
            dists = np.sqrt(np.einsum("lrd,lrd->lr", diff, diff))
            best = np.argmin(dists, axis=1)
            targets[lanes] = pad[np.arange(lanes.size), best]
            steps[lanes] = self.caps[lanes]
        return batched_move_towards(positions, targets, steps)


class BatchedGreedyCenter(VectorizedAlgorithm):
    """Vectorized :class:`~repro.algorithms.greedy.GreedyCenter`.

    The tie-broken geometric median is computed per lane (it is an exact
    solver, not an array expression); the full-speed clamped move is
    batched.
    """

    name = "greedy-center"
    kernel = "greedy-center"

    def decide_batch(
        self, t: int, positions: np.ndarray, step: BatchStepRequests
    ) -> np.ndarray:
        targets = positions.copy()
        steps = np.zeros(len(step))
        for i in np.nonzero(step.counts)[0]:
            targets[i] = request_center(step.batch(int(i)).points, positions[i])
            steps[i] = self.caps[i]
        return batched_move_towards(positions, targets, steps)


class BatchedMoveToCenter(VectorizedAlgorithm):
    """Vectorized :class:`~repro.algorithms.mtc.MoveToCenter` (the paper's MtC).

    Mirrors the scalar constructor (``step_scale``, ``tie_break``,
    ``cap_fraction`` ablation hooks) and the scalar decision rule: per-lane
    tie-broken centers with warm-started Weiszfeld, then one batched
    ``min{1, r/D}``-damped clamped move.
    """

    kernel = "mtc"

    def __init__(
        self,
        step_scale: float | None = None,
        tie_break: str = "closest",
        cap_fraction: float = 1.0,
    ) -> None:
        super().__init__()
        if step_scale is not None and not (0.0 < step_scale <= 1.0):
            raise ValueError(f"step_scale must lie in (0, 1], got {step_scale}")
        if not (0.0 < cap_fraction <= 1.0):
            raise ValueError(f"cap_fraction must lie in (0, 1], got {cap_fraction}")
        if tie_break not in ("closest", "weiszfeld", "midpoint"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        self.step_scale = step_scale
        self.tie_break = tie_break
        self.cap_fraction = cap_fraction
        suffix = []
        if step_scale is not None:
            suffix.append(f"scale={step_scale:g}")
        if tie_break != "closest":
            suffix.append(f"tie={tie_break}")
        if cap_fraction != 1.0:
            suffix.append(f"cap×{cap_fraction:g}")
        self.name = "mtc" + (f"[{','.join(suffix)}]" if suffix else "")
        self._last_centers: list[np.ndarray | None] = []

    def reset_batch(self, instances: Sequence[MSPInstance], caps: np.ndarray) -> None:
        super().reset_batch(instances, caps)
        self._last_centers = [None] * self.batch_size

    def export_lane_states(self) -> list:
        return list(self._last_centers)

    def import_lane_states(self, states) -> None:
        if len(states) != self.batch_size:
            raise ValueError(f"expected {self.batch_size} lane states, got {len(states)}")
        self._last_centers = list(states)

    def _center(self, lane: int, points: np.ndarray, position: np.ndarray) -> np.ndarray:
        if self.tie_break == "closest":
            c = request_center(points, position, warm_start=self._last_centers[lane])
            self._last_centers[lane] = c
            return c
        if self.tie_break == "weiszfeld":
            return weiszfeld(points).point
        from ..median.tie_breaking import median_set

        mset = median_set(points)
        if mset is None:
            return weiszfeld(points).point
        return 0.5 * (mset.a + mset.b)

    def decide_batch(
        self, t: int, positions: np.ndarray, step: BatchStepRequests
    ) -> np.ndarray:
        B = len(step)
        if len(self._last_centers) != B:
            # Defensive re-size: if the engine (or a mega-batch split)
            # replays this instance at a different lane count without an
            # intervening reset_batch, stale warm starts must not leak
            # into the wrong lanes — cold-start them all instead.
            self._last_centers = [None] * B
        targets = positions.copy()
        for i in np.nonzero(step.counts)[0]:
            targets[int(i)] = self._center(int(i), step.batch(int(i)).points, positions[int(i)])
        dist = row_norms(targets - positions)
        if self.step_scale is not None:
            scale = np.full(B, self.step_scale)
        else:
            scale = np.minimum(1.0, step.counts / self.D)
        desired = scale * dist
        steps = np.minimum(desired, self.caps * self.cap_fraction)
        return batched_move_towards(positions, targets, steps)


def _pursuit_move(
    positions: np.ndarray,
    targets: Sequence[np.ndarray | None],
    caps: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Full-speed clamped move of each lane towards its pursuit target.

    Lanes whose target is ``None`` stay put.  Returns the new positions,
    the assembled target array, and the indices of pursuing lanes — the
    single assembly shared by every pursuit-style algorithm so the scalar
    semantics live in one place.
    """
    tgt = positions.copy()
    steps = np.zeros(positions.shape[0])
    active = []
    for i, target in enumerate(targets):
        if target is not None:
            tgt[i] = target
            steps[i] = caps[i]
            active.append(i)
    return batched_move_towards(positions, tgt, steps), tgt, active


class _BatchedPursuit(VectorizedAlgorithm):
    """Shared machinery for target-pursuit algorithms (lazy, MtM, coin-flip).

    Subclasses update ``self._targets`` (per-lane pursuit target or
    ``None``) in :meth:`_update_targets`; the base class performs the
    batched full-speed clamped move and clears targets that were reached
    this step (matching the scalar ``allclose(..., atol=1e-12)`` test).
    """

    def __init__(self) -> None:
        super().__init__()
        self._targets: list[np.ndarray | None] = []

    def reset_batch(self, instances: Sequence[MSPInstance], caps: np.ndarray) -> None:
        super().reset_batch(instances, caps)
        self._targets = [None] * self.batch_size

    def _update_targets(self, t: int, positions: np.ndarray, step: BatchStepRequests) -> None:
        raise NotImplementedError

    def export_lane_states(self) -> list:
        return list(self._targets)

    def import_lane_states(self, states) -> None:
        # A ``None`` entry is both "no pursuit target" and "fresh lane" —
        # the two coincide for this family, so no sentinel is needed.
        if len(states) != self.batch_size:
            raise ValueError(f"expected {self.batch_size} lane states, got {len(states)}")
        self._targets = list(states)

    def decide_batch(
        self, t: int, positions: np.ndarray, step: BatchStepRequests
    ) -> np.ndarray:
        self._update_targets(t, positions, step)
        out, tgt, active = _pursuit_move(positions, self._targets, self.caps)
        if active:
            reached = np.all(np.abs(out - tgt) <= 1e-12, axis=1)
            for i in active:
                if reached[i]:
                    self._targets[i] = None
        return out


class BatchedFollowLast(VectorizedAlgorithm):
    """Vectorized :class:`~repro.algorithms.follow.FollowLastRequest`."""

    kernel = "follow-last"

    def __init__(self, smoothing: float = 1.0) -> None:
        super().__init__()
        if not (0.0 < smoothing <= 1.0):
            raise ValueError("smoothing must lie in (0, 1]")
        self.smoothing = smoothing
        self.name = f"follow-last[{smoothing:g}]" if smoothing != 1.0 else "follow-last"
        self._targets: list[np.ndarray | None] = []

    def reset_batch(self, instances: Sequence[MSPInstance], caps: np.ndarray) -> None:
        super().reset_batch(instances, caps)
        self._targets = [None] * self.batch_size

    def export_lane_states(self) -> list:
        return list(self._targets)

    def import_lane_states(self, states) -> None:
        if len(states) != self.batch_size:
            raise ValueError(f"expected {self.batch_size} lane states, got {len(states)}")
        self._targets = list(states)

    def decide_batch(
        self, t: int, positions: np.ndarray, step: BatchStepRequests
    ) -> np.ndarray:
        for i in np.nonzero(step.counts)[0]:
            i = int(i)
            c = request_center(step.batch(i).points, positions[i])
            if self._targets[i] is None:
                self._targets[i] = c
            else:
                self._targets[i] = (1.0 - self.smoothing) * self._targets[i] + self.smoothing * c
        # Unlike the _BatchedPursuit family, the smoothed target persists
        # after being reached, so no clearing step here.
        out, _, _ = _pursuit_move(positions, self._targets, self.caps)
        return out


class BatchedLazyThreshold(_BatchedPursuit):
    """Vectorized :class:`~repro.algorithms.lazy.LazyThreshold`."""

    kernel = "lazy"

    def __init__(self, threshold_factor: float = 1.0, window: int = 8) -> None:
        super().__init__()
        if threshold_factor <= 0:
            raise ValueError("threshold_factor must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.threshold_factor = threshold_factor
        self.window = window
        self.name = f"lazy[{threshold_factor:g}]"
        self._accumulated: np.ndarray = np.zeros(0)
        self._recent: list[list[np.ndarray]] = []
        self._thresholds: np.ndarray = np.zeros(0)

    def reset_batch(self, instances: Sequence[MSPInstance], caps: np.ndarray) -> None:
        super().reset_batch(instances, caps)
        self._accumulated = np.zeros(self.batch_size)
        self._recent = [[] for _ in range(self.batch_size)]
        self._thresholds = self.threshold_factor * self.D * np.array(
            [inst.m for inst in self.instances]
        )

    def export_lane_states(self) -> list:
        return [
            (self._targets[i], float(self._accumulated[i]), list(self._recent[i]))
            for i in range(self.batch_size)
        ]

    def import_lane_states(self, states) -> None:
        if len(states) != self.batch_size:
            raise ValueError(f"expected {self.batch_size} lane states, got {len(states)}")
        for i, carried in enumerate(states):
            if carried is None:  # fresh lane: keep the reset state
                continue
            target, accumulated, recent = carried
            self._targets[i] = target
            self._accumulated[i] = accumulated
            self._recent[i] = list(recent)

    def _update_targets(self, t: int, positions: np.ndarray, step: BatchStepRequests) -> None:
        for i in np.nonzero(step.counts)[0]:
            i = int(i)
            batch = step.batch(i)
            recent = self._recent[i]
            recent.append(batch.points)
            if len(recent) > self.window:
                recent.pop(0)
            self._accumulated[i] += batch.service_cost(positions[i])
        for i in range(self.batch_size):
            if (
                self._targets[i] is None
                and self._accumulated[i] > self._thresholds[i]
                and self._recent[i]
            ):
                pooled = np.concatenate(self._recent[i], axis=0)
                self._targets[i] = request_center(pooled, positions[i])
                self._accumulated[i] = 0.0


class BatchedMoveToMin(_BatchedPursuit):
    """Vectorized :class:`~repro.algorithms.move_to_min.MoveToMin`."""

    kernel = "move-to-min"

    def __init__(self, phase_requests: int | None = None) -> None:
        super().__init__()
        if phase_requests is not None and phase_requests < 1:
            raise ValueError("phase_requests must be positive")
        self.phase_requests = phase_requests
        self.name = "move-to-min"
        self._phase_points: list[list[np.ndarray]] = []
        self._phase_counts: np.ndarray = np.zeros(0, dtype=np.int64)

    def reset_batch(self, instances: Sequence[MSPInstance], caps: np.ndarray) -> None:
        super().reset_batch(instances, caps)
        self._phase_points = [[] for _ in range(self.batch_size)]
        self._phase_counts = np.zeros(self.batch_size, dtype=np.int64)

    def export_lane_states(self) -> list:
        return [
            (self._targets[i], list(self._phase_points[i]), int(self._phase_counts[i]))
            for i in range(self.batch_size)
        ]

    def import_lane_states(self, states) -> None:
        if len(states) != self.batch_size:
            raise ValueError(f"expected {self.batch_size} lane states, got {len(states)}")
        for i, carried in enumerate(states):
            if carried is None:  # fresh lane: keep the reset state
                continue
            target, phase_points, phase_count = carried
            self._targets[i] = target
            self._phase_points[i] = list(phase_points)
            self._phase_counts[i] = phase_count

    def _phase_size(self, lane: int) -> int:
        if self.phase_requests is not None:
            return self.phase_requests
        return max(1, int(np.ceil(self.D[lane])))

    def _update_targets(self, t: int, positions: np.ndarray, step: BatchStepRequests) -> None:
        for i in np.nonzero(step.counts)[0]:
            i = int(i)
            batch = step.batch(i)
            self._phase_points[i].append(batch.points)
            self._phase_counts[i] += batch.count
        for i in range(self.batch_size):
            if self._phase_counts[i] >= self._phase_size(i) and self._phase_points[i]:
                pooled = np.concatenate(self._phase_points[i], axis=0)
                self._targets[i] = request_center(pooled, positions[i])
                self._phase_points[i] = []
                self._phase_counts[i] = 0


class BatchedCoinFlip(_BatchedPursuit):
    """Vectorized :class:`~repro.algorithms.coinflip.CoinFlip`.

    Each lane owns an independent RNG stream from ``rng_factory(lane)``
    (default: a fresh ``default_rng(lane)``), consumed exactly as the
    scalar algorithm consumes its generator — one draw per step with
    requests — so a lane seeded like a scalar run reproduces it exactly.
    """

    def __init__(
        self,
        rng_factory: Callable[[int], np.random.Generator] | None = None,
        probability: float | None = None,
    ) -> None:
        super().__init__()
        if probability is not None and not (0.0 < probability <= 1.0):
            raise ValueError("probability must lie in (0, 1]")
        self.rng_factory = rng_factory if rng_factory is not None else (
            lambda lane: np.random.default_rng(lane)
        )
        self.probability = probability
        self.name = "coin-flip"
        self._rngs: list[np.random.Generator] = []
        self._p: np.ndarray = np.zeros(0)

    def reset_batch(self, instances: Sequence[MSPInstance], caps: np.ndarray) -> None:
        super().reset_batch(instances, caps)
        self._rngs = [self.rng_factory(i) for i in range(self.batch_size)]
        if self.probability is not None:
            self._p = np.full(self.batch_size, self.probability)
        else:
            self._p = 1.0 / (2.0 * self.D)

    def export_lane_states(self) -> list:
        # The Generator object itself is the lane's stream state; carrying
        # it across batch recompositions continues the draw sequence
        # exactly where the lane left off.
        return [
            (self._targets[i], self._rngs[i]) for i in range(self.batch_size)
        ]

    def import_lane_states(self, states) -> None:
        if len(states) != self.batch_size:
            raise ValueError(f"expected {self.batch_size} lane states, got {len(states)}")
        for i, carried in enumerate(states):
            if carried is None:  # fresh lane: keep the reset RNG
                continue
            target, rng = carried
            self._targets[i] = target
            self._rngs[i] = rng

    def _update_targets(self, t: int, positions: np.ndarray, step: BatchStepRequests) -> None:
        for i in np.nonzero(step.counts)[0]:
            i = int(i)
            if self._rngs[i].random() < self._p[i]:
                self._targets[i] = request_center(step.batch(i).points, positions[i])


#: Registry names with a truly vectorized implementation; everything else
#: resolves to :class:`ScalarBatchAdapter`.  The ``coin-flip`` entry seeds
#: every lane like the scalar registry factory (``default_rng(0)``) so
#: batched sweeps reproduce per-seed scalar runs.
VECTORIZED: Dict[str, Callable[[], VectorizedAlgorithm]] = {
    "mtc": BatchedMoveToCenter,
    "greedy-center": BatchedGreedyCenter,
    "greedy-centroid": BatchedGreedyCentroid,
    "nearest-chaser": BatchedNearestChaser,
    "static": BatchedStatic,
    "lazy": BatchedLazyThreshold,
    "lazy-aggressive": lambda: BatchedLazyThreshold(threshold_factor=0.25),
    "follow-last": BatchedFollowLast,
    "follow-smooth": lambda: BatchedFollowLast(smoothing=0.25),
    "move-to-min": BatchedMoveToMin,
    "coin-flip": lambda: BatchedCoinFlip(rng_factory=lambda lane: np.random.default_rng(0)),
}


def make_vectorized(name: str, metric=None) -> VectorizedAlgorithm:
    """Best batched implementation of a registry algorithm.

    Truly vectorized when ``name`` appears in :data:`VECTORIZED`, otherwise
    the scalar algorithm wrapped in :class:`ScalarBatchAdapter`.  Under a
    non-Euclidean ``metric`` the truly-vectorized classes are skipped —
    their whole-batch arithmetic hardcodes ℓ2 — and every algorithm runs
    through the adapter with the metric injected per lane.
    """
    non_euclidean = metric is not None and metric.name != "euclidean"
    if name in VECTORIZED and not non_euclidean:
        return VECTORIZED[name]()
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(sorted(ALGORITHMS))}"
        ) from None
    adapter = ScalarBatchAdapter(factory, name=name)
    if non_euclidean:
        adapter.metric = metric
    return adapter


def as_vectorized(
    algorithm: VectorizedAlgorithm | str | Callable[[], OnlineAlgorithm],
    metric=None,
) -> VectorizedAlgorithm:
    """Coerce an algorithm spec to a :class:`VectorizedAlgorithm`.

    Accepts an already-batched algorithm (returned as is), a registry name
    (resolved via :func:`make_vectorized`), or a zero-arg factory of scalar
    algorithms (wrapped in the adapter).  A scalar algorithm *instance* is
    rejected: one stateful object cannot serve ``B`` lanes — pass its class
    or a factory instead.
    """
    if isinstance(algorithm, VectorizedAlgorithm):
        return algorithm
    if isinstance(algorithm, str):
        return make_vectorized(algorithm, metric=metric)
    if isinstance(algorithm, OnlineAlgorithm):
        raise TypeError(
            f"cannot batch the scalar algorithm instance {algorithm!r}: one stateful "
            "object cannot play several lanes — pass its class or a zero-arg factory"
        )
    if callable(algorithm):
        adapter = ScalarBatchAdapter(algorithm)
        if metric is not None and metric.name != "euclidean":
            adapter.metric = metric
        return adapter
    raise TypeError(f"cannot interpret {algorithm!r} as a batched algorithm")
