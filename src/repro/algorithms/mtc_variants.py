"""MtC for the problem variants (Sections 4.3 and 5).

* :class:`AnswerFirstMoveToCenter` — Theorem 7 analyses MtC unchanged in
  the answer-first model; the decision rule is identical, only the cost
  accounting differs (handled by the instance's cost model).  The class
  exists so that runs are clearly labelled and so the variant can evolve
  independently.

* :class:`MovingClientMtC` — Theorem 10's specialisation for the Moving
  Client variant: upon learning the agent's position :math:`A_t`, move
  :math:`\\min(m_s, d(P_{t-1}, A_t)/D)` towards :math:`A_t`.  With a single
  request per step this is exactly MtC's rule (``r = 1``, center = request),
  but stated with the cap :math:`m_s` (no augmentation needed when
  :math:`m_s \\ge m_a`).
"""

from __future__ import annotations

import numpy as np

from ..core.requests import RequestBatch
from .base import OnlineAlgorithm
from .mtc import MoveToCenter

__all__ = ["AnswerFirstMoveToCenter", "MovingClientMtC"]


class AnswerFirstMoveToCenter(MoveToCenter):
    """MtC played in the Answer-First model (Theorem 7).

    The rule is identical to :class:`MoveToCenter`; pairing it with an
    instance whose cost model is ``ANSWER_FIRST`` yields the analysed
    algorithm.  ``reset`` asserts the pairing to catch mis-configured
    experiments early.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.name = "mtc-answer-first"

    def reset(self, instance, cap) -> None:  # type: ignore[override]
        from ..core.costs import CostModel

        if instance.cost_model is not CostModel.ANSWER_FIRST:
            raise ValueError(
                "AnswerFirstMoveToCenter requires an ANSWER_FIRST instance; "
                f"got {instance.cost_model}"
            )
        super().reset(instance, cap)


class MovingClientMtC(OnlineAlgorithm):
    """Theorem 10's algorithm for the Moving Client variant.

    Moves :math:`\\min(\\text{cap}, d(P, A_t)/D)` towards the agent.  The
    simulator supplies the cap (``m_s`` or ``(1+\\delta) m_s``); with
    ``D = 1`` the rule degenerates to full-speed chase, and for larger ``D``
    the server intentionally trails the agent at distance :math:`\\le D m`
    to save movement cost — the property the O(1) proof exploits.
    """

    name = "mtc-moving-client"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count == 0:
            return self.position
        if batch.count != 1:
            raise ValueError(
                f"MovingClientMtC expects exactly one request per step, got {batch.count}"
            )
        agent = batch.points[0]
        dist = float(np.linalg.norm(agent - self.position))  # reprolint: allow[MET001] reason=moving-client model is Euclidean by construction; rewriting to einsum would change bits
        if dist <= 0.0:
            return self.position
        step = min(self.cap, dist / self.D)
        return self.metric.move_towards(self.position, agent, step)
