"""k-server on the line, re-homed onto the one engine.

The paper frames the k-Server Problem as an extreme of page migration;
:mod:`repro.kserver.double_coverage` implements the classical baselines
as standalone loops.  This module re-expresses them as
:class:`~repro.algorithms.base.OnlineAlgorithm` decision rules so they
run as scenarios of the shared simulator/engine:

* the *configuration* of ``k`` servers on the line is one point in
  :math:`\\mathbb{R}^k` (kept sorted), and
* per-step movement under the ``l1`` metric is exactly the total
  distance the servers travel, so
* :data:`~repro.core.costs.CostModel.MOVEMENT_ONLY` accounting (k-server
  has no separate service cost) reproduces the legacy totals.

Each ``decide`` replays the standalone module's update arithmetic
operation-for-operation, so the configuration histories are
bit-identical to :func:`~repro.kserver.double_coverage.double_coverage_line`
/ :func:`~repro.kserver.double_coverage.greedy_kserver_line`; the
per-step costs agree to float rounding (the legacy loop accumulates its
own increments, e.g. ``2 * d`` for an interior double move, while the
engine measures ``|new - old|_1`` — the same quantity, associated
differently).

Requests are encoded as constant points ``np.full(k, x)`` (the workload
:class:`~repro.workloads.kserver.KServerLineWorkload` emits them): the
decision rules read the request location from the first coordinate, and
under movement-only accounting the encoding never touches a cost.
"""

from __future__ import annotations

import numpy as np

from ..core.requests import RequestBatch
from .base import OnlineAlgorithm

__all__ = ["DoubleCoverageLine", "GreedyKServerLine"]


def _request_location(batch: RequestBatch) -> float:
    return float(batch.points[0, 0])


class DoubleCoverageLine(OnlineAlgorithm):
    """Double Coverage on the line as a config-space decision rule.

    If the request falls outside the hull of the servers, the nearest
    server moves onto it; otherwise the two neighbouring servers move
    towards it at equal speed until one arrives — the classical
    k-competitive rule, replayed verbatim from
    :func:`repro.kserver.double_coverage.double_coverage_line`.
    """

    def __init__(self) -> None:
        super().__init__()
        self.name = "dc-line"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if not batch.count:
            return self.position
        x = _request_location(batch)
        s = np.array(self.position, dtype=np.float64, copy=True)
        if x <= s[0]:
            s[0] = x
        elif x >= s[-1]:
            s[-1] = x
        else:
            j = int(np.searchsorted(s, x)) - 1
            left, right = s[j], s[j + 1]
            d = min(x - left, right - x)
            s[j] += d
            s[j + 1] -= d
            # One of them is now exactly on x (the closer one).
            if abs(s[j] - x) > abs(s[j + 1] - x):
                s[j + 1] = x
            else:
                s[j] = x
        s.sort()
        return s


class GreedyKServerLine(OnlineAlgorithm):
    """Greedy k-server: the nearest server moves onto the request.

    Non-competitive (two alternating nearby requests starve a distant
    server) — the classical contrast to Double Coverage, replayed from
    :func:`repro.kserver.double_coverage.greedy_kserver_line`.
    """

    def __init__(self) -> None:
        super().__init__()
        self.name = "greedy-kserver"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if not batch.count:
            return self.position
        x = _request_location(batch)
        s = np.array(self.position, dtype=np.float64, copy=True)
        j = int(np.argmin(np.abs(s - x)))
        s[j] = x
        s.sort()
        return s
