"""Move-to-Center — the paper's algorithm (Section 4).

Upon receiving the requests :math:`v_1, \\dots, v_r` while sitting at
:math:`P_{Alg}`, MtC computes the point :math:`c` minimizing
:math:`\\sum_i d(c, v_i)` (ties broken towards the server, see
:func:`repro.median.request_center`) and moves towards :math:`c` by

.. math:: \\min\\{1, r/D\\} \\cdot d(P_{Alg}, c)

capped at the algorithm's movement allowance :math:`(1+\\delta) m`.

The ``min{1, r/D}`` damping is what makes the potential argument of
Sections 4.1/4.2 work: when requests are few relative to the page weight
``D`` the server only creeps (moving is expensive), while for :math:`r > D`
it jumps straight to the center when allowed.  The class exposes ablation
hooks (used by experiment E12) that replace the damping factor or the
tie-break so the role of each design choice can be measured.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..core.requests import RequestBatch
from ..median import request_center, weiszfeld
from .base import OnlineAlgorithm

__all__ = ["MoveToCenter"]

TieBreak = Literal["closest", "weiszfeld", "midpoint"]


class MoveToCenter(OnlineAlgorithm):
    """The deterministic Move-to-Center algorithm.

    Parameters
    ----------
    step_scale:
        ``None`` (default) uses the paper's factor ``min{1, r/D}``; a float
        in ``(0, 1]`` forces a fixed damping factor instead (ablation).
    tie_break:
        ``"closest"`` (paper): among several minimizers pick the one
        closest to the server.  ``"weiszfeld"``: always run the numeric
        solver (arbitrary representative for degenerate batches).
        ``"midpoint"``: pick the midpoint of the minimizing segment.
    cap_fraction:
        Fraction of the granted movement cap actually used, in ``(0, 1]``
        (ablation: does MtC need the full augmented speed?).
    """

    def __init__(
        self,
        step_scale: float | None = None,
        tie_break: TieBreak = "closest",
        cap_fraction: float = 1.0,
    ) -> None:
        super().__init__()
        if step_scale is not None and not (0.0 < step_scale <= 1.0):
            raise ValueError(f"step_scale must lie in (0, 1], got {step_scale}")
        if not (0.0 < cap_fraction <= 1.0):
            raise ValueError(f"cap_fraction must lie in (0, 1], got {cap_fraction}")
        if tie_break not in ("closest", "weiszfeld", "midpoint"):
            raise ValueError(f"unknown tie_break {tie_break!r}")
        self.step_scale = step_scale
        self.tie_break: TieBreak = tie_break
        self.cap_fraction = cap_fraction
        suffix = []
        if step_scale is not None:
            suffix.append(f"scale={step_scale:g}")
        if tie_break != "closest":
            suffix.append(f"tie={tie_break}")
        if cap_fraction != 1.0:
            suffix.append(f"cap×{cap_fraction:g}")
        self.name = "mtc" + (f"[{','.join(suffix)}]" if suffix else "")
        self._last_center: np.ndarray | None = None

    def reset(self, instance, cap) -> None:  # type: ignore[override]
        super().reset(instance, cap)
        self._last_center = None

    # -- the decision rule ---------------------------------------------------

    def center(self, batch: RequestBatch) -> np.ndarray:
        """The target point :math:`c` for a non-empty batch."""
        if self.tie_break == "closest":
            c = request_center(batch.points, self.position, warm_start=self._last_center)
            self._last_center = c
            return c
        if self.tie_break == "weiszfeld":
            return weiszfeld(batch.points).point
        # midpoint tie-break: use the closest-point machinery's set
        from ..median.tie_breaking import median_set

        mset = median_set(batch.points)
        if mset is None:
            return weiszfeld(batch.points).point
        return 0.5 * (mset.a + mset.b)

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count == 0:
            return self.position
        c = self.center(batch)
        dist_to_c = self.metric.distance(c, self.position)
        if dist_to_c <= 0.0:
            return self.position
        scale = self.step_scale
        if scale is None:
            scale = min(1.0, batch.count / self.D)
        desired = scale * dist_to_c
        allowed = self.cap * self.cap_fraction
        step = min(desired, allowed)
        return self.metric.move_towards(self.position, c, step)
