"""A discretized work-function heuristic for the 1-D problem.

The Work Function Algorithm is the canonical near-optimal strategy for
metrical task systems: after step ``t`` it knows, for every state ``s``,
the optimal cost :math:`w_t(s)` of serving the prefix and ending at ``s``,
and it moves to the state minimizing :math:`w_t(s) + D\\,d(P, s)`.

For the Mobile Server Problem on the line we maintain :math:`w_t` on a
uniform grid.  The work-function recurrence respects the *offline* cap
``m``:

.. math:: w_t(s) = \\min_{|s' - s| \\le m} \\big( w_{t-1}(s')
          + D\\,|s' - s| \\big) + \\sum_i |s - v_{t,i}|,

a banded min-plus convolution computed in ``O(grid · band)`` per step with
in-place row updates.  The chosen grid point may be further than the online
cap allows, in which case the server moves towards it at full speed — the
same capping every other baseline uses.

The grid spans the instance's arena (bounding box of start and requests,
padded); this uses the *extent* of the instance but not the order of
requests, the usual experimental convention for grid methods.  The class is
a *heuristic* baseline: the paper proves no guarantee for it, and E13 shows
it performs well on benign workloads while paying heavily on adversarial
drift (the grid cannot follow an unbounded escape).
"""

from __future__ import annotations

import numpy as np

from ..core.requests import RequestBatch
from .base import OnlineAlgorithm

__all__ = ["WorkFunctionLine"]


class WorkFunctionLine(OnlineAlgorithm):
    """Grid work-function algorithm for dimension 1.

    Parameters
    ----------
    grid_size:
        Number of grid points (odd counts keep the start on the grid).
    padding:
        Extra arena padding in multiples of the instance cap ``m``.
    """

    def __init__(self, grid_size: int = 257, padding: float = 4.0) -> None:
        super().__init__()
        if grid_size < 3:
            raise ValueError("grid_size must be at least 3")
        self.grid_size = grid_size
        self.padding = padding
        self.name = "work-function"
        self._grid: np.ndarray | None = None
        self._w: np.ndarray | None = None
        self._band: int = 1

    def reset(self, instance, cap) -> None:  # type: ignore[override]
        super().reset(instance, cap)
        if instance.dim != 1:
            raise ValueError("WorkFunctionLine only supports dimension 1")
        pts = instance.requests.all_points()
        lo = float(instance.start[0])
        hi = lo
        if pts.shape[0]:
            lo = min(lo, float(pts.min()))
            hi = max(hi, float(pts.max()))
        pad = self.padding * instance.m + 1e-9
        lo -= pad
        hi += pad
        self._grid = np.linspace(lo, hi, self.grid_size)
        h = float(self._grid[1] - self._grid[0])
        self._band = max(1, int(np.floor(instance.m / h)))
        # w_0(s) = D * d(P0, s): the offline server also starts at P0 and
        # may relocate over time at D per unit, capped per step — the cap
        # is enforced in the transition, the start cost here is the lower
        # bound D*|s - P0| for reaching s eventually.
        self._w = instance.D * np.abs(self._grid - float(instance.start[0]))

    def _transition(self) -> np.ndarray:
        """One banded min-plus relaxation of the work function."""
        assert self._w is not None and self._grid is not None
        w = self._w
        grid = self._grid
        D = self.D
        h = float(grid[1] - grid[0])
        out = w.copy()
        # Propagate within the band via iterated neighbour relaxation:
        # moving one cell costs D*h; `band` sweeps realize every shift of
        # up to `band` cells at the correct linear cost.
        for _ in range(self._band):
            left = out[:-1] + D * h
            right = out[1:] + D * h
            np.minimum(out[1:], left, out=out[1:])
            np.minimum(out[:-1], right, out=out[:-1])
        return out

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        assert self._w is not None and self._grid is not None
        relaxed = self._transition()
        if batch.count:
            service = np.abs(self._grid[:, None] - batch.points[:, 0][None, :]).sum(axis=1)
        else:
            service = 0.0
        self._w = relaxed + service
        # WFA rule: head for argmin_s w_t(s) + D * d(P, s).
        scores = self._w + self.D * np.abs(self._grid - float(self.position[0]))
        target_x = float(self._grid[int(np.argmin(scores))])
        target = np.array([target_x])
        return self.metric.move_towards(self.position, target, self.cap)
