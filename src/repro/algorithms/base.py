"""Online-algorithm interface.

Every algorithm in this library is an :class:`OnlineAlgorithm`: the
simulator calls :meth:`~OnlineAlgorithm.reset` once with the instance and
the algorithm's movement cap, then :meth:`~OnlineAlgorithm.decide` once per
step with the revealed requests.  ``decide`` returns the *new* server
position; the simulator validates that the move respects the cap, so a
buggy algorithm fails loudly instead of producing meaningless costs.

The class also keeps the current position in :attr:`position` so that
subclasses only implement the decision rule.
"""

from __future__ import annotations

import abc

import numpy as np

from ..core.instance import MSPInstance
from ..core.metric import Metric, get_metric
from ..core.requests import RequestBatch

__all__ = ["OnlineAlgorithm"]


class OnlineAlgorithm(abc.ABC):
    """Base class for online Mobile-Server algorithms.

    Attributes
    ----------
    name:
        Identifier used in traces, tables and the registry.
    position:
        Current server position; maintained by the simulator between calls.
    cap:
        Per-step movement cap granted to this algorithm (already includes
        any resource augmentation).
    instance:
        The instance being played, for access to ``D``, ``m``, dimension.
    metric:
        The :class:`~repro.core.metric.Metric` the run is measured in.
        Defaults to the Euclidean instance; the simulator injects the
        scenario's metric *before* calling :meth:`reset`.  Decision rules
        route their geometry through ``self.metric`` so the same code
        plays over ℓ1/ℓ∞/graph spaces.
    """

    #: Subclasses override; instances may further specialise via __init__.
    name: str = "online-algorithm"

    def __init__(self) -> None:
        self.position: np.ndarray | None = None
        self.cap: float = 0.0
        self.instance: MSPInstance | None = None
        self.metric: Metric = get_metric("euclidean")

    # -- lifecycle --------------------------------------------------------

    def reset(self, instance: MSPInstance, cap: float) -> None:
        """Prepare for a fresh run on ``instance`` with movement cap ``cap``.

        Subclasses needing extra state must call ``super().reset(...)``.
        """
        self.instance = instance
        self.cap = float(cap)
        self.position = np.array(instance.start, dtype=np.float64, copy=True)

    @abc.abstractmethod
    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        """Return the server position for step ``t`` given the new requests.

        The returned point must satisfy ``d(position, new) <= cap`` (up to
        floating-point tolerance).  Implementations may return
        ``self.position`` itself to stay put.  The simulator updates
        :attr:`position` after validating the move — implementations should
        *not* mutate it in ``decide``.
        """

    # -- conveniences -------------------------------------------------------

    @property
    def D(self) -> float:
        if self.instance is None:
            raise RuntimeError("algorithm not reset; call reset() first")
        return self.instance.D

    @property
    def dim(self) -> int:
        if self.instance is None:
            raise RuntimeError("algorithm not reset; call reset() first")
        return self.instance.dim

    def is_randomized(self) -> bool:
        """Randomized algorithms override to return True (used in reports)."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
