"""Algorithm registry.

Maps stable string names to zero-argument factories so the CLI, the
experiment configs and the benchmark files can request algorithms by name.
Entries constructed with non-default parameters register under qualified
names (e.g. ``lazy`` vs ``lazy-aggressive``).

Each entry carries *capability metadata* (:class:`AlgorithmInfo`): which
dimensions the algorithm supports and whether it needs the moving-client
model.  The CLI ``compare`` command and the experiment orchestrator
filter via :func:`compatible_algorithms` instead of hardcoding name-based
exclusions, so a new restricted algorithm only declares its limits here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

import numpy as np

from ..core.costs import CostModel
from .base import OnlineAlgorithm
from .coinflip import CoinFlip
from .follow import FollowLastRequest, RetrospectiveCenter
from .greedy import GreedyCenter, GreedyCentroid, NearestRequestChaser
from .kserver_line import DoubleCoverageLine, GreedyKServerLine
from .lazy import LazyThreshold, StaticServer
from .move_to_min import MoveToMin
from .mtc import MoveToCenter
from .mtc_variants import AnswerFirstMoveToCenter, MovingClientMtC
from .page_adapters import PageMigrationAdapter
from .work_function import WorkFunctionLine

__all__ = [
    "ALGORITHMS",
    "AlgorithmInfo",
    "algorithm_info",
    "available_algorithms",
    "compatible_algorithms",
    "make_algorithm",
    "register",
]

AlgorithmFactory = Callable[[], OnlineAlgorithm]

ALGORITHMS: Dict[str, AlgorithmFactory] = {
    "mtc": MoveToCenter,
    "mtc-answer-first": AnswerFirstMoveToCenter,
    "mtc-moving-client": MovingClientMtC,
    "greedy-center": GreedyCenter,
    "greedy-centroid": GreedyCentroid,
    "nearest-chaser": NearestRequestChaser,
    "static": StaticServer,
    "lazy": LazyThreshold,
    "lazy-aggressive": lambda: LazyThreshold(threshold_factor=0.25),
    "follow-last": FollowLastRequest,
    "follow-smooth": lambda: FollowLastRequest(smoothing=0.25),
    "retrospective": RetrospectiveCenter,
    "move-to-min": MoveToMin,
    "coin-flip": lambda: CoinFlip(rng=np.random.default_rng(0)),
    "work-function": WorkFunctionLine,
    "dc-line": DoubleCoverageLine,
    "greedy-kserver": GreedyKServerLine,
}


def _pm(maker: Callable[[], Any]) -> AlgorithmFactory:
    """Factory wrapping a classical page-migration strategy for the engine."""
    return lambda: PageMigrationAdapter(maker())


def _register_page_migration() -> None:
    from ..pagemigration.algorithms import (
        CoinFlipGraph,
        CountMoveTo,
        GreedyFollow,
        MoveToMinGraph,
        StaticPage,
    )

    for maker in (
        StaticPage,
        GreedyFollow,
        MoveToMinGraph,
        CountMoveTo,
        lambda: CoinFlipGraph(rng=np.random.default_rng(0)),
    ):
        adapter = _pm(maker)
        name = maker().name
        ALGORITHMS[name] = adapter
        _CAPABILITIES[name] = {"metrics": ("graph",), "supported_dims": (3,)}

#: Metrics an algorithm supports unless declared otherwise: the normed
#: spaces, where straight-line pursuit and centroid/median targets are
#: geometrically valid.  Graph support is opt-in — an algorithm may only
#: declare it when its decision rule goes exclusively through the
#: ``self.metric`` interface with targets that are actual space points.
_DEFAULT_METRICS: tuple[str, ...] = ("euclidean", "l1", "linf")

#: Capability declarations for entries with restrictions; anything absent
#: here supports every dimension and cost model on the plain
#: (non-moving-client) model.
_CAPABILITIES: Dict[str, Dict[str, Any]] = {
    "mtc-answer-first": {"cost_models": ("answer-first",)},
    "mtc-moving-client": {"requires_moving_client": True},
    "work-function": {"supported_dims": (1,)},
    # Metric-generic decision rules: stay put, or chase an actual request
    # point through self.metric — both well-defined on graph geodesics.
    "static": {"metrics": ("euclidean", "l1", "linf", "graph")},
    "nearest-chaser": {"metrics": ("euclidean", "l1", "linf", "graph")},
    # Re-homed k-server baselines: configuration-space rules whose
    # movement is only meaningful as ℓ1 total server travel, under
    # movement-only accounting (k-server has no service cost).
    "dc-line": {"metrics": ("l1",), "cost_models": ("movement-only",)},
    "greedy-kserver": {"metrics": ("l1",), "cost_models": ("movement-only",)},
}

# Classical page-migration strategies adapted to the graph metric; their
# capability entries land in _CAPABILITIES above, so registration runs
# here, after both tables exist.
_register_page_migration()


@dataclass(frozen=True)
class AlgorithmInfo:
    """One registry entry: factory plus capability metadata.

    Attributes
    ----------
    name, factory:
        Registry key and zero-argument constructor.
    supported_dims:
        Dimensions the algorithm can play; ``None`` means any.
    requires_moving_client:
        Whether the algorithm only makes sense on moving-client instances
        (its decision rule reads the agent trajectory).
    """

    name: str
    factory: AlgorithmFactory
    supported_dims: tuple[int, ...] | None = None
    requires_moving_client: bool = False
    cost_models: tuple[str, ...] | None = None
    metrics: tuple[str, ...] = _DEFAULT_METRICS

    def supports_dim(self, dim: int) -> bool:
        return self.supported_dims is None or dim in self.supported_dims

    def supports_metric(self, metric: str) -> bool:
        return metric in self.metrics

    def supports_cost_model(self, model: "CostModel | str") -> bool:
        if self.cost_models is None:
            return True
        value = model.value if isinstance(model, CostModel) else str(model)
        return value in self.cost_models

    @property
    def vectorized(self) -> bool:
        """Whether a truly vectorized batched implementation is registered.

        The scenario dispatcher (:func:`repro.api.run`) uses this to pick
        the lock-step engine; algorithms without an entry still run
        batched through the scalar adapter, bit-identically.
        """
        from .vectorized import VECTORIZED  # lazy: vectorized imports this module

        return self.name in VECTORIZED

    @property
    def kernel(self) -> bool:
        """Whether a fused step kernel replays this algorithm's decisions.

        True when the vectorized implementation advertises a kernel
        registered in :data:`repro.core.kernels.KERNELS` — the engine
        then fuses decide/clamp/validate/accounting into block-wise
        passes over the packed request stack (bit-identical to the
        per-step loop; see :mod:`repro.core.kernels`).  Resolved from
        the vectorized *instance*, so variant names (``lazy-aggressive``,
        ``follow-smooth``) correctly report their family's kernel.
        """
        if not self.vectorized:
            return False
        from ..core.kernels import kernel_for
        from .vectorized import make_vectorized

        return kernel_for(make_vectorized(self.name)) is not None


def algorithm_info(name: str) -> AlgorithmInfo:
    """Factory plus capabilities for one registered name."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(sorted(ALGORITHMS))}"
        ) from None
    return AlgorithmInfo(name=name, factory=factory, **_CAPABILITIES.get(name, {}))


def compatible_algorithms(
    dim: int | None = None,
    moving_client: bool = False,
    cost_model: "CostModel | str | None" = CostModel.MOVE_FIRST,
    metric: str | None = None,
) -> list[str]:
    """Registered names able to play the described setting (sorted).

    ``dim=None`` skips the dimension check; ``moving_client=False`` (the
    plain Mobile Server model) excludes algorithms that require the
    moving-client instance structure; ``cost_model`` (default move-first)
    excludes algorithms built for a different accounting model, ``None``
    skips that check.  ``metric`` (a registry name from
    :mod:`repro.core.metric`) keeps only algorithms declaring support for
    that space; ``None`` skips the check.
    """
    names = []
    for name in available_algorithms():
        info = algorithm_info(name)
        if info.requires_moving_client and not moving_client:
            continue
        if dim is not None and not info.supports_dim(dim):
            continue
        if cost_model is not None and not info.supports_cost_model(cost_model):
            continue
        if metric is not None and not info.supports_metric(metric):
            continue
        names.append(name)
    return names


def register(
    name: str,
    factory: AlgorithmFactory,
    overwrite: bool = False,
    *,
    supported_dims: tuple[int, ...] | None = None,
    requires_moving_client: bool = False,
    cost_models: tuple[str, ...] | None = None,
    metrics: tuple[str, ...] | None = None,
) -> None:
    """Add a factory (plus optional capability limits) to the registry.

    When overwriting an existing entry *without* stating capabilities,
    the entry's previous capability metadata is preserved (swapping a
    factory must not silently lift its declared restrictions); passing
    any capability keyword replaces the metadata wholesale.
    """
    if name in ALGORITHMS and not overwrite:
        raise KeyError(f"algorithm {name!r} already registered")
    caps: Dict[str, Any] = {}
    if supported_dims is not None:
        caps["supported_dims"] = tuple(supported_dims)
    if requires_moving_client:
        caps["requires_moving_client"] = True
    if cost_models is not None:
        caps["cost_models"] = tuple(cost_models)
    if metrics is not None:
        caps["metrics"] = tuple(metrics)
    is_overwrite = name in ALGORITHMS
    ALGORITHMS[name] = factory
    if caps:
        _CAPABILITIES[name] = caps
    elif not is_overwrite:
        _CAPABILITIES.pop(name, None)


def make_algorithm(name: str, **params: Any) -> OnlineAlgorithm:
    """Instantiate a registered algorithm by name.

    Extra keyword arguments are forwarded to the factory — e.g.
    ``make_algorithm("mtc", step_scale=0.25)`` — which is how scenario
    specs (:mod:`repro.api`) describe parameterized variants by strings.
    Factories registered as zero-argument lambdas reject parameters with
    the usual ``TypeError``.
    """
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(sorted(ALGORITHMS))}"
        ) from None
    return factory(**params)


def available_algorithms() -> list[str]:
    """Sorted registry keys."""
    return sorted(ALGORITHMS)
