"""Algorithm registry.

Maps stable string names to zero-argument factories so the CLI, the
experiment configs and the benchmark files can request algorithms by name.
Entries constructed with non-default parameters register under qualified
names (e.g. ``lazy`` vs ``lazy-aggressive``).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .base import OnlineAlgorithm
from .coinflip import CoinFlip
from .follow import FollowLastRequest, RetrospectiveCenter
from .greedy import GreedyCenter, GreedyCentroid, NearestRequestChaser
from .lazy import LazyThreshold, StaticServer
from .move_to_min import MoveToMin
from .mtc import MoveToCenter
from .mtc_variants import MovingClientMtC
from .work_function import WorkFunctionLine

__all__ = ["ALGORITHMS", "make_algorithm", "available_algorithms", "register"]

AlgorithmFactory = Callable[[], OnlineAlgorithm]

ALGORITHMS: Dict[str, AlgorithmFactory] = {
    "mtc": MoveToCenter,
    "mtc-moving-client": MovingClientMtC,
    "greedy-center": GreedyCenter,
    "greedy-centroid": GreedyCentroid,
    "nearest-chaser": NearestRequestChaser,
    "static": StaticServer,
    "lazy": LazyThreshold,
    "lazy-aggressive": lambda: LazyThreshold(threshold_factor=0.25),
    "follow-last": FollowLastRequest,
    "follow-smooth": lambda: FollowLastRequest(smoothing=0.25),
    "retrospective": RetrospectiveCenter,
    "move-to-min": MoveToMin,
    "coin-flip": lambda: CoinFlip(rng=np.random.default_rng(0)),
    "work-function": WorkFunctionLine,
}


def register(name: str, factory: AlgorithmFactory, overwrite: bool = False) -> None:
    """Add a factory to the registry (e.g. from user code or tests)."""
    if name in ALGORITHMS and not overwrite:
        raise KeyError(f"algorithm {name!r} already registered")
    ALGORITHMS[name] = factory


def make_algorithm(name: str) -> OnlineAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(sorted(ALGORITHMS))}"
        ) from None
    return factory()


def available_algorithms() -> list[str]:
    """Sorted registry keys."""
    return sorted(ALGORITHMS)
