"""Lazy and threshold baselines.

* :class:`StaticServer` — never moves; the degenerate baseline whose cost
  equals the total request distance from :math:`P_0`.  Useful as a sanity
  ceiling and surprisingly competitive on stationary workloads.
* :class:`LazyThreshold` — classic rent-or-buy behaviour: stay put until
  the accumulated service cost since the last move exceeds
  ``threshold_factor * D * m``, then move (at full speed, possibly over
  several steps) to the recent requests' center.  A folklore strategy that
  the movement cap breaks: by the time it decides to move it may be too far
  behind to ever catch up, which experiment E13 makes visible.
"""

from __future__ import annotations

import numpy as np

from ..core.requests import RequestBatch
from ..median import request_center
from .base import OnlineAlgorithm

__all__ = ["StaticServer", "LazyThreshold"]


class StaticServer(OnlineAlgorithm):
    """Never moves; pays only service cost."""

    name = "static"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        return self.position


class LazyThreshold(OnlineAlgorithm):
    """Rent-or-buy: move only after service cost has accumulated.

    Parameters
    ----------
    threshold_factor:
        Move is triggered once the service cost accumulated since the last
        relocation exceeds ``threshold_factor * D * m``.
    window:
        How many recent batches are pooled to pick the relocation target
        (their combined geometric median).
    """

    def __init__(self, threshold_factor: float = 1.0, window: int = 8) -> None:
        super().__init__()
        if threshold_factor <= 0:
            raise ValueError("threshold_factor must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.threshold_factor = threshold_factor
        self.window = window
        self.name = f"lazy[{threshold_factor:g}]"
        self._accumulated = 0.0
        self._recent: list[np.ndarray] = []
        self._target: np.ndarray | None = None

    def reset(self, instance, cap) -> None:  # type: ignore[override]
        super().reset(instance, cap)
        self._accumulated = 0.0
        self._recent = []
        self._target = None

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count:
            self._recent.append(batch.points)
            if len(self._recent) > self.window:
                self._recent.pop(0)
            self._accumulated += batch.service_cost(self.position)

        threshold = self.threshold_factor * self.D * (self.instance.m if self.instance else 1.0)
        if self._target is None and self._accumulated > threshold and self._recent:
            pooled = np.concatenate(self._recent, axis=0)
            self._target = request_center(pooled, self.position)
            self._accumulated = 0.0

        if self._target is None:
            return self.position
        new_pos = self.metric.move_towards(self.position, self._target, self.cap)
        if np.allclose(new_pos, self._target, rtol=0.0, atol=1e-12):
            self._target = None
        return new_pos
