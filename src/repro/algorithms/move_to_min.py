"""Westbrook's Move-To-Min, adapted to the mobile setting.

The classical page-migration algorithm (Westbrook 1994; 7-competitive on
graphs) works in phases of :math:`D` requests: at the end of a phase the
page moves to the point minimizing the total distance to the phase's
requests.  In the Mobile Server Problem that point may be far outside the
per-step movement cap, so the adaptation moves *towards* the phase optimum
at full allowed speed, possibly across several steps, while the next phase
is already accumulating.

Section 5 of the paper remarks that such batch-then-jump strategies do not
transfer to the capped model ("they require moving to a specific point
after collecting a batch of requests [which] may still lie outside the
allowed moving distance") — this class is the executable version of that
remark, and experiment E13 quantifies the damage.
"""

from __future__ import annotations

import numpy as np

from ..core.requests import RequestBatch
from ..median import request_center
from .base import OnlineAlgorithm

__all__ = ["MoveToMin"]


class MoveToMin(OnlineAlgorithm):
    """Phase-based Move-To-Min with capped movement.

    Parameters
    ----------
    phase_requests:
        Number of requests per phase; ``None`` uses the classical choice
        :math:`\\lceil D \\rceil`.
    """

    def __init__(self, phase_requests: int | None = None) -> None:
        super().__init__()
        if phase_requests is not None and phase_requests < 1:
            raise ValueError("phase_requests must be positive")
        self.phase_requests = phase_requests
        self.name = "move-to-min"
        self._phase_points: list[np.ndarray] = []
        self._phase_count = 0
        self._target: np.ndarray | None = None

    def reset(self, instance, cap) -> None:  # type: ignore[override]
        super().reset(instance, cap)
        self._phase_points = []
        self._phase_count = 0
        self._target = None

    @property
    def _phase_size(self) -> int:
        if self.phase_requests is not None:
            return self.phase_requests
        return max(1, int(np.ceil(self.D)))

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count:
            self._phase_points.append(batch.points)
            self._phase_count += batch.count
        if self._phase_count >= self._phase_size and self._phase_points:
            pooled = np.concatenate(self._phase_points, axis=0)
            self._target = request_center(pooled, self.position)
            self._phase_points = []
            self._phase_count = 0
        if self._target is None:
            return self.position
        new_pos = self.metric.move_towards(self.position, self._target, self.cap)
        if np.allclose(new_pos, self._target, rtol=0.0, atol=1e-12):
            self._target = None
        return new_pos
