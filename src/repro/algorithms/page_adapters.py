"""Classical page migration re-homed onto the one engine.

:mod:`repro.pagemigration` implements the related-work strategies as a
standalone node-indexed loop.  With the ``graph`` metric the shared
simulator speaks the same language — positions are node points
``(j, j, 0)``, movement is geodesic distance, move-first accounting
serves from the post-move position — so each classical strategy becomes
an :class:`~repro.algorithms.base.OnlineAlgorithm` by translating node
indices to graph points at the boundary.

:class:`PageMigrationAdapter` wraps any
:class:`~repro.pagemigration.algorithms.PageMigrationAlgorithm`: it
decodes the instance start and each request batch into node indices,
delegates to the classical ``decide``, and re-encodes the chosen node.
Costs then match :func:`~repro.pagemigration.simulator.simulate_page_migration`
exactly (both read the same all-pairs table), which the parity tests
assert.

Pair these with a graph workload emitting node requests (one per step)
and an instance cap ``m`` at least the network diameter — the classical
model is uncapped, so the cap must not bind.
"""

from __future__ import annotations

import numpy as np

from ..core.metric import GraphMetric
from ..core.requests import RequestBatch
from ..pagemigration.algorithms import PageMigrationAlgorithm
from .base import OnlineAlgorithm

__all__ = ["PageMigrationAdapter"]


class PageMigrationAdapter(OnlineAlgorithm):
    """Run a classical page-migration strategy under the ``graph`` metric.

    Parameters
    ----------
    inner:
        The node-indexed strategy to wrap; its registry name is reused
        (``pm-static``, ``pm-greedy``, ...).
    """

    def __init__(self, inner: PageMigrationAlgorithm) -> None:
        super().__init__()
        self.inner = inner
        self.name = inner.name

    def is_randomized(self) -> bool:
        return self.inner.is_randomized()

    def reset(self, instance, cap) -> None:  # type: ignore[override]
        super().reset(instance, cap)
        if not isinstance(self.metric, GraphMetric):
            raise ValueError(
                f"{self.name} plays classical page migration on a network; "
                "run it under metric='graph'"
            )
        u, v, t = self.metric._decode(instance.start)
        if u != v:
            raise ValueError(f"{self.name} needs a node start, got edge point ({u}, {v}, {t})")
        self.inner.reset(self.metric.network, u, instance.D)

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if not batch.count:
            return self.position
        if batch.count != 1:
            raise ValueError(
                f"{self.name} serves one requesting node per step, got {batch.count}")
        u, v, frac = self.metric._decode(batch.points[0])
        if u != v:
            raise ValueError(
                f"{self.name} takes node requests, got edge point ({u}, {v}, {frac})")
        node = int(self.inner.decide(t, u))
        # The classical simulator commits the move unconditionally; mirror
        # that here so phase state sees the post-move page, and return the
        # encoded point for the engine's own accounting.
        self.inner.page = node
        return self.metric.node_point(node)
