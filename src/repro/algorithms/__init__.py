"""Online algorithms for the Mobile Server Problem.

The paper's algorithm is :class:`~repro.algorithms.mtc.MoveToCenter`
(with variant classes for the answer-first and moving-client models);
everything else here is a baseline used by the comparison experiments.
"""

from .base import OnlineAlgorithm
from .coinflip import CoinFlip
from .follow import FollowLastRequest, RetrospectiveCenter
from .greedy import GreedyCenter, GreedyCentroid, NearestRequestChaser
from .lazy import LazyThreshold, StaticServer
from .move_to_min import MoveToMin
from .mtc import MoveToCenter
from .mtc_variants import AnswerFirstMoveToCenter, MovingClientMtC
from .registry import (
    ALGORITHMS,
    AlgorithmInfo,
    algorithm_info,
    available_algorithms,
    compatible_algorithms,
    make_algorithm,
    register,
)
from .vectorized import (
    VECTORIZED,
    BatchedCoinFlip,
    BatchedFollowLast,
    BatchedGreedyCenter,
    BatchedGreedyCentroid,
    BatchedLazyThreshold,
    BatchedMoveToCenter,
    BatchedMoveToMin,
    BatchedNearestChaser,
    BatchedStatic,
    ScalarBatchAdapter,
    as_vectorized,
    make_vectorized,
)
from .work_function import WorkFunctionLine

__all__ = [
    "ALGORITHMS",
    "VECTORIZED",
    "AlgorithmInfo",
    "AnswerFirstMoveToCenter",
    "BatchedCoinFlip",
    "BatchedFollowLast",
    "BatchedGreedyCenter",
    "BatchedGreedyCentroid",
    "BatchedLazyThreshold",
    "BatchedMoveToCenter",
    "BatchedMoveToMin",
    "BatchedNearestChaser",
    "BatchedStatic",
    "CoinFlip",
    "FollowLastRequest",
    "GreedyCenter",
    "GreedyCentroid",
    "LazyThreshold",
    "MoveToCenter",
    "MoveToMin",
    "MovingClientMtC",
    "NearestRequestChaser",
    "OnlineAlgorithm",
    "RetrospectiveCenter",
    "ScalarBatchAdapter",
    "StaticServer",
    "WorkFunctionLine",
    "algorithm_info",
    "as_vectorized",
    "available_algorithms",
    "compatible_algorithms",
    "make_algorithm",
    "make_vectorized",
    "register",
]
