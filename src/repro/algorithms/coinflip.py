"""The randomized Coin-Flip algorithm, adapted to the mobile setting.

Westbrook's Coin-Flip algorithm for page migration is 3-competitive against
adaptive online adversaries: after serving a request, migrate the page to
the requester with probability :math:`1/(2D)`.  The mobile adaptation keeps
the coin but replaces the jump by capped pursuit: when the coin comes up
heads the batch's center becomes the pursuit target, which the server
chases at full allowed speed until reached (or until a new heads re-aims
it).

Randomization is injected through a :class:`numpy.random.Generator` so runs
are reproducible; the simulator treats the algorithm like any other, and
expected ratios are estimated by averaging seeds (see
:mod:`repro.analysis.ratio`).
"""

from __future__ import annotations

import numpy as np

from ..core.requests import RequestBatch
from ..median import request_center
from .base import OnlineAlgorithm

__all__ = ["CoinFlip"]


class CoinFlip(OnlineAlgorithm):
    """Coin-Flip page migration with capped movement.

    Parameters
    ----------
    rng:
        Source of randomness; defaults to a seed-0 generator so bare
        constructions are reproducible (pass your own Generator to vary).
    probability:
        Heads probability per step with requests; ``None`` uses the
        classical :math:`1/(2D)` (evaluated at reset, when ``D`` is known).
    """

    def __init__(self, rng: np.random.Generator | None = None, probability: float | None = None) -> None:
        super().__init__()
        if probability is not None and not (0.0 < probability <= 1.0):
            raise ValueError("probability must lie in (0, 1]")
        # Seeded fallback (reprolint RNG001): matches the registry's
        # default_rng(0) entry, so bare CoinFlip() runs reproduce too.
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.probability = probability
        self.name = "coin-flip"
        self._target: np.ndarray | None = None
        self._p = 0.5

    def is_randomized(self) -> bool:
        return True

    def reset(self, instance, cap) -> None:  # type: ignore[override]
        super().reset(instance, cap)
        self._target = None
        self._p = self.probability if self.probability is not None else 1.0 / (2.0 * instance.D)

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count and self.rng.random() < self._p:
            self._target = request_center(batch.points, self.position)
        if self._target is None:
            return self.position
        new_pos = self.metric.move_towards(self.position, self._target, self.cap)
        if np.allclose(new_pos, self._target, rtol=0.0, atol=1e-12):
            self._target = None
        return new_pos
