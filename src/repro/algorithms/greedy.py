"""Greedy baselines.

These are the natural "no-damping" strategies an engineer would try first;
the lower-bound experiments show exactly how they fail (they pay
:math:`\\Theta(D)` movement for every small fluctuation in the request
stream, or get dragged arbitrarily far by outliers).

* :class:`GreedyCenter` — full speed towards the current batch's center.
* :class:`GreedyCentroid` — full speed towards the batch centroid (mean),
  a cheaper but wrong notion of "middle": means chase outliers.
* :class:`NearestRequestChaser` — full speed towards the closest request,
  a k-server-like greedy.
"""

from __future__ import annotations

import numpy as np

from ..core.metric import centroid
from ..core.requests import RequestBatch
from ..median import request_center
from .base import OnlineAlgorithm

__all__ = ["GreedyCenter", "GreedyCentroid", "NearestRequestChaser"]


class GreedyCenter(OnlineAlgorithm):
    """Move at full allowed speed towards the batch's geometric median."""

    name = "greedy-center"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count == 0:
            return self.position
        c = request_center(batch.points, self.position)
        return self.metric.move_towards(self.position, c, self.cap)


class GreedyCentroid(OnlineAlgorithm):
    """Move at full allowed speed towards the batch centroid (mean point).

    The mean minimizes the *squared* distances, not the distances, so this
    baseline measurably over-reacts to outliers compared to
    :class:`GreedyCenter` — a cheap ablation of the median choice.
    """

    name = "greedy-centroid"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count == 0:
            return self.position
        c = centroid(batch.points)
        return self.metric.move_towards(self.position, c, self.cap)


class NearestRequestChaser(OnlineAlgorithm):
    """Move at full allowed speed towards the nearest request of the batch."""

    name = "nearest-chaser"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        if batch.count == 0:
            return self.position
        dists = self.metric.distances_to(self.position, batch.points)
        target = batch.points[int(np.argmin(dists))]
        return self.metric.move_towards(self.position, target, self.cap)
