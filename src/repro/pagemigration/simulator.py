"""Simulator and offline DP for classical page migration on graphs.

Costs follow the classical convention (and the paper's Section 2 with the
move-first rule specialised to nodes): in step ``t`` the page may migrate
from node :math:`p_{t}` to :math:`p_{t+1}` at cost
:math:`D\\,\\mathrm{dist}(p_t, p_{t+1})`, then serves the request from
:math:`p_{t+1}` at cost :math:`\\mathrm{dist}(p_{t+1}, v_t)`.

The offline optimum is a plain DP over nodes — the state space is finite,
so the classical problem is exactly solvable and competitive ratios here
are exact (used to validate the known constants: Move-To-Min ≈ 7,
Coin-Flip ≈ 3, and to anchor E13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .algorithms import PageMigrationAlgorithm
from .graph import MigrationNetwork

__all__ = ["PageMigrationResult", "simulate_page_migration", "offline_page_migration"]


@dataclass(frozen=True)
class PageMigrationResult:
    """Outcome of one page-migration run.

    Attributes
    ----------
    total, movement, service:
        Cost totals.
    pages:
        ``(T + 1,)`` node indices of the page (row 0 = start).
    """

    total: float
    movement: float
    service: float
    pages: np.ndarray


def simulate_page_migration(
    network: MigrationNetwork,
    requests: np.ndarray,
    algorithm: PageMigrationAlgorithm,
    start: int = 0,
    D: float = 1.0,
) -> PageMigrationResult:
    """Run ``algorithm`` on a node-request sequence."""
    requests = np.asarray(requests, dtype=np.int64)
    if requests.ndim != 1:
        raise ValueError("requests must be a 1-D array of node indices")
    if np.any(requests < 0) or np.any(requests >= network.n):
        raise ValueError("request index out of range")
    algorithm.reset(network, start, D)
    T = requests.shape[0]
    pages = np.empty(T + 1, dtype=np.int64)
    pages[0] = start
    movement = 0.0
    service = 0.0
    page = start
    for t in range(T):
        new_page = int(algorithm.decide(t, int(requests[t])))
        if not (0 <= new_page < network.n):
            raise ValueError(f"algorithm returned invalid node {new_page}")
        movement += D * network.distance(page, new_page)
        service += network.distance(new_page, int(requests[t]))
        page = new_page
        algorithm.page = page
        pages[t + 1] = page
    return PageMigrationResult(total=movement + service, movement=movement, service=service, pages=pages)


def offline_page_migration(
    network: MigrationNetwork,
    requests: np.ndarray,
    start: int = 0,
    D: float = 1.0,
) -> PageMigrationResult:
    """Exact offline optimum by DP over nodes.

    :math:`O(T n^2)` time, :math:`O(T n)` memory (for path recovery).
    """
    requests = np.asarray(requests, dtype=np.int64)
    T = requests.shape[0]
    n = network.n
    move = D * network.distances  # (n, n) transition costs
    w = np.full(n, np.inf)
    w[start] = 0.0
    tables = np.empty((T + 1, n))
    tables[0] = w
    for t in range(T):
        service = network.distances[:, requests[t]]
        w = (w[None, :] + move.T).min(axis=1) + service
        tables[t + 1] = w
    total = float(w.min())

    pages = np.empty(T + 1, dtype=np.int64)
    idx = int(np.argmin(w))
    pages[T] = idx
    for t in range(T, 0, -1):
        service_here = network.distances[idx, requests[t - 1]]
        scores = tables[t - 1] + move[:, idx] + service_here
        idx = int(np.argmin(np.abs(scores - tables[t][idx])))
        pages[t - 1] = idx

    movement = float(sum(D * network.distance(int(pages[t]), int(pages[t + 1])) for t in range(T)))
    service = float(sum(network.distance(int(pages[t + 1]), int(requests[t])) for t in range(T)))
    return PageMigrationResult(total=total, movement=movement, service=service, pages=pages)
