"""Classical Page Migration substrate (graphs, classical algorithms, DP)."""

from .algorithms import (
    CoinFlipGraph,
    CountMoveTo,
    GreedyFollow,
    MoveToMinGraph,
    PageMigrationAlgorithm,
    StaticPage,
)
from .dynamic import (
    DynamicNetwork,
    offline_dynamic_page_migration,
    simulate_dynamic_page_migration,
)
from .graph import (
    MigrationNetwork,
    complete_uniform,
    grid_graph,
    path_graph,
    random_geometric,
    random_tree,
)
from .simulator import (
    PageMigrationResult,
    offline_page_migration,
    simulate_page_migration,
)

__all__ = [
    "CoinFlipGraph",
    "CountMoveTo",
    "DynamicNetwork",
    "GreedyFollow",
    "MigrationNetwork",
    "MoveToMinGraph",
    "PageMigrationAlgorithm",
    "PageMigrationResult",
    "StaticPage",
    "complete_uniform",
    "grid_graph",
    "offline_dynamic_page_migration",
    "offline_page_migration",
    "path_graph",
    "random_geometric",
    "random_tree",
    "simulate_dynamic_page_migration",
    "simulate_page_migration",
]
