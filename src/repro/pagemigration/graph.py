"""Network model for the classical Page Migration Problem.

The classical problem (Black–Sleator 1989; Westbrook 1994) lives on a
weighted graph of processors: requests name *nodes*, serving costs the
shortest-path distance, migrating the page costs :math:`D` times that
distance.  :class:`MigrationNetwork` wraps a :mod:`networkx` graph with a
precomputed all-pairs distance matrix so the simulator and algorithms pay
O(1) per lookup.

Factory helpers build the topologies the classical results talk about:
complete uniform graphs, trees, paths and 2-D grids — plus random geometric
graphs that mimic ad-hoc device networks (the paper's motivation).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = [
    "MigrationNetwork",
    "complete_uniform",
    "random_tree",
    "path_graph",
    "grid_graph",
    "random_geometric",
]


@dataclass
class MigrationNetwork:
    """A processor network with metric distances.

    Attributes
    ----------
    graph:
        The underlying weighted graph (edge attribute ``weight``).
    nodes:
        Stable node ordering; indices into :attr:`distances`.
    distances:
        ``(n, n)`` shortest-path distance matrix.
    """

    graph: nx.Graph
    nodes: list
    distances: np.ndarray

    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "MigrationNetwork":
        if graph.number_of_nodes() == 0:
            raise ValueError("network must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("network must be connected")
        nodes = list(graph.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        n = len(nodes)
        dist = np.zeros((n, n))
        for src, lengths in nx.all_pairs_dijkstra_path_length(graph, weight="weight"):
            i = index[src]
            for dst, d in lengths.items():
                dist[i, index[dst]] = d
        return cls(graph=graph, nodes=nodes, distances=dist)

    @property
    def n(self) -> int:
        return len(self.nodes)

    def distance(self, i: int, j: int) -> float:
        """Shortest-path distance between node indices ``i`` and ``j``."""
        return float(self.distances[i, j])

    def weber_node(self, request_indices: np.ndarray, weights: np.ndarray | None = None) -> int:
        """Node minimizing the (weighted) sum of distances to the requests.

        The graph analogue of the geometric median — the "min" of
        Move-To-Min.
        """
        request_indices = np.asarray(request_indices, dtype=np.int64)
        if request_indices.size == 0:
            raise ValueError("need at least one request")
        cols = self.distances[:, request_indices]
        if weights is not None:
            cols = cols * np.asarray(weights, dtype=np.float64)[None, :]
        return int(np.argmin(cols.sum(axis=1)))


def complete_uniform(n: int, weight: float = 1.0) -> MigrationNetwork:
    """Complete graph with uniform edge weights (the Black–Sleator setting)."""
    g = nx.complete_graph(n)
    nx.set_edge_attributes(g, weight, "weight")
    return MigrationNetwork.from_graph(g)


def random_tree(n: int, rng: np.random.Generator, max_weight: float = 4.0) -> MigrationNetwork:
    """Uniform random labelled tree with random edge weights."""
    if n < 2:
        raise ValueError("tree needs at least 2 nodes")
    # Random Prüfer sequence -> uniform random tree.
    if n == 2:
        g = nx.Graph()
        g.add_edge(0, 1)
    else:
        seq = rng.integers(0, n, size=n - 2).tolist()
        g = nx.from_prufer_sequence(seq)
    for u, v in g.edges():
        g[u][v]["weight"] = float(rng.uniform(1.0, max_weight))
    return MigrationNetwork.from_graph(g)


def path_graph(n: int, weight: float = 1.0) -> MigrationNetwork:
    """Path graph — the network analogue of the line."""
    g = nx.path_graph(n)
    nx.set_edge_attributes(g, weight, "weight")
    return MigrationNetwork.from_graph(g)


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> MigrationNetwork:
    """2-D grid network."""
    g = nx.grid_2d_graph(rows, cols)
    nx.set_edge_attributes(g, weight, "weight")
    return MigrationNetwork.from_graph(g)


def random_geometric(n: int, rng: np.random.Generator, radius: float = 0.4) -> MigrationNetwork:
    """Random geometric graph over the unit square (ad-hoc device network).

    Edge weights are Euclidean distances; the radius is grown until the
    graph connects.
    """
    pos = {i: (float(x), float(y)) for i, (x, y) in enumerate(rng.uniform(0, 1, size=(n, 2)))}
    r = radius
    while True:
        g = nx.random_geometric_graph(n, r, pos=pos)
        if nx.is_connected(g):
            break
        r *= 1.25
    for u, v in g.edges():
        (x1, y1), (x2, y2) = pos[u], pos[v]
        g[u][v]["weight"] = float(np.hypot(x1 - x2, y1 - y2))
    return MigrationNetwork.from_graph(g)
