"""Page migration in dynamically changing networks (Bienkowski et al.).

The related-work section cites Bienkowski, Byrka, Korzeniowski and Meyer
auf der Heide's model in which edge distances *change over time* — the
bridge between classical page migration and the Mobile Server Problem
(which replaces the changing graph with free movement in Euclidean
space).  This module implements the dynamic substrate so E13-style
comparisons can show the continuum:

* :class:`DynamicNetwork` — a node set whose pairwise distances are
  re-derived each step from *node positions* moving in the plane with
  bounded per-step displacement (the "mobile nodes" interpretation; it
  guarantees the triangle inequality at every step, which arbitrary
  per-edge perturbation would not);
* :func:`simulate_dynamic_page_migration` — the usual move-then-serve
  accounting, with the page's migration cost charged at the *current*
  step's metric;
* :func:`offline_dynamic_page_migration` — exact DP over nodes with the
  time-varying metric.

With node speed 0 this degenerates exactly to the static substrate, which
the tests verify against :mod:`repro.pagemigration.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .algorithms import PageMigrationAlgorithm

__all__ = [
    "DynamicNetwork",
    "simulate_dynamic_page_migration",
    "offline_dynamic_page_migration",
]


@dataclass
class DynamicNetwork:
    """Mobile nodes in the plane; the metric at step ``t`` is Euclidean.

    Attributes
    ----------
    node_positions:
        ``(T, n, 2)`` positions of every node at every step.
    """

    node_positions: np.ndarray

    def __post_init__(self) -> None:
        pos = np.asarray(self.node_positions, dtype=np.float64)
        if pos.ndim != 3 or pos.shape[2] != 2:
            raise ValueError(f"node_positions must be (T, n, 2), got {pos.shape}")
        self.node_positions = pos

    @property
    def length(self) -> int:
        return int(self.node_positions.shape[0])

    @property
    def n(self) -> int:
        return int(self.node_positions.shape[1])

    def distances_at(self, t: int) -> np.ndarray:
        """``(n, n)`` metric at step ``t``."""
        pos = self.node_positions[t]
        diff = pos[:, None, :] - pos[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    @classmethod
    def random_walkers(
        cls,
        T: int,
        n: int,
        rng: np.random.Generator,
        speed: float = 0.1,
        arena: float = 10.0,
    ) -> "DynamicNetwork":
        """Nodes random-walking (reflected) inside ``[-arena, arena]^2``."""
        pos = rng.uniform(-arena, arena, size=(n, 2))
        out = np.empty((T, n, 2))
        for t in range(T):
            pos = pos + rng.normal(scale=speed, size=(n, 2))
            pos = np.clip(pos, -arena, arena)
            out[t] = pos
        return cls(out)

    @classmethod
    def static(cls, T: int, positions: np.ndarray) -> "DynamicNetwork":
        """A frozen network, for equivalence checks with the static substrate."""
        positions = np.asarray(positions, dtype=np.float64)
        return cls(np.tile(positions[None, :, :], (T, 1, 1)))


class _DynamicShim:
    """Adapts the static-algorithm interface to a per-step metric."""

    def __init__(self, distances: np.ndarray, nodes_n: int):
        self.distances = distances
        self.n = nodes_n

    def distance(self, i: int, j: int) -> float:
        return float(self.distances[i, j])

    def weber_node(self, request_indices: np.ndarray, weights=None) -> int:
        cols = self.distances[:, np.asarray(request_indices, dtype=np.int64)]
        if weights is not None:
            cols = cols * np.asarray(weights, dtype=np.float64)[None, :]
        return int(np.argmin(cols.sum(axis=1)))


def simulate_dynamic_page_migration(
    network: DynamicNetwork,
    requests: np.ndarray,
    algorithm: PageMigrationAlgorithm,
    start: int = 0,
    D: float = 1.0,
) -> float:
    """Total cost of ``algorithm`` under the time-varying metric.

    The algorithm sees the *current* metric through its ``network``
    attribute, refreshed every step (classical strategies consult only
    distances, so the shim suffices).
    """
    requests = np.asarray(requests, dtype=np.int64)
    if requests.shape[0] != network.length:
        raise ValueError("requests must have one entry per network step")
    shim = _DynamicShim(network.distances_at(0), network.n)
    algorithm.reset(shim, start, D)  # type: ignore[arg-type]
    total = 0.0
    page = start
    for t in range(network.length):
        dist = network.distances_at(t)
        shim.distances = dist
        new_page = int(algorithm.decide(t, int(requests[t])))
        total += D * float(dist[page, new_page]) + float(dist[new_page, requests[t]])
        page = new_page
        algorithm.page = page
    return total


def offline_dynamic_page_migration(
    network: DynamicNetwork,
    requests: np.ndarray,
    start: int = 0,
    D: float = 1.0,
) -> float:
    """Exact offline optimum under the time-varying metric (``O(T n^2)``)."""
    requests = np.asarray(requests, dtype=np.int64)
    n = network.n
    w = np.full(n, np.inf)
    w[start] = 0.0
    for t in range(network.length):
        dist = network.distances_at(t)
        service = dist[:, requests[t]]
        w = (w[None, :] + D * dist.T).min(axis=1) + service
    return float(w.min())
