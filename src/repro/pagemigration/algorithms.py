"""Classical page-migration algorithms on graphs.

The strategies the related-work section cites, implemented on
:class:`~repro.pagemigration.graph.MigrationNetwork`:

* :class:`StaticPage` — never migrate (baseline);
* :class:`GreedyFollow` — migrate to every requester (the other extreme);
* :class:`MoveToMinGraph` — Westbrook's deterministic 7-competitive
  strategy: every :math:`D` requests migrate to the node minimizing the
  distance sum to the last :math:`D` requesters;
* :class:`CoinFlipGraph` — Westbrook's randomized 3-competitive strategy:
  after each request migrate to the requester with probability
  :math:`1/(2D)`;
* :class:`CountMoveTo` (Black–Sleator flavour) — keep per-node deficit
  counters and migrate when a node has accumulated :math:`D` more requests
  than the current holder since the last migration.

These run in the *uncapped* classical model; the mobile-server experiments
use their Euclidean adaptations from :mod:`repro.algorithms` instead.  The
substrate exists so that E13 can compare against the lineage the paper
builds on, and to validate our adaptations against known behaviour.
"""

from __future__ import annotations

import abc

import numpy as np

from .graph import MigrationNetwork

__all__ = [
    "PageMigrationAlgorithm",
    "StaticPage",
    "GreedyFollow",
    "MoveToMinGraph",
    "CoinFlipGraph",
    "CountMoveTo",
]


class PageMigrationAlgorithm(abc.ABC):
    """Base class: sees one requesting node per step, returns the new page node."""

    name: str = "page-migration"

    def __init__(self) -> None:
        self.network: MigrationNetwork | None = None
        self.page: int = 0
        self.D: float = 1.0

    def reset(self, network: MigrationNetwork, start: int, D: float) -> None:
        self.network = network
        self.page = int(start)
        self.D = float(D)

    @abc.abstractmethod
    def decide(self, t: int, request: int) -> int:
        """Return the node to hold the page after serving ``request``."""

    def is_randomized(self) -> bool:
        return False


class StaticPage(PageMigrationAlgorithm):
    """Never migrates."""

    name = "pm-static"

    def decide(self, t: int, request: int) -> int:
        return self.page


class GreedyFollow(PageMigrationAlgorithm):
    """Migrates to every requester."""

    name = "pm-greedy"

    def decide(self, t: int, request: int) -> int:
        return int(request)


class MoveToMinGraph(PageMigrationAlgorithm):
    """Westbrook's Move-To-Min: phases of ``ceil(D)`` requests.

    At the end of each phase the page moves to the node minimizing the sum
    of distances to the phase's requesters.
    """

    name = "pm-move-to-min"

    def __init__(self) -> None:
        super().__init__()
        self._phase: list[int] = []

    def reset(self, network: MigrationNetwork, start: int, D: float) -> None:
        super().reset(network, start, D)
        self._phase = []

    def decide(self, t: int, request: int) -> int:
        assert self.network is not None
        self._phase.append(int(request))
        if len(self._phase) >= max(1, int(np.ceil(self.D))):
            target = self.network.weber_node(np.asarray(self._phase))
            self._phase = []
            return target
        return self.page


class CoinFlipGraph(PageMigrationAlgorithm):
    """Westbrook's Coin-Flip: migrate to the requester w.p. ``1/(2D)``.

    3-competitive against adaptive online adversaries in the classical
    model.
    """

    name = "pm-coin-flip"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        # Seeded fallback (reprolint RNG001): default construction is
        # reproducible; simulations thread their own seeded Generator.
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def is_randomized(self) -> bool:
        return True

    def decide(self, t: int, request: int) -> int:
        if self.rng.random() < 1.0 / (2.0 * self.D):
            return int(request)
        return self.page


class CountMoveTo(PageMigrationAlgorithm):
    """Counter-based migration in the Black–Sleator spirit.

    Each node accumulates a counter per request it issues; when some node's
    counter exceeds the page holder's by :math:`D`, the page migrates there
    and counters reset.  (On two-node uniform networks this reproduces the
    3-competitive ski-rental behaviour.)
    """

    name = "pm-count"

    def __init__(self) -> None:
        super().__init__()
        self._counters: np.ndarray | None = None

    def reset(self, network: MigrationNetwork, start: int, D: float) -> None:
        super().reset(network, start, D)
        self._counters = np.zeros(network.n)

    def decide(self, t: int, request: int) -> int:
        assert self._counters is not None
        self._counters[request] += 1.0
        leader = int(np.argmax(self._counters))
        if leader != self.page and self._counters[leader] - self._counters[self.page] >= self.D:
            self._counters[:] = 0.0
            return leader
        return self.page
