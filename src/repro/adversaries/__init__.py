"""Lower-bound adversary constructions (Theorems 1, 2, 3 and 8).

Each ``build_thmN`` function materialises one draw of the randomized
instance used in the corresponding proof, together with the adversary's own
trajectory whose replayed cost upper-bounds the offline optimum.
"""

from .adaptive import AdaptiveRunResult, GreedyEscapeAdversary
from .base import AdversarialInstance, embed_direction
from .registry import (
    ADVERSARIES,
    AdaptiveGame,
    AdversaryInfo,
    BoundAdversary,
    adversary_info,
    available_adversaries,
    make_adversary,
    register_adversary,
)
from .thm1 import build_thm1
from .thm2 import build_thm2, thm2_phase_lengths
from .thm3 import build_thm3
from .thm8 import build_thm8

__all__ = [
    "ADVERSARIES",
    "AdaptiveGame",
    "AdaptiveRunResult",
    "AdversarialInstance",
    "AdversaryInfo",
    "BoundAdversary",
    "GreedyEscapeAdversary",
    "adversary_info",
    "available_adversaries",
    "build_thm1",
    "build_thm2",
    "build_thm3",
    "build_thm8",
    "embed_direction",
    "make_adversary",
    "register_adversary",
    "thm2_phase_lengths",
]
