"""Adversary registry.

Mirrors the algorithm and workload registries: every lower-bound
construction is addressable by ``name + JSON-able params``, so a
:class:`~repro.api.Scenario` can name its request source declaratively
and the orchestrator can content-address adversarial cells exactly like
workload cells.

Two kinds of entries exist:

* **oblivious** constructions (the paper's Theorems 1, 2, 3 and 8):
  :func:`make_adversary` returns a :class:`BoundAdversary`, a seedable
  builder — call it with a :class:`numpy.random.Generator` to draw one
  :class:`~repro.adversaries.base.AdversarialInstance`;
* **adaptive** opponents (:class:`~repro.adversaries.adaptive.GreedyEscapeAdversary`):
  the entry is tagged ``adaptive=True`` and :func:`make_adversary`
  returns an :class:`AdaptiveGame`, which must be *played* against an
  algorithm instead of pre-built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict

import numpy as np

from ..core.costs import CostModel
from .adaptive import AdaptiveRunResult, GreedyEscapeAdversary
from .base import AdversarialInstance
from .thm1 import build_thm1
from .thm2 import build_thm2
from .thm3 import build_thm3
from .thm8 import build_thm8

__all__ = [
    "ADVERSARIES",
    "AdaptiveGame",
    "AdversaryInfo",
    "BoundAdversary",
    "adversary_info",
    "available_adversaries",
    "make_adversary",
    "register_adversary",
]


@dataclass(frozen=True)
class AdversaryInfo:
    """One registry entry: builder plus capability metadata.

    Attributes
    ----------
    name, builder:
        Registry key and construction function.  Oblivious builders take
        their construction parameters as keywords plus ``rng``; adaptive
        builders take parameters only and return an :class:`AdaptiveGame`
        factory input.
    supported_dims:
        Dimensions the construction can be embedded in; ``None`` = any.
    moving_client:
        Whether the construction is a Section-5 (moving client) one — its
        instances carry an agent trajectory and satisfy algorithms that
        declare ``requires_moving_client``.
    adaptive:
        Whether the opponent reacts to the online algorithm (no fixed
        instance exists before the game is played).
    """

    name: str
    builder: Callable[..., Any]
    supported_dims: tuple[int, ...] | None = None
    moving_client: bool = False
    adaptive: bool = False

    def supports_dim(self, dim: int) -> bool:
        return self.supported_dims is None or dim in self.supported_dims


@dataclass(frozen=True)
class BoundAdversary:
    """An oblivious construction with its parameters bound.

    Calling it with a seeded generator materialises one draw; the object
    itself is cheap and picklable, so scenario cells can carry it across
    process boundaries by name + params instead.
    """

    info: AdversaryInfo
    params: Dict[str, Any] = field(default_factory=dict)

    def build(self, rng: np.random.Generator) -> AdversarialInstance:
        return self.info.builder(rng=rng, **self.params)

    __call__ = build


@dataclass(frozen=True)
class AdaptiveGame:
    """An adaptive opponent plus the game geometry it will be played on."""

    adversary: GreedyEscapeAdversary
    T: int
    dim: int = 1

    def play(self, algorithm: Any, delta: float = 0.0) -> AdaptiveRunResult:
        return self.adversary.run(algorithm, self.T, dim=self.dim, delta=delta)


def _build_greedy_escape(
    T: int = 100,
    dim: int = 1,
    D: float = 1.0,
    m: float = 1.0,
    requests_per_step: int = 1,
) -> AdaptiveGame:
    return AdaptiveGame(
        GreedyEscapeAdversary(D=D, m=m, requests_per_step=requests_per_step), T, dim
    )


ADVERSARIES: Dict[str, AdversaryInfo] = {}


def register_adversary(
    name: str,
    builder: Callable[..., Any],
    overwrite: bool = False,
    *,
    supported_dims: tuple[int, ...] | None = None,
    moving_client: bool = False,
    adaptive: bool = False,
) -> None:
    """Add a construction (plus capability limits) to the registry."""
    if name in ADVERSARIES and not overwrite:
        raise KeyError(f"adversary {name!r} already registered")
    ADVERSARIES[name] = AdversaryInfo(
        name=name,
        builder=builder,
        supported_dims=tuple(supported_dims) if supported_dims is not None else None,
        moving_client=moving_client,
        adaptive=adaptive,
    )


register_adversary("thm1", build_thm1)
register_adversary("thm2", build_thm2)
register_adversary("thm3", build_thm3)
register_adversary("thm8", build_thm8, moving_client=True)
register_adversary("greedy-escape", _build_greedy_escape, adaptive=True)


def adversary_info(name: str) -> AdversaryInfo:
    """Registry entry for one adversary name."""
    try:
        return ADVERSARIES[name]
    except KeyError:
        raise KeyError(
            f"unknown adversary {name!r}; available: {', '.join(sorted(ADVERSARIES))}"
        ) from None


def _coerce_params(params: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-able params → builder arguments (enum strings become enums)."""
    out = dict(params)
    if isinstance(out.get("cost_model"), str):
        out["cost_model"] = CostModel(out["cost_model"])
    return out


def make_adversary(name: str, **params: Any) -> BoundAdversary | AdaptiveGame:
    """Bind a registered construction to its parameters.

    Oblivious entries return a :class:`BoundAdversary` (call with an rng
    to draw an instance); adaptive entries return an :class:`AdaptiveGame`
    ready to :meth:`~AdaptiveGame.play`.
    """
    info = adversary_info(name)
    if info.adaptive:
        return info.builder(**_coerce_params(params))
    return BoundAdversary(info, _coerce_params(params))


def available_adversaries() -> list[str]:
    """Sorted registry keys."""
    return sorted(ADVERSARIES)
