"""Theorem 3 construction: :math:`\\Omega(r/D)` in the Answer-First model.

A two-step cycle, one fresh coin per cycle:

1. ``r`` requests at the adversary's current position; the adversary then
   hops ``m`` left or right (the coin);
2. ``r`` requests at the adversary's new position; the adversary rests.

In the answer-first model the online server must serve step 2's requests
*before* moving; since it cannot know the coin, with probability 1/2 it is
:math:`\\ge m` away and pays :math:`\\ge r m` for the cycle, against the
adversary's :math:`D m`.  Note the same sequence is harmless in the
move-first model — the server may hop onto the requests before serving —
which is exactly the asymmetry experiment E3 exhibits.
"""

from __future__ import annotations

import numpy as np

from ..core.costs import CostModel
from ..core.instance import MSPInstance
from ..core.requests import RequestSequence
from .base import AdversarialInstance, embed_direction

__all__ = ["build_thm3"]


def build_thm3(
    cycles: int,
    r: int = 1,
    D: float = 1.0,
    m: float = 1.0,
    dim: int = 1,
    rng: np.random.Generator | None = None,
    signs: np.ndarray | None = None,
    cost_model: CostModel = CostModel.ANSWER_FIRST,
) -> AdversarialInstance:
    """Build one draw of the Theorem-3 instance (``2 * cycles`` steps).

    Parameters
    ----------
    cycles:
        Number of two-step cycles.
    r:
        Requests per step (the theorem's fixed constant).
    cost_model:
        Defaults to ``ANSWER_FIRST`` (the model the bound addresses); pass
        ``MOVE_FIRST`` to measure the same sequence in the default model
        and observe the bound evaporate.
    """
    if cycles < 1:
        raise ValueError("cycles must be positive")
    if r < 1:
        raise ValueError("r must be positive")
    if signs is None:
        if rng is None:
            # Deterministic fallback (reprolint RNG001): unseeded builds
            # reproduce; pass a seeded Generator for fresh coin draws.
            rng = np.random.default_rng(0)
        signs = np.where(rng.random(cycles) < 0.5, 1.0, -1.0)
    signs = np.asarray(signs, dtype=np.float64)
    if signs.shape != (cycles,):
        raise ValueError(f"signs must have shape ({cycles},)")

    start = np.zeros(dim)
    T = 2 * cycles
    pts = np.empty((T, r, dim))
    adv_positions = np.empty((T + 1, dim))
    adv_positions[0] = start
    pos = start.copy()
    for k in range(cycles):
        u = embed_direction(signs[k], dim)
        # Step 2k: requests at current adversary position, then the hop.
        pts[2 * k] = pos
        pos = pos + m * u
        adv_positions[2 * k + 1] = pos
        # Step 2k+1: requests at the new position, adversary rests.
        pts[2 * k + 1] = pos
        adv_positions[2 * k + 2] = pos

    seq = RequestSequence.from_packed(pts)
    inst = MSPInstance(
        seq,
        start=start,
        D=D,
        m=m,
        cost_model=cost_model,
        name=f"thm3[r={r},cycles={cycles},{cost_model.value}]",
    )
    return AdversarialInstance(
        instance=inst,
        adversary_positions=adv_positions,
        params={
            "theorem": 3,
            "cycles": cycles,
            "r": r,
            "D": D,
            "m": m,
            "signs": signs.tolist(),
            "cost_model": cost_model.value,
        },
    )
