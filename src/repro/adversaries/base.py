"""Common scaffolding for the lower-bound constructions.

Each theorem's proof builds a *randomized instance* (Yao's principle) plus
the adversary's own server trajectory, whose cost upper-bounds the offline
optimum.  An :class:`AdversarialInstance` packages the two together with
the coin outcomes, so experiments can simulate any algorithm on the
instance and divide by the adversary's (replayed) cost to get a certified
ratio lower bound:

.. math:: \\frac{C_{Alg}}{C_{Adv}} \\le \\frac{C_{Alg}}{C_{Opt}}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.instance import MovingClientInstance, MSPInstance
from ..core.simulator import replay_cost

__all__ = ["AdversarialInstance", "embed_direction"]


def embed_direction(sign: float, dim: int) -> np.ndarray:
    """The proofs act along one axis; embed ``±1`` as ``±e_1`` in ``dim``."""
    u = np.zeros(dim)
    u[0] = float(sign)
    return u


@dataclass(frozen=True)
class AdversarialInstance:
    """A lower-bound instance with its adversary trajectory.

    Attributes
    ----------
    instance:
        The MSP (or lowered moving-client) instance to play.
    adversary_positions:
        ``(T + 1, d)`` trajectory of the adversary's server (row 0 = start).
    params:
        Construction parameters (``T``, ``x``, coin outcomes, ...), kept for
        reporting.
    moving_client:
        The original :class:`MovingClientInstance` when the construction is
        a Section-5 one, else ``None``.
    """

    instance: MSPInstance
    adversary_positions: np.ndarray
    params: dict[str, Any] = field(default_factory=dict)
    moving_client: MovingClientInstance | None = None

    def adversary_cost(self) -> float:
        """Replay the adversary trajectory under the instance's accounting.

        The trajectory is validated against the *offline* cap ``m`` — the
        constructions never exceed it, and a violation here would mean the
        generator is wrong, so it raises.
        """
        trace = replay_cost(self.instance, self.adversary_positions, validate_cap=self.instance.m)
        return trace.total_cost

    def ratio_of(self, algorithm_cost: float) -> float:
        """Certified competitive-ratio lower bound for a measured cost."""
        denom = self.adversary_cost()
        if denom <= 0:
            raise ZeroDivisionError("adversary cost is zero; degenerate construction")
        return algorithm_cost / denom
