"""Theorem 1 construction: :math:`\\Omega(\\sqrt{T/D})` without augmentation.

The sequence has two phases driven by one fair coin:

1. for :math:`x` steps one request per step sits on the starting position
   :math:`P_0` while the adversary walks its server distance ``m`` per step
   left or right (the coin);
2. for the remaining :math:`T - x` steps the request sits on the
   adversary's server, which keeps walking the same way.

With probability 1/2 any online server is at distance :math:`\\ge x m` from
the adversary after phase 1 (it cannot know the coin), and — lacking
augmentation — never catches up, paying :math:`\\ge (T - x) x m` against the
adversary's :math:`O(T D m + m x^2)`.  The proof's optimal choice is
:math:`x = \\sqrt{T}`.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MSPInstance
from ..core.requests import RequestSequence
from .base import AdversarialInstance, embed_direction

__all__ = ["build_thm1"]


def build_thm1(
    T: int,
    D: float = 1.0,
    m: float = 1.0,
    dim: int = 1,
    x: int | None = None,
    requests_per_step: int = 1,
    rng: np.random.Generator | None = None,
    sign: float | None = None,
) -> AdversarialInstance:
    """Build one draw of the Theorem-1 instance.

    Parameters
    ----------
    T:
        Sequence length.
    x:
        Separation-phase length; defaults to the proof's
        :math:`\\lfloor\\sqrt{T}\\rfloor`.
    requests_per_step:
        The theorem holds "even if there is only one request per time
        step"; larger values are allowed for sensitivity checks.
    rng, sign:
        Pass ``sign`` (±1) to fix the coin, else it is drawn from ``rng``.
    """
    if T < 4:
        raise ValueError("T must be at least 4")
    if x is None:
        x = max(1, int(np.floor(np.sqrt(T))))
    if not (1 <= x < T):
        raise ValueError(f"need 1 <= x < T, got x={x}, T={T}")
    if sign is None:
        if rng is None:
            # Deterministic fallback: an unseeded build must still be
            # reproducible (reprolint RNG001) — callers wanting fresh
            # draws pass their own seeded Generator.
            rng = np.random.default_rng(0)
        sign = 1.0 if rng.random() < 0.5 else -1.0
    u = embed_direction(sign, dim)
    start = np.zeros(dim)

    # Adversary walks m per step in direction `sign` for all T steps.
    steps = np.arange(1, T + 1, dtype=np.float64)
    adv = start[None, :] + (m * steps)[:, None] * u[None, :]
    adv_full = np.vstack([start[None, :], adv])

    # Requests: phase 1 on P0, phase 2 on the adversary's position.
    pts = np.empty((T, requests_per_step, dim))
    pts[:x] = start
    pts[x:] = adv[x:][:, None, :]
    seq = RequestSequence.from_packed(pts)
    inst = MSPInstance(seq, start=start, D=D, m=m, name=f"thm1[T={T},x={x}]")
    return AdversarialInstance(
        instance=inst,
        adversary_positions=adv_full,
        params={"theorem": 1, "T": T, "x": x, "D": D, "m": m, "sign": sign, "r": requests_per_step},
    )
