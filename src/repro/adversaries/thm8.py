"""Theorem 8 construction: :math:`\\Omega(\\sqrt{T}\\,\\varepsilon/(1+\\varepsilon))`
in the Moving Client variant when the agent is faster
(:math:`m_a = (1+\\varepsilon) m_s`).

Two phases, one coin:

1. for :math:`k = x \\cdot m_a / m_s` rounds the adversary walks its server
   :math:`m_s` per round in the coin's direction; the agent idles at
   :math:`P_0` and sprints (speed :math:`m_a`) to the adversary's position
   during the *last* ``x`` rounds of the phase;
2. adversary and agent walk together at :math:`m_s` per round.

An online server that guessed wrong trails the agent by
:math:`\\ge x (m_a - m_s) = x \\varepsilon m_s` at the end of phase 1 and —
being no faster than the agent — never closes the gap, paying
:math:`\\ge (T - k)\\, x \\varepsilon m_s` against the adversary's
:math:`O(T D m_s + x^2 m_a^2 / m_s)`.  The proof's choice is
:math:`x = \\sqrt{T}\\, m_s / m_a`.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MovingClientInstance
from .base import AdversarialInstance, embed_direction

__all__ = ["build_thm8"]


def build_thm8(
    T: int,
    epsilon: float = 1.0,
    D: float = 1.0,
    m_server: float = 1.0,
    dim: int = 1,
    x: int | None = None,
    rng: np.random.Generator | None = None,
    sign: float | None = None,
) -> AdversarialInstance:
    """Build one draw of the Theorem-8 moving-client instance.

    Parameters
    ----------
    T:
        Total rounds.
    epsilon:
        Agent speed advantage, :math:`m_a = (1+\\varepsilon) m_s`.
    x:
        Sprint length; defaults to the proof's
        :math:`\\lfloor \\sqrt{T}\\, m_s/m_a \\rfloor`.
    """
    if T < 4:
        raise ValueError("T must be at least 4")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive (agent strictly faster)")
    m_agent = (1.0 + epsilon) * m_server
    if x is None:
        x = max(1, int(np.floor(np.sqrt(T) * m_server / m_agent)))
    k = int(np.ceil(x * m_agent / m_server))  # phase-1 length in rounds
    if k >= T:
        raise ValueError(f"phase 1 ({k} rounds) must be shorter than T={T}; increase T")
    if sign is None:
        if rng is None:
            # Deterministic fallback (reprolint RNG001): unseeded builds
            # reproduce; pass a seeded Generator for a fresh coin draw.
            rng = np.random.default_rng(0)
        sign = 1.0 if rng.random() < 0.5 else -1.0
    u = embed_direction(sign, dim)
    start = np.zeros(dim)

    # Adversary server: m_s per round in direction `sign`, all T rounds.
    steps = np.arange(1, T + 1, dtype=np.float64)
    adv = (m_server * steps)[:, None] * u[None, :]
    adv_full = np.vstack([start[None, :], adv])

    # Agent: idle, then sprint to the adversary, then walk alongside it.
    # The gap at the end of phase 1 is k*m_s (>= x*m_a because of the
    # ceil), so the sprint uses ceil(k*m_s/m_a) rounds — x or x+1 — which
    # keeps every sprint step at most m_a.
    agent = np.empty((T, dim))
    sprint_rounds = int(np.ceil(k * m_server / m_agent - 1e-12))
    sprint_rounds = min(max(sprint_rounds, 1), k)
    idle_rounds = k - sprint_rounds
    agent[:idle_rounds] = start
    gap_target = adv[k - 1]  # adversary position at the end of phase 1
    for j in range(sprint_rounds):
        frac = (j + 1) / sprint_rounds
        agent[idle_rounds + j] = frac * gap_target
    # Phase 2: together with the adversary.
    agent[k:] = adv[k:]

    mc = MovingClientInstance(
        agent_path=agent,
        start=start,
        D=D,
        m_server=m_server,
        m_agent=m_agent,
        name=f"thm8[T={T},eps={epsilon:g},x={x}]",
    )
    return AdversarialInstance(
        instance=mc.as_msp(),
        adversary_positions=adv_full,
        params={
            "theorem": 8,
            "T": T,
            "epsilon": epsilon,
            "x": x,
            "k": k,
            "D": D,
            "m_server": m_server,
            "m_agent": m_agent,
            "sign": sign,
        },
        moving_client=mc,
    )
