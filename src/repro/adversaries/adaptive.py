"""A generic adaptive adversary harness.

The paper's lower bounds are oblivious (fixed randomized sequences), but
for exploration it is useful to play an algorithm against an *adaptive*
opponent that observes the online server and places the next batch to
maximise instantaneous damage while keeping its own server cheap.  The
:class:`GreedyEscapeAdversary` implements the natural strategy underlying
all four constructions: walk the adversary server away from the online
server at full offline speed and request at the adversary's position.

This is not a proof device — adaptive adversaries are *stronger* than
oblivious ones — but the measured ratios upper-bound what any oblivious
construction built from the same moves can achieve, which makes the
harness a useful sanity check on the Thm-1/2 generators (they should come
close to it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.base import OnlineAlgorithm
from ..core.costs import CostModel
from ..core.metric import get_metric
from ..core.instance import MSPInstance
from ..core.requests import RequestBatch, RequestSequence
from ..core.simulator import replay_cost
from ..core.validation import check_move

__all__ = ["AdaptiveRunResult", "GreedyEscapeAdversary"]

_METRIC = get_metric("euclidean")


@dataclass(frozen=True)
class AdaptiveRunResult:
    """Outcome of an adaptive game.

    Attributes
    ----------
    algorithm_cost, adversary_cost:
        Total costs of the two players under the same accounting.
    ratio:
        ``algorithm_cost / adversary_cost``.
    instance:
        The materialised instance (requests as actually issued), replayable.
    """

    algorithm_cost: float
    adversary_cost: float
    ratio: float
    instance: MSPInstance


class GreedyEscapeAdversary:
    """Runs `T` rounds of: flee the online server, request at own position.

    Parameters
    ----------
    D, m:
        Instance parameters granted to both players (the online algorithm
        additionally gets augmentation ``delta`` at run time).
    requests_per_step:
        Batch size placed on the adversary's server each round.
    """

    def __init__(self, D: float = 1.0, m: float = 1.0, requests_per_step: int = 1) -> None:
        if requests_per_step < 1:
            raise ValueError("requests_per_step must be positive")
        self.D = D
        self.m = m
        self.r = requests_per_step

    def run(
        self,
        algorithm: OnlineAlgorithm,
        T: int,
        dim: int = 1,
        delta: float = 0.0,
        start: np.ndarray | None = None,
    ) -> AdaptiveRunResult:
        """Play ``T`` adaptive rounds against ``algorithm``."""
        if start is None:
            start = np.zeros(dim)
        start = np.asarray(start, dtype=np.float64)

        # Seed the algorithm with a throwaway instance so reset() has the
        # right D/m; requests are revealed round by round below.
        stub = MSPInstance(
            RequestSequence([np.zeros((1, dim))], dim=dim), start=start, D=self.D, m=self.m
        )
        cap = stub.online_cap(delta)
        algorithm.reset(stub, cap)

        adv_pos = start.copy()
        online_pos = algorithm.position
        adv_path = [start.copy()]
        batches: list[np.ndarray] = []
        algorithm_cost = 0.0

        for t in range(T):
            # Adversary flees the online server at full offline speed.
            away = adv_pos - online_pos
            n = float(np.linalg.norm(away))  # reprolint: allow[MET001] reason=adversary constructions are Euclidean lower bounds; goldens pin these bits
            if n <= 1e-12:
                away = np.zeros(dim)
                away[0] = 1.0
                n = 1.0
            adv_pos = adv_pos + (self.m / n) * away
            adv_path.append(adv_pos.copy())
            batch_pts = np.tile(adv_pos, (self.r, 1))
            batches.append(batch_pts)
            batch = RequestBatch(batch_pts)

            new_pos = np.asarray(algorithm.decide(t, batch), dtype=np.float64)
            moved = check_move(t, online_pos, new_pos, cap, algorithm.name)
            service = float(_METRIC.distances_to(new_pos, batch_pts).sum())
            algorithm_cost += self.D * moved + service
            algorithm.position = new_pos
            online_pos = new_pos

        seq = RequestSequence(batches, dim=dim)
        inst = MSPInstance(
            seq,
            start=start,
            D=self.D,
            m=self.m,
            cost_model=CostModel.MOVE_FIRST,
            name=f"adaptive[T={T}]",
        )
        adv_cost = replay_cost(inst, np.asarray(adv_path), validate_cap=self.m).total_cost
        if adv_cost <= 0:
            adv_cost = float("nan")
        return AdaptiveRunResult(
            algorithm_cost=algorithm_cost,
            adversary_cost=adv_cost,
            ratio=algorithm_cost / adv_cost,
            instance=inst,
        )
