"""Theorem 2 construction: :math:`\\Omega((1/\\delta)\\,R_{max}/R_{min})`
despite :math:`(1+\\delta)m` augmentation.

Each *cycle* consists of two phases driven by a fresh fair coin:

* **separation** (:math:`x` steps): :math:`R_{min}` requests per step at the
  cycle's anchor (the adversary's position when the cycle starts); the
  adversary walks ``m`` per step in the coin's direction;
* **punishment** (:math:`\\lceil x/\\delta \\rceil` steps): :math:`R_{max}`
  requests per step on the adversary's server, which keeps walking.  An
  online server that guessed wrong trails by :math:`\\ge x m` and closes at
  most :math:`\\delta m` per step, paying
  :math:`\\approx R_{max}\\, m x^2 / (4\\delta)` versus the adversary's
  :math:`O(R_{min} m x^2)` (for :math:`x \\ge` both :math:`2/\\delta` and
  :math:`D\\delta/R_{min}`, the proof's "sufficiently large").

Cycles repeat independently, so the expected ratio concentrates with the
number of cycles.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import MSPInstance
from ..core.requests import RequestBatch, RequestSequence
from .base import AdversarialInstance, embed_direction

__all__ = ["build_thm2", "thm2_phase_lengths"]


def thm2_phase_lengths(delta: float, x: int | None = None) -> tuple[int, int]:
    """Proof-faithful phase lengths ``(x, ceil(x / delta))``."""
    if not (0.0 < delta <= 1.0):
        raise ValueError(f"delta must lie in (0, 1], got {delta}")
    if x is None:
        x = int(np.ceil(2.0 / delta))
    punish = int(np.ceil(x / delta))
    return x, punish


def build_thm2(
    delta: float,
    cycles: int = 4,
    r_min: int = 1,
    r_max: int = 1,
    D: float = 1.0,
    m: float = 1.0,
    dim: int = 1,
    x: int | None = None,
    rng: np.random.Generator | None = None,
    signs: np.ndarray | None = None,
) -> AdversarialInstance:
    """Build one draw of the Theorem-2 instance.

    Parameters
    ----------
    delta:
        The online augmentation the construction is calibrated against.
    cycles:
        Number of independent separation/punishment cycles.
    r_min, r_max:
        Requests per step in the two phases (:math:`R_{min}, R_{max}`).
    x:
        Separation length; defaults to :math:`\\lceil 2/\\delta \\rceil`.
    signs:
        Optional array of per-cycle coins (±1) to fix the randomness.
    """
    if r_min < 1 or r_max < r_min:
        raise ValueError("need 1 <= r_min <= r_max")
    x, punish = thm2_phase_lengths(delta, x)
    if signs is None:
        if rng is None:
            # Deterministic fallback (reprolint RNG001): unseeded builds
            # reproduce; pass a seeded Generator for fresh coin draws.
            rng = np.random.default_rng(0)
        signs = np.where(rng.random(cycles) < 0.5, 1.0, -1.0)
    signs = np.asarray(signs, dtype=np.float64)
    if signs.shape != (cycles,):
        raise ValueError(f"signs must have shape ({cycles},)")

    start = np.zeros(dim)
    batches: list[RequestBatch] = []
    adv_positions = [start.copy()]
    anchor = start.copy()

    for k in range(cycles):
        u = embed_direction(signs[k], dim)
        pos = anchor.copy()
        # Separation: requests at the anchor, adversary walks away.
        for _ in range(x):
            pos = pos + m * u
            adv_positions.append(pos.copy())
            batches.append(RequestBatch(np.tile(anchor, (r_min, 1))))
        # Punishment: requests on the adversary, still walking.
        for _ in range(punish):
            pos = pos + m * u
            adv_positions.append(pos.copy())
            batches.append(RequestBatch(np.tile(pos, (r_max, 1))))
        anchor = pos.copy()

    seq = RequestSequence(batches, dim=dim)
    inst = MSPInstance(
        seq, start=start, D=D, m=m, name=f"thm2[delta={delta:g},x={x},cycles={cycles}]"
    )
    return AdversarialInstance(
        instance=inst,
        adversary_positions=np.asarray(adv_positions),
        params={
            "theorem": 2,
            "delta": delta,
            "x": x,
            "punish": punish,
            "cycles": cycles,
            "r_min": r_min,
            "r_max": r_max,
            "D": D,
            "m": m,
            "signs": signs.tolist(),
        },
    )
