"""Multiple moving clients (Section 5's "multiple agents" remark).

The paper analyses one agent and notes that "our results can be modified
to also work for multiple agents by similar arguments as in the original
problem".  This module makes that concrete:

* :class:`MultiAgentInstance` — ``k`` agents, each with a speed-validated
  trajectory; round ``t`` reveals all agent positions, the server moves
  (cap ``m_server``), then pays the sum of distances to the agents.  This
  is exactly the fixed-``r = k`` move-first model, so it lowers to
  :class:`~repro.core.instance.MSPInstance` and every Section-4 result
  applies (Corollary 9 gives :math:`O(1/\\delta^{3/2})` with augmentation).

* :class:`MultiAgentMtC` — the natural Theorem-10 generalisation: move
  :math:`\\min(\\text{cap}, \\text{damping} \\cdot d(P, c))` towards the
  *geometric median* :math:`c` of the current agent positions, with the
  paper's damping ``min{1, k/D}``.  For ``k = 1`` this is exactly
  :class:`~repro.algorithms.mtc_variants.MovingClientMtC`.

The experiment (E14) shows the Theorem-10 dichotomy survives multiple
agents: with ``m_server >= m_agent`` certified ratios are flat in ``T``
without augmentation, with faster agents the Theorem-8 construction (run
on any one agent while the others idle) still diverges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metric import EPS, as_point
from ..core.instance import MSPInstance
from ..core.requests import RequestSequence
from ..algorithms.mtc import MoveToCenter

__all__ = ["MultiAgentInstance", "MultiAgentMtC"]


@dataclass(frozen=True)
class MultiAgentInstance:
    """The Moving Client variant with ``k`` agents.

    Attributes
    ----------
    agent_paths:
        ``(T, k, d)`` positions; all agents start at ``start``.
    start:
        Common starting point of the server and every agent.
    m_server, m_agent:
        Speed limits (one shared agent limit, as in the paper's remark).
    """

    agent_paths: np.ndarray
    start: np.ndarray
    D: float = 1.0
    m_server: float = 1.0
    m_agent: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        paths = np.asarray(self.agent_paths, dtype=np.float64)
        if paths.ndim != 3:
            raise ValueError(f"agent_paths must be (T, k, d), got shape {paths.shape}")
        object.__setattr__(self, "agent_paths", paths)
        object.__setattr__(self, "start", as_point(self.start, dim=paths.shape[2]))
        if self.D < 1.0:
            raise ValueError(f"the paper assumes D >= 1, got D={self.D}")
        if self.m_server <= 0 or self.m_agent <= 0:
            raise ValueError("speed limits must be positive")
        self.validate_agent_speeds()

    @property
    def n_agents(self) -> int:
        return int(self.agent_paths.shape[1])

    @property
    def length(self) -> int:
        return int(self.agent_paths.shape[0])

    @property
    def dim(self) -> int:
        return int(self.agent_paths.shape[2])

    def validate_agent_speeds(self) -> None:
        """Raise if any agent exceeds its per-step speed limit."""
        if self.length == 0:
            return
        start_row = np.tile(self.start, (self.n_agents, 1))[None, :, :]
        full = np.concatenate([start_row, self.agent_paths], axis=0)
        seg = np.diff(full, axis=0)
        lengths = np.sqrt(np.einsum("tkd,tkd->tk", seg, seg))
        tol = self.m_agent * (1.0 + 1e-9) + EPS
        if np.any(lengths > tol):
            t, k = np.unravel_index(int(np.argmax(lengths)), lengths.shape)
            raise ValueError(
                f"agent {k} moves {lengths[t, k]:.6g} > m_agent={self.m_agent} at step {t}"
            )

    def as_msp(self) -> MSPInstance:
        """Lower to a fixed-``r = k`` MSP instance (move-first model)."""
        seq = RequestSequence.from_packed(self.agent_paths)
        return MSPInstance(
            requests=seq,
            start=self.start,
            D=self.D,
            m=self.m_server,
            name=self.name or f"multi-agent[k={self.n_agents}]",
        )


class MultiAgentMtC(MoveToCenter):
    """Move-to-Center over the agents' geometric median.

    Identical to :class:`~repro.algorithms.mtc.MoveToCenter` — the class
    exists for clear labelling in multi-agent experiments and to assert
    the fixed-``k`` batch shape early.
    """

    def __init__(self, n_agents: int | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.n_agents = n_agents
        self.name = "mtc-multi-agent"

    def decide(self, t, batch):  # type: ignore[override]
        if self.n_agents is not None and batch.count not in (0, self.n_agents):
            raise ValueError(
                f"expected {self.n_agents} agents per step, got {batch.count}"
            )
        return super().decide(t, batch)
