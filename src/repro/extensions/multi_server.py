"""k mobile servers with capped movement (the conclusion's proposal).

The paper's conclusion asks whether "the idea of limiting the movement of
resources within a time slot also can be applied to other popular models
such as the k-Server Problem (effectively turning it into the Page
Migration Problem with multiple pages)".  This module builds that model:

* ``k`` servers, each moving at most ``cap`` per step (cap includes any
  augmentation), movement charged ``D`` per unit *summed over servers*;
* each request is served by the *closest* server after the move
  (move-first convention), costing that distance — requests need not be
  hit exactly, unlike the classical k-server model.

Implemented strategies:

* :class:`KGreedyCenters` — cluster the batch by nearest-server, each
  server chases its cluster's geometric median at full speed;
* :class:`KMoveToCenter` — same clustering, but each server applies the
  paper's damped rule ``min{1, r_i/D}·d`` with its cluster size ``r_i``;
* :class:`CappedDoubleCoverage` — 1-D only: classical Double Coverage
  moves, clamped to the cap (the conclusion's literal suggestion);
* :func:`solve_two_servers_line` — exact offline DP for ``k = 2`` on the
  line (product grid; the banded min-plus transition factorises per
  server, so the cost is ``O(T S^2 B)`` instead of ``O(T S^4)``).

Experiment E15 measures all of them against the DP bracket.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.metric import get_metric
from ..core.requests import RequestBatch
from ..median import request_center

__all__ = [
    "KServerTrace",
    "MultiServerAlgorithm",
    "KGreedyCenters",
    "KMoveToCenter",
    "CappedDoubleCoverage",
    "simulate_k_servers",
    "TwoServerDPResult",
    "solve_two_servers_line",
]


@dataclass
class KServerTrace:
    """Trace of a capped multi-server run.

    Attributes
    ----------
    positions:
        ``(T + 1, k, d)`` server configurations.
    movement_costs, service_costs:
        ``(T,)`` per-step totals (movement summed over servers).
    """

    positions: np.ndarray
    movement_costs: np.ndarray
    service_costs: np.ndarray
    algorithm: str = ""

    @property
    def total_cost(self) -> float:
        return float(self.movement_costs.sum() + self.service_costs.sum())

    def validate_against_cap(self, cap: float, tol: float = 1e-7) -> None:
        seg = np.diff(self.positions, axis=0)
        steps = np.sqrt(np.einsum("tkd,tkd->tk", seg, seg))
        if steps.size and steps.max() > cap * (1 + tol) + tol:
            raise ValueError(f"multi-server cap violated: {steps.max():.6g} > {cap:.6g}")


class MultiServerAlgorithm(abc.ABC):
    """Decides the next configuration of all ``k`` servers."""

    name = "multi-server"

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.positions: np.ndarray | None = None  # (k, d)
        self.cap = 0.0
        self.D = 1.0
        self.metric = get_metric("euclidean")

    def reset(self, starts: np.ndarray, cap: float, D: float) -> None:
        starts = np.asarray(starts, dtype=np.float64)
        if starts.shape[0] != self.k:
            raise ValueError(f"expected {self.k} starting positions, got {starts.shape[0]}")
        self.positions = starts.copy()
        self.cap = float(cap)
        self.D = float(D)

    @abc.abstractmethod
    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        """Return the new ``(k, d)`` configuration (each move <= cap)."""

    def _clusters(self, batch: RequestBatch) -> list[np.ndarray]:
        """Nearest-server partition of the batch (indices per server)."""
        assert self.positions is not None
        diff = batch.points[:, None, :] - self.positions[None, :, :]
        dist = np.sqrt(np.einsum("rkd,rkd->rk", diff, diff))
        owner = np.argmin(dist, axis=1)
        return [np.nonzero(owner == i)[0] for i in range(self.k)]


class KGreedyCenters(MultiServerAlgorithm):
    """Each server chases its cluster's median at full speed."""

    name = "k-greedy-centers"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        assert self.positions is not None
        new = self.positions.copy()
        if batch.count == 0:
            return new
        for i, idx in enumerate(self._clusters(batch)):
            if idx.size == 0:
                continue
            c = request_center(batch.points[idx], self.positions[i])
            new[i] = self.metric.move_towards(self.positions[i], c, self.cap)
        return new


class KMoveToCenter(MultiServerAlgorithm):
    """Per-cluster MtC: damped step ``min{1, r_i/D}·d(P_i, c_i)``."""

    name = "k-mtc"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        assert self.positions is not None
        new = self.positions.copy()
        if batch.count == 0:
            return new
        for i, idx in enumerate(self._clusters(batch)):
            if idx.size == 0:
                continue
            c = request_center(batch.points[idx], self.positions[i])
            dist = float(np.linalg.norm(c - self.positions[i]))  # reprolint: allow[MET001] reason=multi-server extension is Euclidean; E15 goldens pin these bits
            if dist <= 0.0:
                continue
            step = min(min(1.0, idx.size / self.D) * dist, self.cap)
            new[i] = self.metric.move_towards(self.positions[i], c, step)
        return new


class CappedDoubleCoverage(MultiServerAlgorithm):
    """Double Coverage with every move clamped at the cap (1-D only).

    DC's moves towards a request are cut at ``cap``; when the request lies
    between two servers both advance (possibly clamped) until one would
    reach it.  With generous caps this degenerates to classical DC.
    """

    name = "capped-dc"

    def decide(self, t: int, batch: RequestBatch) -> np.ndarray:
        assert self.positions is not None
        if self.positions.shape[1] != 1:
            raise ValueError("CappedDoubleCoverage requires dimension 1")
        new = self.positions.copy()
        if batch.count == 0:
            return new
        # Serve each request in order (classical DC is per-request); the
        # per-step cap budget is shared by splitting it across requests.
        budget = self.cap / batch.count
        order = np.argsort(self.positions[:, 0])
        pos = self.positions[order, 0].copy()
        for v in batch.points[:, 0]:
            if v <= pos[0]:
                pos[0] = max(pos[0] - budget, v)
            elif v >= pos[-1]:
                pos[-1] = min(pos[-1] + budget, v)
            else:
                j = int(np.searchsorted(pos, v)) - 1
                d = min(v - pos[j], pos[j + 1] - v, budget)
                pos[j] += d
                pos[j + 1] -= d
            pos.sort()
        new[order, 0] = pos
        return new


def simulate_k_servers(
    starts: np.ndarray,
    batches: list[np.ndarray],
    algorithm: MultiServerAlgorithm,
    cap: float,
    D: float,
) -> KServerTrace:
    """Run a capped multi-server algorithm over a request sequence.

    Parameters
    ----------
    starts:
        ``(k, d)`` initial configuration.
    batches:
        List of ``(r_t, d)`` request arrays.
    cap:
        Per-server per-step movement cap granted to the algorithm.
    """
    starts = np.asarray(starts, dtype=np.float64)
    k, d = starts.shape
    T = len(batches)
    algorithm.reset(starts, cap, D)
    positions = np.empty((T + 1, k, d))
    positions[0] = starts
    movement = np.zeros(T)
    service = np.zeros(T)
    cur = starts.copy()
    for t in range(T):
        batch = RequestBatch(np.asarray(batches[t], dtype=np.float64).reshape(-1, d))
        new = np.asarray(algorithm.decide(t, batch), dtype=np.float64)
        steps = np.sqrt(np.einsum("kd,kd->k", new - cur, new - cur))
        if steps.max(initial=0.0) > cap * (1 + 1e-9) + 1e-12:
            raise ValueError(
                f"{algorithm.name} violated the cap at step {t}: {steps.max():.6g} > {cap:.6g}"
            )
        movement[t] = D * float(steps.sum())
        if batch.count:
            diff = batch.points[:, None, :] - new[None, :, :]
            dist = np.sqrt(np.einsum("rkd,rkd->rk", diff, diff))
            service[t] = float(dist.min(axis=1).sum())
        positions[t + 1] = new
        cur = new
        algorithm.positions = new
    return KServerTrace(positions=positions, movement_costs=movement,
                        service_costs=service, algorithm=algorithm.name)


@dataclass(frozen=True)
class TwoServerDPResult:
    """Bracket of the capped 2-server offline optimum on the line."""

    cost: float
    lower_bound: float


def solve_two_servers_line(
    starts: np.ndarray,
    batches: list[np.ndarray],
    m: float,
    D: float,
    grid_size: int = 96,
    padding: float = 2.0,
) -> TwoServerDPResult:
    """Exact (grid) offline optimum for two capped servers on the line.

    The state is a pair of grid cells; the min-plus transition factorises
    into two banded relaxations (one per server axis), and the same
    feasible/relaxed band pair as :mod:`repro.offline.dp_line` yields a
    certified bracket.
    """
    starts = np.asarray(starts, dtype=np.float64).reshape(2)
    pts = np.concatenate([np.asarray(b, dtype=np.float64).reshape(-1) for b in batches]) \
        if batches else np.empty(0)
    lo = min(float(starts.min()), float(pts.min()) if pts.size else np.inf)
    hi = max(float(starts.max()), float(pts.max()) if pts.size else -np.inf)
    pad = padding * m + 1e-9
    lo, hi = lo - pad, hi + pad
    grid = np.linspace(lo, hi, grid_size)
    h = float(grid[1] - grid[0])
    if h > m:
        raise ValueError(
            f"grid too coarse for the movement cap (cell {h:.3g} > m={m:.3g}); "
            f"increase grid_size beyond {grid_size} or shrink the arena"
        )
    band_feasible = max(1, int(np.floor(m / h + 1e-12)))
    band_relaxed = band_feasible + 2
    step_cost = D * h

    i0 = int(np.argmin(np.abs(grid - starts[0])))
    i1 = int(np.argmin(np.abs(grid - starts[1])))

    def run(band: int) -> float:
        w = np.full((grid_size, grid_size), np.inf)
        w[i0, i1] = 0.0
        for b in batches:
            pts_t = np.asarray(b, dtype=np.float64).reshape(-1)
            # Relax along each server axis independently.
            for _ in range(band):
                np.minimum(w[1:, :], w[:-1, :] + step_cost, out=w[1:, :])
                np.minimum(w[:-1, :], w[1:, :] + step_cost, out=w[:-1, :])
            for _ in range(band):
                np.minimum(w[:, 1:], w[:, :-1] + step_cost, out=w[:, 1:])
                np.minimum(w[:, :-1], w[:, 1:] + step_cost, out=w[:, :-1])
            if pts_t.size:
                d0 = np.abs(grid[:, None] - pts_t[None, :])  # (S, r)
                d1 = np.abs(grid[:, None] - pts_t[None, :])
                service = np.minimum(d0[:, None, :], d1[None, :, :]).sum(axis=2)
                w += service
        return float(w.min())

    upper = run(band_feasible)
    lower_raw = run(band_relaxed)
    r_total = sum(np.asarray(b).reshape(-1).shape[0] for b in batches)
    T = len(batches)
    # Two servers: snapping inflates movement by <= h per server per step.
    correction = T * 2.0 * D * h + 0.5 * r_total * h + 2.0 * D * h
    lower = max(0.0, min(lower_raw - correction, upper))
    return TwoServerDPResult(cost=upper, lower_bound=lower)
