"""Extensions the paper explicitly flags as next steps.

* :mod:`repro.extensions.multi_agent` — Section 5's "multiple agents"
  remark, made concrete (instance type + generalised MtC);
* :mod:`repro.extensions.multi_server` — the conclusion's capped k-server
  ("Page Migration with multiple pages"): strategies + exact 2-server DP;
* :mod:`repro.extensions.facility` — the conclusion's mobile Online
  Facility Location (Meyerson's rule + capped facility drift).
"""

from .facility import FacilityTrace, MeyersonStatic, MobileMeyerson, simulate_facilities
from .multi_agent import MultiAgentInstance, MultiAgentMtC
from .multi_server import (
    CappedDoubleCoverage,
    KGreedyCenters,
    KMoveToCenter,
    KServerTrace,
    MultiServerAlgorithm,
    TwoServerDPResult,
    simulate_k_servers,
    solve_two_servers_line,
)

__all__ = [
    "CappedDoubleCoverage",
    "FacilityTrace",
    "KGreedyCenters",
    "KMoveToCenter",
    "KServerTrace",
    "MeyersonStatic",
    "MobileMeyerson",
    "MultiAgentInstance",
    "MultiAgentMtC",
    "MultiServerAlgorithm",
    "TwoServerDPResult",
    "simulate_facilities",
    "simulate_k_servers",
    "solve_two_servers_line",
]
