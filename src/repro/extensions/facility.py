"""Mobile Online Facility Location (the conclusion's second proposal).

The paper's conclusion suggests that "in problems like the Online Facility
Location Problem, [limited movement] might give possibilities to the
online algorithms to slightly improve upon decisions where to open a
facility".  This module builds the minimal version of that model:

* requests arrive online, one batch per step, each served by its nearest
  *open facility* at distance cost;
* opening a facility costs ``f``;
* in the **mobile** variant every open facility may additionally move up
  to ``m`` per step at cost ``D`` per unit (in the static variant
  facilities are frozen where they opened — classical OFL).

Algorithms:

* :class:`MeyersonStatic` — the classical randomized O(log n)-competitive
  rule: open at a request with probability ``min(1, d/f)`` where ``d`` is
  its current service distance;
* :class:`MobileMeyerson` — the same opening rule plus MtC-style drift:
  each facility moves (damped, capped) towards the median of the requests
  it currently serves, amortising placement mistakes exactly as the
  conclusion anticipates.

Experiment E16 measures both on drifting workloads, where mobility must
win, and on stationary ones, where it must not lose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.metric import get_metric
from ..median import request_center

__all__ = ["FacilityTrace", "MeyersonStatic", "MobileMeyerson", "simulate_facilities"]

_METRIC = get_metric("euclidean")


@dataclass
class FacilityTrace:
    """Outcome of a facility-location run.

    Attributes
    ----------
    opening_costs, movement_costs, service_costs:
        ``(T,)`` per-step totals.
    facility_history:
        Final facility positions, ``(n_facilities, d)``.
    """

    opening_costs: np.ndarray
    movement_costs: np.ndarray
    service_costs: np.ndarray
    facility_history: np.ndarray
    algorithm: str = ""

    @property
    def total_cost(self) -> float:
        return float(
            self.opening_costs.sum() + self.movement_costs.sum() + self.service_costs.sum()
        )

    @property
    def n_facilities(self) -> int:
        return int(self.facility_history.shape[0])


class MeyersonStatic:
    """Classical Meyerson: open at a request w.p. ``min(1, d/f)``; never move."""

    name = "meyerson-static"
    mobile = False

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        # Seeded fallback (reprolint RNG001): default construction is
        # reproducible; experiments thread their own seeded Generator.
        self.rng = rng if rng is not None else np.random.default_rng(0)


class MobileMeyerson(MeyersonStatic):
    """Meyerson's opening rule + capped MtC drift of open facilities.

    Each facility tracks an exponential moving average of the medians of
    the batches it serves and drifts towards *that* (not the raw batch
    median): on stationary demand the EMA converges and the facility
    settles — no movement cost is wasted chasing per-batch noise or
    alternating clusters — while under drift the EMA lags the demand by
    roughly ``speed / smoothing`` and the facility follows at full speed.

    Parameters
    ----------
    damping:
        ``None`` uses ``min{1, r_i/D}`` per facility (its assigned request
        count, the paper's factor); a float forces a fixed damping.
    smoothing:
        EMA weight of the newest batch median, in ``(0, 1]``.
    """

    name = "meyerson-mobile"
    mobile = True

    def __init__(self, rng: np.random.Generator | None = None,
                 damping: float | None = None, smoothing: float = 0.5) -> None:
        super().__init__(rng)
        if not (0.0 < smoothing <= 1.0):
            raise ValueError("smoothing must lie in (0, 1]")
        self.damping = damping
        self.smoothing = smoothing


def simulate_facilities(
    batches: list[np.ndarray],
    algorithm: MeyersonStatic,
    f: float,
    D: float = 1.0,
    m: float = 1.0,
    start: np.ndarray | None = None,
) -> FacilityTrace:
    """Run an online facility-location algorithm.

    Parameters
    ----------
    batches:
        List of ``(r_t, d)`` request arrays.
    f:
        Facility opening cost.
    D, m:
        Movement weight and per-step cap (mobile algorithms only).
    start:
        Position of the initial free facility; defaults to the origin of
        the first batch's dimension.  One facility is always open at the
        start (standard OFL convention avoids the empty-service case).
    """
    if f <= 0:
        raise ValueError("opening cost f must be positive")
    if not batches:
        raise ValueError("need at least one batch")
    d = np.asarray(batches[0]).reshape(-1, np.asarray(batches[0]).shape[-1]).shape[1]
    if start is None:
        start = np.zeros(d)
    facilities = [np.asarray(start, dtype=np.float64).copy()]
    targets = [facilities[0].copy()]  # per-facility EMA drift targets
    T = len(batches)
    opening = np.zeros(T)
    movement = np.zeros(T)
    service = np.zeros(T)
    rng = algorithm.rng

    for t in range(T):
        pts = np.asarray(batches[t], dtype=np.float64).reshape(-1, d)
        fac = np.asarray(facilities)
        # Serve + maybe open, request by request (the online arrival order
        # within a step is the batch order).
        for v in pts:
            dist = float(_METRIC.distances_to(v, fac).min())
            if rng.random() < min(1.0, dist / f):
                facilities.append(v.copy())
                targets.append(v.copy())
                fac = np.asarray(facilities)
                opening[t] += f
                dist = 0.0
            service[t] += dist
        # Mobile variant: each facility drifts towards the EMA of the
        # medians of the batches it serves (see MobileMeyerson docstring);
        # the EMA converges on stationary demand so movement stops, and
        # lags boundedly under drift so the facility keeps up.
        if algorithm.mobile and pts.shape[0]:
            fac = np.asarray(facilities)
            diff = pts[:, None, :] - fac[None, :, :]
            owner = np.argmin(np.sqrt(np.einsum("rkd,rkd->rk", diff, diff)), axis=1)
            alpha = algorithm.smoothing
            for i in range(len(facilities)):
                mine = pts[owner == i]
                if mine.shape[0] == 0:
                    continue
                c = request_center(mine, facilities[i])
                targets[i] = (1.0 - alpha) * targets[i] + alpha * c
                gap = float(np.linalg.norm(targets[i] - facilities[i]))  # reprolint: allow[MET001] reason=facility extension is Euclidean; E16 goldens pin these bits
                if gap <= 0.0:
                    continue
                damp = algorithm.damping
                if damp is None:
                    damp = min(1.0, mine.shape[0] / D)
                step = min(damp * gap, m)
                new_pos = _METRIC.move_towards(facilities[i], targets[i], step)
                movement[t] += D * float(np.linalg.norm(new_pos - facilities[i]))  # reprolint: allow[MET001] reason=facility extension is Euclidean; E16 goldens pin these bits
                facilities[i] = new_pos
    return FacilityTrace(
        opening_costs=opening,
        movement_costs=movement,
        service_costs=service,
        facility_history=np.asarray(facilities),
        algorithm=algorithm.name,
    )
