"""repro — a reproduction of "The Mobile Server Problem".

Feldkord & Meyer auf der Heide, SPAA 2017 (full version arXiv:1904.05220).

The package implements the Mobile Server Problem model, the paper's
Move-to-Center algorithm and its variants, the lower-bound adversary
constructions, offline optimal solvers, workload generators, and the
analysis/experiment harness that regenerates every theorem's predicted
behaviour as an empirical table.

Quickstart (the declarative scenario layer, :mod:`repro.api`)::

    from repro import Scenario, run

    sc = Scenario.workload("drift", algorithm="mtc",
                           params={"T": 500, "dim": 2, "D": 4.0},
                           seeds=range(8), delta=0.5)
    print(run(sc).mean_cost)

or the raw engine, for step-level control::

    import numpy as np
    from repro import MSPInstance, RequestSequence, MoveToCenter, simulate

    rng = np.random.default_rng(0)
    points = np.cumsum(rng.normal(size=(500, 2)) * 0.3, axis=0)
    inst = MSPInstance(RequestSequence.single_requests(points),
                       start=np.zeros(2), D=4.0, m=1.0)
    trace = simulate(inst, MoveToCenter(), delta=0.5)
    print(trace.total_cost)
"""

from .algorithms import (
    AnswerFirstMoveToCenter,
    MoveToCenter,
    MovingClientMtC,
    OnlineAlgorithm,
    available_algorithms,
    make_algorithm,
)
from .api import RunResult, Scenario, resolve, run, run_many
from .core import (
    CostModel,
    MovementCapViolation,
    MovingClientInstance,
    MSPInstance,
    RequestBatch,
    RequestSequence,
    Trace,
    replay_cost,
    simulate,
    simulate_moving_client,
)
from .median import request_center, weber_cost, weiszfeld

__version__ = "1.0.0"

__all__ = [
    "AnswerFirstMoveToCenter",
    "CostModel",
    "MSPInstance",
    "MoveToCenter",
    "MovementCapViolation",
    "MovingClientInstance",
    "MovingClientMtC",
    "OnlineAlgorithm",
    "RequestBatch",
    "RequestSequence",
    "RunResult",
    "Scenario",
    "Trace",
    "__version__",
    "available_algorithms",
    "make_algorithm",
    "replay_cost",
    "request_center",
    "resolve",
    "run",
    "run_many",
    "simulate",
    "simulate_moving_client",
    "weber_cost",
    "weiszfeld",
]
