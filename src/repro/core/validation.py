"""Run-time validation of model constraints.

The simulator enforces the movement cap on every step; violations raise
:class:`MovementCapViolation` rather than silently producing incomparable
costs.  A small relative tolerance absorbs floating-point round-off from
the direction/clamp arithmetic.
"""

from __future__ import annotations

import numpy as np

from .metric import distance

__all__ = ["MovementCapViolation", "check_move", "cap_tolerance"]


class MovementCapViolation(RuntimeError):
    """An algorithm tried to move its server further than its cap allows."""

    def __init__(self, step: int, moved: float, cap: float, algorithm: str = "") -> None:
        self.step = step
        self.moved = moved
        self.cap = cap
        self.algorithm = algorithm
        tag = f" by {algorithm!r}" if algorithm else ""
        super().__init__(
            f"movement cap violated{tag} at step {step}: moved {moved:.9g} > cap {cap:.9g}"
        )


def cap_tolerance(cap: float, rel: float = 1e-9, absolute: float = 1e-12) -> float:
    """Permitted overshoot of the cap due to floating point."""
    return cap * rel + absolute


def check_move(
    step: int,
    old_position: np.ndarray,
    new_position: np.ndarray,
    cap: float,
    algorithm: str = "",
    metric=None,
) -> float:
    """Validate one move and return the distance travelled.

    ``metric`` selects the space the move is measured in; ``None`` keeps
    the ℓ2 fast path.

    Raises
    ------
    MovementCapViolation
        If the move exceeds ``cap`` beyond floating-point tolerance.
    """
    moved = distance(old_position, new_position) if metric is None \
        else metric.distance(old_position, new_position)
    if moved > cap + cap_tolerance(cap):
        raise MovementCapViolation(step, moved, cap, algorithm)
    return moved
