"""Problem-instance containers.

An *instance* of the Mobile Server Problem bundles everything needed to
evaluate an algorithm: the request sequence, the starting position
:math:`P_0`, the movement weight :math:`D`, the per-step movement cap
:math:`m`, and the cost model.  The *moving-client* variant of Section 5
additionally carries the agent's speed limit so that generators and
validators can check the agent trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .costs import CostModel
from .metric import EPS, as_point
from .requests import RequestSequence

__all__ = ["MSPInstance", "MovingClientInstance"]


@dataclass(frozen=True)
class MSPInstance:
    """One input to the Mobile Server Problem.

    Attributes
    ----------
    requests:
        The request sequence (possibly ragged).
    start:
        Initial server position :math:`P_0`; shape ``(d,)``.
    D:
        Movement weight (page size), :math:`D \\ge 1`.
    m:
        Maximum distance the *offline* server may move per step.  Online
        algorithms running with resource augmentation :math:`(1+\\delta)`
        may move up to :math:`(1+\\delta) m`.
    cost_model:
        Move-first (default) or answer-first charging.
    name:
        Optional human-readable tag used in reports.
    """

    requests: RequestSequence
    start: np.ndarray
    D: float = 1.0
    m: float = 1.0
    cost_model: CostModel = CostModel.MOVE_FIRST
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", as_point(self.start, dim=self.requests.dim))
        if self.D < 1.0:
            raise ValueError(f"the paper assumes D >= 1, got D={self.D}")
        if self.m <= 0.0:
            raise ValueError(f"movement cap m must be positive, got m={self.m}")

    @property
    def dim(self) -> int:
        return self.requests.dim

    @property
    def length(self) -> int:
        """Sequence length ``T``."""
        return self.requests.length

    def online_cap(self, delta: float) -> float:
        """Movement cap :math:`(1+\\delta) m` of an augmented online server."""
        if delta < 0.0:
            raise ValueError(f"delta must be non-negative, got {delta}")
        return (1.0 + delta) * self.m

    def with_cost_model(self, model: CostModel) -> "MSPInstance":
        """Copy of this instance under a different cost model."""
        return replace(self, cost_model=model)

    def with_requests(self, requests: RequestSequence) -> "MSPInstance":
        return replace(self, requests=requests)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"MSPInstance({tag} T={self.length}, dim={self.dim}, D={self.D}, "
            f"m={self.m}, model={self.cost_model.value})"
        )


@dataclass(frozen=True)
class MovingClientInstance:
    """The Moving Client variant (Section 5).

    A single agent starts at the server's position and moves at most
    ``m_agent`` per step; in round ``t`` the agent position :math:`A_t` is
    revealed, then the server moves (cap ``m_server``), then pays
    :math:`d(P_t, A_t)`.  This is exactly the move-first model with one
    request per step, plus a validated speed constraint on the request
    trajectory, so :meth:`as_msp` lowers it to a plain :class:`MSPInstance`.

    Attributes
    ----------
    agent_path:
        ``(T, d)`` array of agent positions :math:`A_1..A_T`.
    start:
        Common starting point :math:`P_0 = A_0`.
    m_server, m_agent:
        Per-step speed limits :math:`m_s` and :math:`m_a`.
    """

    agent_path: np.ndarray
    start: np.ndarray
    D: float = 1.0
    m_server: float = 1.0
    m_agent: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        path = np.asarray(self.agent_path, dtype=np.float64)
        if path.ndim != 2:
            raise ValueError(f"agent_path must be (T, d), got shape {path.shape}")
        object.__setattr__(self, "agent_path", path)
        object.__setattr__(self, "start", as_point(self.start, dim=path.shape[1]))
        if self.D < 1.0:
            raise ValueError(f"the paper assumes D >= 1, got D={self.D}")
        if self.m_server <= 0 or self.m_agent <= 0:
            raise ValueError("speed limits must be positive")
        self.validate_agent_speed()

    @property
    def dim(self) -> int:
        return int(self.agent_path.shape[1])

    @property
    def length(self) -> int:
        return int(self.agent_path.shape[0])

    @property
    def epsilon(self) -> float:
        """Speed advantage :math:`\\varepsilon` with :math:`m_a = (1+\\varepsilon) m_s`."""
        return self.m_agent / self.m_server - 1.0

    def validate_agent_speed(self) -> None:
        """Raise if the agent trajectory exceeds its speed limit anywhere."""
        if self.length == 0:
            return
        prev = np.vstack([self.start, self.agent_path[:-1]])
        seg = self.agent_path - prev
        lengths = np.sqrt(np.einsum("ij,ij->i", seg, seg))
        tol = self.m_agent * (1.0 + 1e-9) + EPS
        bad = np.nonzero(lengths > tol)[0]
        if bad.size:
            t = int(bad[0])
            raise ValueError(
                f"agent moves {lengths[t]:.6g} > m_agent={self.m_agent} at step {t}"
            )

    def as_msp(self, cost_model: CostModel = CostModel.MOVE_FIRST) -> MSPInstance:
        """Lower to a plain MSP instance with one request per step."""
        seq = RequestSequence.single_requests(self.agent_path)
        return MSPInstance(
            requests=seq,
            start=self.start,
            D=self.D,
            m=self.m_server,
            cost_model=cost_model,
            name=self.name or "moving-client",
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MovingClientInstance(T={self.length}, dim={self.dim}, D={self.D}, "
            f"m_server={self.m_server}, m_agent={self.m_agent})"
        )
