"""Core model of the Mobile Server Problem.

Exports the containers (:class:`RequestBatch`, :class:`RequestSequence`,
:class:`MSPInstance`, :class:`MovingClientInstance`), the cost models, the
simulation engine (:func:`simulate`, :func:`replay_cost`) and the trace
type.
"""

from .costs import CostAccumulator, CostModel, StepCost, step_cost
from .instance import MovingClientInstance, MSPInstance
from .io import load_instance, load_trace, save_instance, save_trace
from .requests import RequestBatch, RequestSequence
from .simulator import replay_cost, simulate, simulate_moving_client
from .trace import Trace
from .validation import MovementCapViolation

__all__ = [
    "CostAccumulator",
    "CostModel",
    "MSPInstance",
    "MovementCapViolation",
    "MovingClientInstance",
    "RequestBatch",
    "RequestSequence",
    "StepCost",
    "Trace",
    "load_instance",
    "load_trace",
    "replay_cost",
    "simulate",
    "save_instance",
    "save_trace",
    "simulate_moving_client",
    "step_cost",
]
