"""Core model of the Mobile Server Problem.

Exports the containers (:class:`RequestBatch`, :class:`RequestSequence`,
:class:`MSPInstance`, :class:`MovingClientInstance`), the cost models, the
scalar simulation engine (:func:`simulate`, :func:`replay_cost`), the
batched engine (:func:`simulate_batch` with :class:`BatchTrace` /
:class:`BatchState` and the :class:`VectorizedAlgorithm` protocol), the
fused-kernel fast path controls (:func:`fusion`, :func:`set_fusion`,
:func:`fusion_enabled`) and the trace type.
"""

from .costs import CostAccumulator, CostModel, StepCost, step_cost
from .engine import BatchState, BatchStepRequests, BatchTrace, VectorizedAlgorithm, simulate_batch
from .instance import MovingClientInstance, MSPInstance
from .io import load_instance, load_trace, save_instance, save_trace
from .kernels import KERNELS, StepKernel, fusion, fusion_enabled, set_fusion
from .requests import RequestBatch, RequestSequence
from .simulator import replay_cost, simulate, simulate_moving_client
from .trace import Trace
from .validation import MovementCapViolation

__all__ = [
    "BatchState",
    "BatchStepRequests",
    "BatchTrace",
    "CostAccumulator",
    "CostModel",
    "KERNELS",
    "MSPInstance",
    "MovementCapViolation",
    "MovingClientInstance",
    "RequestBatch",
    "RequestSequence",
    "StepCost",
    "StepKernel",
    "Trace",
    "VectorizedAlgorithm",
    "fusion",
    "fusion_enabled",
    "set_fusion",
    "simulate_batch",
    "load_instance",
    "load_trace",
    "replay_cost",
    "simulate",
    "save_instance",
    "save_trace",
    "simulate_moving_client",
    "step_cost",
]
