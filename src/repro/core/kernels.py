"""Fused step kernels for the batched engine's hot path.

The per-step loop in :func:`repro.core.engine.simulate_batch` pays one
Python round-trip per simulated step: a ``decide_batch`` method call, a
:class:`~repro.core.engine.BatchStepRequests` view, cap validation,
service-cost accounting and five trace-column writes.  A
:class:`StepKernel` fuses all of that: it advances a whole block of ``K``
steps per Python iteration over the packed request stack, and the runner
(:func:`run_fused`) validates caps, accumulates movement/service costs
and writes trace columns *per block* instead of per step.

Two kernel families
-------------------

*Stateless* kernels (``greedy-centroid``, ``nearest-chaser``,
``static``) decide from ``(positions, step points, caps)`` alone.  They
consume the request stack **time-major** — ``(T, r, B, d)`` — so block
reductions run over long contiguous inner axes.

*Median-family* kernels (``mtc`` and all its tie-break/step-scale/
cap-fraction variants, ``greedy-center``, ``follow-last``, ``lazy``,
``move-to-min``) target the tie-broken geometric median.  Their per-lane
Python loops over :func:`repro.median.request_center` are replaced by
the cross-lane batched solver
(:func:`repro.median.batched_request_center`), and their per-lane state
(warm starts, pursuit targets, accumulators, phase buffers) moves into
arrays owned by the kernel's per-run closure.  These kernels consume the
stack **batch-major** — the packed ``(B, T, r, d)`` itself — because the
batched median solver's ``r``-reductions must run over a contiguous
trailing axis to match the scalar solver's summation order.  Only
``coin-flip`` (per-lane RNG streams) keeps the per-step loop.

Every kernel is *built* per run: :attr:`StepKernel.build` receives a
:class:`KernelContext` (the algorithm instance plus the per-lane
``caps``/``D``/``m`` arrays) and returns a stateful ``advance`` closure.
State therefore lives exactly one engine call — the registry entries in
:data:`KERNELS` are immutable and shared, and nothing can leak between
runs or between cells packed into one mega-batch.

Bit-parity contract
-------------------

A kernel performs the exact float64 arithmetic of the per-step loop.
Facts asserted empirically in ``tests/test_kernels.py`` license the
reformulations:

* a sum of two squares via slice adds (``sq[..., 0] + sq[..., 1]``) is
  bit-identical to NumPy's ``einsum`` sum-of-products **only** for
  ``d <= 2`` — every norm here gates on that and falls back to the same
  ``einsum`` the loop uses for ``d >= 3``;
* reductions over a *middle* axis (the centroid ``mean`` over ``r``)
  add terms in the same order regardless of which axis of the operand
  they ran over, so the layout change does not move bits;
* ``ndarray.sum`` over a *last* axis switches to pairwise blocking at
  length 8, so time-major service sums match the loop's middle-axis
  order only for ``r < 8`` — larger ``r`` pays a transpose, while the
  batch-major service pass reduces over the trailing ``r`` exactly as
  the loop does at any ``r``;
* scalar ``np.dot`` contractions are reproduced with vector-shaped
  ``matmul`` (same BLAS ``ddot``), never ``einsum`` — see
  :mod:`repro.median.batched`.

Movement distances are recomputed from the committed trajectory (never
shortcut through the clamp's ``min``), the clamp mirrors
:func:`~repro.core.metric.batched_move_towards` term for term, and
``tests/test_kernels.py`` asserts bit-identical traces against the
per-step loop for every registered kernel under both cost models, mixed
per-lane caps/``D`` and δ sweeps.

Escape hatch
------------

:func:`set_fusion` / the :func:`fusion` context manager toggle every
fused fast path at once — the engine's kernel dispatch *and* the
cross-cell mega-batching in :mod:`repro.api.runtime` — which is what the
CLI ``--no-fuse`` flag flips to produce a pure per-step reference run.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict

import numpy as np

from .validation import MovementCapViolation

if TYPE_CHECKING:  # pragma: no cover - import only for type hints
    from .engine import BatchTrace

__all__ = [
    "DEFAULT_BLOCK",
    "KERNELS",
    "KernelContext",
    "StepKernel",
    "fusion",
    "fusion_enabled",
    "kernel_for",
    "run_fused",
    "set_fusion",
]

#: Steps advanced per Python iteration of the fused runner.  Bounds the
#: block scratch at ``O(K * B * r * d)`` floats while amortizing the
#: validation / service / trace writes over ``K`` steps.
DEFAULT_BLOCK = 64

_FUSION_ENABLED = True


def fusion_enabled() -> bool:
    """Whether the fused fast paths (kernels + mega-batching) are active."""
    return _FUSION_ENABLED


def set_fusion(enabled: bool) -> bool:
    """Toggle the fused fast paths globally; returns the previous setting."""
    global _FUSION_ENABLED
    previous = _FUSION_ENABLED
    _FUSION_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def fusion(enabled: bool):
    """Context manager form of :func:`set_fusion` (restores on exit)."""
    previous = set_fusion(enabled)
    try:
        yield
    finally:
        set_fusion(previous)


@dataclass(frozen=True)
class KernelContext:
    """Per-run inputs a kernel builder closes over.

    Attributes
    ----------
    algorithm:
        The resolved :class:`~repro.core.engine.VectorizedAlgorithm`
        instance — variant kernels (``mtc[...]``, ``lazy[...]``) read
        their ablation parameters (``step_scale``, ``tie_break``,
        ``smoothing``, ``threshold_factor``, ...) from it.
    caps, D, m:
        Per-lane ``(B,)`` arrays: movement caps, the paper's ``D`` and
        the instances' ``m`` (the lazy threshold's scale factor).
    """

    algorithm: object
    caps: np.ndarray
    D: np.ndarray
    m: np.ndarray


@dataclass(frozen=True)
class StepKernel:
    """A fused decision rule: fill blocks of trajectory rows at once.

    ``build(ctx)`` returns a per-run ``advance(out, start, points, t0)``
    closure (any cross-block state lives inside it) where

    * ``out`` — ``(K, B, d)`` trajectory rows to fill (``out[k]`` is the
      position *after* step ``t0 + k``),
    * ``start`` — ``(B, d)`` positions entering the block (read-only),
    * ``points`` — the request stack in the kernel's declared
      :attr:`layout`: the ``(K, r, B, d)`` time-major block, or the full
      contiguous ``(B, T, r, d)`` packed stack (batch-major kernels
      slice ``points[:, t0 + k]`` themselves),
    * ``t0`` — absolute index of the block's first step,

    and must perform, per lane and step, arithmetic bit-identical to the
    algorithm's ``decide_batch`` packed path.

    ``metrics`` declares which metric spaces the kernel's arithmetic is
    valid in.  Every kernel shipped here reduces with ℓ2 ``einsum`` norms,
    so the default is ``("euclidean",)``; the engine only dispatches a
    kernel when the run's metric appears in this tuple (any other metric
    falls back to the per-step reference loop).
    """

    name: str
    build: Callable[[KernelContext], Callable]
    layout: str = field(default="time_major")
    metrics: tuple = field(default=("euclidean",))


def _time_major_stack(big: np.ndarray) -> np.ndarray:
    """Copy a ``(B, T, r, d)`` request stack into ``(T, r, B, d)`` layout.

    A naive ``ascontiguousarray(transpose(...))`` copies 16-byte rows and
    is ~2x slower than the whole fused simulation; for ``d <= 2`` the
    points reinterpret as one scalar per request (complex128 for ``d=2``)
    and the copy becomes a single cache-blocked 2-D transpose.  Views and
    copies never touch float bits.
    """
    B, T, r, d = big.shape
    big = np.ascontiguousarray(big)
    if d == 1:
        flat = big.reshape(B, T * r)
    elif d == 2:
        flat = big.view(np.complex128).reshape(B, T * r)
    else:
        out = big.reshape(B, T * r, d).transpose(1, 0, 2)
        return np.ascontiguousarray(out).reshape(T, r, B, d)
    M = flat.shape[1]
    if (M * flat.itemsize) % 4096 == 0:
        # A page-multiple row stride makes the transpose gather hit one
        # cache set per column — pad a row element to break the stride.
        padded = np.empty((B, M + 1), dtype=flat.dtype)
        padded[:, :M] = flat
        flat = padded[:, :M]
    return np.ascontiguousarray(flat.T).view(np.float64).reshape(T, r, B, d)


class _ClampScratch:
    """Per-advance buffers for the clamped-move recurrence.

    The recurrence is overhead-bound (ten NumPy calls on ``(B, d)``
    operands per step), so every call writes into preallocated buffers;
    ``weight`` starts at 1.0 so masked-out stale values stay finite.
    """

    def __init__(self, B: int, d: int) -> None:
        self.v = np.empty((B, d))
        self.sq = np.empty((B, d))
        self.n = np.empty(B)
        self.weight = np.ones(B)
        self.reached = np.empty(B, dtype=bool)
        self.weight_col = self.weight[:, None]
        self.reached_col = self.reached[:, None]


# The clamp recurrence is pure dispatch overhead at these array sizes
# (ten tiny ufunc calls per simulated step), so bind the ufuncs once.
_sub = np.subtract
_mul = np.multiply
_add = np.add
_sqrt = np.sqrt
_le = np.less_equal
_div = np.divide
_copyto = np.copyto


def _clamped_move(out: np.ndarray, src: np.ndarray, dst: np.ndarray,
                  caps: np.ndarray, s: _ClampScratch) -> None:
    """One :func:`~repro.core.metric.batched_move_towards` step into ``out``.

    Mirrors the library clamp bit-for-bit: the same sum-of-squares row
    norms (slice adds only where that is exactly ``einsum``'s order, see
    module docstring), the ``safe_n`` guard against 0/0, the
    ``(caps / n)`` scaling, and exact landing on reached targets.
    """
    _sub(dst, src, out=s.v)
    if s.v.shape[1] == 2:
        _mul(s.v, s.v, out=s.sq)
        _add(s.sq[:, 0], s.sq[:, 1], out=s.n)
    else:
        np.einsum("ij,ij->i", s.v, s.v, out=s.n)
    _sqrt(s.n, out=s.n)
    _le(s.n, caps, out=s.reached)
    _copyto(s.n, 1.0, where=s.reached)
    _div(caps, s.n, out=s.weight)
    _mul(s.v, s.weight_col, out=out)
    _add(out, src, out=out)
    _copyto(out, dst, where=s.reached_col)
    return s.reached.all()


# -- stateless time-major kernels ------------------------------------------


def _advance_greedy_centroid(out: np.ndarray, start: np.ndarray,
                             points: np.ndarray, caps: np.ndarray) -> None:
    # The centroid targets are position-independent, so the whole block's
    # targets reduce in one pass; only the tiny (B, d) clamp recurrence
    # stays sequential.  For d >= 2 the loop's (B, r, d) mean is a
    # middle-axis reduction whatever the layout, but at d == 1 NumPy
    # collapses the trailing unit axis and the loop's mean blocks
    # pairwise over r — mirror that exactly once r reaches the pairwise
    # threshold.
    K, r, B, d = points.shape
    if r == 1:
        # Mean of a single request is that request, bit for bit.
        targets = points[:, 0]
    elif d == 1 and r >= 8:
        flat = np.ascontiguousarray(points[..., 0].transpose(0, 2, 1))
        targets = flat.mean(axis=2)[..., None]  # (K, B, 1)
    else:
        targets = points.mean(axis=1)  # (K, B, d)
    scratch = _ClampScratch(B, d)
    # Exact-landing fast-forward: when a step lands every lane exactly on
    # its target (the clamp's ``out[reached] = dst`` rule), the position
    # no longer depends on history — so any following streak of steps
    # whose target-to-target hop is within every lane's cap just *is* the
    # target chain, bit for bit.  ``chain_ok[k]`` precomputes that hop
    # test (the clamp's own norm and ``<=`` comparison) for step k.
    if K > 1:
        tv = targets[1:] - targets[:-1]
        if d == 2:
            tsq = tv * tv
            tn = tsq[..., 0] + tsq[..., 1]
        else:
            tn = np.einsum("kbd,kbd->kb", tv, tv)
        np.sqrt(tn, out=tn)
        chain_ok = (tn <= caps).all(axis=1)  # (K-1,)
    else:
        chain_ok = np.zeros(0, dtype=bool)
    # run[k]: length of the chain_ok streak covering steps k, k+1, ...
    run = np.zeros(K + 1, dtype=np.int64)
    for k in range(K - 2, -1, -1):
        run[k + 1] = run[k + 2] + 1 if chain_ok[k] else 0

    positions = start
    k = 0
    while k < K:
        all_reached = _clamped_move(out[k], positions, targets[k], caps, scratch)
        positions = out[k]
        k += 1
        if all_reached and k < K:
            span = int(run[k])
            if span:
                out[k:k + span] = targets[k:k + span]
                positions = out[k + span - 1]
                k += span


def _advance_nearest_chaser(out: np.ndarray, start: np.ndarray,
                            points: np.ndarray, caps: np.ndarray) -> None:
    K, r, B, d = points.shape
    scratch = _ClampScratch(B, d)
    if r == 1:
        # A single request is trivially the nearest one.
        positions = start
        for k in range(K):
            _clamped_move(out[k], positions, points[k, 0], caps, scratch)
            positions = out[k]
        return
    lanes = np.arange(B)
    dbuf = np.empty((r, B, d))
    dists = np.empty((r, B))
    positions = start
    for k in range(K):
        pts = points[k]
        np.subtract(pts, positions[None, :, :], out=dbuf)
        if d == 2:
            np.multiply(dbuf, dbuf, out=dbuf)
            np.add(dbuf[..., 0], dbuf[..., 1], out=dists)
        else:
            np.einsum("rbd,rbd->rb", dbuf, dbuf, out=dists)
        # sqrt *before* argmin, like decide_batch: rounding in the sqrt
        # can merge near-ties, and the tie-break must match exactly.
        np.sqrt(dists, out=dists)
        nearest = pts[np.argmin(dists, axis=0), lanes]
        _clamped_move(out[k], positions, nearest, caps, scratch)
        positions = out[k]


def _advance_static(out: np.ndarray, start: np.ndarray,
                    points: np.ndarray, caps: np.ndarray) -> None:
    out[:] = start


def _stateless(fn: Callable) -> Callable[[KernelContext], Callable]:
    """Wrap a stateless time-major advance function as a builder."""

    def build(ctx: KernelContext) -> Callable:
        caps = ctx.caps

        def advance(out, start, points, t0):
            fn(out, start, points, caps)

        return advance

    return build


# -- median-family batch-major kernels -------------------------------------
#
# These kernels replay the per-lane ``request_center`` loops of
# ``decide_batch`` through the cross-lane batched solver.  They receive
# the full packed (B, T, r, d) stack and slice one (B, r, d) step at a
# time: per lane that slice is the same contiguous (r, d) block the
# scalar solver sees, so every reduction matches bit-for-bit.


def _masked_pursuit(out_k: np.ndarray, positions: np.ndarray,
                    target: np.ndarray, has: np.ndarray, caps: np.ndarray,
                    tgt_buf: np.ndarray, steps_buf: np.ndarray,
                    s: _ClampScratch) -> np.ndarray:
    """One ``_pursuit_move`` step: full-cap chase of per-lane targets.

    Lanes without a target (``has`` False) stay put (zero step towards
    their own position, exactly the reference assembly).  Returns the
    reference ``reached`` mask (``|out - tgt| <= 1e-12`` in every
    coordinate) for the caller's target-clearing rule.
    """
    np.copyto(tgt_buf, positions)
    np.copyto(tgt_buf, target, where=has[:, None])
    steps_buf.fill(0.0)
    np.copyto(steps_buf, caps, where=has)
    _clamped_move(out_k, positions, tgt_buf, steps_buf, s)
    return np.all(np.abs(out_k - tgt_buf) <= 1e-12, axis=1)


def _build_greedy_center(ctx: KernelContext) -> Callable:
    caps = ctx.caps
    B = caps.shape[0]
    st: dict = {}

    def advance(out, start, big, t0):
        from ..median.batched import batched_request_center

        K, _, d = out.shape
        if not st:
            st["scratch"] = _ClampScratch(B, d)
        s = st["scratch"]
        positions = start
        for k in range(K):
            c = batched_request_center(big[:, t0 + k], positions)
            _clamped_move(out[k], positions, c, caps, s)
            positions = out[k]

    return advance


def _build_mtc(ctx: KernelContext) -> Callable:
    algo = ctx.algorithm
    caps, D = ctx.caps, ctx.D
    B = caps.shape[0]
    tie = algo.tie_break
    step_scale = algo.step_scale
    capped = caps * algo.cap_fraction
    st: dict = {}

    def advance(out, start, big, t0):
        from ..median.batched import (
            batched_median_set,
            batched_request_center,
            batched_weiszfeld,
        )

        K, _, d = out.shape
        r = big.shape[2]
        if not st:
            st["scratch"] = _ClampScratch(B, d)
            st["desired"] = np.empty(B)
            st["steps"] = np.empty(B)
            st["warm"] = np.zeros((B, d))
            st["warm_ok"] = np.zeros(B, dtype=bool)
            counts = np.full(B, r, dtype=np.int64)
            st["scale"] = (np.full(B, step_scale) if step_scale is not None
                           else np.minimum(1.0, counts / D))
        s = st["scratch"]
        scale, desired, steps = st["scale"], st["desired"], st["steps"]
        positions = start
        for k in range(K):
            pts = big[:, t0 + k]
            if tie == "closest":
                c = batched_request_center(pts, positions,
                                           warm_starts=st["warm"],
                                           warm_mask=st["warm_ok"])
                st["warm"] = c
                st["warm_ok"] = np.ones(B, dtype=bool) if not st["warm_ok"].all() \
                    else st["warm_ok"]
            elif tie == "weiszfeld":
                c = batched_weiszfeld(pts)
            else:  # midpoint
                mset = batched_median_set(pts)
                c = 0.5 * (mset.a + mset.b)
                nidx = np.nonzero(mset.numeric)[0]
                if nidx.size:
                    c[nidx] = batched_weiszfeld(pts[nidx])
            # dist = row_norms(targets - positions), then the damped
            # min{scale·dist, cap_fraction·cap} clamp of decide_batch.
            _sub(c, positions, out=s.v)
            np.einsum("ij,ij->i", s.v, s.v, out=s.n)
            _sqrt(s.n, out=s.n)
            _mul(scale, s.n, out=desired)
            np.minimum(desired, capped, out=steps)
            _le(s.n, steps, out=s.reached)
            _copyto(s.n, 1.0, where=s.reached)
            _div(steps, s.n, out=s.weight)
            _mul(s.v, s.weight_col, out=out[k])
            _add(out[k], positions, out=out[k])
            _copyto(out[k], c, where=s.reached_col)
            positions = out[k]

    return advance


def _build_follow_last(ctx: KernelContext) -> Callable:
    algo, caps = ctx.algorithm, ctx.caps
    smoothing = algo.smoothing
    B = caps.shape[0]
    st: dict = {}

    def advance(out, start, big, t0):
        from ..median.batched import batched_request_center

        K, _, d = out.shape
        if not st:
            st["scratch"] = _ClampScratch(B, d)
            st["target"] = None
        s = st["scratch"]
        positions = start
        for k in range(K):
            c = batched_request_center(big[:, t0 + k], positions)
            if st["target"] is None:
                # First step with requests: adopt the center outright
                # (the scalar rule smooths only from the second on).
                st["target"] = c
            else:
                st["target"] = (1.0 - smoothing) * st["target"] + smoothing * c
            # The smoothed target persists after being reached — a plain
            # full-cap clamp, no clearing.
            _clamped_move(out[k], positions, st["target"], caps, s)
            positions = out[k]

    return advance


def _build_lazy(ctx: KernelContext) -> Callable:
    algo, caps = ctx.algorithm, ctx.caps
    thresholds = algo.threshold_factor * ctx.D * ctx.m
    window = algo.window
    B = caps.shape[0]
    st: dict = {}

    def advance(out, start, big, t0):
        from ..median.batched import batched_request_center

        K, _, d = out.shape
        r = big.shape[2]
        if not st:
            st["scratch"] = _ClampScratch(B, d)
            st["acc"] = np.zeros(B)
            st["target"] = np.zeros((B, d))
            st["has"] = np.zeros(B, dtype=bool)
            st["tgt_buf"] = np.empty((B, d))
            st["steps_buf"] = np.empty(B)
        s = st["scratch"]
        acc, target, has = st["acc"], st["target"], st["has"]
        tgt_buf, steps_buf = st["tgt_buf"], st["steps_buf"]
        positions = start
        for k in range(K):
            t = t0 + k
            pts = big[:, t]
            # Accumulate each lane's service cost at the pre-move
            # position (RequestBatch.service_cost, vectorized).
            diff = pts - positions[:, None, :]
            acc += np.sqrt(np.einsum("brd,brd->br", diff, diff)).sum(axis=1)
            trig = ~has & (acc > thresholds)
            if np.any(trig):
                idx = np.nonzero(trig)[0]
                w = min(t + 1, window)
                pooled = big[idx, t + 1 - w:t + 1].reshape(idx.size, w * r, d)
                target[idx] = batched_request_center(pooled, positions[idx])
                acc[idx] = 0.0
                has[idx] = True
            reached = _masked_pursuit(out[k], positions, target, has, caps,
                                      tgt_buf, steps_buf, s)
            has &= ~reached
            positions = out[k]

    return advance


def _build_move_to_min(ctx: KernelContext) -> Callable:
    algo, caps = ctx.algorithm, ctx.caps
    B = caps.shape[0]
    if algo.phase_requests is not None:
        size = np.full(B, int(algo.phase_requests), dtype=np.int64)
    else:
        size = np.maximum(1, np.ceil(ctx.D).astype(np.int64))
    st: dict = {}

    def advance(out, start, big, t0):
        from ..median.batched import batched_request_center

        K, _, d = out.shape
        r = big.shape[2]
        if not st:
            st["scratch"] = _ClampScratch(B, d)
            st["counts"] = np.zeros(B, dtype=np.int64)
            st["phase_start"] = np.zeros(B, dtype=np.int64)
            st["target"] = np.zeros((B, d))
            st["has"] = np.zeros(B, dtype=bool)
            st["tgt_buf"] = np.empty((B, d))
            st["steps_buf"] = np.empty(B)
        s = st["scratch"]
        counts, phase_start = st["counts"], st["phase_start"]
        target, has = st["target"], st["has"]
        tgt_buf, steps_buf = st["tgt_buf"], st["steps_buf"]
        positions = start
        for k in range(K):
            t = t0 + k
            counts += r
            trig = counts >= size
            if np.any(trig):
                # Lanes can be on different phase cadences (per-lane D):
                # group the triggered lanes by phase length so each
                # group pools a uniform (L*r, d) stack.
                lengths = t + 1 - phase_start
                for L in np.unique(lengths[trig]):
                    sel = np.nonzero(trig & (lengths == L))[0]
                    pooled = big[sel, t + 1 - L:t + 1].reshape(
                        sel.size, int(L) * r, d)
                    target[sel] = batched_request_center(pooled, positions[sel])
                counts[trig] = 0
                phase_start[trig] = t + 1
                has[trig] = True
            reached = _masked_pursuit(out[k], positions, target, has, caps,
                                      tgt_buf, steps_buf, s)
            has &= ~reached
            positions = out[k]

    return advance


#: Registered kernels, keyed by algorithm registry name.  An algorithm
#: advertises its kernel via the ``kernel`` class attribute of its
#: vectorized implementation; :func:`kernel_for` resolves it here.
#: Variants (``mtc[...]``, ``lazy-aggressive``, ``follow-smooth``)
#: advertise their family's kernel — the builder reads the ablation
#: parameters off the instance.
KERNELS: Dict[str, StepKernel] = {
    "greedy-centroid": StepKernel("greedy-centroid",
                                  _stateless(_advance_greedy_centroid)),
    "nearest-chaser": StepKernel("nearest-chaser",
                                 _stateless(_advance_nearest_chaser)),
    "static": StepKernel("static", _stateless(_advance_static)),
    "mtc": StepKernel("mtc", _build_mtc, layout="batch_major"),
    "greedy-center": StepKernel("greedy-center", _build_greedy_center,
                                layout="batch_major"),
    "follow-last": StepKernel("follow-last", _build_follow_last,
                              layout="batch_major"),
    "lazy": StepKernel("lazy", _build_lazy, layout="batch_major"),
    "move-to-min": StepKernel("move-to-min", _build_move_to_min,
                              layout="batch_major"),
}


def kernel_for(algorithm, metric: str | None = None) -> StepKernel | None:
    """The registered kernel an algorithm instance advertises, if any.

    ``metric`` is the run's metric name (``None`` means ``"euclidean"``);
    a kernel is only returned when that metric appears in its declared
    :attr:`StepKernel.metrics` — every other space takes the per-step
    reference loop.
    """
    name = getattr(algorithm, "kernel", None)
    if name is None:
        return None
    kernel = KERNELS.get(name)
    if kernel is not None and (metric or "euclidean") not in kernel.metrics:
        return None
    return kernel


def run_fused(
    kernel: StepKernel,
    algo,
    starts: np.ndarray,
    big: np.ndarray,
    caps: np.ndarray,
    D: np.ndarray,
    m: np.ndarray,
    serve_after_move: np.ndarray,
    tol: np.ndarray,
    block: int = DEFAULT_BLOCK,
) -> "BatchTrace":
    """Play a packed request stack through a kernel, ``block`` steps at a time.

    Parameters mirror the engine loop's precomputed per-lane arrays:
    ``algo`` is the resolved algorithm instance (the kernel builder reads
    variant parameters from it), ``starts`` is ``(B, d)``, ``big`` the
    packed ``(B, T, r, d)`` request stack, ``caps``/``D``/``m``/``tol``
    are ``(B,)`` and ``serve_after_move`` is ``(B,)`` bool (one flag per
    lane's cost model).

    Returns a :class:`~repro.core.engine.BatchTrace` bit-identical to the
    per-step loop's: movement distances are recomputed from the committed
    trajectory (not read back from the clamp), validation checks each
    block before the next one runs, and service costs reduce a step's
    requests in exactly the loop's order (see module docstring).
    """
    from .engine import BatchTrace  # deferred: engine imports this module

    B, T, r, dim = big.shape
    algorithm_name = algo.name
    advance = kernel.build(KernelContext(algorithm=algo, caps=caps, D=D, m=m))
    batch_major = kernel.layout == "batch_major"
    if batch_major:
        stack = np.ascontiguousarray(big)  # kernels slice (B, r, d) steps
        points = None
    else:
        stack = None
        points = _time_major_stack(big)  # (T, r, B, d)
    # Pad the lane axis when a (B, d) row is a page multiple, so the
    # final trajectory transpose doesn't gather on one cache set.
    B_pad = B + 1 if (B * dim * 8) % 4096 == 0 else B
    traj_buf = np.empty((T + 1, B_pad, dim))
    traj = traj_buf[:, :B]
    traj[0] = starts

    # Every element below is overwritten, so skip allocate()'s zeroing.
    trace = BatchTrace(
        positions=np.empty((B, T + 1, dim)),
        movement_costs=np.empty((B, T)),
        service_costs=np.empty((B, T)),
        distances_moved=np.empty((B, T)),
        # Packed stacks are uniform by construction.
        request_counts=np.full((B, T), r, dtype=np.int64),
        algorithm=algorithm_name,
    )

    all_serve_after = bool(serve_after_move.all())
    none_serve_after = not serve_after_move.any()
    Kmax = min(block, T)
    seg = np.empty((Kmax, B, dim))
    over = np.empty((Kmax, B), dtype=bool)
    serving_buf = None if all_serve_after or none_serve_after else np.empty((Kmax, B, dim))
    moved_tm = np.empty((T, B))
    if batch_major:
        # Batch-major service pass: reduce each step's requests over the
        # trailing r axis, exactly the per-step loop's (B, r) sum order.
        diff = np.empty((B, Kmax, r, dim))
        svc = np.empty((B, Kmax, r))
        service_tm = None
    else:
        diff = np.empty((Kmax, r, B, dim))
        svc = np.empty((Kmax, r, B))
        # Time-major cost accumulator; transposed into the trace once at
        # the end (a copy never moves float bits).
        service_tm = np.empty((T, B))

    for t0 in range(0, T, block):
        t1 = min(t0 + block, T)
        K = t1 - t0
        out = traj[t0 + 1:t1 + 1]
        advance(out, traj[t0], stack if batch_major else points[t0:t1], t0)

        sg, mv, ov = seg[:K], moved_tm[t0:t1], over[:K]
        np.subtract(out, traj[t0:t1], out=sg)
        if dim == 2:
            np.multiply(sg, sg, out=sg)
            np.add(sg[..., 0], sg[..., 1], out=mv)
        else:
            np.einsum("kbd,kbd->kb", sg, sg, out=mv)
        np.sqrt(mv, out=mv)
        np.greater(mv, tol, out=ov)
        if ov.any():
            # First offending step, then first offending lane — exactly
            # the order the per-step loop raises in.  Blocks after this
            # one were never advanced, matching the loop's early exit.
            k, lane = np.unravel_index(int(np.argmax(ov)), ov.shape)
            raise MovementCapViolation(
                t0 + int(k), float(mv[k, lane]), float(caps[lane]),
                f"{algorithm_name}[lane {lane}]",
            )

        if all_serve_after:
            serving = out
        elif none_serve_after:
            serving = traj[t0:t1]
        else:
            serving = serving_buf[:K]
            np.copyto(serving, traj[t0:t1])
            np.copyto(serving, out, where=serve_after_move[None, :, None])

        if batch_major:
            db, sv = diff[:, :K], svc[:, :K]
            np.subtract(stack[:, t0:t1], serving.transpose(1, 0, 2)[:, :, None, :],
                        out=db)
            np.einsum("bkrd,bkrd->bkr", db, db, out=sv)
            np.sqrt(sv, out=sv)
            if r == 1:
                trace.service_costs[:, t0:t1] = sv[:, :, 0]
            else:
                sv.sum(axis=2, out=trace.service_costs[:, t0:t1])
            continue

        pblock = points[t0:t1]
        db, sv = diff[:K], svc[:K]
        np.subtract(pblock, serving[:, None, :, :], out=db)
        if dim == 2:
            np.multiply(db, db, out=db)
            np.add(db[..., 0], db[..., 1], out=sv)
        else:
            np.einsum("krbd,krbd->krb", db, db, out=sv)
        np.sqrt(sv, out=sv)
        if r == 1:
            service_tm[t0:t1] = sv[:, 0]
        elif r < 8:
            # Below length 8 NumPy's pairwise sum is plain sequential, so
            # the middle-axis reduction matches the loop's order.
            sv.sum(axis=1, out=service_tm[t0:t1])
        else:
            # At r >= 8 the loop's last-axis sum blocks pairwise; pay a
            # transpose so this reduction blocks identically.
            np.ascontiguousarray(sv.transpose(0, 2, 1)).sum(axis=2, out=service_tm[t0:t1])

    if dim == 2:
        flat = traj_buf.view(np.complex128).reshape(T + 1, B_pad)[:, :B]
        np.copyto(trace.positions.view(np.complex128).reshape(B, T + 1), flat.T)
    elif dim == 1:
        flat = traj_buf.reshape(T + 1, B_pad)[:, :B]
        np.copyto(trace.positions.reshape(B, T + 1), flat.T)
    else:
        trace.positions[:] = traj.transpose(1, 0, 2)
    trace.distances_moved[:] = moved_tm.T
    if not batch_major:
        trace.service_costs[:] = service_tm.T
    np.multiply(D[:, None], trace.distances_moved, out=trace.movement_costs)
    return trace
