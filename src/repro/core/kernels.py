"""Fused step kernels for the batched engine's hot path.

The per-step loop in :func:`repro.core.engine.simulate_batch` pays one
Python round-trip per simulated step: a ``decide_batch`` method call, a
:class:`~repro.core.engine.BatchStepRequests` view, cap validation,
service-cost accounting and five trace-column writes.  For algorithms
whose decision is a *pure function* of ``(positions, step.points, caps)``
all of that can be fused: a :class:`StepKernel` advances a whole block of
``K`` steps per Python iteration over the packed request stack, and the
runner (:func:`run_fused`) validates caps, accumulates movement/service
costs and writes trace columns *per block* instead of per step.

Which algorithms qualify
------------------------

Only decisions that read nothing but the current positions, the packed
request points of the step and the per-lane caps can be replayed by a
kernel: ``greedy-centroid`` (centroid target + clamped move),
``nearest-chaser`` (argmin target + clamped move) and ``static`` (never
moves).  ``mtc``, ``greedy-center``, ``follow-last`` and the pursuit
family do **not** qualify — their targets come from the tie-broken exact
geometric-median solver (:func:`repro.median.request_center`), which is
warm-started per lane and inherently per-batch, and/or from per-lane
state carried across steps.  Those algorithms keep the per-step loop.

Bit-parity contract
-------------------

A kernel performs the exact float64 arithmetic of the per-step loop.
The fused path stores the request stack *time-major* — ``(T, r, B, d)``
instead of the per-step ``(B, r, d)`` — so every block reduction runs
over long contiguous inner axes, and three facts (asserted empirically
in ``tests/test_kernels.py``) license the reformulations:

* a sum of two squares via slice adds (``sq[..., 0] + sq[..., 1]``) is
  bit-identical to NumPy's ``einsum`` sum-of-products **only** for
  ``d <= 2`` — every norm here gates on that and falls back to the same
  ``einsum`` the loop uses for ``d >= 3``;
* reductions over a *middle* axis (the centroid ``mean`` over ``r``)
  add terms in the same order regardless of which axis of the operand
  they ran over, so the layout change does not move bits;
* ``ndarray.sum`` over a *last* axis switches to pairwise blocking at
  length 8, so the service sum over a step's requests matches the
  loop's middle-axis order only for ``r < 8`` — larger ``r`` pays a
  transpose to reduce over a contiguous last axis exactly as the loop
  does.

Movement distances are recomputed from the committed trajectory (never
shortcut through the clamp's ``min``), the clamp mirrors
:func:`~repro.core.geometry.batched_move_towards` term for term, and
``tests/test_kernels.py`` asserts bit-identical traces against the
per-step loop for every registered kernel under both cost models, mixed
per-lane caps/``D`` and δ sweeps.

Escape hatch
------------

:func:`set_fusion` / the :func:`fusion` context manager toggle every
fused fast path at once — the engine's kernel dispatch *and* the
cross-cell mega-batching in :mod:`repro.api.runtime` — which is what the
CLI ``--no-fuse`` flag flips to produce a pure per-step reference run.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict

import numpy as np

from .validation import MovementCapViolation

if TYPE_CHECKING:  # pragma: no cover - import only for type hints
    from .engine import BatchTrace

__all__ = [
    "DEFAULT_BLOCK",
    "KERNELS",
    "StepKernel",
    "fusion",
    "fusion_enabled",
    "kernel_for",
    "run_fused",
    "set_fusion",
]

#: Steps advanced per Python iteration of the fused runner.  Bounds the
#: block scratch at ``O(K * B * r * d)`` floats while amortizing the
#: validation / service / trace writes over ``K`` steps.
DEFAULT_BLOCK = 64

_FUSION_ENABLED = True


def fusion_enabled() -> bool:
    """Whether the fused fast paths (kernels + mega-batching) are active."""
    return _FUSION_ENABLED


def set_fusion(enabled: bool) -> bool:
    """Toggle the fused fast paths globally; returns the previous setting."""
    global _FUSION_ENABLED
    previous = _FUSION_ENABLED
    _FUSION_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def fusion(enabled: bool):
    """Context manager form of :func:`set_fusion` (restores on exit)."""
    previous = set_fusion(enabled)
    try:
        yield
    finally:
        set_fusion(previous)


@dataclass(frozen=True)
class StepKernel:
    """A fused decision rule: fill a block of trajectory rows at once.

    ``advance(out, start, points, caps)`` receives

    * ``out`` — ``(K, B, d)`` trajectory rows to fill (``out[k]`` is the
      position *after* step ``t0 + k``),
    * ``start`` — ``(B, d)`` positions entering the block (read-only),
    * ``points`` — ``(K, r, B, d)`` time-major packed requests,
    * ``caps`` — ``(B,)`` per-lane movement caps,

    and must perform, per lane and step, arithmetic bit-identical to the
    algorithm's ``decide_batch`` packed path.
    """

    name: str
    advance: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray], None]


def _time_major_stack(big: np.ndarray) -> np.ndarray:
    """Copy a ``(B, T, r, d)`` request stack into ``(T, r, B, d)`` layout.

    A naive ``ascontiguousarray(transpose(...))`` copies 16-byte rows and
    is ~2x slower than the whole fused simulation; for ``d <= 2`` the
    points reinterpret as one scalar per request (complex128 for ``d=2``)
    and the copy becomes a single cache-blocked 2-D transpose.  Views and
    copies never touch float bits.
    """
    B, T, r, d = big.shape
    big = np.ascontiguousarray(big)
    if d == 1:
        flat = big.reshape(B, T * r)
    elif d == 2:
        flat = big.view(np.complex128).reshape(B, T * r)
    else:
        out = big.reshape(B, T * r, d).transpose(1, 0, 2)
        return np.ascontiguousarray(out).reshape(T, r, B, d)
    M = flat.shape[1]
    if (M * flat.itemsize) % 4096 == 0:
        # A page-multiple row stride makes the transpose gather hit one
        # cache set per column — pad a row element to break the stride.
        padded = np.empty((B, M + 1), dtype=flat.dtype)
        padded[:, :M] = flat
        flat = padded[:, :M]
    return np.ascontiguousarray(flat.T).view(np.float64).reshape(T, r, B, d)


class _ClampScratch:
    """Per-advance buffers for the clamped-move recurrence.

    The recurrence is overhead-bound (ten NumPy calls on ``(B, d)``
    operands per step), so every call writes into preallocated buffers;
    ``weight`` starts at 1.0 so masked-out stale values stay finite.
    """

    def __init__(self, B: int, d: int) -> None:
        self.v = np.empty((B, d))
        self.sq = np.empty((B, d))
        self.n = np.empty(B)
        self.weight = np.ones(B)
        self.reached = np.empty(B, dtype=bool)
        self.weight_col = self.weight[:, None]
        self.reached_col = self.reached[:, None]


# The clamp recurrence is pure dispatch overhead at these array sizes
# (ten tiny ufunc calls per simulated step), so bind the ufuncs once.
_sub = np.subtract
_mul = np.multiply
_add = np.add
_sqrt = np.sqrt
_le = np.less_equal
_div = np.divide
_copyto = np.copyto


def _clamped_move(out: np.ndarray, src: np.ndarray, dst: np.ndarray,
                  caps: np.ndarray, s: _ClampScratch) -> None:
    """One :func:`~repro.core.geometry.batched_move_towards` step into ``out``.

    Mirrors the library clamp bit-for-bit: the same sum-of-squares row
    norms (slice adds only where that is exactly ``einsum``'s order, see
    module docstring), the ``safe_n`` guard against 0/0, the
    ``(caps / n)`` scaling, and exact landing on reached targets.
    """
    _sub(dst, src, out=s.v)
    if s.v.shape[1] == 2:
        _mul(s.v, s.v, out=s.sq)
        _add(s.sq[:, 0], s.sq[:, 1], out=s.n)
    else:
        np.einsum("ij,ij->i", s.v, s.v, out=s.n)
    _sqrt(s.n, out=s.n)
    _le(s.n, caps, out=s.reached)
    _copyto(s.n, 1.0, where=s.reached)
    _div(caps, s.n, out=s.weight)
    _mul(s.v, s.weight_col, out=out)
    _add(out, src, out=out)
    _copyto(out, dst, where=s.reached_col)
    return s.reached.all()


def _advance_greedy_centroid(out: np.ndarray, start: np.ndarray,
                             points: np.ndarray, caps: np.ndarray) -> None:
    # The centroid targets are position-independent, so the whole block's
    # targets reduce in one pass; only the tiny (B, d) clamp recurrence
    # stays sequential.  For d >= 2 the loop's (B, r, d) mean is a
    # middle-axis reduction whatever the layout, but at d == 1 NumPy
    # collapses the trailing unit axis and the loop's mean blocks
    # pairwise over r — mirror that exactly once r reaches the pairwise
    # threshold.
    K, r, B, d = points.shape
    if r == 1:
        # Mean of a single request is that request, bit for bit.
        targets = points[:, 0]
    elif d == 1 and r >= 8:
        flat = np.ascontiguousarray(points[..., 0].transpose(0, 2, 1))
        targets = flat.mean(axis=2)[..., None]  # (K, B, 1)
    else:
        targets = points.mean(axis=1)  # (K, B, d)
    scratch = _ClampScratch(B, d)
    # Exact-landing fast-forward: when a step lands every lane exactly on
    # its target (the clamp's ``out[reached] = dst`` rule), the position
    # no longer depends on history — so any following streak of steps
    # whose target-to-target hop is within every lane's cap just *is* the
    # target chain, bit for bit.  ``chain_ok[k]`` precomputes that hop
    # test (the clamp's own norm and ``<=`` comparison) for step k.
    if K > 1:
        tv = targets[1:] - targets[:-1]
        if d == 2:
            tsq = tv * tv
            tn = tsq[..., 0] + tsq[..., 1]
        else:
            tn = np.einsum("kbd,kbd->kb", tv, tv)
        np.sqrt(tn, out=tn)
        chain_ok = (tn <= caps).all(axis=1)  # (K-1,)
    else:
        chain_ok = np.zeros(0, dtype=bool)
    # run[k]: length of the chain_ok streak covering steps k, k+1, ...
    run = np.zeros(K + 1, dtype=np.int64)
    for k in range(K - 2, -1, -1):
        run[k + 1] = run[k + 2] + 1 if chain_ok[k] else 0

    positions = start
    k = 0
    while k < K:
        all_reached = _clamped_move(out[k], positions, targets[k], caps, scratch)
        positions = out[k]
        k += 1
        if all_reached and k < K:
            span = int(run[k])
            if span:
                out[k:k + span] = targets[k:k + span]
                positions = out[k + span - 1]
                k += span


def _advance_nearest_chaser(out: np.ndarray, start: np.ndarray,
                            points: np.ndarray, caps: np.ndarray) -> None:
    K, r, B, d = points.shape
    scratch = _ClampScratch(B, d)
    if r == 1:
        # A single request is trivially the nearest one.
        positions = start
        for k in range(K):
            _clamped_move(out[k], positions, points[k, 0], caps, scratch)
            positions = out[k]
        return
    lanes = np.arange(B)
    dbuf = np.empty((r, B, d))
    dists = np.empty((r, B))
    positions = start
    for k in range(K):
        pts = points[k]
        np.subtract(pts, positions[None, :, :], out=dbuf)
        if d == 2:
            np.multiply(dbuf, dbuf, out=dbuf)
            np.add(dbuf[..., 0], dbuf[..., 1], out=dists)
        else:
            np.einsum("rbd,rbd->rb", dbuf, dbuf, out=dists)
        # sqrt *before* argmin, like decide_batch: rounding in the sqrt
        # can merge near-ties, and the tie-break must match exactly.
        np.sqrt(dists, out=dists)
        nearest = pts[np.argmin(dists, axis=0), lanes]
        _clamped_move(out[k], positions, nearest, caps, scratch)
        positions = out[k]


def _advance_static(out: np.ndarray, start: np.ndarray,
                    points: np.ndarray, caps: np.ndarray) -> None:
    out[:] = start


#: Registered kernels, keyed by algorithm registry name.  An algorithm
#: advertises its kernel via the ``kernel`` class attribute of its
#: vectorized implementation; :func:`kernel_for` resolves it here.
KERNELS: Dict[str, StepKernel] = {
    "greedy-centroid": StepKernel("greedy-centroid", _advance_greedy_centroid),
    "nearest-chaser": StepKernel("nearest-chaser", _advance_nearest_chaser),
    "static": StepKernel("static", _advance_static),
}


def kernel_for(algorithm) -> StepKernel | None:
    """The registered kernel an algorithm instance advertises, if any."""
    name = getattr(algorithm, "kernel", None)
    if name is None:
        return None
    return KERNELS.get(name)


def run_fused(
    kernel: StepKernel,
    starts: np.ndarray,
    big: np.ndarray,
    caps: np.ndarray,
    D: np.ndarray,
    serve_after_move: np.ndarray,
    tol: np.ndarray,
    algorithm_name: str,
    block: int = DEFAULT_BLOCK,
) -> "BatchTrace":
    """Play a packed request stack through a kernel, ``block`` steps at a time.

    Parameters mirror the engine loop's precomputed per-lane arrays:
    ``starts`` is ``(B, d)``, ``big`` the packed ``(B, T, r, d)`` request
    stack, ``caps``/``D``/``tol`` are ``(B,)`` and ``serve_after_move``
    is ``(B,)`` bool (one flag per lane's cost model).

    Returns a :class:`~repro.core.engine.BatchTrace` bit-identical to the
    per-step loop's: movement distances are recomputed from the committed
    trajectory (not read back from the clamp), validation checks each
    block before the next one runs, and service costs reduce a step's
    requests in exactly the loop's order (see module docstring).
    """
    from .engine import BatchTrace  # deferred: engine imports this module

    B, T, r, dim = big.shape
    points = _time_major_stack(big)  # (T, r, B, d)
    # Pad the lane axis when a (B, d) row is a page multiple, so the
    # final trajectory transpose doesn't gather on one cache set.
    B_pad = B + 1 if (B * dim * 8) % 4096 == 0 else B
    traj_buf = np.empty((T + 1, B_pad, dim))
    traj = traj_buf[:, :B]
    traj[0] = starts

    # Every element below is overwritten, so skip allocate()'s zeroing.
    trace = BatchTrace(
        positions=np.empty((B, T + 1, dim)),
        movement_costs=np.empty((B, T)),
        service_costs=np.empty((B, T)),
        distances_moved=np.empty((B, T)),
        # Packed stacks are uniform by construction.
        request_counts=np.full((B, T), r, dtype=np.int64),
        algorithm=algorithm_name,
    )

    all_serve_after = bool(serve_after_move.all())
    none_serve_after = not serve_after_move.any()
    Kmax = min(block, T)
    seg = np.empty((Kmax, B, dim))
    over = np.empty((Kmax, B), dtype=bool)
    diff = np.empty((Kmax, r, B, dim))
    svc = np.empty((Kmax, r, B))
    serving_buf = None if all_serve_after or none_serve_after else np.empty((Kmax, B, dim))
    # Time-major cost accumulators; transposed into the trace once at the
    # end (a copy never moves float bits).
    moved_tm = np.empty((T, B))
    service_tm = np.empty((T, B))

    for t0 in range(0, T, block):
        t1 = min(t0 + block, T)
        K = t1 - t0
        pblock = points[t0:t1]
        out = traj[t0 + 1:t1 + 1]
        kernel.advance(out, traj[t0], pblock, caps)

        sg, mv, ov = seg[:K], moved_tm[t0:t1], over[:K]
        np.subtract(out, traj[t0:t1], out=sg)
        if dim == 2:
            np.multiply(sg, sg, out=sg)
            np.add(sg[..., 0], sg[..., 1], out=mv)
        else:
            np.einsum("kbd,kbd->kb", sg, sg, out=mv)
        np.sqrt(mv, out=mv)
        np.greater(mv, tol, out=ov)
        if ov.any():
            # First offending step, then first offending lane — exactly
            # the order the per-step loop raises in.  Blocks after this
            # one were never advanced, matching the loop's early exit.
            k, lane = np.unravel_index(int(np.argmax(ov)), ov.shape)
            raise MovementCapViolation(
                t0 + int(k), float(mv[k, lane]), float(caps[lane]),
                f"{algorithm_name}[lane {lane}]",
            )

        if all_serve_after:
            serving = out
        elif none_serve_after:
            serving = traj[t0:t1]
        else:
            serving = serving_buf[:K]
            np.copyto(serving, traj[t0:t1])
            np.copyto(serving, out, where=serve_after_move[None, :, None])

        db, sv = diff[:K], svc[:K]
        np.subtract(pblock, serving[:, None, :, :], out=db)
        if dim == 2:
            np.multiply(db, db, out=db)
            np.add(db[..., 0], db[..., 1], out=sv)
        else:
            np.einsum("krbd,krbd->krb", db, db, out=sv)
        np.sqrt(sv, out=sv)
        if r == 1:
            service_tm[t0:t1] = sv[:, 0]
        elif r < 8:
            # Below length 8 NumPy's pairwise sum is plain sequential, so
            # the middle-axis reduction matches the loop's order.
            sv.sum(axis=1, out=service_tm[t0:t1])
        else:
            # At r >= 8 the loop's last-axis sum blocks pairwise; pay a
            # transpose so this reduction blocks identically.
            np.ascontiguousarray(sv.transpose(0, 2, 1)).sum(axis=2, out=service_tm[t0:t1])

    if dim == 2:
        flat = traj_buf.view(np.complex128).reshape(T + 1, B_pad)[:, :B]
        np.copyto(trace.positions.view(np.complex128).reshape(B, T + 1), flat.T)
    elif dim == 1:
        flat = traj_buf.reshape(T + 1, B_pad)[:, :B]
        np.copyto(trace.positions.reshape(B, T + 1), flat.T)
    else:
        trace.positions[:] = traj.transpose(1, 0, 2)
    trace.distances_moved[:] = moved_tm.T
    trace.service_costs[:] = service_tm.T
    np.multiply(D[:, None], trace.distances_moved, out=trace.movement_costs)
    return trace
