"""Deprecated shim — the geometry primitives now live in :mod:`repro.core.metric`.

Everything this module used to define (``distance``, ``move_towards``,
``row_norms``, ``as_point``, …) moved verbatim to ``core.metric``, where
the ℓ2 functions double as the ``euclidean`` :class:`~repro.core.metric.Metric`
instance's implementation.  Importing from here keeps working but emits a
``DeprecationWarning``; switch to::

    from repro.core.metric import distance, move_towards  # etc.

or, inside algorithms/adversaries, use the injected ``self.metric`` so the
code runs unchanged over ℓ1/ℓ∞/graph spaces.
"""

from __future__ import annotations

import warnings

from . import metric as _metric

__all__ = [
    "EPS",
    "as_point",
    "as_points",
    "batched_move_towards",
    "bounding_box",
    "centroid",
    "clamp_step",
    "direction",
    "distance",
    "distances_to",
    "interpolate",
    "move_towards",
    "norm",
    "pairwise_distances",
    "row_norms",
    "total_path_length",
]

warnings.warn(
    "repro.core.geometry is deprecated; import from repro.core.metric "
    "(or use the Metric interface) instead",
    DeprecationWarning,
    stacklevel=2,
)


EPS = _metric.EPS
as_point = _metric.as_point
as_points = _metric.as_points
batched_move_towards = _metric.batched_move_towards
bounding_box = _metric.bounding_box
centroid = _metric.centroid
clamp_step = _metric.clamp_step
direction = _metric.direction
distance = _metric.distance
distances_to = _metric.distances_to
interpolate = _metric.interpolate
move_towards = _metric.move_towards
norm = _metric.norm
pairwise_distances = _metric.pairwise_distances
row_norms = _metric.row_norms
total_path_length = _metric.total_path_length
