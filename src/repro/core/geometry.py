"""Vectorized Euclidean geometry primitives.

The Mobile Server Problem lives in the Euclidean space :math:`\\mathbb{R}^d`
for an arbitrary dimension ``d``.  Throughout the library a *point* is a
one-dimensional ``float64`` NumPy array of shape ``(d,)`` and a *batch of
points* (e.g. the requests of one time step) is a two-dimensional array of
shape ``(r, d)``.  All helpers in this module accept plain Python sequences
and normalise them once; hot paths operate on views without copying.

The only geometric operations the model needs are distances, directed
clamped moves (the server may travel at most a fixed distance per step) and
segment interpolation; they are collected here so that every algorithm,
adversary and analysis module shares one well-tested implementation.

Batched variants (:func:`row_norms`, :func:`batched_move_towards`) operate
on ``(B, d)`` stacks of points — one row per simulation lane — and perform
the exact same float64 arithmetic per row as their scalar counterparts, so
the batched engine (:mod:`repro.core.engine`) reproduces scalar runs
bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "as_point",
    "as_points",
    "distance",
    "distances_to",
    "pairwise_distances",
    "norm",
    "row_norms",
    "direction",
    "move_towards",
    "batched_move_towards",
    "clamp_step",
    "interpolate",
    "total_path_length",
    "centroid",
    "bounding_box",
    "EPS",
]

#: Absolute tolerance used when validating movement-cap constraints.  The
#: simulator allows moves to exceed the cap by ``EPS * (1 + cap)`` to absorb
#: floating-point round-off in ``direction``/``move_towards`` chains.
EPS: float = 1e-9


def as_point(p: Sequence[float] | np.ndarray, dim: int | None = None) -> np.ndarray:
    """Return ``p`` as a float64 vector of shape ``(d,)``.

    Parameters
    ----------
    p:
        A scalar (treated as a 1-D point), sequence, or array.
    dim:
        If given, validate that the point has exactly this dimension.

    Raises
    ------
    ValueError
        If ``p`` is not interpretable as a single point or the dimension
        does not match ``dim``.
    """
    arr = np.asarray(p, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"expected a single point, got array of shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise ValueError(f"expected dimension {dim}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"point contains non-finite coordinates: {arr}")
    return arr


def as_points(ps: Iterable[Sequence[float]] | np.ndarray, dim: int | None = None) -> np.ndarray:
    """Return ``ps`` as a float64 batch of shape ``(r, d)``.

    A single point is promoted to a batch of one.  An empty input yields an
    array of shape ``(0, dim or 0)``.
    """
    arr = np.asarray(ps, dtype=np.float64)
    if arr.size == 0:
        d = dim if dim is not None else (arr.shape[-1] if arr.ndim == 2 else 0)
        return np.empty((0, d), dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected a batch of points, got array of shape {arr.shape}")
    if dim is not None and arr.shape[1] != dim:
        raise ValueError(f"expected dimension {dim}, got {arr.shape[1]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("point batch contains non-finite coordinates")
    return arr


def _sq_norm(v: np.ndarray) -> float:
    """Squared norm via ``einsum``.

    ``np.dot`` may use FMA-fused BLAS kernels whose rounding differs from
    the batched ``einsum("ij,ij->i")`` reductions by 1 ulp; routing every
    scalar norm through the same ``einsum`` contraction keeps the scalar
    and batched engines bit-for-bit identical.
    """
    return float(np.einsum("i,i->", v, v))


def norm(v: np.ndarray) -> float:
    """Euclidean norm of a vector, as a Python float."""
    return float(np.sqrt(_sq_norm(v)))


def distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two points."""
    d = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.sqrt(_sq_norm(d)))


def distances_to(p: np.ndarray, batch: np.ndarray) -> np.ndarray:
    """Distances from point ``p`` to each row of ``batch``; shape ``(r,)``.

    This is the hot path of request answering: one subtraction, one square,
    one reduction — no Python-level loop.
    """
    diff = batch - p
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def pairwise_distances(batch_a: np.ndarray, batch_b: np.ndarray) -> np.ndarray:
    """All pairwise distances; shape ``(len(a), len(b))``."""
    diff = batch_a[:, None, :] - batch_b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def direction(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Unit vector from ``src`` towards ``dst``; zero vector if coincident."""
    v = dst - src
    n = np.sqrt(_sq_norm(v))
    if n <= 0.0:
        return np.zeros_like(v)
    return v / n


def move_towards(src: np.ndarray, dst: np.ndarray, step: float) -> np.ndarray:
    """Move from ``src`` towards ``dst`` by at most ``step``.

    Returns ``dst`` itself (not a copy of ``src``) when the target is within
    reach, so that repeated calls converge exactly.
    """
    if step < 0.0:
        raise ValueError(f"step must be non-negative, got {step}")
    v = dst - src
    n = np.sqrt(_sq_norm(v))
    if n <= step:
        return np.array(dst, dtype=np.float64, copy=True)
    return src + (step / n) * v


#: Clamping a proposed move ``src -> dst`` to a movement cap is the same
#: operation as a bounded directed move, so ``clamp_step`` is an alias of
#: :func:`move_towards` (kept for readability at call sites that think in
#: terms of cap enforcement rather than pursuit).
clamp_step = move_towards


def row_norms(vs: np.ndarray) -> np.ndarray:
    """Euclidean norm of each row of a ``(B, d)`` array; shape ``(B,)``."""
    return np.sqrt(np.einsum("ij,ij->i", vs, vs))


def batched_move_towards(src: np.ndarray, dst: np.ndarray, steps: np.ndarray | float) -> np.ndarray:
    """Row-wise :func:`move_towards` for ``(B, d)`` stacks of points.

    Each lane ``i`` moves from ``src[i]`` towards ``dst[i]`` by at most
    ``steps[i]`` (``steps`` broadcasts, so a scalar cap is fine).  Rows whose
    destination is within reach land exactly on ``dst[i]``, matching the
    scalar function's convergence guarantee; the per-row arithmetic is
    identical to the scalar path so results agree bit-for-bit.
    """
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    steps = np.broadcast_to(np.asarray(steps, dtype=np.float64), src.shape[:1])
    if np.any(steps < 0.0):
        raise ValueError("steps must be non-negative")
    v = dst - src
    n = row_norms(v)
    reached = n <= steps
    safe_n = np.where(reached, 1.0, n)  # avoid 0/0 on zero-length moves
    out = src + (steps / safe_n)[:, None] * v
    out[reached] = dst[reached]
    return out


def interpolate(a: np.ndarray, b: np.ndarray, t: float) -> np.ndarray:
    """Affine interpolation ``(1 - t) * a + t * b``."""
    return (1.0 - t) * a + t * b


def total_path_length(path: np.ndarray) -> float:
    """Total Euclidean length of a polyline given as an ``(n, d)`` array."""
    path = np.asarray(path, dtype=np.float64)
    if path.ndim != 2 or path.shape[0] < 2:
        return 0.0
    seg = np.diff(path, axis=0)
    return float(np.sqrt(np.einsum("ij,ij->i", seg, seg)).sum())


def centroid(batch: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """(Weighted) arithmetic mean of a batch of points."""
    batch = as_points(batch)
    if batch.shape[0] == 0:
        raise ValueError("centroid of an empty batch is undefined")
    if weights is None:
        return batch.mean(axis=0)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (batch.shape[0],):
        raise ValueError("weights must have one entry per point")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive sum")
    return (weights[:, None] * batch).sum(axis=0) / total


def bounding_box(batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Axis-aligned bounding box ``(lo, hi)`` of a non-empty batch."""
    batch = as_points(batch)
    if batch.shape[0] == 0:
        raise ValueError("bounding box of an empty batch is undefined")
    return batch.min(axis=0), batch.max(axis=0)
