"""Batched lock-step simulation engine.

:func:`simulate_batch` plays ``B`` same-length instances simultaneously:
server positions live in one ``(B, d)`` array, move validation, cap
clamping and cost accounting are single vectorized NumPy operations over
all lanes, and the per-step Python overhead of :func:`repro.core.simulator.simulate`
is paid once per *step* instead of once per *(instance, step)* pair.  This
is the throughput substrate for seed/parameter sweeps: the experiment
harness dispatches its repeated runs through this module and the analysis
layer slices the result back into ordinary per-instance traces.

Key types
---------

:class:`VectorizedAlgorithm`
    The batched counterpart of :class:`~repro.algorithms.base.OnlineAlgorithm`:
    ``reset_batch(instances, caps)`` once, then
    ``decide_batch(t, positions, step) -> (B, d)`` per step.  Truly
    vectorized implementations live in :mod:`repro.algorithms.vectorized`;
    a scalar-fallback adapter there makes every registry algorithm usable
    under this engine unchanged.

:class:`BatchStepRequests`
    The requests of one time step across all lanes.  Exposes a packed
    ``(B, r, d)`` array when every lane has the same request count (the
    fast path) and lazy per-lane :class:`~repro.core.requests.RequestBatch`
    objects otherwise.

:class:`BatchState`
    Mutable engine state: ``(B, d)`` positions plus ``(B,)`` running cost
    accumulators.

:class:`BatchTrace`
    The batched analogue of :class:`~repro.core.trace.Trace`; ``trace(i)``
    slices lane ``i`` back to an ordinary :class:`Trace`.

Equivalence contract
--------------------

For every lane the engine performs the exact same float64 arithmetic as
the scalar simulator (row-wise ``einsum`` norms, identical clamp formula,
identical summation order over a step's requests), so batched runs
reproduce scalar traces bit-for-bit — the property test suite asserts
this for every registry algorithm under both cost models.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence, Union

import numpy as np

from .metric import Metric, get_metric, row_norms
from .instance import MSPInstance
from .requests import RequestBatch, RequestSequence
from .trace import Trace
from .validation import MovementCapViolation, cap_tolerance

if TYPE_CHECKING:  # pragma: no cover - import only for type hints
    from ..algorithms.base import OnlineAlgorithm

__all__ = [
    "BatchState",
    "BatchStepRequests",
    "BatchTrace",
    "VectorizedAlgorithm",
    "advance_lanes",
    "simulate_batch",
]


class BatchStepRequests:
    """The requests revealed at one time step, across all ``B`` lanes.

    Attributes
    ----------
    counts:
        ``(B,)`` int array of per-lane request counts :math:`r_t`.
    points:
        ``(B, r, d)`` packed array when every lane has the same positive
        request count this step, else ``None``.  Vectorized algorithms use
        this fast path and fall back to :attr:`batches` when it is absent.
    """

    __slots__ = ("_sequences", "_t", "counts", "points")

    def __init__(
        self,
        sequences: Sequence[RequestSequence],
        t: int,
        counts: np.ndarray,
        points: np.ndarray | None,
    ) -> None:
        self._sequences = sequences
        self._t = t
        self.counts = counts
        self.points = points

    @property
    def batches(self) -> list[RequestBatch]:
        """Per-lane request batches (materialized lazily)."""
        return [seq[self._t] for seq in self._sequences]

    def batch(self, lane: int) -> RequestBatch:
        """The requests of a single lane."""
        return self._sequences[lane][self._t]

    def __len__(self) -> int:
        return len(self._sequences)


@dataclass
class BatchState:
    """Mutable state of a batched run: positions plus cost accumulators.

    Attributes
    ----------
    positions:
        ``(B, d)`` current server positions (engine-owned; algorithms must
        treat the array handed to ``decide_batch`` as read-only).
    movement, service:
        ``(B,)`` accumulated weighted movement / service cost per lane.
    distance_moved:
        ``(B,)`` accumulated raw distance per lane.
    steps:
        Number of steps advanced so far.
    """

    positions: np.ndarray
    movement: np.ndarray
    service: np.ndarray
    distance_moved: np.ndarray
    steps: int = 0

    @classmethod
    def initial(cls, starts: np.ndarray) -> "BatchState":
        starts = np.array(starts, dtype=np.float64, copy=True)
        B = starts.shape[0]
        return cls(
            positions=starts,
            movement=np.zeros(B),
            service=np.zeros(B),
            distance_moved=np.zeros(B),
        )

    @property
    def batch_size(self) -> int:
        return int(self.positions.shape[0])

    @property
    def totals(self) -> np.ndarray:
        """``(B,)`` total cost so far per lane."""
        return self.movement + self.service

    def advance(
        self,
        new_positions: np.ndarray,
        movement: np.ndarray,
        service: np.ndarray,
        distance: np.ndarray,
    ) -> None:
        """Commit one validated step."""
        self.positions = new_positions
        self.movement += movement
        self.service += service
        self.distance_moved += distance
        self.steps += 1


@dataclass
class BatchTrace:
    """Complete record of one batched run; lane ``i`` slices to a :class:`Trace`.

    All arrays carry the batch axis first: ``positions`` is ``(B, T+1, d)``
    and the per-step arrays are ``(B, T)``.
    """

    positions: np.ndarray
    movement_costs: np.ndarray
    service_costs: np.ndarray
    distances_moved: np.ndarray
    request_counts: np.ndarray
    algorithm: str = ""

    @classmethod
    def allocate(cls, B: int, T: int, dim: int, algorithm: str = "") -> "BatchTrace":
        return cls(
            positions=np.zeros((B, T + 1, dim)),
            movement_costs=np.zeros((B, T)),
            service_costs=np.zeros((B, T)),
            distances_moved=np.zeros((B, T)),
            request_counts=np.zeros((B, T), dtype=np.int64),
            algorithm=algorithm,
        )

    @property
    def batch_size(self) -> int:
        return int(self.movement_costs.shape[0])

    @property
    def length(self) -> int:
        return int(self.movement_costs.shape[1])

    @property
    def dim(self) -> int:
        return int(self.positions.shape[2])

    @property
    def total_costs(self) -> np.ndarray:
        """``(B,)`` total cost per lane."""
        return self.movement_costs.sum(axis=1) + self.service_costs.sum(axis=1)

    @property
    def total_movement_costs(self) -> np.ndarray:
        return self.movement_costs.sum(axis=1)

    @property
    def total_service_costs(self) -> np.ndarray:
        return self.service_costs.sum(axis=1)

    def trace(self, lane: int) -> Trace:
        """Copy lane ``lane`` out into an ordinary :class:`Trace`."""
        if not (-self.batch_size <= lane < self.batch_size):
            raise IndexError(f"lane {lane} out of range for batch of {self.batch_size}")
        return Trace(
            positions=self.positions[lane].copy(),
            movement_costs=self.movement_costs[lane].copy(),
            service_costs=self.service_costs[lane].copy(),
            distances_moved=self.distances_moved[lane].copy(),
            request_counts=self.request_counts[lane].copy(),
            algorithm=self.algorithm,
        )

    def traces(self) -> list[Trace]:
        """All lanes as per-instance traces."""
        return [self.trace(i) for i in range(self.batch_size)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchTrace(alg={self.algorithm!r}, B={self.batch_size}, "
            f"T={self.length}, dim={self.dim})"
        )


class VectorizedAlgorithm(abc.ABC):
    """Batched counterpart of :class:`~repro.algorithms.base.OnlineAlgorithm`.

    The engine calls :meth:`reset_batch` once with the ``B`` instances and
    their per-lane movement caps, then :meth:`decide_batch` once per step.
    Implementations keep any auxiliary state (pursuit targets, phase
    buffers, RNG streams) per lane; the *positions* are engine-owned and
    handed in read-only — do not mutate them.
    """

    #: Identifier recorded in traces; mirrors the scalar algorithm's name.
    name: str = "vectorized-algorithm"

    #: Name of a fused step kernel (:data:`repro.core.kernels.KERNELS`)
    #: that replays this algorithm's decision rule, or ``None``.  Only
    #: decisions that are pure functions of ``(positions, step.points,
    #: caps)`` may advertise one; the engine then skips the per-step
    #: ``decide_batch`` loop entirely when the request stack packs.
    kernel: str | None = None

    def __init__(self) -> None:
        self.instances: list[MSPInstance] = []
        self.caps: np.ndarray = np.zeros(0)
        self.D: np.ndarray = np.zeros(0)

    @property
    def batch_size(self) -> int:
        return len(self.instances)

    def reset_batch(self, instances: Sequence[MSPInstance], caps: np.ndarray) -> None:
        """Prepare for a fresh batched run.

        Subclasses needing extra per-lane state must call
        ``super().reset_batch(...)``.
        """
        self.instances = list(instances)
        self.caps = np.asarray(caps, dtype=np.float64)
        self.D = np.array([inst.D for inst in self.instances], dtype=np.float64)

    @abc.abstractmethod
    def decide_batch(
        self, t: int, positions: np.ndarray, step: BatchStepRequests
    ) -> np.ndarray:
        """Return the ``(B, d)`` new server positions for step ``t``.

        Row ``i`` must satisfy ``d(positions[i], new[i]) <= caps[i]`` up to
        floating-point tolerance; the engine validates every lane.
        """

    # -- carried lane state (incremental stepping) ------------------------

    def export_lane_states(self) -> list:
        """Opaque per-lane decision state after the steps played so far.

        The streaming serve layer advances lanes through the engine
        incrementally and may regroup them between ticks: it exports each
        lane's state after a step and imports it into a (possibly
        differently-composed) batch before the next one.  The contract is
        that ``import_lane_states(export_lane_states())`` round-trips
        exactly — a lane stepped under changing batch compositions makes
        bit-identical decisions to one stepped in a fixed batch.

        Stateless algorithms (decisions are pure functions of positions,
        requests and caps) inherit this default, which exports ``None``
        per lane.  Stateful subclasses must override both methods.  The
        exported values are in-process handles (they may hold live RNGs);
        durable checkpoints replay the request history instead of
        serializing them.
        """
        return [None] * self.batch_size

    def import_lane_states(self, states: Sequence) -> None:
        """Restore per-lane decision state exported by :meth:`export_lane_states`.

        Called after :meth:`reset_batch`, with one entry per lane of the
        *current* batch (entries may come from different earlier batches).
        """
        if len(states) != self.batch_size:
            raise ValueError(
                f"expected {self.batch_size} lane states, got {len(states)}"
            )
        for i, state in enumerate(states):
            if state is not None:
                raise ValueError(
                    f"{type(self).__name__} is stateless but lane {i} carries "
                    "state — override import_lane_states in the subclass"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


#: What :func:`simulate_batch` accepts as its algorithm argument: an already
#: constructed :class:`VectorizedAlgorithm`, a registry name, or a zero-arg
#: factory of scalar algorithms (wrapped by the scalar-fallback adapter).
AlgorithmSpec = Union[VectorizedAlgorithm, str, Callable[[], "OnlineAlgorithm"]]


def _resolve_algorithm(algorithm: AlgorithmSpec, metric: Metric | None = None) -> VectorizedAlgorithm:
    if isinstance(algorithm, VectorizedAlgorithm):
        if metric is not None:
            # Only the scalar adapter (which exposes a ``metric`` slot) can
            # honour a non-ℓ2 metric; truly-vectorized classes hardcode ℓ2.
            if hasattr(algorithm, "metric"):
                algorithm.metric = metric
            else:
                raise ValueError(
                    f"{algorithm.name!r} is a truly-vectorized (ℓ2-only) "
                    f"implementation and cannot run under metric {metric.name!r}; "
                    "pass the registry name or a scalar factory instead"
                )
        return algorithm
    # Lazy import: keeps the core layer importable without the algorithms
    # package (mirrors the scalar simulator's TYPE_CHECKING-only import).
    from ..algorithms.vectorized import as_vectorized

    return as_vectorized(algorithm, metric=metric)


def _packed_stack(sequences: Sequence[RequestSequence]) -> np.ndarray | None:
    """The ``(B, T, r, d)`` request stack when every lane packs uniformly.

    ``None`` when any lane is ragged or the lanes disagree on the per-step
    request count — the conditions under which both the engine's gather
    fast path and the fused kernels fall back to per-step assembly.
    """
    packed = [seq.packed for seq in sequences]
    if all(p is not None for p in packed) and len({p.shape[1] for p in packed}) == 1:
        return np.stack(packed)
    return None


def _gather_steps(instances: Sequence[MSPInstance], T: int) -> list[BatchStepRequests]:
    """Pre-assemble the per-step cross-lane request views."""
    sequences = [inst.requests for inst in instances]
    counts = np.stack([seq.counts for seq in sequences])  # (B, T)
    steps: list[BatchStepRequests] = []
    # Fast path: every lane uniform with the same request count — one big
    # (B, T, r, d) stack, sliced per step without copying.
    big = _packed_stack(sequences)
    if big is not None:
        for t in range(T):
            steps.append(BatchStepRequests(sequences, t, counts[:, t], big[:, t]))
        return steps
    # Ragged path: hoist each lane's per-step point arrays out of the loop
    # once, so steps with uniform counts stack plain ndarrays instead of
    # re-materializing RequestBatch views T × B times.
    lane_points = [[batch.points for batch in seq] for seq in sequences]
    for t in range(T):
        col = counts[:, t]
        points = None
        r = int(col[0])
        if r > 0 and np.all(col == r):
            points = np.stack([pts[t] for pts in lane_points])
        steps.append(BatchStepRequests(sequences, t, col, points))
    return steps


def _batch_service_costs(
    serving: np.ndarray, step: BatchStepRequests, metric: Metric | None = None
) -> np.ndarray:
    """``(B,)`` per-lane service cost of answering this step from ``serving``.

    The summation over a lane's requests uses the same reduction as the
    scalar :func:`~repro.core.metric.distances_to` + ``sum`` path so the
    totals agree bit-for-bit.  A non-``None`` ``metric`` routes each lane
    through that metric's ``distances_to`` — same per-lane arithmetic as
    the scalar simulator's generic branch.
    """
    B = serving.shape[0]
    if metric is not None:
        service = np.zeros(B)
        for i in np.nonzero(step.counts)[0]:
            batch = step.batch(int(i))
            service[i] = float(metric.distances_to(serving[i], batch.points).sum())
        return service
    if step.points is not None:
        diff = step.points - serving[:, None, :]
        return np.sqrt(np.einsum("brd,brd->br", diff, diff)).sum(axis=1)
    service = np.zeros(B)
    if not np.any(step.counts):
        return service
    for i in np.nonzero(step.counts)[0]:
        batch = step.batch(int(i))
        diff = batch.points - serving[i]
        service[i] = np.sqrt(np.einsum("ij,ij->i", diff, diff)).sum()
    return service


def advance_lanes(
    algo: VectorizedAlgorithm,
    t: int,
    positions: np.ndarray,
    step: BatchStepRequests,
    *,
    caps: np.ndarray,
    tol: np.ndarray,
    D: np.ndarray,
    serve_after_move: np.ndarray,
    counts_service: np.ndarray | None = None,
    metric: Metric | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One lock-step engine step over externally-held state.

    This is the per-step body of :func:`simulate_batch` — decide, validate
    against the movement cap, pick the serving position per cost model,
    and account costs — factored out so callers that *carry* state between
    steps (the streaming serve layer's :class:`~repro.serve.SessionPool`)
    perform the exact same float64 arithmetic as a full batched run.

    ``counts_service`` is a ``(B,)`` bool mask of lanes whose cost model
    charges a service term (``None`` means all — the pre-``MOVEMENT_ONLY``
    behaviour).  ``metric`` selects the space; ``None`` is the exact ℓ2
    fast path.

    Returns ``(proposed, movement, service, moved)``: the ``(B, d)`` new
    positions and the three ``(B,)`` per-lane step costs.  The caller
    commits ``proposed`` (copying defensively if the algorithm may alias
    it) and accumulates the costs.
    """
    B, dim = positions.shape
    proposed = np.asarray(algo.decide_batch(t, positions, step), dtype=np.float64)
    if proposed.shape != (B, dim):
        raise ValueError(
            f"decide_batch must return shape {(B, dim)}, got {proposed.shape}"
        )
    if metric is None:
        seg = proposed - positions
        moved = row_norms(seg)
    else:
        moved = metric.batched_distances(positions, proposed)
    bad = np.nonzero(moved > tol)[0]
    if bad.size:
        lane = int(bad[0])
        raise MovementCapViolation(
            t, float(moved[lane]), float(caps[lane]), f"{algo.name}[lane {lane}]"
        )
    serving = np.where(serve_after_move[:, None], proposed, positions)
    service = _batch_service_costs(serving, step, metric=metric)
    if counts_service is not None and not counts_service.all():
        service = np.where(counts_service, service, 0.0)
    movement = D * moved
    return proposed, movement, service, moved


def simulate_batch(
    instances: Sequence[MSPInstance],
    algorithm: AlgorithmSpec,
    delta: "float | Sequence[float] | np.ndarray" = 0.0,
    *,
    fuse: bool | None = None,
    metric: "str | Metric | None" = None,
) -> BatchTrace:
    """Run one algorithm on ``B`` same-length instances in lock-step.

    Parameters
    ----------
    instances:
        Problem inputs; all must share the same length ``T`` and dimension
        ``d``.  Per-lane ``D``, ``m`` and cost models may differ freely.
    algorithm:
        A :class:`VectorizedAlgorithm`, a registry name (resolved through
        :func:`repro.algorithms.vectorized.as_vectorized`, which picks a
        truly vectorized implementation when one exists and the scalar
        adapter otherwise), or a zero-arg scalar-algorithm factory.
    delta:
        Resource-augmentation factor: a scalar applied to every lane, or
        a ``(B,)`` per-lane sweep (what lets cross-cell mega-batching
        pack cells with different δ into one engine pass).
    fuse:
        Force the fused-kernel fast path on/off; ``None`` (default)
        follows the global :func:`repro.core.kernels.fusion_enabled`
        toggle.  The fused path engages only when the algorithm
        advertises a kernel and the request stack packs; either path
        produces bit-identical traces.
    metric:
        The space the runs are measured in — a registry name or
        :class:`~repro.core.metric.Metric` instance.  ``None`` (and the
        Euclidean instance) keep the exact ℓ2 hot path; any other metric
        disables kernel fusion (kernels declare ℓ2 only) and routes
        registry algorithms through the scalar adapter with the metric
        injected per lane.

    Returns
    -------
    BatchTrace
        Full trajectories and per-step cost breakdowns for every lane.
    """
    from .kernels import fusion_enabled, kernel_for, run_fused

    if metric is not None:
        metric = get_metric(metric)
        if metric.name == "euclidean":
            metric = None  # ℓ2 fast path is bit-identical by construction
    instances = list(instances)
    if not instances:
        raise ValueError("simulate_batch needs at least one instance")
    T = instances[0].length
    dim = instances[0].dim
    for i, inst in enumerate(instances):
        if inst.length != T:
            raise ValueError(
                f"all instances must share one length: lane 0 has T={T}, "
                f"lane {i} has T={inst.length}"
            )
        if inst.dim != dim:
            raise ValueError(
                f"all instances must share one dimension: lane 0 has d={dim}, "
                f"lane {i} has d={inst.dim}"
            )
    B = len(instances)
    deltas = np.broadcast_to(np.asarray(delta, dtype=np.float64), (B,))
    caps = np.array([inst.online_cap(float(dl))
                     for inst, dl in zip(instances, deltas)])
    D = np.array([inst.D for inst in instances])
    serve_after_move = np.array(
        [inst.cost_model.serves_after_move for inst in instances], dtype=bool
    )
    counts_service = np.array(
        [inst.cost_model.counts_service for inst in instances], dtype=bool
    )
    tol = caps + cap_tolerance(caps)  # cap_tolerance broadcasts elementwise

    algo = _resolve_algorithm(algorithm, metric=metric)
    fusible = metric is None and counts_service.all()
    if (fusion_enabled() if fuse is None else fuse) and T > 0 and fusible:
        kernel = kernel_for(algo)
        if kernel is not None:
            big = _packed_stack([inst.requests for inst in instances])
            if big is not None:
                m = np.array([inst.m for inst in instances])
                return run_fused(
                    kernel, algo,
                    np.stack([inst.start for inst in instances]),
                    big, caps, D, m, serve_after_move, tol,
                )
    algo.reset_batch(instances, caps)
    state = BatchState.initial(np.stack([inst.start for inst in instances]))
    trace = BatchTrace.allocate(B, T, dim, algorithm=algo.name)
    trace.positions[:, 0] = state.positions
    steps = _gather_steps(instances, T)

    for t in range(T):
        step = steps[t]
        proposed, movement, service, moved = advance_lanes(
            algo, t, state.positions, step,
            caps=caps, tol=tol, D=D, serve_after_move=serve_after_move,
            counts_service=counts_service, metric=metric,
        )
        trace.positions[:, t + 1] = proposed
        trace.movement_costs[:, t] = movement
        trace.service_costs[:, t] = service
        trace.distances_moved[:, t] = moved
        trace.request_counts[:, t] = step.counts
        # Commit a private copy so a decide_batch that mutates or returns
        # the positions array cannot corrupt the accounting (the same
        # defensive copy the scalar simulator makes).
        state.advance(np.array(proposed, copy=True), movement, service, moved)
    return trace
