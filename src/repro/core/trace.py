"""Simulation traces.

A :class:`Trace` records everything about one run of an algorithm on an
instance: the server trajectory, per-step cost breakdowns and request
counts.  Analysis modules (potential-function verification, competitive
ratio curves, regression fits) consume traces rather than re-simulating.

Arrays are pre-allocated to the sequence length and filled in place — the
simulator never appends to Python lists in its inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Trace"]


@dataclass
class Trace:
    """Complete record of one simulation run.

    Attributes
    ----------
    positions:
        ``(T + 1, d)`` server positions; row 0 is :math:`P_0`.
    movement_costs, service_costs:
        ``(T,)`` weighted movement cost and service cost per step.
    distances_moved:
        ``(T,)`` raw per-step movement distances.
    request_counts:
        ``(T,)`` request counts :math:`r_t`.
    algorithm:
        Name of the algorithm that produced the trace.
    """

    positions: np.ndarray
    movement_costs: np.ndarray
    service_costs: np.ndarray
    distances_moved: np.ndarray
    request_counts: np.ndarray
    algorithm: str = ""

    @classmethod
    def allocate(cls, T: int, dim: int, algorithm: str = "") -> "Trace":
        """Pre-allocate a trace for a ``T``-step run in ``dim`` dimensions."""
        return cls(
            positions=np.zeros((T + 1, dim)),
            movement_costs=np.zeros(T),
            service_costs=np.zeros(T),
            distances_moved=np.zeros(T),
            request_counts=np.zeros(T, dtype=np.int64),
            algorithm=algorithm,
        )

    @property
    def length(self) -> int:
        return int(self.movement_costs.shape[0])

    @property
    def dim(self) -> int:
        return int(self.positions.shape[1])

    @property
    def step_costs(self) -> np.ndarray:
        """``(T,)`` total cost per step."""
        return self.movement_costs + self.service_costs

    @property
    def total_cost(self) -> float:
        return float(self.movement_costs.sum() + self.service_costs.sum())

    @property
    def total_movement_cost(self) -> float:
        return float(self.movement_costs.sum())

    @property
    def total_service_cost(self) -> float:
        return float(self.service_costs.sum())

    @property
    def total_distance_moved(self) -> float:
        return float(self.distances_moved.sum())

    def cumulative_costs(self) -> np.ndarray:
        """``(T,)`` prefix sums of total step cost."""
        return np.cumsum(self.step_costs)

    def prefix_cost(self, t: int) -> float:
        """Total cost of the first ``t`` steps."""
        if t <= 0:
            return 0.0
        return float(self.step_costs[:t].sum())

    def max_step_distance(self) -> float:
        """Largest single-step movement — used to check cap compliance."""
        return float(self.distances_moved.max()) if self.length else 0.0

    def validate_against_cap(self, cap: float, tol: float = 1e-7) -> None:
        """Raise ``ValueError`` if any step moved further than ``cap``."""
        if self.length == 0:
            return
        limit = cap * (1.0 + tol) + tol
        bad = np.nonzero(self.distances_moved > limit)[0]
        if bad.size:
            t = int(bad[0])
            raise ValueError(
                f"trace violates movement cap at step {t}: "
                f"moved {self.distances_moved[t]:.6g} > cap {cap:.6g}"
            )

    def summary(self) -> dict[str, float]:
        return {
            "total": self.total_cost,
            "movement": self.total_movement_cost,
            "service": self.total_service_cost,
            "distance_moved": self.total_distance_moved,
            "steps": float(self.length),
            "max_step_distance": self.max_step_distance(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(alg={self.algorithm!r}, T={self.length}, dim={self.dim}, "
            f"total={self.total_cost:.4g})"
        )
