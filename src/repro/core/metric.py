"""The :class:`Metric` abstraction — one engine, many spaces.

The Mobile Server Problem is stated over arbitrary metric spaces; this
module is where the engine meets that generality.  A :class:`Metric`
bundles the operations a simulation needs — ``distance``,
``distances_to``, geodesic ``move_towards`` / ``clamp_step``,
``interpolate`` — plus their batched ``(B, d)`` counterparts for the
lock-step engine, and a ``supports_kernels`` capability tag that tells
:func:`repro.core.engine.simulate_batch` whether the fused
:mod:`repro.core.kernels` paths may run (they are ℓ2-only; every other
metric falls back to the reference loop).

Three families are registered:

``euclidean``
    ℓ2 — the fast default.  Its methods delegate to the module-level
    functions below (moved here verbatim from ``core.geometry``), so the
    code path of every existing experiment is bit-identical.
``l1`` / ``linf``
    Minkowski norms.  Straight lines are geodesics in any normed space,
    so ``move_towards`` is the same scaled segment walk with the norm
    swapped.
``graph``
    Weighted-graph shortest path over a
    :class:`repro.pagemigration.graph.MigrationNetwork`, with
    precomputed all-pairs tables and *edge-interpolated* server
    positions: a point is a ``(u, v, t)`` triple — fraction ``t`` along
    edge ``(u, v)`` — encoded as a 3-vector so graph instances flow
    through the same ``float64`` arrays as Euclidean ones.  Node ``j``
    is ``(j, j, 0)``.

Scalar-vs-batched bit parity is part of the contract: every batched
method performs the exact same float64 arithmetic per row as its scalar
counterpart (see ``tests/test_metric.py``).

The module-level Euclidean helpers (:func:`distance`,
:func:`move_towards`, :func:`row_norms`, …) remain importable directly —
they are the engine's hot path and the arithmetic reference the batched
engine's bit-parity contract is written against.  ``core.geometry`` is
now a deprecated shim re-exporting them.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence

import numpy as np

__all__ = [
    "EPS",
    "EuclideanMetric",
    "GraphMetric",
    "METRICS",
    "Metric",
    "MinkowskiMetric",
    "as_point",
    "as_points",
    "available_metrics",
    "batched_move_towards",
    "bounding_box",
    "centroid",
    "clamp_step",
    "direction",
    "distance",
    "distances_to",
    "get_metric",
    "graph_point",
    "interpolate",
    "move_towards",
    "norm",
    "pairwise_distances",
    "register_metric",
    "row_norms",
    "total_path_length",
]

#: Absolute tolerance used when validating movement-cap constraints.  The
#: simulator allows moves to exceed the cap by ``EPS * (1 + cap)`` to absorb
#: floating-point round-off in ``direction``/``move_towards`` chains.
EPS: float = 1e-9


# ---------------------------------------------------------------------------
# Module-level Euclidean primitives (the engine's ℓ2 hot path).
# Moved verbatim from ``core.geometry``; arithmetic must not change — the
# bit-parity contract of the batched engine and every golden table is
# written against these exact reduction orders.
# ---------------------------------------------------------------------------


def as_point(p: Sequence[float] | np.ndarray, dim: int | None = None) -> np.ndarray:
    """Return ``p`` as a float64 vector of shape ``(d,)``.

    Parameters
    ----------
    p:
        A scalar (treated as a 1-D point), sequence, or array.
    dim:
        If given, validate that the point has exactly this dimension.

    Raises
    ------
    ValueError
        If ``p`` is not interpretable as a single point or the dimension
        does not match ``dim``.
    """
    arr = np.asarray(p, dtype=np.float64)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ValueError(f"expected a single point, got array of shape {arr.shape}")
    if dim is not None and arr.shape[0] != dim:
        raise ValueError(f"expected dimension {dim}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"point contains non-finite coordinates: {arr}")
    return arr


def as_points(ps: Iterable[Sequence[float]] | np.ndarray, dim: int | None = None) -> np.ndarray:
    """Return ``ps`` as a float64 batch of shape ``(r, d)``.

    A single point is promoted to a batch of one.  An empty input yields an
    array of shape ``(0, dim or 0)``.
    """
    arr = np.asarray(ps, dtype=np.float64)
    if arr.size == 0:
        d = dim if dim is not None else (arr.shape[-1] if arr.ndim == 2 else 0)
        return np.empty((0, d), dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ValueError(f"expected a batch of points, got array of shape {arr.shape}")
    if dim is not None and arr.shape[1] != dim:
        raise ValueError(f"expected dimension {dim}, got {arr.shape[1]}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("point batch contains non-finite coordinates")
    return arr


def _sq_norm(v: np.ndarray) -> float:
    """Squared norm via ``einsum``.

    ``np.dot`` may use FMA-fused BLAS kernels whose rounding differs from
    the batched ``einsum("ij,ij->i")`` reductions by 1 ulp; routing every
    scalar norm through the same ``einsum`` contraction keeps the scalar
    and batched engines bit-for-bit identical.
    """
    return float(np.einsum("i,i->", v, v))


def norm(v: np.ndarray) -> float:
    """Euclidean norm of a vector, as a Python float."""
    return float(np.sqrt(_sq_norm(v)))


def distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between two points."""
    d = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(np.sqrt(_sq_norm(d)))


def distances_to(p: np.ndarray, batch: np.ndarray) -> np.ndarray:
    """Distances from point ``p`` to each row of ``batch``; shape ``(r,)``.

    This is the hot path of request answering: one subtraction, one square,
    one reduction — no Python-level loop.
    """
    diff = batch - p
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def pairwise_distances(batch_a: np.ndarray, batch_b: np.ndarray) -> np.ndarray:
    """All pairwise distances; shape ``(len(a), len(b))``."""
    diff = batch_a[:, None, :] - batch_b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def direction(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Unit vector from ``src`` towards ``dst``; zero vector if coincident."""
    v = dst - src
    n = np.sqrt(_sq_norm(v))
    if n <= 0.0:
        return np.zeros_like(v)
    return v / n


def move_towards(src: np.ndarray, dst: np.ndarray, step: float) -> np.ndarray:
    """Move from ``src`` towards ``dst`` by at most ``step``.

    Returns ``dst`` itself (not a copy of ``src``) when the target is within
    reach, so that repeated calls converge exactly.
    """
    if step < 0.0:
        raise ValueError(f"step must be non-negative, got {step}")
    v = dst - src
    n = np.sqrt(_sq_norm(v))
    if n <= step:
        return np.array(dst, dtype=np.float64, copy=True)
    return src + (step / n) * v


#: Clamping a proposed move ``src -> dst`` to a movement cap is the same
#: operation as a bounded directed move, so ``clamp_step`` is an alias of
#: :func:`move_towards` (kept for readability at call sites that think in
#: terms of cap enforcement rather than pursuit).
clamp_step = move_towards


def row_norms(vs: np.ndarray) -> np.ndarray:
    """Euclidean norm of each row of a ``(B, d)`` array; shape ``(B,)``."""
    return np.sqrt(np.einsum("ij,ij->i", vs, vs))


def batched_move_towards(src: np.ndarray, dst: np.ndarray, steps: np.ndarray | float) -> np.ndarray:
    """Row-wise :func:`move_towards` for ``(B, d)`` stacks of points.

    Each lane ``i`` moves from ``src[i]`` towards ``dst[i]`` by at most
    ``steps[i]`` (``steps`` broadcasts, so a scalar cap is fine).  Rows whose
    destination is within reach land exactly on ``dst[i]``, matching the
    scalar function's convergence guarantee; the per-row arithmetic is
    identical to the scalar path so results agree bit-for-bit.
    """
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    steps = np.broadcast_to(np.asarray(steps, dtype=np.float64), src.shape[:1])
    if np.any(steps < 0.0):
        raise ValueError("steps must be non-negative")
    v = dst - src
    n = row_norms(v)
    reached = n <= steps
    safe_n = np.where(reached, 1.0, n)  # avoid 0/0 on zero-length moves
    out = src + (steps / safe_n)[:, None] * v
    out[reached] = dst[reached]
    return out


def interpolate(a: np.ndarray, b: np.ndarray, t: float) -> np.ndarray:
    """Affine interpolation ``(1 - t) * a + t * b``."""
    return (1.0 - t) * a + t * b


def total_path_length(path: np.ndarray) -> float:
    """Total Euclidean length of a polyline given as an ``(n, d)`` array."""
    path = np.asarray(path, dtype=np.float64)
    if path.ndim != 2 or path.shape[0] < 2:
        return 0.0
    seg = np.diff(path, axis=0)
    return float(np.sqrt(np.einsum("ij,ij->i", seg, seg)).sum())


def centroid(batch: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """(Weighted) arithmetic mean of a batch of points."""
    batch = as_points(batch)
    if batch.shape[0] == 0:
        raise ValueError("centroid of an empty batch is undefined")
    if weights is None:
        return batch.mean(axis=0)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (batch.shape[0],):
        raise ValueError("weights must have one entry per point")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive sum")
    return (weights[:, None] * batch).sum(axis=0) / total


def bounding_box(batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Axis-aligned bounding box ``(lo, hi)`` of a non-empty batch."""
    batch = as_points(batch)
    if batch.shape[0] == 0:
        raise ValueError("bounding box of an empty batch is undefined")
    return batch.min(axis=0), batch.max(axis=0)


# ---------------------------------------------------------------------------
# The Metric interface
# ---------------------------------------------------------------------------


class Metric:
    """Distance + geodesic operations over one space.

    Subclasses implement the scalar core (``distance``, ``move_towards``);
    the batched defaults loop per lane with identical arithmetic, and fast
    metrics override them with whole-batch array passes.  ``clamp_step``
    is the cap-enforcement alias of ``move_towards``, exactly as in the
    module-level Euclidean functions.

    Attributes
    ----------
    name:
        Registry name (``"euclidean"``, ``"l1"``, ``"linf"``, ``"graph"``).
    supports_kernels:
        Whether the fused :mod:`repro.core.kernels` step kernels may run
        under this metric.  Kernels hardcode ℓ2 reductions, so only the
        Euclidean instance sets this.
    """

    name: str = ""
    supports_kernels: bool = False

    # -- scalar core -------------------------------------------------------

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        raise NotImplementedError

    def move_towards(self, src: np.ndarray, dst: np.ndarray, step: float) -> np.ndarray:
        raise NotImplementedError

    def clamp_step(self, src: np.ndarray, dst: np.ndarray, step: float) -> np.ndarray:
        """Cap-enforcement alias of :meth:`move_towards`."""
        return self.move_towards(src, dst, step)

    def interpolate(self, a: np.ndarray, b: np.ndarray, t: float) -> np.ndarray:
        """Point a fraction ``t`` along the geodesic from ``a`` to ``b``."""
        if not 0.0 <= t <= 1.0:
            raise ValueError(f"interpolation fraction must be in [0, 1], got {t}")
        return self.move_towards(a, b, t * self.distance(a, b))

    def distances_to(self, p: np.ndarray, batch: np.ndarray) -> np.ndarray:
        """Distances from ``p`` to each row of ``batch``; shape ``(r,)``."""
        return np.array([self.distance(p, batch[i]) for i in range(batch.shape[0])],
                        dtype=np.float64)

    def pairwise_distances(self, batch_a: np.ndarray, batch_b: np.ndarray) -> np.ndarray:
        """All pairwise distances; shape ``(len(a), len(b))``."""
        return np.stack([self.distances_to(batch_a[i], batch_b)
                         for i in range(batch_a.shape[0])]) \
            if batch_a.shape[0] else np.empty((0, batch_b.shape[0]))

    # -- batched (B, d) counterparts ---------------------------------------

    def batched_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Row-wise distances between two ``(B, d)`` stacks; shape ``(B,)``."""
        return np.array([self.distance(a[i], b[i]) for i in range(a.shape[0])],
                        dtype=np.float64)

    def batched_move_towards(self, src: np.ndarray, dst: np.ndarray,
                             steps: np.ndarray | float) -> np.ndarray:
        """Row-wise :meth:`move_towards`; ``steps`` broadcasts per lane."""
        src = np.asarray(src, dtype=np.float64)
        dst = np.asarray(dst, dtype=np.float64)
        steps = np.broadcast_to(np.asarray(steps, dtype=np.float64), src.shape[:1])
        return np.stack([self.move_towards(src[i], dst[i], float(steps[i]))
                         for i in range(src.shape[0])])

    # -- validation --------------------------------------------------------

    def validate_point(self, p: np.ndarray) -> None:
        """Raise ``ValueError`` if ``p`` is not a point of this space."""
        as_point(p)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


class EuclideanMetric(Metric):
    """ℓ2 — delegates to the module-level primitives, hence bit-identical
    to every pre-``Metric`` code path."""

    name = "euclidean"
    supports_kernels = True

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return distance(a, b)

    def move_towards(self, src: np.ndarray, dst: np.ndarray, step: float) -> np.ndarray:
        return move_towards(src, dst, step)

    def interpolate(self, a: np.ndarray, b: np.ndarray, t: float) -> np.ndarray:
        return interpolate(a, b, t)

    def distances_to(self, p: np.ndarray, batch: np.ndarray) -> np.ndarray:
        return distances_to(p, batch)

    def pairwise_distances(self, batch_a: np.ndarray, batch_b: np.ndarray) -> np.ndarray:
        return pairwise_distances(batch_a, batch_b)

    def batched_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return row_norms(np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64))

    def batched_move_towards(self, src: np.ndarray, dst: np.ndarray,
                             steps: np.ndarray | float) -> np.ndarray:
        return batched_move_towards(src, dst, steps)


class MinkowskiMetric(Metric):
    """ℓp norms for ``p`` in {1, ∞}.  Straight segments are geodesics in
    any normed space, so moves are the Euclidean segment walk with the
    norm swapped — same ``reached``/``safe_n`` structure as
    :func:`batched_move_towards`, so scalar and batched rows agree
    bit-for-bit."""

    supports_kernels = False

    def __init__(self, p: float) -> None:
        if p not in (1, np.inf):
            raise ValueError(f"only l1 and linf are registered Minkowski metrics, got p={p}")
        self.p = p
        self.name = "l1" if p == 1 else "linf"

    def _norm(self, v: np.ndarray) -> float:
        a = np.abs(v)
        return float(a.sum()) if self.p == 1 else (float(a.max()) if a.size else 0.0)

    def _row_norms(self, vs: np.ndarray) -> np.ndarray:
        a = np.abs(vs)
        return a.sum(axis=1) if self.p == 1 else a.max(axis=1)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return self._norm(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))

    def distances_to(self, p: np.ndarray, batch: np.ndarray) -> np.ndarray:
        if batch.shape[0] == 0:
            return np.empty(0, dtype=np.float64)
        return self._row_norms(batch - p)

    def pairwise_distances(self, batch_a: np.ndarray, batch_b: np.ndarray) -> np.ndarray:
        diff = np.abs(batch_a[:, None, :] - batch_b[None, :, :])
        return diff.sum(axis=2) if self.p == 1 else diff.max(axis=2)

    def move_towards(self, src: np.ndarray, dst: np.ndarray, step: float) -> np.ndarray:
        if step < 0.0:
            raise ValueError(f"step must be non-negative, got {step}")
        v = dst - src
        n = self._norm(v)
        if n <= step:
            return np.array(dst, dtype=np.float64, copy=True)
        return src + (step / n) * v

    def batched_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self._row_norms(np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64))

    def batched_move_towards(self, src: np.ndarray, dst: np.ndarray,
                             steps: np.ndarray | float) -> np.ndarray:
        src = np.asarray(src, dtype=np.float64)
        dst = np.asarray(dst, dtype=np.float64)
        steps = np.broadcast_to(np.asarray(steps, dtype=np.float64), src.shape[:1])
        if np.any(steps < 0.0):
            raise ValueError("steps must be non-negative")
        v = dst - src
        n = self._row_norms(v)
        reached = n <= steps
        safe_n = np.where(reached, 1.0, n)
        out = src + (steps / safe_n)[:, None] * v
        out[reached] = dst[reached]
        return out


# ---------------------------------------------------------------------------
# Weighted-graph shortest-path metric
# ---------------------------------------------------------------------------


def graph_point(u: int, v: int | None = None, t: float = 0.0) -> np.ndarray:
    """Encode a graph position as the canonical ``(u, v, t)`` 3-vector.

    ``t`` is the fraction travelled along edge ``(u, v)``; node ``j`` is
    ``(j, j, 0)``.  The canonical form orients every edge point with
    ``u < v`` and collapses ``t`` in {0, 1} to the endpoint node, so equal
    positions have equal encodings.
    """
    u = int(u)
    if v is None:
        return np.array([float(u), float(u), 0.0])
    v = int(v)
    t = float(t)
    if not 0.0 <= t <= 1.0:
        raise ValueError(f"edge fraction must be in [0, 1], got {t}")
    if u == v:
        if t != 0.0:
            raise ValueError(f"node point ({u}, {u}) must have t=0, got t={t}")
        return np.array([float(u), float(u), 0.0])
    if t == 0.0:
        return np.array([float(u), float(u), 0.0])
    if t == 1.0:
        return np.array([float(v), float(v), 0.0])
    if u > v:
        u, v, t = v, u, 1.0 - t
    return np.array([float(u), float(v), float(t)])


class GraphMetric(Metric):
    """Shortest-path metric over a weighted graph.

    Built from a :class:`repro.pagemigration.graph.MigrationNetwork`: its
    precomputed all-pairs ``distances`` table *is* the node-to-node
    metric (bit-for-bit — the page-migration parity tests rely on it),
    and geodesic moves walk cached shortest node paths, landing mid-edge
    when the step budget runs out.  Points use the ``(u, v, t)`` encoding
    of :func:`graph_point`.
    """

    name = "graph"
    supports_kernels = False

    def __init__(self, network, name: str = "graph") -> None:
        self.network = network
        self.name = name
        self._table = np.asarray(network.distances, dtype=np.float64)
        # Points name nodes by *index* into ``network.nodes`` (labels may be
        # tuples, e.g. grid graphs); map back to labels at the graph edge.
        self._labels = list(network.nodes)
        self._index = {v: i for i, v in enumerate(self._labels)}
        self._paths: dict[tuple[int, int], list[int]] = {}

    # -- encoding ----------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return int(self._table.shape[0])

    def _decode(self, p: np.ndarray) -> tuple[int, int, float]:
        p = np.asarray(p, dtype=np.float64)
        if p.shape != (3,):
            raise ValueError(
                f"graph points are (u, v, t) 3-vectors, got shape {p.shape}")
        u, v, t = int(round(p[0])), int(round(p[1])), float(p[2])
        n = self.n_nodes
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"graph point names nodes ({u}, {v}) outside 0..{n - 1}")
        if u == v:
            if t != 0.0:
                raise ValueError(f"node point ({u}, {u}) must have t=0, got t={t}")
            return u, v, 0.0
        if not 0.0 < t < 1.0:
            raise ValueError(f"edge point fraction must be in (0, 1), got {t}")
        if not self.network.graph.has_edge(self._labels[u], self._labels[v]):
            raise ValueError(f"({u}, {v}) is not an edge of the network")
        return u, v, t

    def validate_point(self, p: np.ndarray) -> None:
        self._decode(p)

    def _edge_weight(self, u: int, v: int) -> float:
        return float(self.network.graph[self._labels[u]][self._labels[v]].get("weight", 1.0))

    def _node_path(self, i: int, j: int) -> list[int]:
        """Cached shortest node path ``i -> j`` as indices (deterministic Dijkstra)."""
        key = (i, j)
        if key not in self._paths:
            import networkx as nx

            labels = nx.dijkstra_path(
                self.network.graph, self._labels[i], self._labels[j], weight="weight")
            self._paths[key] = [self._index[v] for v in labels]
        return self._paths[key]

    def _to_nodes(self, p: np.ndarray) -> list[tuple[int, float]]:
        """``(node, distance from p to that node)`` anchor candidates."""
        u, v, t = self._decode(p)
        if u == v:
            return [(u, 0.0)]
        w = self._edge_weight(u, v)
        return [(u, t * w), (v, (1.0 - t) * w)]

    # -- scalar core -------------------------------------------------------

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        ua, va, ta = self._decode(a)
        ub, vb, tb = self._decode(b)
        best = np.inf
        # Direct along a shared edge (the only geodesic avoiding nodes).
        if ua != va and {ua, va} == {ub, vb}:
            tb_here = tb if (ua, va) == (ub, vb) else 1.0 - tb
            best = abs(ta - tb_here) * self._edge_weight(ua, va)
        for i, da in self._to_nodes(a):
            for j, db in self._to_nodes(b):
                best = min(best, da + float(self._table[i, j]) + db)
        return float(best)

    def move_towards(self, src: np.ndarray, dst: np.ndarray, step: float) -> np.ndarray:
        if step < 0.0:
            raise ValueError(f"step must be non-negative, got {step}")
        total = self.distance(src, dst)
        if total <= step:
            return np.array(graph_point(*self._decode(dst)), dtype=np.float64)
        ua, va, ta = self._decode(src)
        ub, vb, tb = self._decode(dst)
        # Shared-edge direct walk when it realizes the distance.
        if ua != va and {ua, va} == {ub, vb}:
            tb_here = tb if (ua, va) == (ub, vb) else 1.0 - tb
            w = self._edge_weight(ua, va)
            if abs(ta - tb_here) * w <= total:
                frac = step / w
                t_new = ta + frac if tb_here > ta else ta - frac
                return graph_point(ua, va, t_new)
        # Otherwise: pick the (entry node, exit node) pair realizing the
        # shortest route, then walk src -> entry -> ... -> exit -> dst.
        best = None
        for i, da in self._to_nodes(src):
            for j, db in self._to_nodes(dst):
                length = da + float(self._table[i, j]) + db
                if best is None or length < best[0]:
                    best = (length, i, j, da, db)
        _, entry, exit_, d_entry, _ = best
        remaining = step
        # Leg 1: along src's edge to the entry node.
        if remaining < d_entry:
            w = self._edge_weight(ua, va)
            frac = remaining / w
            t_new = ta - frac if entry == ua else ta + frac
            return graph_point(ua, va, t_new)
        remaining -= d_entry
        # Leg 2: along the shortest node path.
        path = self._node_path(entry, exit_)
        for a_node, b_node in zip(path, path[1:]):
            w = self._edge_weight(a_node, b_node)
            if remaining < w:
                return graph_point(a_node, b_node, remaining / w)
            remaining -= w
        # Leg 3: along dst's edge (remaining < d_exit since total > step).
        w = self._edge_weight(ub, vb)
        frac = remaining / w
        t_new = frac if exit_ == ub else 1.0 - frac
        return graph_point(ub, vb, t_new)

    def node_point(self, j: int) -> np.ndarray:
        """The canonical encoding of node ``j``."""
        return graph_point(int(j))

    def nearest_node(self, p: np.ndarray) -> int:
        """The closer endpoint of ``p``'s edge (ties to the smaller index)."""
        anchors = self._to_nodes(p)
        return min(anchors, key=lambda a: (a[1], a[0]))[0]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: name -> zero-argument factory.  Factories run once; instances are cached.
METRICS: Dict[str, Callable[[], Metric]] = {}
_INSTANCES: Dict[str, Metric] = {}


def register_metric(name: str, factory: Callable[[], Metric],
                    overwrite: bool = False) -> None:
    """Register a metric under a stable name (mirrors the other registries)."""
    if name in METRICS and not overwrite:
        raise KeyError(f"metric {name!r} already registered")
    METRICS[name] = factory
    _INSTANCES.pop(name, None)


def get_metric(metric: str | Metric | None) -> Metric:
    """Resolve a metric name (or pass a :class:`Metric` instance through).

    ``None`` resolves to the Euclidean default, so every existing call
    site keeps its exact behaviour without naming a metric.
    """
    if metric is None:
        metric = "euclidean"
    if isinstance(metric, Metric):
        return metric
    if metric not in METRICS:
        raise KeyError(
            f"unknown metric {metric!r}; available: {', '.join(sorted(METRICS))}")
    if metric not in _INSTANCES:
        _INSTANCES[metric] = METRICS[metric]()
    return _INSTANCES[metric]


def available_metrics() -> list[str]:
    """Sorted registry keys."""
    return sorted(METRICS)


def _default_graph_metric() -> Metric:
    # Lazy import: the canonical small road network lives with the graph
    # workloads, which depend on this module.
    from ..workloads.graphnet import default_network

    return GraphMetric(default_network())


register_metric("euclidean", EuclideanMetric)
register_metric("l1", lambda: MinkowskiMetric(1))
register_metric("linf", lambda: MinkowskiMetric(np.inf))
register_metric("graph", _default_graph_metric)
